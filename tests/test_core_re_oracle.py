"""Tests for the Rendering Elimination controller and the oracle
comparator."""

import numpy as np
import pytest

from repro.core import OracleTileComparator, RenderingElimination


class TestRenderingElimination:
    def test_baseline_updates_always(self):
        re = RenderingElimination(num_tiles=2, filter_occluded=False)
        assert re.on_primitive_binned(0, 123, predicted_occluded=True)
        assert re.stats.signature_updates == 1
        assert re.stats.signature_skips == 0

    def test_filter_skips_occluded(self):
        re = RenderingElimination(num_tiles=2, filter_occluded=True)
        assert not re.on_primitive_binned(0, 123, predicted_occluded=True)
        assert re.on_primitive_binned(0, 456, predicted_occluded=False)
        assert re.stats.signature_skips == 1
        assert re.stats.signature_updates == 1

    def test_skip_detection_cycle(self):
        re = RenderingElimination(num_tiles=1)
        re.on_primitive_binned(0, 111, False)
        assert not re.should_skip_tile(0)  # first frame: no reference
        re.end_frame()
        re.on_primitive_binned(0, 111, False)
        assert re.should_skip_tile(0)
        re.end_frame()
        re.on_primitive_binned(0, 222, False)
        assert not re.should_skip_tile(0)

    def test_filtered_primitive_invisible_to_signature(self):
        """A changing-but-occluded primitive does not break matching."""
        re = RenderingElimination(num_tiles=1, filter_occluded=True)
        re.on_primitive_binned(0, 1, predicted_occluded=True)
        re.on_primitive_binned(0, 99, predicted_occluded=False)
        re.end_frame()
        re.on_primitive_binned(0, 2, predicted_occluded=True)  # changed CRC
        re.on_primitive_binned(0, 99, predicted_occluded=False)
        assert re.should_skip_tile(0)

    def test_detection_rate_empty(self):
        assert RenderingElimination(num_tiles=1).detection_rate == 0.0

    def test_detection_rate_counts(self):
        re = RenderingElimination(num_tiles=1)
        re.on_primitive_binned(0, 1, False)
        re.should_skip_tile(0)       # miss (no previous)
        re.end_frame()
        re.on_primitive_binned(0, 1, False)
        re.should_skip_tile(0)       # hit
        assert re.stats.tiles_checked == 2
        assert re.stats.tiles_matched == 1
        assert re.detection_rate == 0.5


class TestOracleTileComparator:
    def _tile(self, value):
        return np.full((2, 2, 4), value, dtype=np.float64)

    def test_first_frame_never_equal(self):
        comparator = OracleTileComparator()
        assert not comparator.record_tile(0, self._tile(1.0))
        assert comparator.tiles_checked == 0

    def test_identical_tiles_detected(self):
        comparator = OracleTileComparator()
        comparator.record_tile(0, self._tile(1.0))
        comparator.end_frame()
        assert comparator.record_tile(0, self._tile(1.0))
        assert comparator.equal_rate == 1.0

    def test_changed_tiles_not_equal(self):
        comparator = OracleTileComparator()
        comparator.record_tile(0, self._tile(1.0))
        comparator.end_frame()
        assert not comparator.record_tile(0, self._tile(2.0))
        assert comparator.equal_rate == 0.0

    def test_skipped_tile_colors_carry_forward(self):
        comparator = OracleTileComparator()
        comparator.record_tile(0, self._tile(1.0))
        comparator.end_frame()
        # Tile not recorded this frame (e.g. RE skipped it).
        comparator.end_frame()
        assert comparator.record_tile(0, self._tile(1.0))

    def test_previous_colors_accessor(self):
        comparator = OracleTileComparator()
        assert comparator.previous_colors(0) is None
        comparator.record_tile(0, self._tile(3.0))
        comparator.end_frame()
        assert np.array_equal(comparator.previous_colors(0), self._tile(3.0))

    def test_record_copies(self):
        comparator = OracleTileComparator()
        colors = self._tile(1.0)
        comparator.record_tile(0, colors)
        colors[0, 0, 0] = 42.0
        comparator.end_frame()
        assert not np.array_equal(comparator.previous_colors(0), colors)
