"""Tests for Parameter Buffer, Signature Buffer, LGT and FVP Table."""

import pytest

from repro import RenderState
from repro.geom import ScreenTriangle, VertexAttributes
from repro.hw import (
    DisplayList,
    DisplayListEntry,
    FVPEntry,
    FVPTable,
    FVPType,
    LayerGeneratorTable,
    ParameterBuffer,
    SignatureBuffer,
    primitive_signature,
)
from repro.hw.signature_buffer import combine_signature
from repro.math3d import Vec2


def make_primitive(signature=b"abc", command_id=0):
    return ScreenTriangle(
        xy=(Vec2(0, 0), Vec2(4, 0), Vec2(0, 4)),
        z=(0.5, 0.5, 0.5),
        attributes=(VertexAttributes(),) * 3,
        command_id=command_id,
        primitive_id=0,
        state=RenderState.sprite_2d(),
        signature_bytes=signature,
    )


def make_entry(primitive=None, layer=0):
    return DisplayListEntry(
        primitive=primitive or make_primitive(), offset=0, layer=layer
    )


class TestParameterBuffer:
    def test_offsets_advance(self):
        pb = ParameterBuffer(4)
        first = pb.store_primitive(make_primitive())
        second = pb.store_primitive(make_primitive())
        assert first == 0
        assert second == pb.attribute_bytes_per_primitive
        assert pb.stored_primitives == 2
        assert pb.total_bytes == 2 * pb.attribute_bytes_per_primitive

    def test_reset(self):
        pb = ParameterBuffer(4)
        pb.store_primitive(make_primitive())
        pb.display_list(0).append_first(make_entry())
        pb.reset()
        assert pb.total_bytes == 0
        assert len(pb.display_list(0)) == 0

    def test_tiles_iteration(self):
        pb = ParameterBuffer(3)
        assert sorted(tile for tile, _ in pb.tiles()) == [0, 1, 2]


class TestDisplayList:
    def test_iteration_order_first_then_second(self):
        dl = DisplayList()
        a, b, c = make_entry(layer=1), make_entry(layer=2), make_entry(layer=3)
        dl.append_first(a)
        dl.append_second(b)
        dl.append_first(c)
        assert list(dl) == [a, c, b]
        assert len(dl) == 3

    def test_promote_second(self):
        dl = DisplayList()
        a, b, c = make_entry(layer=1), make_entry(layer=2), make_entry(layer=3)
        dl.append_first(a)
        dl.append_second(b)
        dl.promote_second()
        dl.append_first(c)
        assert list(dl) == [a, b, c]
        assert not dl.second


class TestSignatureBuffer:
    def test_first_frame_never_matches(self):
        sb = SignatureBuffer(2)
        sb.update(0, 123)
        assert not sb.matches_previous(0)

    def test_identical_frames_match(self):
        sb = SignatureBuffer(2)
        sb.update(0, 123)
        sb.rotate_frame()
        sb.update(0, 123)
        assert sb.matches_previous(0)

    def test_different_primitive_set_differs(self):
        sb = SignatureBuffer(2)
        sb.update(0, 123)
        sb.rotate_frame()
        sb.update(0, 124)
        assert not sb.matches_previous(0)

    def test_order_sensitivity(self):
        a = combine_signature(combine_signature(0, 1), 2)
        b = combine_signature(combine_signature(0, 2), 1)
        assert a != b

    def test_empty_tile_matches_empty_tile(self):
        sb = SignatureBuffer(1)
        sb.rotate_frame()
        assert sb.matches_previous(0)  # empty == empty after first frame

    def test_primitive_signature_tracks_bytes(self):
        assert primitive_signature(make_primitive(b"a")) != primitive_signature(
            make_primitive(b"b")
        )

    def test_incremental_equals_batch(self):
        crcs = [11, 22, 33]
        incremental = 0
        for crc in crcs:
            incremental = combine_signature(incremental, crc)
        batch = combine_signature(
            combine_signature(combine_signature(0, 11), 22), 33
        )
        assert incremental == batch


class TestLayerGeneratorTable:
    def test_first_command_opens_layer_one(self):
        lgt = LayerGeneratorTable(4)
        assert lgt.assign_layer(0, command_id=0, is_woz=False) == 1

    def test_same_command_same_layer(self):
        lgt = LayerGeneratorTable(4)
        first = lgt.assign_layer(0, 0, False)
        second = lgt.assign_layer(0, 0, False)
        assert first == second == 1

    def test_new_nwoz_command_increments(self):
        lgt = LayerGeneratorTable(4)
        lgt.assign_layer(0, 0, False)
        assert lgt.assign_layer(0, 1, False) == 2

    def test_consecutive_woz_commands_share_layer(self):
        lgt = LayerGeneratorTable(4)
        lgt.assign_layer(0, 0, False)          # NWOZ -> 1
        first_woz = lgt.assign_layer(0, 1, True)   # WOZ -> 2
        second_woz = lgt.assign_layer(0, 2, True)  # WOZ batch -> still 2
        assert first_woz == second_woz == 2

    def test_woz_after_nwoz_increments(self):
        lgt = LayerGeneratorTable(4)
        lgt.assign_layer(0, 0, True)    # WOZ -> 1
        lgt.assign_layer(0, 1, False)   # NWOZ -> 2
        assert lgt.assign_layer(0, 2, True) == 3  # WOZ after NWOZ -> 3

    def test_layers_independent_per_tile(self):
        lgt = LayerGeneratorTable(4)
        lgt.assign_layer(0, 0, False)
        lgt.assign_layer(0, 1, False)
        assert lgt.assign_layer(1, 1, False) == 1  # tile 1 untouched before

    def test_reset(self):
        lgt = LayerGeneratorTable(4)
        lgt.assign_layer(0, 0, False)
        lgt.reset()
        assert lgt.assign_layer(0, 5, False) == 1
        assert lgt.current_layer(1) == 0

    def test_access_counter(self):
        lgt = LayerGeneratorTable(4)
        lgt.assign_layer(0, 0, False)
        lgt.assign_layer(1, 0, False)
        assert lgt.accesses == 2


class TestFVPTable:
    def test_initially_empty(self):
        table = FVPTable(4)
        assert table.lookup(0) is None
        assert table.lookups == 1

    def test_update_and_lookup(self):
        table = FVPTable(4)
        entry = FVPEntry(FVPType.WOZ, 0.75)
        table.update(2, entry)
        assert table.lookup(2) == entry
        assert table.lookup(1) is None
        assert table.updates == 1

    def test_invalidate(self):
        table = FVPTable(4)
        table.update(0, FVPEntry(FVPType.NWOZ, 3))
        table.invalidate()
        assert table.lookup(0) is None
