"""Unit and property tests for repro.math3d matrices and transforms."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.math3d import (
    Mat4,
    Vec3,
    Vec4,
    look_at,
    orthographic,
    perspective,
    rotate_x,
    rotate_y,
    rotate_z,
    scale,
    translate,
    viewport,
)

unit = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)


def vec3s():
    return st.builds(Vec3, unit, unit, unit)


class TestMat4Basics:
    def test_identity_transform(self):
        v = Vec4(1, 2, 3, 1)
        assert Mat4.identity() @ v == v

    def test_wrong_element_count_raises(self):
        with pytest.raises(ValueError):
            Mat4((1.0,) * 15)

    def test_rows_and_columns(self):
        m = Mat4(tuple(float(i) for i in range(16)))
        assert m.row(1) == (4.0, 5.0, 6.0, 7.0)
        assert m.column(2) == (2.0, 6.0, 10.0, 14.0)

    def test_transpose_involution(self):
        m = Mat4(tuple(float(i) for i in range(16)))
        assert m.transpose().transpose() == m

    def test_matmul_with_non_matrix_raises(self):
        with pytest.raises(TypeError):
            Mat4.identity() @ 3  # type: ignore[operator]

    @given(vec3s(), vec3s())
    def test_composition_associativity(self, t1, t2):
        a, b = translate(t1), translate(t2)
        v = Vec4(1.0, 2.0, 3.0, 1.0)
        left = (a @ b) @ v
        right = a @ (b @ v)
        for lhs, rhs in zip(left, right):
            assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)


class TestAffineTransforms:
    def test_translate_point_not_direction(self):
        m = translate(Vec3(1, 2, 3))
        assert m.transform_point(Vec3(0, 0, 0)) == Vec3(1, 2, 3)
        assert m.transform_direction(Vec3(1, 0, 0)) == Vec3(1, 0, 0)

    def test_scale(self):
        m = scale(Vec3(2, 3, 4))
        assert m.transform_point(Vec3(1, 1, 1)) == Vec3(2, 3, 4)

    def test_rotate_z_quarter_turn(self):
        m = rotate_z(math.pi / 2)
        p = m.transform_point(Vec3(1, 0, 0))
        assert p.x == pytest.approx(0.0, abs=1e-12)
        assert p.y == pytest.approx(1.0)

    def test_rotate_x_quarter_turn(self):
        p = rotate_x(math.pi / 2).transform_point(Vec3(0, 1, 0))
        assert p.y == pytest.approx(0.0, abs=1e-12)
        assert p.z == pytest.approx(1.0)

    def test_rotate_y_quarter_turn(self):
        p = rotate_y(math.pi / 2).transform_point(Vec3(0, 0, 1))
        assert p.x == pytest.approx(1.0)
        assert p.z == pytest.approx(0.0, abs=1e-12)

    @given(st.floats(min_value=-math.pi, max_value=math.pi))
    def test_rotation_preserves_length(self, angle):
        p = rotate_y(angle).transform_point(Vec3(1, 2, 3))
        assert p.length() == pytest.approx(Vec3(1, 2, 3).length(), rel=1e-9)


class TestProjections:
    def test_perspective_validates(self):
        with pytest.raises(ValueError):
            perspective(1.0, 1.0, -1.0, 10.0)
        with pytest.raises(ValueError):
            perspective(1.0, 1.0, 10.0, 1.0)

    def test_perspective_near_far_map_to_ndc_extremes(self):
        proj = perspective(math.radians(60), 1.0, 1.0, 100.0)
        near_point = (proj @ Vec4(0, 0, -1.0, 1.0)).perspective_divide()
        far_point = (proj @ Vec4(0, 0, -100.0, 1.0)).perspective_divide()
        assert near_point.z == pytest.approx(-1.0)
        assert far_point.z == pytest.approx(1.0)

    def test_perspective_center_ray(self):
        proj = perspective(math.radians(90), 2.0, 1.0, 10.0)
        p = (proj @ Vec4(0, 0, -5.0, 1.0)).perspective_divide()
        assert p.x == pytest.approx(0.0)
        assert p.y == pytest.approx(0.0)

    def test_orthographic_maps_box_to_ndc(self):
        proj = orthographic(0, 10, 0, 20, -1, 1)
        low = (proj @ Vec4(0, 0, 1.0, 1.0)).perspective_divide()
        high = (proj @ Vec4(10, 20, -1.0, 1.0)).perspective_divide()
        assert (low.x, low.y) == (pytest.approx(-1.0), pytest.approx(-1.0))
        assert (high.x, high.y) == (pytest.approx(1.0), pytest.approx(1.0))

    def test_orthographic_validates(self):
        with pytest.raises(ValueError):
            orthographic(0, 0, 0, 1, 0, 1)


class TestLookAt:
    def test_eye_maps_to_origin(self):
        view = look_at(Vec3(3, 4, 5), Vec3(0, 0, 0), Vec3(0, 1, 0))
        p = view.transform_point(Vec3(3, 4, 5))
        assert p.length() == pytest.approx(0.0, abs=1e-12)

    def test_target_on_negative_z(self):
        view = look_at(Vec3(0, 0, 10), Vec3(0, 0, 0), Vec3(0, 1, 0))
        p = view.transform_point(Vec3(0, 0, 0))
        assert p.x == pytest.approx(0.0, abs=1e-12)
        assert p.y == pytest.approx(0.0, abs=1e-12)
        assert p.z == pytest.approx(-10.0)


class TestViewport:
    def test_ndc_corners_to_pixels(self):
        vp = viewport(100, 50)
        top_left = vp.transform_point(Vec3(-1.0, 1.0, -1.0))
        bottom_right = vp.transform_point(Vec3(1.0, -1.0, 1.0))
        assert (top_left.x, top_left.y) == (pytest.approx(0), pytest.approx(0))
        assert top_left.z == pytest.approx(0.0)  # near plane -> depth 0
        assert (bottom_right.x, bottom_right.y) == (
            pytest.approx(100), pytest.approx(50))
        assert bottom_right.z == pytest.approx(1.0)

    def test_center(self):
        vp = viewport(100, 50)
        center = vp.transform_point(Vec3(0.0, 0.0, 0.0))
        assert (center.x, center.y, center.z) == (
            pytest.approx(50), pytest.approx(25), pytest.approx(0.5))
