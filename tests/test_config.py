"""Tests for repro.config (Table II parameters)."""

import pytest

from repro import ConfigError, GPUConfig
from repro.config import CacheConfig, QueueConfig


class TestCacheConfig:
    def test_derived_geometry(self):
        cache = CacheConfig("test", 4096, 64, 2)
        assert cache.num_lines == 64
        assert cache.num_sets == 32

    def test_rejects_non_multiple_size(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", 100, 64)

    def test_rejects_bad_associativity(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", 4096, 64, associativity=3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", 0, 64)


class TestQueueConfig:
    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            QueueConfig("bad", 0, 8)


class TestGPUConfig:
    def test_paper_matches_table2(self):
        config = GPUConfig.paper()
        assert config.frequency_mhz == 400
        assert config.screen_width == 1196
        assert config.screen_height == 768
        assert config.tile_width == config.tile_height == 16
        assert config.fragment_processors == 4
        assert config.vertex_processors == 1
        assert config.frames == 60
        assert config.cache("l2").size_bytes == 256 * 1024
        assert config.cache("tile").associativity == 8
        assert config.queue("fragment").entries == 64

    def test_paper_tile_grid_includes_partial_tiles(self):
        config = GPUConfig.paper()
        # 1196/16 = 74.75 and 768/16 = 48: partial right-edge column.
        assert config.tiles_x == 75
        assert config.tiles_y == 48
        assert config.num_tiles == 75 * 48

    def test_default_divides_evenly(self):
        config = GPUConfig.default()
        assert config.screen_width % config.tile_width == 0
        assert config.screen_height % config.tile_height == 0
        assert config.num_tiles == 120

    def test_tiny(self):
        config = GPUConfig.tiny()
        assert config.num_tiles == 12
        assert config.pixels_per_tile == 256

    def test_scaled_override(self):
        config = GPUConfig.default().scaled(frames=3)
        assert config.frames == 3
        assert config.screen_width == 192

    def test_unknown_cache_raises(self):
        with pytest.raises(ConfigError):
            GPUConfig.default().cache("nope")

    def test_unknown_queue_raises(self):
        with pytest.raises(ConfigError):
            GPUConfig.default().queue("nope")

    @pytest.mark.parametrize(
        "overrides",
        [
            {"screen_width": 0},
            {"tile_width": -1},
            {"frequency_mhz": 0},
            {"frames": 0},
            {"fragment_processors": 0},
            {"dram_latency_min_cycles": 200},
        ],
    )
    def test_validation(self, overrides):
        with pytest.raises(ConfigError):
            GPUConfig.default().scaled(**overrides)

    def test_describe_keys(self):
        described = GPUConfig.paper().describe()
        assert described["screen"] == "1196x768"
        assert described["tile"] == "16x16"
        assert "dram_latency" in described

    def test_immutable(self):
        with pytest.raises(Exception):
            GPUConfig.default().frames = 99
