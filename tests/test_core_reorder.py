"""Tests for Algorithm 1 (display-list reordering), including the paper's
Figure 4 worked example and order-preservation properties."""

from hypothesis import given
from hypothesis import strategies as st

from repro import RenderState
from repro.core import place_in_display_list
from repro.geom import ScreenTriangle, VertexAttributes
from repro.hw import DisplayList, DisplayListEntry
from repro.math3d import Vec2


def make_entry(tag, writes_z):
    state = (
        RenderState.opaque_3d(cull_backface=False)
        if writes_z
        else RenderState.sprite_2d()
    )
    primitive = ScreenTriangle(
        xy=(Vec2(0, 0), Vec2(1, 0), Vec2(0, 1)),
        z=(0.5, 0.5, 0.5),
        attributes=(VertexAttributes(),) * 3,
        command_id=0,
        primitive_id=tag,
        state=state,
        signature_bytes=b"%d" % tag,
    )
    return DisplayListEntry(primitive=primitive, offset=tag, layer=0)


def place(display_list, entry, predicted_occluded, reorder=True):
    place_in_display_list(
        display_list,
        entry,
        writes_z=entry.primitive.writes_z,
        predicted_occluded=predicted_occluded,
        reorder_enabled=reorder,
    )


def tags(display_list):
    return [entry.offset for entry in display_list]


class TestAlgorithm1Cases:
    def test_visible_woz_goes_first(self):
        dl = DisplayList()
        place(dl, make_entry(1, True), predicted_occluded=False)
        assert tags(dl) == [1]
        assert not dl.second

    def test_occluded_woz_goes_second(self):
        dl = DisplayList()
        place(dl, make_entry(1, True), predicted_occluded=True)
        assert dl.second and not dl.first
        assert tags(dl) == [1]  # still rendered, just last

    def test_nwoz_promotes_second_list(self):
        dl = DisplayList()
        place(dl, make_entry(1, True), predicted_occluded=True)
        place(dl, make_entry(2, False), predicted_occluded=False)
        # The occluded WOZ must render before the NWOZ that followed it.
        assert tags(dl) == [1, 2]
        assert not dl.second

    def test_figure_4_example(self):
        """Figure 4: NWOZ batch, WOZ batch (mixed predictions), NWOZ
        batch, WOZ batch (mixed predictions)."""
        dl = DisplayList()
        # Batch 1: NWOZ primitives 1-2.
        place(dl, make_entry(1, False), False)
        place(dl, make_entry(2, False), False)
        # Batch 2: WOZ; 3 visible, 4 occluded.
        place(dl, make_entry(3, True), False)
        place(dl, make_entry(4, True), True)
        # Batch 3: NWOZ primitive 5 -> second list folds back first.
        place(dl, make_entry(5, False), False)
        # Batch 4: WOZ; 6 occluded, 7 visible.
        place(dl, make_entry(6, True), True)
        place(dl, make_entry(7, True), False)
        assert tags(dl) == [1, 2, 3, 4, 5, 7, 6]

    def test_reorder_disabled_is_submission_order(self):
        dl = DisplayList()
        place(dl, make_entry(1, True), True, reorder=False)
        place(dl, make_entry(2, False), False, reorder=False)
        place(dl, make_entry(3, True), True, reorder=False)
        assert tags(dl) == [1, 2, 3]
        assert not dl.second


class TestOrderProperties:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.booleans()),  # (writes_z, occluded)
            max_size=40,
        )
    )
    def test_multiset_preserved(self, specs):
        dl = DisplayList()
        for tag, (writes_z, occluded) in enumerate(specs):
            place(dl, make_entry(tag, writes_z), occluded and writes_z)
        assert sorted(tags(dl)) == list(range(len(specs)))

    @given(
        st.lists(
            st.tuples(st.booleans(), st.booleans()),
            max_size=40,
        )
    )
    def test_nwoz_order_and_woz_barriers_preserved(self, specs):
        """NWOZ primitives keep submission order, and every WOZ primitive
        submitted before an NWOZ is rendered before it (Algorithm 1's
        correctness condition for blending)."""
        dl = DisplayList()
        for tag, (writes_z, occluded) in enumerate(specs):
            place(dl, make_entry(tag, writes_z), occluded and writes_z)
        rendered = tags(dl)
        position = {tag: i for i, tag in enumerate(rendered)}
        nwoz_tags = [t for t, (wz, _) in enumerate(specs) if not wz]
        # NWOZ relative order preserved.
        assert [t for t in rendered if t in set(nwoz_tags)] == nwoz_tags
        # Every primitive submitted before an NWOZ renders before it.
        for nwoz_tag in nwoz_tags:
            for earlier in range(nwoz_tag):
                assert position[earlier] < position[nwoz_tag]
