"""Tests for the wired memory hierarchy."""

import numpy as np
import pytest

from repro import GPUConfig, MemoryModelError
from repro.memsys import BatchedMemorySystem, MemorySystem


@pytest.fixture(params=[MemorySystem, BatchedMemorySystem],
                ids=["scalar", "batched"])
def memory(request):
    return request.param(GPUConfig.default())


class TestVertexPath:
    def test_fetch_counts_and_forwards(self, memory):
        memory.fetch_vertex(0)
        assert memory.vertex_cache.accesses == 1
        assert memory.vertex_cache.misses >= 1
        assert memory.l2.accesses >= 1
        assert memory.dram.stats.read_bytes > 0

    def test_repeat_fetch_hits(self, memory):
        memory.fetch_vertex(0)
        misses_before = memory.vertex_cache.misses
        memory.fetch_vertex(0)
        assert memory.vertex_cache.misses == misses_before


class TestParameterBufferPath:
    def test_write_then_read(self, memory):
        memory.parameter_buffer_write(0, 144)
        memory.parameter_buffer_read(0, 144)
        assert memory.tile_cache.accesses == 2
        assert memory.tile_cache.hits >= 1  # read hits the written lines


class TestTexturePath:
    def test_empty_batch_is_noop(self, memory):
        memory.texture_batch(0, 256, np.array([]), np.array([]))
        assert memory.texture_caches[0].accesses == 0

    def test_batch_locality_collapses_to_unique_lines(self, memory):
        u = np.full(100, 0.5)
        v = np.full(100, 0.5)
        memory.texture_batch(0, 256, u, v, bilinear=False)
        cache = memory.texture_caches[0]
        # 100 fragments, one unique texel -> 1 miss, 99 extra hits.
        assert cache.misses == 1
        assert cache.hits == 99

    def test_bilinear_widens_footprint(self, memory):
        u = np.full(100, 0.5)
        v = np.full(100, 0.5)
        memory.texture_batch(0, 256, u, v, bilinear=True)
        cache = memory.texture_caches[0]
        # Filtering widens the *touched line set* (the base texel's line
        # plus the 2x2 footprint neighbor's line) but a bilinear sample
        # is still one access: repeat counts come from the 100 base
        # texels alone.  100 identical fragments -> 2 first-touch lines,
        # 99 repeat hits on the base line, nothing double-counted.
        assert cache.misses == 2
        assert cache.hits == 99
        assert cache.accesses == 101

    def test_bilinear_does_not_inflate_repeat_counts(self, memory):
        """The footprint concatenation must not feed the per-line repeat
        counts: with filtering on, a batch's hits can exceed the
        non-bilinear count only by the extra first-touch lines' hits,
        never by a doubling of the base counts."""
        u = np.full(64, 0.25)
        v = np.full(64, 0.25)
        memory.texture_batch(0, 256, u, v, samples_per_fragment=4,
                             bilinear=False)
        plain = memory.texture_caches[0].snapshot()
        memory.texture_caches[0].reset_stats()
        memory.texture_batch(1, 256, u, v, samples_per_fragment=4,
                             bilinear=True)
        filtered = memory.texture_caches[1].snapshot()
        # 64 fragments x 4 samples on one texel: 255 repeat hits either
        # way; bilinear adds exactly one extra first-touch line.
        assert plain["hits"] == 255
        assert filtered["hits"] == 255
        assert filtered["misses"] == plain["misses"] + 1

    def test_texture_id_selects_cache(self, memory):
        u = np.array([0.1])
        v = np.array([0.1])
        memory.texture_batch(2, 256, u, v)
        assert memory.texture_caches[2].accesses >= 1
        assert memory.texture_caches[0].accesses == 0

    def test_spread_coordinates_touch_many_lines(self, memory):
        rng = np.random.default_rng(0)
        u = rng.random(256)
        v = rng.random(256)
        memory.texture_batch(1, 1024, u, v)
        assert memory.texture_caches[1].misses > 5

    def test_mip_selection_tames_sparse_batches(self, memory):
        """A batch whose fragments span the whole texture reads a
        coarse mip level, touching far fewer lines than base-level
        point sampling would."""
        rng = np.random.default_rng(1)
        u = rng.random(64)
        v = rng.random(64)
        memory.texture_batch(1, 1024, u, v)
        # Base level point sampling would touch up to 64 distinct lines;
        # the coarse level collapses them.
        assert memory.texture_caches[1].misses < 40

    def test_mip_level_zero_for_dense_batches(self, memory):
        level = memory._select_mip_level(
            256, np.linspace(0.5, 0.52, 100), np.linspace(0.5, 0.52, 100)
        )
        assert level == 0

    def test_mip_level_grows_with_sparsity(self, memory):
        dense = memory._select_mip_level(
            1024, np.linspace(0.4, 0.41, 256), np.linspace(0.4, 0.41, 256)
        )
        sparse = memory._select_mip_level(
            1024, np.linspace(0.0, 1.0, 16), np.linspace(0.0, 1.0, 16)
        )
        assert sparse > dense


class TestFramebufferPath:
    def test_flush_is_dram_write(self, memory):
        memory.framebuffer_flush(1024)
        assert memory.dram.stats.write_bytes == 1024

    def test_load_is_dram_read(self, memory):
        memory.framebuffer_load(1024)
        assert memory.dram.stats.read_bytes == 1024

    def test_invalid_sizes(self, memory):
        with pytest.raises(MemoryModelError):
            memory.framebuffer_flush(0)
        with pytest.raises(MemoryModelError):
            memory.framebuffer_load(-1)


class TestSnapshotAndReset:
    def test_snapshot_has_all_units(self, memory):
        snap = memory.snapshot()
        assert {"vertex", "tile", "l2", "dram"} <= set(snap)
        assert {"texture0", "texture1", "texture2", "texture3"} <= set(snap)

    def test_reset_clears_counters_not_contents(self, memory):
        memory.fetch_vertex(0)
        memory.reset_stats()
        assert memory.vertex_cache.accesses == 0
        assert memory.dram.stats.total_bytes == 0
        # Cache contents survive: same vertex now hits.
        memory.fetch_vertex(0)
        assert memory.vertex_cache.misses == 0
