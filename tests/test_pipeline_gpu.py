"""Tests for the GPU top level: modes, feature wiring, result plumbing."""

import numpy as np
import pytest

from repro import (
    ConfigError,
    GPU,
    GPUConfig,
    PipelineError,
    PipelineFeatures,
    PipelineMode,
)


class TestFeatures:
    def test_mode_presets(self):
        assert PipelineMode.BASELINE.features() == PipelineFeatures()
        re = PipelineMode.RE.features()
        assert re.rendering_elimination and not re.evr_hardware
        evr = PipelineMode.EVR.features()
        assert evr.rendering_elimination
        assert evr.evr_hardware and evr.evr_reorder and evr.evr_signature_filter
        reorder_only = PipelineMode.EVR_REORDER_ONLY.features()
        assert reorder_only.evr_reorder
        assert not reorder_only.rendering_elimination
        oracle = PipelineMode.ORACLE.features()
        assert oracle.oracle_z and oracle.oracle_redundancy

    def test_dependency_validation(self):
        with pytest.raises(ConfigError):
            PipelineFeatures(evr_reorder=True)
        with pytest.raises(ConfigError):
            PipelineFeatures(evr_signature_filter=True, evr_hardware=True)
        with pytest.raises(ConfigError):
            PipelineFeatures(evr_signature_filter=True,
                             rendering_elimination=True)


class TestGPUWiring:
    def test_baseline_has_no_optional_structures(self, tiny_config):
        gpu = GPU(tiny_config, PipelineMode.BASELINE)
        assert gpu.re is None
        assert gpu.predictor is None
        assert gpu.lgt is None
        assert gpu.comparator is None

    def test_evr_has_all_structures(self, tiny_config):
        gpu = GPU(tiny_config, PipelineMode.EVR)
        assert gpu.re is not None
        assert gpu.re.filter_occluded
        assert gpu.predictor is not None
        assert gpu.lgt is not None

    def test_re_mode_has_no_evr_structures(self, tiny_config):
        gpu = GPU(tiny_config, PipelineMode.RE)
        assert gpu.re is not None
        assert not gpu.re.filter_occluded
        assert gpu.predictor is None

    def test_accepts_features_directly(self, tiny_config):
        gpu = GPU(tiny_config, PipelineFeatures(rendering_elimination=True))
        assert gpu.re is not None


class TestRunResult:
    def test_render_stream_collects_all_frames(self, tiny_config,
                                               static_2d_stream):
        result = GPU(tiny_config, PipelineMode.BASELINE).render_stream(
            static_2d_stream
        )
        assert len(result.frames) == tiny_config.frames
        assert [fr.index for fr in result.frames] == list(
            range(tiny_config.frames)
        )

    def test_image_shape(self, tiny_config, static_2d_stream):
        result = GPU(tiny_config, PipelineMode.BASELINE).render_stream(
            static_2d_stream
        )
        assert result.frames[0].image.shape == (
            tiny_config.screen_height, tiny_config.screen_width, 4
        )

    def test_warmup_excluded_from_totals(self, tiny_config,
                                         static_2d_stream):
        result = GPU(tiny_config, PipelineMode.RE).render_stream(
            static_2d_stream
        )
        steady = result.total_stats(warmup=2)
        # Static scene: every steady frame skips all tiles.
        assert steady.tiles_skipped == steady.tiles_total
        all_frames = result.total_stats(warmup=0)
        assert all_frames.tiles_skipped < all_frames.tiles_total

    def test_warmup_larger_than_run_uses_all_frames(self, tiny_config,
                                                    static_2d_stream):
        result = GPU(tiny_config, PipelineMode.BASELINE).render_stream(
            static_2d_stream
        )
        assert result.total_stats(warmup=99).tiles_total > 0

    def test_cycles_positive_and_split(self, tiny_config, static_2d_stream):
        result = GPU(tiny_config, PipelineMode.BASELINE).render_stream(
            static_2d_stream
        )
        cycles = result.total_cycles()
        assert cycles.geometry > 0
        assert cycles.raster > 0
        assert cycles.total == cycles.geometry + cycles.raster

    def test_energy_positive(self, tiny_config, static_2d_stream):
        result = GPU(tiny_config, PipelineMode.BASELINE).render_stream(
            static_2d_stream
        )
        assert result.total_energy().total > 0

    def test_merged_snapshot_sums(self, tiny_config, static_2d_stream):
        result = GPU(tiny_config, PipelineMode.BASELINE).render_stream(
            static_2d_stream
        )
        frame = result.frames[0]
        merged = frame.merged_snapshot()
        assert merged["dram"]["write_bytes"] == (
            frame.geometry_snapshot["dram"]["write_bytes"]
            + frame.raster_snapshot["dram"]["write_bytes"]
        )

    def test_redundant_tile_rate_baseline_zero(self, tiny_config,
                                               static_2d_stream):
        result = GPU(tiny_config, PipelineMode.BASELINE).render_stream(
            static_2d_stream
        )
        assert result.redundant_tile_rate() == 0.0

    def test_redundant_tile_rate_oracle_uses_comparator(self, tiny_config,
                                                        static_2d_stream):
        result = GPU(tiny_config, PipelineMode.ORACLE).render_stream(
            static_2d_stream
        )
        assert result.redundant_tile_rate() == 1.0


class TestFrameAccounting:
    def test_geometry_raster_snapshots_disjoint(self, tiny_config,
                                                static_2d_stream):
        result = GPU(tiny_config, PipelineMode.BASELINE).render_stream(
            static_2d_stream
        )
        frame = result.frames[0]
        # Vertex traffic only in geometry phase; texture only in raster.
        assert frame.geometry_snapshot["vertex"]["accesses"] > 0
        assert frame.raster_snapshot["vertex"]["accesses"] == 0
        assert frame.geometry_snapshot["texture0"]["accesses"] == 0
