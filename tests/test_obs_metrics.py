"""Tests for the metrics registry, derived EVR telemetry and exporters."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.engine.instrumentation import Instrumentation
from repro.obs import MetricsRegistry, global_registry
from repro.obs.metrics import (
    Histogram,
    flatten_record,
    fvp_confusion_matrix,
    re_ratios,
    write_csv_records,
    write_jsonl,
)
from repro.timing import FrameStats


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(4)
        assert registry.counter("hits") is counter  # get-or-create
        assert counter.value == 5

    def test_gauge_last_value_wins(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_summary(self):
        histogram = Histogram()
        for value in (2.0, 8.0, 5.0):
            histogram.observe(value)
        assert histogram.summary() == {
            "count": 3, "sum": 15.0, "min": 2.0, "max": 8.0, "mean": 5.0,
        }

    def test_empty_histogram_summary_is_finite(self):
        assert Histogram().summary() == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
        }

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(1)
        registry.histogram("c").observe(1)
        registry.reset()
        assert registry.as_dict() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_global_registry_is_shared(self):
        assert global_registry() is global_registry()


class TestIngestion:
    def test_ingest_stats_prefixes_counters(self):
        registry = MetricsRegistry()
        stats = FrameStats(tiles_total=12, tiles_skipped=3)
        registry.ingest_stats(stats)
        assert registry.counter("stats.tiles_total").value == 12
        assert registry.counter("stats.tiles_skipped").value == 3

    def test_ingest_instrumentation(self):
        registry = MetricsRegistry()
        record = Instrumentation(
            units={"l2": {"hits": 7, "misses": 2}}, dram_cycles=12.5
        )
        registry.ingest_instrumentation(record)
        assert registry.counter("memory.l2.hits").value == 7
        assert registry.counter("memory.dram_cycles").value == 12.5


class TestConfusionMatrix:
    def test_counts_and_rates(self):
        stats = FrameStats(
            mispredicted_visible=2,
            predicted_occluded_correct=8,
            predicted_visible_hidden=5,
            predicted_visible_correct=85,
        )
        matrix = fvp_confusion_matrix(stats)
        assert matrix["predicted_occluded_actually_visible"] == 2
        assert matrix["predicted_occluded_actually_occluded"] == 8
        assert matrix["validated"] == 100
        assert matrix["poison_rate"] == pytest.approx(0.2)
        assert matrix["accuracy"] == pytest.approx(0.93)

    def test_no_validated_predictions(self):
        matrix = fvp_confusion_matrix(FrameStats())
        assert matrix["validated"] == 0
        assert matrix["poison_rate"] == 0.0
        assert matrix["accuracy"] == 0.0

    def test_re_ratios(self):
        stats = FrameStats(
            tiles_total=20, tiles_skipped=5, signature_checks=20,
            signature_updates=30, signature_skips=10,
        )
        ratios = re_ratios(stats)
        assert ratios["skip_rate"] == pytest.approx(0.25)
        assert ratios["check_rate"] == pytest.approx(1.0)
        assert ratios["signature_filter_rate"] == pytest.approx(0.25)

    def test_re_ratios_empty_stats(self):
        ratios = re_ratios(FrameStats())
        assert ratios["skip_rate"] == 0.0
        assert ratios["signature_filter_rate"] == 0.0


class TestExporters:
    RECORDS = [
        {"record": "frame", "frame": 0, "re": {"skip_rate": 0.25}},
        {"record": "run", "frames": 3, "stats": {"tiles_total": 60}},
    ]

    def test_flatten_record(self):
        flat = flatten_record(self.RECORDS[0])
        assert flat == {"record": "frame", "frame": 0,
                        "re.skip_rate": 0.25}

    def test_jsonl_round_trip(self):
        buffer = io.StringIO()
        write_jsonl(self.RECORDS, buffer)
        lines = buffer.getvalue().splitlines()
        assert [json.loads(line) for line in lines] == self.RECORDS

    def test_jsonl_to_path(self, tmp_path):
        path = str(tmp_path / "metrics.jsonl")
        write_jsonl(self.RECORDS, path)
        with open(path) as handle:
            assert len(handle.readlines()) == 2

    def test_csv_union_header(self):
        buffer = io.StringIO()
        write_csv_records(self.RECORDS, buffer)
        rows = list(csv.DictReader(io.StringIO(buffer.getvalue())))
        assert set(rows[0]) == {
            "record", "frame", "re.skip_rate", "frames",
            "stats.tiles_total",
        }
        assert rows[0]["re.skip_rate"] == "0.25"
        assert rows[0]["frames"] == ""  # missing keys stay blank
        assert rows[1]["stats.tiles_total"] == "60"
