"""Tests for the checkpoint journal and ``--resume`` semantics.

The contract under test: a suite run killed at any instant leaves a
journal describing exactly the cells that finished, and a resumed run
replays those cells *bit-identically* while recomputing only the rest.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.config import GPUConfig
from repro.pipeline import PipelineMode
from repro.harness.runner import RunMetrics, SuiteRunner, failed_metrics
from repro.resilience import RetryPolicy, RunJournal, ScriptedFaultPlan

CONFIG = GPUConfig.tiny(frames=2)
FAST = RetryPolicy(max_attempts=2, backoff_base=0.001, backoff_max=0.002)


class TestRunJournal:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with RunJournal(path, "suite-a") as journal:
            journal.record_ok("ata", "evr", {"energy_joules": 1.25e-05})
            journal.record_failed("hop", "re", "worker died")
        entries = RunJournal(path, "suite-a").load()
        assert entries[("ata", "evr")]["status"] == "ok"
        assert entries[("ata", "evr")]["metrics"] == {
            "energy_joules": 1.25e-05
        }
        assert entries[("hop", "re")] == {
            "record": "result", "benchmark": "hop", "mode": "re",
            "status": "failed", "error": "worker died",
        }

    def test_floats_roundtrip_exactly(self, tmp_path):
        # JSON float repr round-trips in Python — the property that
        # makes journal-resumed metrics bit-identical.
        value = 6.222743129999999e-05
        path = str(tmp_path / "journal.jsonl")
        with RunJournal(path, "k") as journal:
            journal.record_ok("b", "m", {"x": value})
        loaded = RunJournal(path, "k").load()[("b", "m")]["metrics"]["x"]
        assert loaded == value

    def test_later_records_win(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with RunJournal(path, "k") as journal:
            journal.record_failed("b", "m", "first pass died")
            journal.record_ok("b", "m", {"x": 1.0})
        assert RunJournal(path, "k").load()[("b", "m")]["status"] == "ok"

    def test_missing_file_loads_empty(self, tmp_path):
        journal = RunJournal(str(tmp_path / "absent.jsonl"), "k")
        assert journal.load() == {}

    def test_foreign_suite_key_ignored_and_overwritten(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with RunJournal(path, "suite-a") as journal:
            journal.record_ok("ata", "evr", {"x": 1.0})
        other = RunJournal(path, "suite-b")
        assert other.load() == {}  # stale checkpoints never leak
        other.open()  # a mismatched journal is rewritten, not appended
        other.close()
        assert RunJournal(path, "suite-a").load() == {}
        assert RunJournal(path, "suite-b").load() == {}

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with RunJournal(path, "k") as journal:
            journal.record_ok("ata", "evr", {"x": 1.0})
            journal.record_ok("hop", "re", {"x": 2.0})
        with open(path, "a") as handle:
            handle.write('{"record": "result", "benchmark": "tru')  # SIGKILL
        entries = RunJournal(path, "k").load()
        assert set(entries) == {("ata", "evr"), ("hop", "re")}

    def test_resume_appends_to_matching_journal(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with RunJournal(path, "k") as journal:
            journal.record_ok("ata", "evr", {"x": 1.0})
        journal = RunJournal(path, "k")
        journal.open(fresh=False)
        journal.record_ok("hop", "re", {"x": 2.0})
        journal.close()
        assert len(RunJournal(path, "k").load()) == 2

    def test_fresh_open_truncates(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with RunJournal(path, "k") as journal:
            journal.record_ok("ata", "evr", {"x": 1.0})
        journal = RunJournal(path, "k")
        journal.open(fresh=True)
        journal.close()
        assert RunJournal(path, "k").load() == {}


class TestSuiteRunnerResume:
    def _runner(self, tmp_path, resume, **kwargs):
        return SuiteRunner(CONFIG, jobs=1, retry_policy=FAST,
                           journal_dir=str(tmp_path), resume=resume,
                           **kwargs)

    def test_interrupted_then_resumed_is_bit_identical(self, tmp_path):
        # Reference: one uninterrupted sweep (no journal, no resilience).
        with SuiteRunner(CONFIG) as runner:
            reference = runner.run_many(
                ["hop"], [PipelineMode.BASELINE, PipelineMode.EVR]
            )
        # Pass 1 "dies" after completing only the BASELINE cell.
        with self._runner(tmp_path, resume=False) as runner:
            runner.run_many(["hop"], [PipelineMode.BASELINE])
        # Pass 2 resumes: replays BASELINE, computes only EVR.
        with self._runner(tmp_path, resume=True) as runner:
            resumed = runner.run_many(
                ["hop"], [PipelineMode.BASELINE, PipelineMode.EVR]
            )
            assert runner.journal_hits == 1
            assert runner.cache_misses == 1
            assert "journal: 1 cells resumed" in runner.cache_summary()
        assert resumed == reference

    def test_resume_skips_all_finished_work(self, tmp_path):
        modes = [PipelineMode.BASELINE, PipelineMode.RE]
        with self._runner(tmp_path, resume=False) as runner:
            first = runner.run_many(["hop"], modes)
        with self._runner(tmp_path, resume=True) as runner:
            second = runner.run_many(["hop"], modes)
            assert runner.journal_hits == 2
            assert runner.cache_misses == 0
        assert second == first

    def test_without_resume_journal_is_restarted(self, tmp_path):
        with self._runner(tmp_path, resume=False) as runner:
            runner.run_many(["hop"], [PipelineMode.BASELINE])
        with self._runner(tmp_path, resume=False) as runner:
            runner.run_many(["hop"], [PipelineMode.BASELINE])
            assert runner.journal_hits == 0
            assert runner.cache_misses == 1

    def test_config_change_invalidates_journal(self, tmp_path):
        with self._runner(tmp_path, resume=False) as runner:
            runner.run_many(["hop"], [PipelineMode.BASELINE])
        other = GPUConfig.tiny(frames=3)
        with SuiteRunner(other, jobs=1, retry_policy=FAST,
                         journal_dir=str(tmp_path), resume=True) as runner:
            runner.run_many(["hop"], [PipelineMode.BASELINE])
            assert runner.journal_hits == 0


class TestGracefulDegradation:
    def test_failed_cell_becomes_nan_placeholder(self, tmp_path):
        # Suite job 0 fails on every permitted attempt.
        plan = ScriptedFaultPlan({("1:0", attempt): "raise"
                                  for attempt in (1, 2)})
        with SuiteRunner(CONFIG, jobs=1, retry_policy=FAST, fault_plan=plan,
                         journal_dir=str(tmp_path)) as runner:
            results = runner.run_many(
                ["hop"], [PipelineMode.BASELINE, PipelineMode.EVR]
            )
            assert len(runner.failures) == 1
            assert "1 cells FAILED" in runner.cache_summary()
            summary = runner.metrics_records()[-1]
            assert summary["failures"] == 1
            assert summary["failed_cells"] == ["hop:baseline"]
        failed = results[("hop", "baseline")]
        assert failed.failed
        assert math.isnan(failed.energy_joules)
        assert math.isnan(failed.energy_breakdown["dram"])  # any component
        healthy = results[("hop", "evr")]
        assert not healthy.failed

    def test_failed_cells_are_retried_on_resume(self, tmp_path):
        plan = ScriptedFaultPlan({("1:0", attempt): "raise"
                                  for attempt in (1, 2)})
        with SuiteRunner(CONFIG, jobs=1, retry_policy=FAST, fault_plan=plan,
                         journal_dir=str(tmp_path)) as runner:
            runner.run_many(["hop"], [PipelineMode.BASELINE])
            assert runner.failures
        # The resumed pass runs without a fault plan (the transient
        # condition cleared) and must recompute the failed cell.
        with SuiteRunner(CONFIG, jobs=1, retry_policy=FAST,
                         journal_dir=str(tmp_path), resume=True) as runner:
            results = runner.run_many(["hop"], [PipelineMode.BASELINE])
            assert runner.journal_hits == 0  # failed cells are not replayed
            assert not runner.failures
        assert not results[("hop", "baseline")].failed

    def test_failed_metrics_shape(self):
        metrics = failed_metrics("hop", PipelineMode.EVR, "boom")
        assert isinstance(metrics, RunMetrics)
        assert metrics.error == "boom"
        assert math.isnan(metrics.total_cycles)
        assert math.isnan(metrics.energy_breakdown["anything"])

    def test_journal_records_failure(self, tmp_path):
        plan = ScriptedFaultPlan({("1:0", attempt): "raise"
                                  for attempt in (1, 2)})
        with SuiteRunner(CONFIG, jobs=1, retry_policy=FAST, fault_plan=plan,
                         journal_dir=str(tmp_path)) as runner:
            runner.run_many(["hop"], [PipelineMode.BASELINE])
            journal_path = runner._journal.path
        records = [json.loads(line) for line in open(journal_path)]
        failed = [r for r in records if r.get("status") == "failed"]
        assert len(failed) == 1
        assert (failed[0]["benchmark"], failed[0]["mode"]) == (
            "hop", "baseline"
        )
