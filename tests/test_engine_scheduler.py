"""Determinism of the execution engine across schedulers.

The entire design of :mod:`repro.engine` rests on one property: which
scheduler runs the tile jobs must be unobservable in the results.  These
tests pin it directly — serial and process-pool executions of the same
run must produce bit-identical images and equal metrics.
"""

from __future__ import annotations

import os

import pytest

from repro.config import GPUConfig, default_jobs
from repro.engine import (
    ProcessPoolScheduler,
    SerialScheduler,
    make_scheduler,
)
from repro.harness.runner import run_benchmark
from repro.pipeline import GPU, PipelineMode
from repro.scenes import benchmark_stream

CONFIG = GPUConfig.tiny(frames=3)
MODES = (PipelineMode.BASELINE, PipelineMode.RE, PipelineMode.EVR)

# One 3D benchmark (exercises depth, layers, FVP prediction) and one 2D
# benchmark (UI layers, blending) — the two scene families of Table III.
BENCHMARKS = ("ata", "hop")


def _render(benchmark: str, mode: PipelineMode, scheduler):
    stream = benchmark_stream(benchmark, CONFIG)
    gpu = GPU(CONFIG, mode, scheduler=scheduler)
    return gpu.render_stream(stream)


class TestSchedulerDeterminism:
    @pytest.mark.parametrize("alias", BENCHMARKS)
    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_images_bit_identical(self, alias, mode):
        serial = _render(alias, mode, SerialScheduler())
        with ProcessPoolScheduler(2) as pool:
            parallel = _render(alias, mode, pool)
        assert len(serial.frames) == len(parallel.frames)
        for frame_s, frame_p in zip(serial.frames, parallel.frames):
            assert frame_s.image.tobytes() == frame_p.image.tobytes()

    @pytest.mark.parametrize("alias", BENCHMARKS)
    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_stats_and_memory_equal(self, alias, mode):
        serial = _render(alias, mode, SerialScheduler())
        with ProcessPoolScheduler(2) as pool:
            parallel = _render(alias, mode, pool)
        for frame_s, frame_p in zip(serial.frames, parallel.frames):
            assert frame_s.stats.as_dict() == frame_p.stats.as_dict()
            assert frame_s.merged_snapshot() == frame_p.merged_snapshot()
            assert frame_s.geometry.dram_cycles == frame_p.geometry.dram_cycles
            assert frame_s.raster.dram_cycles == frame_p.raster.dram_cycles

    def test_run_metrics_equal(self):
        with ProcessPoolScheduler(2) as pool:
            for benchmark in BENCHMARKS:
                serial = run_benchmark(benchmark, PipelineMode.EVR, CONFIG)
                parallel = run_benchmark(
                    benchmark, PipelineMode.EVR, CONFIG, scheduler=pool
                )
                assert serial == parallel


class TestSchedulerProtocol:
    def test_serial_map_preserves_order(self):
        scheduler = SerialScheduler()
        assert scheduler.map(lambda x: x * x, [3, 1, 2]) == [9, 1, 4]
        scheduler.close()  # no-op, must not raise

    def test_pool_map_preserves_order(self):
        with ProcessPoolScheduler(2) as pool:
            assert pool.map(_square, list(range(8))) == [
                n * n for n in range(8)
            ]

    def test_pool_rejects_single_worker(self):
        with pytest.raises(ValueError):
            ProcessPoolScheduler(1)

    def test_make_scheduler_dispatch(self):
        assert isinstance(make_scheduler(None), SerialScheduler)
        assert isinstance(make_scheduler(0), SerialScheduler)
        assert isinstance(make_scheduler(1), SerialScheduler)
        pool = make_scheduler(2)
        assert isinstance(pool, ProcessPoolScheduler)
        assert pool.jobs == 2
        pool.close()

    def test_make_scheduler_negative_uses_all_cores(self):
        pool = make_scheduler(-1)
        try:
            if (os.cpu_count() or 1) >= 2:
                assert isinstance(pool, ProcessPoolScheduler)
                assert pool.jobs == os.cpu_count()
            else:  # single-core machine: all cores == serial
                assert isinstance(pool, SerialScheduler)
        finally:
            pool.close()

    def test_default_jobs_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        assert default_jobs(4) == 4
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        assert default_jobs(2) == 2  # CLI wins over env
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        assert default_jobs() == 1


class TestSchedulerLifecycle:
    """Schedulers are context managers and must not leak executors."""

    def test_serial_context_manager(self):
        with SerialScheduler() as scheduler:
            assert scheduler.map(_square, [2]) == [4]

    def test_pool_context_closes_executor(self):
        with ProcessPoolScheduler(2) as pool:
            pool.map(_square, [1, 2, 3])
            assert pool._executor is not None
        assert pool._executor is None

    def test_pool_context_closes_on_exception(self):
        pool = ProcessPoolScheduler(2)
        with pytest.raises(RuntimeError):
            with pool:
                pool.map(_square, [1, 2, 3])
                raise RuntimeError("boom")
        assert pool._executor is None

    def test_close_is_idempotent(self):
        pool = ProcessPoolScheduler(2)
        pool.map(_square, [1, 2, 3])
        pool.close()
        pool.close()
        assert pool._executor is None

    def test_map_after_close_recreates_executor(self):
        pool = ProcessPoolScheduler(2)
        try:
            pool.map(_square, [1, 2, 3])
            pool.close()
            assert pool.map(_square, [4, 5, 6]) == [16, 25, 36]
        finally:
            pool.close()
        assert pool._executor is None



class TestSchedulerShutdownSafety:
    """Satellite hardening: close()/terminate() must be safe in every
    lifecycle state, including an executor that never started."""

    def test_close_before_any_map(self):
        pool = ProcessPoolScheduler(2)
        pool.close()  # executor never created; must not raise
        pool.close()
        assert pool._executor is None

    def test_terminate_before_any_map(self):
        pool = ProcessPoolScheduler(2)
        pool.terminate()
        pool.terminate()
        assert pool._executor is None

    def test_terminate_kills_live_pool(self):
        pool = ProcessPoolScheduler(2)
        assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
        processes = list(pool._executor._processes.values())
        pool.terminate()
        assert pool._executor is None
        for process in processes:
            process.join(timeout=5.0)
            assert not process.is_alive()
        # The scheduler stays usable: a new executor is built on demand.
        assert pool.map(_square, [4, 5]) == [16, 25]
        pool.close()

    def test_close_survives_shutdown_failure(self):
        pool = ProcessPoolScheduler(2)

        class _ExplodingExecutor:
            def shutdown(self, *args, **kwargs):
                raise RuntimeError("shutdown failed")

        pool._executor = _ExplodingExecutor()
        with pytest.raises(RuntimeError):
            pool.close()
        # The reference was dropped first: no half-closed executor.
        assert pool._executor is None
        pool.close()  # and close stays idempotent afterwards

    def test_del_tolerates_unconstructed_instance(self):
        # __del__ on an instance whose __init__ raised must not error.
        pool = ProcessPoolScheduler.__new__(ProcessPoolScheduler)
        pool.__del__()


def _square(n: int) -> int:
    return n * n
