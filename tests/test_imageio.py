"""Tests for PPM export and image utilities."""

import numpy as np
import pytest

from repro.imageio import frame_difference, to_rgb8, write_ppm


class TestToRGB8:
    def test_conversion_and_clipping(self):
        image = np.zeros((2, 2, 4))
        image[0, 0] = [1.5, -0.2, 0.5, 1.0]
        rgb = to_rgb8(image)
        assert rgb.dtype == np.uint8
        assert rgb.shape == (2, 2, 3)
        assert tuple(rgb[0, 0]) == (255, 0, 128)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            to_rgb8(np.zeros((4, 4)))


class TestWritePPM:
    def test_roundtrip_header_and_size(self, tmp_path):
        image = np.random.default_rng(0).random((6, 8, 4))
        path = tmp_path / "frame.ppm"
        write_ppm(path, image)
        data = path.read_bytes()
        assert data.startswith(b"P6\n8 6\n255\n")
        header_len = len(b"P6\n8 6\n255\n")
        assert len(data) == header_len + 6 * 8 * 3

    def test_accepts_uint8(self, tmp_path):
        image = np.zeros((2, 2, 3), dtype=np.uint8)
        write_ppm(tmp_path / "u8.ppm", image)
        assert (tmp_path / "u8.ppm").exists()


class TestFrameDifference:
    def test_difference(self):
        a = np.zeros((2, 2, 4))
        b = np.ones((2, 2, 4)) * 0.25
        assert np.allclose(frame_difference(a, b), 0.25)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            frame_difference(np.zeros((2, 2, 4)), np.zeros((3, 2, 4)))
