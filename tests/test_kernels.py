"""Tests for the kernel backend seam (``repro.kernels``).

The load-bearing property is *bit-identity*: the batched numpy backend
must produce byte-for-byte the same framebuffers, statistics and
simulated memory traffic as the scalar reference, because disk-cache
entries are keyed by ``spec_hash()`` — which deliberately excludes the
backend — and are therefore shared across backends.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import GPU, GPUConfig, PipelineMode
from repro.engine.diskcache import run_cache_key
from repro.harness.runner import RunMetrics, SuiteRunner
from repro.kernels import (
    DEFAULT_BACKEND,
    available_backends,
    normalize_backend,
    resolve_backend,
)
from repro.kernels.tile_geometry import (
    pixel_centers,
    tile_origin,
    valid_mask,
)
from repro.spec import RunSpec, SpecError

from tests.test_fuzz_scenes import CONFIG as FUZZ_CONFIG
from tests.test_fuzz_scenes import build_stream, rect_specs


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_available_backends(self):
        names = available_backends()
        assert "python" in names
        assert "numpy" in names
        assert DEFAULT_BACKEND in names

    @pytest.mark.parametrize("alias, canonical", [
        ("python", "python"),
        ("scalar", "python"),
        ("reference", "python"),
        ("numpy", "numpy"),
        ("batched", "numpy"),
        ("NumPy", "numpy"),
    ])
    def test_normalize_aliases(self, alias, canonical):
        assert normalize_backend(alias) == canonical

    def test_normalize_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            normalize_backend("cuda")

    def test_resolve_returns_module_with_kernel_api(self):
        for name in available_backends():
            module = resolve_backend(name)
            for attr in ("prepare_tile", "depth_test", "depth_write",
                         "color_write", "color_blend", "layer_write",
                         "overdraw_update", "taint_set", "taint_or"):
                assert hasattr(module, attr), f"{name} lacks {attr}"

    def test_spec_normalizes_backend(self):
        spec = RunSpec.from_config(GPUConfig.tiny(frames=1))
        sched = dataclasses.replace(spec.scheduler, backend="batched")
        assert sched.backend == "numpy"
        with pytest.raises(SpecError):
            dataclasses.replace(spec.scheduler, backend="fortran")


# ---------------------------------------------------------------------------
# Tile geometry helpers
# ---------------------------------------------------------------------------

class TestTileGeometry:
    def test_tile_origin(self):
        assert tile_origin(0, 0, 16, 16) == (0, 0)
        assert tile_origin(3, 2, 16, 16) == (48, 32)
        assert tile_origin(1, 1, 8, 4) == (8, 4)

    def test_valid_mask_interior_tile_is_all_true(self):
        mask = valid_mask(0, 0, 16, 16, 64, 48)
        assert mask.shape == (16, 16)
        assert mask.all()

    def test_valid_mask_clips_screen_edge(self):
        # 20-wide screen with 16-wide tiles: second tile has 4 valid cols.
        mask = valid_mask(1, 0, 16, 16, 20, 16)
        assert mask[:, :4].all()
        assert not mask[:, 4:].any()

    def test_valid_mask_is_cached_and_readonly(self):
        a = valid_mask(0, 0, 16, 16, 64, 48)
        b = valid_mask(0, 0, 16, 16, 64, 48)
        assert a is b
        with pytest.raises(ValueError):
            a[0, 0] = False

    def test_pixel_centers(self):
        px, py = pixel_centers(16, 32, 4, 2)
        np.testing.assert_array_equal(px, [16.5, 17.5, 18.5, 19.5])
        np.testing.assert_array_equal(py, [32.5, 33.5])
        assert not px.flags.writeable


# ---------------------------------------------------------------------------
# prepare_tile semantics shared by both backends
# ---------------------------------------------------------------------------

class TestPrepareTile:
    def _one_batch(self, backend):
        config = GPUConfig.tiny(frames=1)
        from repro.scenes import benchmark_stream
        gpu = GPU(config, PipelineMode.BASELINE, backend=backend)
        result = gpu.render_stream(benchmark_stream("tib", config))
        assert result.frames  # smoke: the pipeline ran through the seam

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_pipeline_runs_through_backend(self, backend):
        self._one_batch(backend)

    def test_empty_display_list(self):
        for name in available_backends():
            module = resolve_backend(name)
            valid = valid_mask(0, 0, 16, 16, 64, 48)
            batch = module.prepare_tile([], 0, 0, 16, 16, valid)
            # No entries: nothing to ask for; the object must still exist.
            assert batch is not None

    def test_numpy_fragments_memoized(self):
        """The depth-prepass pattern asks twice; second hit is cached."""
        from repro import RenderState
        from repro.geom import ScreenTriangle, VertexAttributes
        from repro.math3d import Vec2, Vec4

        triangle = ScreenTriangle(
            xy=(Vec2(-10, -10), Vec2(50, -10), Vec2(-10, 50)),
            z=(0.5, 0.5, 0.5),
            attributes=tuple(VertexAttributes(color=Vec4(1, 1, 1, 1))
                             for _ in range(3)),
            command_id=0, primitive_id=0,
            state=RenderState.sprite_2d(), signature_bytes=b"",
        )
        entries = [type("E", (), {"primitive": triangle})()]

        module = resolve_backend("numpy")
        valid = valid_mask(0, 0, 16, 16, 64, 48)
        batch = module.prepare_tile(entries, 0, 0, 16, 16, valid)
        first = batch.fragments(0)
        assert first is not None and first.count == 256
        assert batch.fragments(0) is first  # memoized


# ---------------------------------------------------------------------------
# The einsum interpolation guard
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=1, max_value=40))
@settings(max_examples=50, deadline=None)
def test_einsum_matches_left_associated_sum(seed, entries):
    """The batched backend interpolates all channels with one einsum.

    Bit-identity with the scalar ``b0*a0 + b1*a1 + b2*a2`` is only safe
    because einsum contracts k in index order with a running scalar sum
    and no FMA.  This guard fails loudly if a numpy upgrade ever breaks
    that (np.matmul, for instance, does NOT satisfy it).
    """
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((entries, 3, 16, 16))
    attrs = rng.standard_normal((entries, 3, 7))
    via_einsum = np.einsum("lkhw,lkc->lchw", w, attrs)
    manual = (w[:, 0, None] * attrs[:, 0, :, None, None]
              + w[:, 1, None] * attrs[:, 1, :, None, None]
              + w[:, 2, None] * attrs[:, 2, :, None, None])
    np.testing.assert_array_equal(via_einsum, manual)


# ---------------------------------------------------------------------------
# Cross-backend bit-identity on fuzzed scenes
# ---------------------------------------------------------------------------

def _render(specs, mode, backend):
    stream = build_stream(specs)
    return GPU(FUZZ_CONFIG, mode, backend=backend).render_stream(stream)


@given(st.lists(rect_specs(), min_size=1, max_size=6))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_backends_bit_identical_on_random_scenes(specs):
    """Scalar and numpy backends agree bit-for-bit: images, stats and
    simulated memory-traffic counters (the disk cache depends on it)."""
    for mode in (PipelineMode.BASELINE, PipelineMode.EVR,
                 PipelineMode.ORACLE):
        scalar = _render(specs, mode, "python")
        batched = _render(specs, mode, "numpy")
        for index, (a, b) in enumerate(zip(scalar.frames, batched.frames)):
            np.testing.assert_array_equal(
                a.image, b.image,
                err_msg=f"{mode.value} frame {index} image diverged")
            assert a.stats == b.stats, f"{mode.value} frame {index} stats"
            assert a.geometry.units == b.geometry.units
            assert a.raster.units == b.raster.units
        assert (scalar.total_stats(warmup=0)
                == batched.total_stats(warmup=0))


# ---------------------------------------------------------------------------
# Backend never splits the run cache
# ---------------------------------------------------------------------------

class TestCrossBackendCache:
    def test_spec_hash_excludes_backend(self):
        spec = RunSpec.from_config(GPUConfig.tiny(frames=2))
        scalar = dataclasses.replace(
            spec, scheduler=dataclasses.replace(spec.scheduler,
                                                backend="python"))
        batched = dataclasses.replace(
            spec, scheduler=dataclasses.replace(spec.scheduler,
                                                backend="numpy"))
        assert scalar.spec_hash() == batched.spec_hash()
        assert (run_cache_key(scalar, "ata", "evr")
                == run_cache_key(batched, "ata", "evr"))

    def test_run_computed_on_one_backend_served_to_other(self, tmp_path):
        spec = RunSpec.from_config(GPUConfig.tiny(frames=2))
        scalar = dataclasses.replace(
            spec, scheduler=dataclasses.replace(spec.scheduler,
                                                backend="python"))
        batched = dataclasses.replace(
            spec, scheduler=dataclasses.replace(spec.scheduler,
                                                backend="numpy"))
        with SuiteRunner(cache_dir=str(tmp_path), spec=scalar) as runner:
            first = runner.run("ata", PipelineMode.EVR)
            assert (runner.cache_hits, runner.cache_misses) == (0, 1)
        with SuiteRunner(cache_dir=str(tmp_path), spec=batched) as runner:
            second = runner.run("ata", PipelineMode.EVR)
            assert (runner.cache_hits, runner.cache_misses) == (1, 0)
        assert isinstance(second, RunMetrics)
        assert second == first
