"""Tests for the cross-mode validation utility."""

import pytest

from repro import GPUConfig
from repro.scenes import benchmark_stream
from repro.validate import ValidationReport, validate_stream


class TestValidationReport:
    def test_empty_report_passes(self):
        report = ValidationReport(frames=3)
        assert report.passed

    def test_failure_recorded(self):
        report = ValidationReport(frames=3)
        report.record("good", True)
        report.record("bad", False)
        assert not report.passed
        assert report.failures == ["bad"]
        rendered = report.render()
        assert "[ok] good" in rendered
        assert "[FAIL] bad" in rendered
        assert "1/2 checks passed" in rendered


class TestValidateStream:
    def test_benchmark_passes(self):
        config = GPUConfig.tiny(frames=4)
        stream = benchmark_stream("cde", config)
        report = validate_stream(stream, config)
        assert report.passed, report.render()
        assert len(report.checks) == 6

    def test_3d_benchmark_passes(self):
        config = GPUConfig.tiny(frames=4)
        stream = benchmark_stream("tib", config)
        report = validate_stream(stream, config)
        assert report.passed, report.render()

    def test_cli_exit_code(self):
        from repro.cli import main
        code = main(["validate", "hop", "--frames", "3",
                     "--width", "64", "--height", "48"])
        assert code == 0
