"""Tests for the cross-mode validation utility."""

import pytest

from repro import GPUConfig
from repro.scenes import benchmark_stream
from repro.techniques import default_modes
from repro.validate import ValidationReport, validate_stream


def _expected_checks(backends: int) -> int:
    """Check count for the full registered matrix, derived from the
    registry so the tests scale as techniques are registered."""
    techniques = default_modes()
    exact = sum(1 for t in techniques if t.pixel_exact)
    approximate = len(techniques) - exact
    # Reference backend: every exact technique but baseline gets a
    # pixel-identity check; every approximate one an error-bound check
    # plus a shaded-budget check.  Each extra backend compares every
    # exact technique (baseline included) to baseline[reference] and
    # every approximate one to itself on the reference backend.  Two
    # invariant checks per backend.
    checks = (exact - 1) + 2 * approximate + 2
    checks += (backends - 1) * (exact + approximate + 2)
    return checks


class TestValidationReport:
    def test_empty_report_passes(self):
        report = ValidationReport(frames=3)
        assert report.passed

    def test_failure_recorded(self):
        report = ValidationReport(frames=3)
        report.record("good", True)
        report.record("bad", False)
        assert not report.passed
        assert report.failures == ["bad"]
        rendered = report.render()
        assert "[ok] good" in rendered
        assert "[FAIL] bad" in rendered
        assert "1/2 checks passed" in rendered


class TestValidateStream:
    def test_benchmark_passes(self):
        config = GPUConfig.tiny(frames=4)
        stream = benchmark_stream("cde", config)
        report = validate_stream(stream, config)
        assert report.passed, report.render()
        assert len(report.checks) == _expected_checks(backends=1)

    def test_3d_benchmark_passes(self):
        config = GPUConfig.tiny(frames=4)
        stream = benchmark_stream("tib", config)
        report = validate_stream(stream, config)
        assert report.passed, report.render()

    def test_cli_exit_code(self):
        from repro.cli import main
        code = main(["validate", "hop", "--frames", "3",
                     "--width", "64", "--height", "48"])
        assert code == 0


class TestValidateAcrossBackends:
    """Cross-mode validation is a tier-1 invariant under *every* kernel
    backend, and passing several backends makes the run differential."""

    @pytest.mark.parametrize("backends", [("python",), ("numpy",)])
    def test_single_backend_keeps_historical_labels(self, backends):
        config = GPUConfig.tiny(frames=3)
        stream = benchmark_stream("cde", config)
        report = validate_stream(stream, config, backends=backends)
        assert report.passed, report.render()
        # One backend: the check labels stay exactly the historical
        # ones, so existing tooling parsing them keeps working.
        assert "re: images pixel-identical to baseline" in report.checks
        assert len(report.checks) == _expected_checks(backends=1)

    def test_differential_covers_modes_times_backends(self):
        config = GPUConfig.tiny(frames=3)
        stream = benchmark_stream("cde", config)
        report = validate_stream(stream, config,
                                 backends=("python", "numpy"))
        assert report.passed, report.render()
        # Every registered technique on both backends, plus the two
        # invariant checks per backend.
        assert len(report.checks) == _expected_checks(backends=2)
        labels = " ".join(report.checks)
        assert "baseline[numpy]: pixel-identical to baseline[python]" \
            in report.checks
        assert "[python]" in labels and "[numpy]" in labels

    def test_backend_aliases_normalized(self):
        config = GPUConfig.tiny(frames=3)
        stream = benchmark_stream("cde", config)
        report = validate_stream(stream, config,
                                 backends=("scalar", "batched"))
        assert report.passed, report.render()
        assert "baseline[numpy]: pixel-identical to baseline[python]" \
            in report.checks

    def test_corruptor_detected(self):
        from repro.corpus import make_pixel_corruptor
        from repro.resilience import FaultPlan
        config = GPUConfig.tiny(frames=3)
        stream = benchmark_stream("cde", config)
        corruptor = make_pixel_corruptor(FaultPlan({"pixel": 1.0}), "cde")
        report = validate_stream(stream, config,
                                 backends=("python", "numpy"),
                                 corruptor=corruptor)
        assert not report.passed
        assert report.failures

    def test_cli_differential_flag(self):
        from repro.cli import main
        code = main(["validate", "hop", "--frames", "3",
                     "--width", "64", "--height", "48",
                     "--backends", "python", "numpy"])
        assert code == 0
