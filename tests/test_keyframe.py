"""Tests for keyframed animation paths."""

import pytest

from repro import SceneError
from repro.math3d import Vec3
from repro.scenes import KeyframePath


def path_xyz(*points, **kwargs):
    return KeyframePath(
        tuple((float(t), Vec3(*p)) for t, p in points), **kwargs
    )


class TestValidation:
    def test_needs_two_waypoints(self):
        with pytest.raises(SceneError):
            KeyframePath(((0.0, Vec3(0, 0, 0)),))

    def test_times_strictly_increasing(self):
        with pytest.raises(SceneError):
            path_xyz((0, (0, 0, 0)), (0, (1, 0, 0)))
        with pytest.raises(SceneError):
            path_xyz((5, (0, 0, 0)), (2, (1, 0, 0)))

    def test_unknown_easing(self):
        with pytest.raises(SceneError):
            path_xyz((0, (0, 0, 0)), (1, (1, 0, 0)), easing="bouncy")


class TestSampling:
    def test_waypoints_hit_exactly(self):
        path = path_xyz((0, (0, 0, 0)), (10, (10, 0, 0)), (20, (10, 5, 0)))
        assert path.position(0) == Vec3(0, 0, 0)
        assert path.position(10) == Vec3(10, 0, 0)
        assert path.position(20) == Vec3(10, 5, 0)

    def test_linear_midpoint(self):
        path = path_xyz((0, (0, 0, 0)), (10, (10, 0, 0)))
        assert path.position(5) == Vec3(5, 0, 0)

    def test_clamping_outside_range(self):
        path = path_xyz((0, (0, 0, 0)), (10, (10, 0, 0)))
        assert path.position(-5) == Vec3(0, 0, 0)
        assert path.position(99) == Vec3(10, 0, 0)

    def test_smooth_easing_slower_at_ends(self):
        linear = path_xyz((0, (0, 0, 0)), (10, (10, 0, 0)))
        smooth = path_xyz((0, (0, 0, 0)), (10, (10, 0, 0)), easing="smooth")
        # Smoothstep lags linear early in the segment...
        assert smooth.position(2).x < linear.position(2).x
        # ...and leads it late.
        assert smooth.position(8).x > linear.position(8).x
        # Midpoint identical.
        assert smooth.position(5).x == pytest.approx(5.0)

    def test_loop_wraps(self):
        path = path_xyz((0, (0, 0, 0)), (10, (10, 0, 0)), loop=True)
        assert path.position(12).x == pytest.approx(path.position(2).x)

    def test_through_constructor(self):
        path = KeyframePath.through(
            [Vec3(0, 0, 0), Vec3(1, 0, 0), Vec3(1, 1, 0)],
            frames_per_segment=8,
        )
        assert path.duration == 16
        assert path.position(8) == Vec3(1, 0, 0)


class TestMotionProtocol:
    def test_offset_relative_to_start(self):
        path = path_xyz((0, (5, 5, 0)), (10, (15, 5, 0)))
        assert path.offset(0) == Vec3(0, 0, 0)
        assert path.offset(10) == Vec3(10, 0, 0)

    def test_usable_as_sprite_motion(self):
        from repro.math3d import Vec2
        from repro.scenes import Layer2D, SpriteSpec
        path = path_xyz((0, (10, 10, 0)), (8, (30, 10, 0)))
        layer = Layer2D("kf", [
            SpriteSpec(Vec2(10, 10), Vec2(4, 4), motion=path)
        ])
        start = layer.build_mesh(0).triangles[0].v0.position
        end = layer.build_mesh(8).triangles[0].v0.position
        assert end.x - start.x == pytest.approx(20.0)
