"""Tests for repro.geom: vertices, triangles, meshes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import RenderState
from repro.geom import (
    ScreenTriangle,
    Triangle,
    Vertex,
    VertexAttributes,
    box_mesh,
    grid_mesh,
    quad,
    screen_quad,
    sprite_quad,
)
from repro.math3d import Vec2, Vec3, Vec4


def make_screen_triangle(points, z=(0.5, 0.5, 0.5), state=None):
    return ScreenTriangle(
        xy=tuple(Vec2(*p) for p in points),
        z=z,
        attributes=(VertexAttributes(), VertexAttributes(), VertexAttributes()),
        command_id=0,
        primitive_id=0,
        state=state or RenderState.sprite_2d(),
        signature_bytes=b"test",
    )


class TestVertexAttributes:
    def test_pack_deterministic(self):
        attrs = VertexAttributes(color=Vec4(1, 0, 0, 1), uv=Vec2(0.5, 0.5))
        assert attrs.pack() == attrs.pack()

    def test_pack_differs_on_color_change(self):
        a = VertexAttributes(color=Vec4(1, 0, 0, 1))
        b = VertexAttributes(color=Vec4(0, 1, 0, 1))
        assert a.pack() != b.pack()

    def test_pack_length_constant(self):
        assert len(VertexAttributes().pack()) == len(
            VertexAttributes(color=Vec4(0.1, 0.2, 0.3, 0.4)).pack()
        )

    def test_with_color(self):
        attrs = VertexAttributes(uv=Vec2(1, 2))
        recolored = attrs.with_color(Vec4(0, 0, 1, 1))
        assert recolored.color == Vec4(0, 0, 1, 1)
        assert recolored.uv == Vec2(1, 2)


class TestVertexAndTriangle:
    def test_vertex_pack_includes_position(self):
        a = Vertex(Vec3(0, 0, 0))
        b = Vertex(Vec3(1, 0, 0))
        assert a.pack() != b.pack()

    def test_triangle_pack_is_concatenation(self):
        v = [Vertex(Vec3(float(i), 0, 0)) for i in range(3)]
        tri = Triangle(*v)
        assert tri.pack() == v[0].pack() + v[1].pack() + v[2].pack()
        assert tri.vertices == (v[0], v[1], v[2])


class TestScreenTriangle:
    def test_z_near_far(self):
        tri = make_screen_triangle(
            [(0, 0), (10, 0), (0, 10)], z=(0.2, 0.9, 0.5)
        )
        assert tri.z_near == 0.2
        assert tri.z_far == 0.9

    def test_signed_area_orientation(self):
        ccw_math = make_screen_triangle([(0, 0), (1, 0), (1, 1)])
        assert ccw_math.signed_area() > 0
        flipped = make_screen_triangle([(0, 0), (1, 1), (1, 0)])
        assert flipped.signed_area() < 0

    def test_bounding_box(self):
        tri = make_screen_triangle([(5, 2), (10, 8), (1, 6)])
        assert tri.bounding_box() == (1, 2, 10, 8)

    def test_state_properties(self):
        woz = make_screen_triangle([(0, 0), (1, 0), (0, 1)],
                                   state=RenderState.opaque_3d())
        nwoz = make_screen_triangle([(0, 0), (1, 0), (0, 1)],
                                    state=RenderState.sprite_2d())
        assert woz.writes_z and woz.opaque
        assert not nwoz.writes_z

    class TestOverlappedTiles:
        def test_single_tile(self):
            tri = make_screen_triangle([(1, 1), (10, 1), (1, 10)])
            assert tri.overlapped_tiles(16, 16, 4, 3) == ((0, 0),)

        def test_spanning_tiles(self):
            tri = make_screen_triangle([(1, 1), (40, 1), (1, 40)])
            tiles = tri.overlapped_tiles(16, 16, 4, 3)
            assert set(tiles) == {(tx, ty) for tx in range(3) for ty in range(3)}

        def test_clamped_to_screen(self):
            tri = make_screen_triangle([(-50, -50), (500, -50), (-50, 500)])
            tiles = tri.overlapped_tiles(16, 16, 4, 3)
            assert set(tiles) == {(tx, ty) for tx in range(4) for ty in range(3)}

        def test_fully_offscreen(self):
            tri = make_screen_triangle([(-50, -50), (-10, -50), (-50, -10)])
            assert tri.overlapped_tiles(16, 16, 4, 3) == ()

        @given(
            st.floats(min_value=-100, max_value=200),
            st.floats(min_value=-100, max_value=200),
            st.floats(min_value=1, max_value=80),
        )
        def test_conservative_covers_bbox(self, x, y, size):
            tri = make_screen_triangle([(x, y), (x + size, y), (x, y + size)])
            tiles = tri.overlapped_tiles(16, 16, 8, 8)
            # Every on-screen vertex's tile must be listed.
            for vx, vy in [(x, y), (x + size, y), (x, y + size)]:
                if 0 <= vx < 128 and 0 <= vy < 128:
                    assert (int(vx) // 16, int(vy) // 16) in tiles


class TestMeshBuilders:
    def test_quad_two_triangles(self):
        mesh = quad(Vec3(0, 0, 0), Vec3(1, 0, 0), Vec3(0, 1, 0))
        assert len(mesh) == 2

    def test_quad_normal_along_cross(self):
        mesh = quad(Vec3(0, 0, 0), Vec3(1, 0, 0), Vec3(0, 1, 0))
        for tri in mesh:
            for vertex in tri.vertices:
                assert vertex.attributes.normal == Vec3(0, 0, 1)

    def test_screen_quad_covers_rect(self):
        mesh = screen_quad(10, 20, 30, 40)
        xs = [v.position.x for tri in mesh for v in tri.vertices]
        ys = [v.position.y for tri in mesh for v in tri.vertices]
        assert min(xs) == 10 and max(xs) == 40
        assert min(ys) == 20 and max(ys) == 60

    def test_sprite_quad_centered(self):
        mesh = sprite_quad(Vec2(50, 50), Vec2(20, 10))
        xs = [v.position.x for tri in mesh for v in tri.vertices]
        ys = [v.position.y for tri in mesh for v in tri.vertices]
        assert min(xs) == 40 and max(xs) == 60
        assert min(ys) == 45 and max(ys) == 55

    def test_grid_mesh_count(self):
        mesh = grid_mesh(Vec3(0, 0, 0), Vec3(4, 0, 0), Vec3(0, 4, 0), 4, 3)
        assert len(mesh) == 2 * 4 * 3

    def test_grid_mesh_validates(self):
        with pytest.raises(ValueError):
            grid_mesh(Vec3(0, 0, 0), Vec3(1, 0, 0), Vec3(0, 1, 0), 0, 1)

    def test_box_mesh_twelve_triangles(self):
        assert len(box_mesh(Vec3(0, 0, 0), Vec3(1, 1, 1))) == 12

    def test_box_mesh_extents(self):
        mesh = box_mesh(Vec3(1, 2, 3), Vec3(2, 4, 6))
        xs = [v.position.x for tri in mesh for v in tri.vertices]
        ys = [v.position.y for tri in mesh for v in tri.vertices]
        zs = [v.position.z for tri in mesh for v in tri.vertices]
        assert (min(xs), max(xs)) == (0, 2)
        assert (min(ys), max(ys)) == (0, 4)
        assert (min(zs), max(zs)) == (0, 6)

    def test_recolored(self):
        mesh = quad(Vec3(0, 0, 0), Vec3(1, 0, 0), Vec3(0, 1, 0)).recolored(
            Vec4(0.1, 0.2, 0.3, 1.0)
        )
        for tri in mesh:
            for vertex in tri.vertices:
                assert vertex.attributes.color == Vec4(0.1, 0.2, 0.3, 1.0)

    def test_mesh_extend(self):
        a = quad(Vec3(0, 0, 0), Vec3(1, 0, 0), Vec3(0, 1, 0))
        b = quad(Vec3(2, 0, 0), Vec3(1, 0, 0), Vec3(0, 1, 0))
        combined = a.extend(b)
        assert combined is a
        assert len(a) == 4
