"""Tests for the pluggable technique registry (:mod:`repro.techniques`).

Covers the registry contract (registration, aliasing, resolution,
diagnostics), pickling of technique-bearing payloads through the process
pool, the compatibility guarantees the refactor must uphold (spec-hash
and paper-mode image/metric pins), FeatureOverrides/PipelineFeatures
field parity, and a lint forbidding new ``PipelineMode.X`` literals
outside the shim and the techniques package.
"""

import hashlib
import os
import pickle
import re
import subprocess
import sys

import numpy as np
import pytest

from repro import GPU, GPUConfig, RunSpec
from repro.errors import ConfigError, SpecError
from repro.pipeline import PipelineFeatures
from repro.pipeline.features import PipelineMode
from repro.scenes import benchmark_stream
from repro.techniques import (
    Technique,
    default_modes,
    get_technique,
    metric_extras,
    resolve_features,
    resolve_technique,
    technique_names,
)
from repro.techniques import registry as registry_module


# ---------------------------------------------------------------------------
# Registry contract
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_catalog_registered(self):
        names = technique_names()
        # The four paper modes plus oracle must keep their exact names
        # (cache keys and check labels depend on them), and the catalog
        # must expose at least 7 techniques for `repro modes`.
        for name in ("baseline", "re", "evr", "evr-reorder-only", "oracle"):
            assert name in names
        assert len(names) >= 7

    def test_registration_order_is_paper_first(self):
        kinds = [t.kind for t in default_modes()]
        assert kinds[:5] == ["paper"] * 5

    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            registry_module.register(Technique(
                name="baseline", summary="dup",
                feature_set=PipelineFeatures(),
            ))

    def test_duplicate_alias_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            registry_module.register(Technique(
                name="fresh-name", summary="alias clash",
                feature_set=PipelineFeatures(),
                aliases=("vrpipe",),
            ))

    def test_contract_validation(self):
        with pytest.raises(ConfigError, match="no error tolerance"):
            Technique(name="x", summary="s",
                      feature_set=PipelineFeatures(),
                      pixel_exact=True, error_tolerance=0.5)
        with pytest.raises(ConfigError, match="error_tolerance > 0"):
            Technique(name="x", summary="s",
                      feature_set=PipelineFeatures(),
                      pixel_exact=False)
        with pytest.raises(ConfigError, match="kind"):
            Technique(name="x", summary="s",
                      feature_set=PipelineFeatures(), kind="bogus")
        with pytest.raises(ConfigError, match="lowercase"):
            Technique(name="Upper", summary="s",
                      feature_set=PipelineFeatures())

    def test_alias_resolution_case_insensitive(self):
        assert get_technique("vrpipe") is get_technique("vrpipe-et")
        assert get_technique("VR-Pipe") is get_technique("vrpipe-et")
        assert get_technique("EVR") is get_technique("evr")

    def test_unknown_mode_message(self):
        with pytest.raises(ConfigError) as excinfo:
            get_technique("evrr")
        message = str(excinfo.value)
        assert "unknown mode 'evrr'" in message
        assert "registered:" in message
        assert "did you mean 'evr'?" in message

    def test_resolve_technique_accepts_all_designators(self):
        evr = get_technique("evr")
        assert resolve_technique(evr) is evr
        assert resolve_technique("evr") is evr
        assert resolve_technique(PipelineMode.EVR) is evr
        with pytest.raises(ConfigError):
            resolve_technique(42)

    def test_resolve_features_passthrough(self):
        features = PipelineFeatures(hierarchical_z=True)
        assert resolve_features(features) is features
        assert resolve_features("baseline") == PipelineFeatures()

    def test_shim_features_delegate_to_registry(self):
        for mode in PipelineMode:
            assert mode.features() == get_technique(mode.value).features()

    def test_techniques_pickle_roundtrip(self):
        for technique in default_modes():
            clone = pickle.loads(pickle.dumps(technique))
            assert clone == technique
            assert clone.features() == technique.features()

    def test_metric_extras_unknown_name_empty(self):
        assert metric_extras("baseline", object()) == {}


# ---------------------------------------------------------------------------
# Techniques survive the process pool (scheduler payloads)
# ---------------------------------------------------------------------------

class TestProcessPoolIntegration:
    @pytest.mark.parametrize("mode", ["dsr", "fhv", "vrpipe-et"])
    def test_parallel_matches_serial(self, mode):
        """Technique-bearing TileJobs (dsr_rate, history) must pickle
        through the pool and render bit-identically to serial."""
        from repro.engine import ProcessPoolScheduler

        config = GPUConfig.tiny(frames=3)
        stream = benchmark_stream("tib", config)
        serial = GPU(config, mode).render_stream(stream)
        with ProcessPoolScheduler(2) as pool:
            parallel = GPU(config, mode,
                           scheduler=pool).render_stream(stream)
        for expected, actual in zip(serial.frames, parallel.frames):
            assert np.array_equal(expected.image, actual.image)
        assert (serial.total_stats(warmup=0).fragments_shaded
                == parallel.total_stats(warmup=0).fragments_shaded)


# ---------------------------------------------------------------------------
# Compatibility pins: the refactor must not move any identity
# ---------------------------------------------------------------------------

#: spec_hash() of each preset, pinned from before the registry refactor.
#: Technique names enter the hash only through workload.modes, so these
#: must never move unless a result-affecting field is added.
_SPEC_HASH_PINS = {
    "default": ("625e77d14c3fd4565fcfb2bdf0f2b3ae"
                "36285bb41c4673a7393bc7d61311af11"),
    "paper": ("433abf0e955961e2197d53db6bf38960"
              "a290d9e6f82d7d79a92a99aa91fd4906"),
    "scaled": ("15dad2f263c6caf1979500571ef5a9c8"
               "0e65a60435846e68eb41ed4503f65bb4"),
    "tiny": ("b0938c70230d4ce8e9018f5db13eefc2"
             "340a8a750fd2a360e9ec733ac804c16b"),
}

#: Image digest of cde @ 64x48, 4 frames — identical for every paper
#: mode (pinned from before the refactor).
_PAPER_IMAGE_DIGEST = (
    "177e80dc12fad6564619f2e7ca79997ac8fbedcf41a0ce1fe80aa17fc51f89b2"
)


def _image_digest(result) -> str:
    digest = hashlib.sha256()
    for frame in result.frames:
        digest.update(np.ascontiguousarray(frame.image).tobytes())
    return digest.hexdigest()


class TestCompatibilityPins:
    @pytest.mark.parametrize("preset", sorted(_SPEC_HASH_PINS))
    def test_spec_hash_unchanged(self, preset):
        assert RunSpec.preset(preset).spec_hash() == _SPEC_HASH_PINS[preset]

    def test_spec_hash_stable_across_processes(self):
        """The hash must be process-independent (no id()/set-order
        leakage) — the disk cache and journal key on it."""
        script = (
            "import sys; sys.path.insert(0, 'src'); "
            "from repro import RunSpec; "
            "print(RunSpec.preset('default').spec_hash())"
        )
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            cwd=os.path.join(os.path.dirname(__file__), ".."),
        ).stdout.strip()
        assert output == _SPEC_HASH_PINS["default"]

    def test_paper_modes_render_pinned_images(self):
        config = GPUConfig(screen_width=64, screen_height=48, frames=4)
        stream = benchmark_stream("cde", config)
        pins = {
            "baseline": (20089, 0),
            "re": (9964, 25),
            "evr": (9964, 25),
            "evr-reorder-only": (20089, 0),
            "oracle": (20089, 0),
        }
        for name, (shaded, skipped) in pins.items():
            result = GPU(config, name).render_stream(stream)
            assert _image_digest(result) == _PAPER_IMAGE_DIGEST, name
            stats = result.total_stats(warmup=0)
            assert stats.fragments_shaded == shaded, name
            assert stats.tiles_skipped == skipped, name

    def test_alias_and_canonical_share_spec_hash(self):
        from repro.spec import spec_from_dict
        canonical = spec_from_dict({"workload": {"modes": ["vrpipe-et"]}})
        aliased = spec_from_dict({"workload": {"modes": ["vrpipe"]}})
        assert canonical.spec_hash() == aliased.spec_hash()

    def test_unknown_spec_mode_suggests(self):
        from repro.spec import spec_from_dict
        with pytest.raises(SpecError, match="unknown mode"):
            spec_from_dict({"workload": {"modes": ["dsrr"]}})


# ---------------------------------------------------------------------------
# FeatureOverrides stays in lockstep with PipelineFeatures
# ---------------------------------------------------------------------------

class TestFeatureOverridesParity:
    def test_field_parity(self):
        import dataclasses

        from repro.spec import FeatureOverrides

        feature_fields = {f.name for f in
                          dataclasses.fields(PipelineFeatures)}
        override_fields = {f.name for f in
                           dataclasses.fields(FeatureOverrides)}
        missing = feature_fields - override_fields
        assert not missing, (
            f"FeatureOverrides is missing {sorted(missing)} — every "
            f"PipelineFeatures flag must be --set-able"
        )

    def test_rival_flags_overridable(self):
        from repro.spec import spec_from_dict
        spec = spec_from_dict({
            "features": {"vrpipe_threshold": 0.5, "dsr": True},
        })
        features = spec.features_for("baseline")
        assert features.vrpipe_threshold == 0.5
        assert features.dsr is True

    def test_vrpipe_threshold_validated(self):
        from repro.spec import FeatureOverrides
        with pytest.raises(SpecError):
            FeatureOverrides(vrpipe_threshold=-0.1)


# ---------------------------------------------------------------------------
# Lint: no new PipelineMode.X literals outside the shim + registry
# ---------------------------------------------------------------------------

class TestModeLiteralLint:
    _ALLOWED = (
        os.path.join("repro", "pipeline", "features.py"),
        os.path.join("repro", "techniques") + os.sep,
    )

    def test_no_pipeline_mode_literals_in_src(self):
        root = os.path.join(os.path.dirname(__file__), "..", "src")
        pattern = re.compile(r"PipelineMode\.[A-Z]")
        offenders = []
        for dirpath, _, filenames in os.walk(root):
            for filename in filenames:
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                relative = os.path.relpath(path, root)
                if any(allowed in relative for allowed in self._ALLOWED):
                    continue
                with open(path) as handle:
                    if pattern.search(handle.read()):
                        offenders.append(relative)
        assert not offenders, (
            f"PipelineMode literals outside the shim/registry: "
            f"{offenders} — resolve technique names through "
            f"repro.techniques instead"
        )
