"""Tests for the persistent run cache (``repro.engine.diskcache``)."""

from __future__ import annotations

import os

import pytest

from repro.cli import main
from repro.config import GPUConfig
from repro.engine import DiskCache, default_cache_dir
from repro.engine.diskcache import code_version
from repro.harness.runner import RunMetrics, SuiteRunner
from repro.obs.metrics import global_registry
from repro.pipeline import PipelineMode

CONFIG = GPUConfig.tiny(frames=2)


class TestDiskCache:
    def test_roundtrip(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        key = DiskCache.make_key("ata", "evr", CONFIG, 2)
        assert cache.get(key) is None
        cache.put(key, {"value": 42})
        assert cache.get(key) == {"value": 42}
        assert cache.size() == 1

    def test_key_sensitivity(self):
        base = DiskCache.make_key("ata", "evr", CONFIG, 2)
        assert DiskCache.make_key("ata", "re", CONFIG, 2) != base
        assert DiskCache.make_key("hop", "evr", CONFIG, 2) != base
        other_config = GPUConfig.tiny(frames=2).scaled(screen_width=128)
        assert DiskCache.make_key("ata", "evr", other_config, 2) != base
        assert DiskCache.make_key("ata", "evr", CONFIG, 3) != base
        # Deterministic for equal inputs.
        assert DiskCache.make_key("ata", "evr", CONFIG, 2) == base

    def test_corrupt_entry_treated_as_miss(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        key = cache.make_key("anything")
        cache.put(key, [1, 2, 3])
        path = cache.path_for(key)
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])  # truncate mid-pickle
        assert cache.get(key) is None
        assert not os.path.exists(path)  # corrupt entry evicted
        cache.put(key, [1, 2, 3])  # recompute path stays usable
        assert cache.get(key) == [1, 2, 3]

    def test_clear(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        for index in range(3):
            cache.put(cache.make_key(index), index)
        assert cache.clear() == 3
        assert cache.size() == 0

    def test_code_version_stable(self):
        assert code_version() == code_version()
        assert len(code_version()) == 64  # sha256 hex

    def test_default_cache_dir_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir() == ".repro_cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/elsewhere")
        assert default_cache_dir() == "/tmp/elsewhere"


class TestSuiteRunnerDiskCache:
    def test_second_runner_hits_disk(self, tmp_path):
        with SuiteRunner(CONFIG, cache_dir=str(tmp_path)) as runner:
            first = runner.run("ata", PipelineMode.EVR)
            assert (runner.cache_hits, runner.cache_misses) == (0, 1)
        # A fresh runner (fresh in-memory memo) must load from disk.
        with SuiteRunner(CONFIG, cache_dir=str(tmp_path)) as runner:
            second = runner.run("ata", PipelineMode.EVR)
            assert isinstance(second, RunMetrics)
            assert second == first
            assert (runner.cache_hits, runner.cache_misses) == (1, 0)
            assert "1 hits, 0 misses" in runner.cache_summary()

    def test_config_change_misses(self, tmp_path):
        with SuiteRunner(CONFIG, cache_dir=str(tmp_path)) as runner:
            runner.run("ata", PipelineMode.EVR)
        other = GPUConfig.tiny(frames=3)
        with SuiteRunner(other, cache_dir=str(tmp_path)) as runner:
            runner.run("ata", PipelineMode.EVR)
            assert (runner.cache_hits, runner.cache_misses) == (0, 1)

    def test_no_cache_dir_disables_disk(self):
        with SuiteRunner(CONFIG) as runner:
            runner.run("ata", PipelineMode.BASELINE)
            assert runner.cache_summary() == "run cache: disabled"


class TestCacheCLI:
    def test_info_and_clear(self, tmp_path, capsys):
        cache = DiskCache(str(tmp_path))
        cache.put(cache.make_key("x"), 1)
        assert main(["cache", "info", "--dir", str(tmp_path)]) == 0
        assert "cached runs: 1" in capsys.readouterr().out
        assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
        assert "removed 1 cached runs" in capsys.readouterr().out
        assert cache.size() == 0

    def test_clear_empty_directory(self, tmp_path, capsys):
        assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
        assert "removed 0 cached runs" in capsys.readouterr().out


class TestCacheIntegrityAndQuarantine:
    """Satellite hardening: entries carry a checksum trailer and bad
    ones are quarantined for post-mortem, never silently unlinked."""

    def _corrupt(self, cache, mutate):
        key = cache.make_key("victim")
        cache.put(key, {"value": 1})
        path = cache.path_for(key)
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(mutate(blob))
        return key, path

    def test_truncated_entry_quarantined(self, tmp_path):
        import io
        from repro.obs.log import setup_logging
        global_registry().reset()
        cache = DiskCache(str(tmp_path))
        key, path = self._corrupt(cache, lambda blob: blob[:len(blob) // 2])
        stream = io.StringIO()
        setup_logging(stream=stream)  # route repro.* warnings to us
        try:
            assert cache.get(key) is None
        finally:
            setup_logging()
        assert not os.path.exists(path)
        assert cache.quarantined() == 1
        assert os.path.exists(
            os.path.join(cache.quarantine_dir(), os.path.basename(path))
        )
        assert global_registry().counter("cache.quarantined").value == 1
        # The warning names the (truncated) key and the quarantine move.
        logged = stream.getvalue()
        assert key[:12] in logged and "quarantined" in logged

    def test_bitflip_fails_checksum_and_quarantines(self, tmp_path):
        cache = DiskCache(str(tmp_path))

        def flip(blob):
            middle = len(blob) // 3
            return blob[:middle] + bytes([blob[middle] ^ 0xFF]) \
                + blob[middle + 1:]

        key, path = self._corrupt(cache, flip)
        assert cache.get(key) is None
        assert cache.quarantined() == 1

    def test_foreign_file_without_trailer_quarantined(self, tmp_path):
        import pickle
        cache = DiskCache(str(tmp_path))
        key = cache.make_key("legacy")
        os.makedirs(cache.directory, exist_ok=True)
        with open(cache.path_for(key), "wb") as handle:
            handle.write(pickle.dumps({"pre-trailer": True}))
        assert cache.get(key) is None  # never misread as healthy
        assert cache.quarantined() == 1

    def test_unpicklable_payload_with_valid_trailer(self, tmp_path):
        from repro.engine.diskcache import _encode_entry
        cache = DiskCache(str(tmp_path))
        key = cache.make_key("garbage")
        os.makedirs(cache.directory, exist_ok=True)
        with open(cache.path_for(key), "wb") as handle:
            handle.write(_encode_entry(b"not a pickle"))
        assert cache.get(key) is None
        assert cache.quarantined() == 1

    def test_recompute_after_quarantine(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        key, _ = self._corrupt(cache, lambda blob: blob[:10])
        assert cache.get(key) is None
        cache.put(key, {"value": 2})  # the key's path stays usable
        assert cache.get(key) == {"value": 2}
        assert cache.quarantined() == 1

    def test_clear_keeps_quarantine(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        key, _ = self._corrupt(cache, lambda blob: blob[:10])
        cache.put(cache.make_key("healthy"), 3)
        assert cache.get(key) is None
        assert cache.clear() == 1  # only the healthy entry
        assert cache.quarantined() == 1

    def test_decode_entry_error_messages(self):
        from repro.engine.diskcache import _decode_entry, _encode_entry
        from repro.errors import CacheCorruptionError
        good = _encode_entry(b"payload")
        assert _decode_entry(good) == b"payload"
        with pytest.raises(CacheCorruptionError, match="trailer"):
            _decode_entry(b"too short")
        with pytest.raises(CacheCorruptionError, match="truncated"):
            _decode_entry(good[:1] + good[8:])  # drop payload bytes
        with pytest.raises(CacheCorruptionError, match="checksum"):
            _decode_entry(b"Xayload" + good[7:])


class TestQuarantineGC:
    """The quarantine directory is a bounded post-mortem area, not an
    archive: ``gc_quarantine`` keeps only the newest files, including
    the corpus gate's repros under ``quarantine/corpus/``."""

    def _seed_quarantine(self, cache, count, subdir=""):
        directory = cache.quarantine_dir()
        if subdir:
            directory = os.path.join(directory, subdir)
        os.makedirs(directory, exist_ok=True)
        paths = []
        for index in range(count):
            path = os.path.join(directory, f"q{index:03d}.pkl")
            with open(path, "w") as handle:
                handle.write("x")
            # Explicit, strictly increasing mtimes: higher index = newer.
            os.utime(path, (1_000_000 + index, 1_000_000 + index))
            paths.append(path)
        return paths

    def test_keeps_newest(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        paths = self._seed_quarantine(cache, 5)
        kept, removed = cache.gc_quarantine(keep=2)
        assert (kept, removed) == (2, 3)
        survivors = sorted(os.listdir(cache.quarantine_dir()))
        assert survivors == [os.path.basename(p) for p in paths[-2:]]

    def test_walks_corpus_subdirectory_and_prunes_empty(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        old = self._seed_quarantine(cache, 3, subdir="corpus")
        new = self._seed_quarantine(cache, 2)
        for index, path in enumerate(new):  # make top-level files newest
            os.utime(path, (2_000_000 + index, 2_000_000 + index))
        kept, removed = cache.gc_quarantine(keep=2)
        assert (kept, removed) == (2, 3)
        assert all(not os.path.exists(path) for path in old)
        # The emptied corpus/ subdirectory is removed too.
        assert not os.path.exists(
            os.path.join(cache.quarantine_dir(), "corpus"))

    def test_keep_zero_and_negative(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        self._seed_quarantine(cache, 3)
        with pytest.raises(ValueError):
            cache.gc_quarantine(keep=-1)
        kept, removed = cache.gc_quarantine(keep=0)
        assert (kept, removed) == (0, 3)

    def test_missing_quarantine_is_a_noop(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        assert cache.gc_quarantine() == (0, 0)

    def test_new_arrival_reapplies_cap(self, tmp_path):
        from repro.engine.diskcache import DEFAULT_QUARANTINE_KEEP
        cache = DiskCache(str(tmp_path))
        self._seed_quarantine(cache, DEFAULT_QUARANTINE_KEEP + 6)
        # Corrupt a real entry; quarantining it must re-apply the cap.
        key = cache.make_key("victim")
        cache.put(key, {"value": 1})
        path = cache.path_for(key)
        with open(path, "r+b") as handle:
            handle.truncate(4)
        assert cache.get(key) is None
        assert cache.quarantined() <= DEFAULT_QUARANTINE_KEEP

    def test_cli_gc(self, tmp_path, capsys):
        cache = DiskCache(str(tmp_path))
        self._seed_quarantine(cache, 4)
        assert main(["cache", "gc", "--dir", str(tmp_path),
                     "--keep", "1"]) == 0
        out = capsys.readouterr().out
        assert "kept 1, removed 3" in out
        assert cache.quarantined() == 1
