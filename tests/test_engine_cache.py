"""Tests for the persistent run cache (``repro.engine.diskcache``)."""

from __future__ import annotations

import os

import pytest

from repro.cli import main
from repro.config import GPUConfig
from repro.engine import DiskCache, default_cache_dir
from repro.engine.diskcache import code_version
from repro.harness.runner import RunMetrics, SuiteRunner
from repro.pipeline import PipelineMode

CONFIG = GPUConfig.tiny(frames=2)


class TestDiskCache:
    def test_roundtrip(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        key = DiskCache.make_key("ata", "evr", CONFIG, 2)
        assert cache.get(key) is None
        cache.put(key, {"value": 42})
        assert cache.get(key) == {"value": 42}
        assert cache.size() == 1

    def test_key_sensitivity(self):
        base = DiskCache.make_key("ata", "evr", CONFIG, 2)
        assert DiskCache.make_key("ata", "re", CONFIG, 2) != base
        assert DiskCache.make_key("hop", "evr", CONFIG, 2) != base
        other_config = GPUConfig.tiny(frames=2).scaled(screen_width=128)
        assert DiskCache.make_key("ata", "evr", other_config, 2) != base
        assert DiskCache.make_key("ata", "evr", CONFIG, 3) != base
        # Deterministic for equal inputs.
        assert DiskCache.make_key("ata", "evr", CONFIG, 2) == base

    def test_corrupt_entry_treated_as_miss(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        key = cache.make_key("anything")
        cache.put(key, [1, 2, 3])
        path = cache.path_for(key)
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])  # truncate mid-pickle
        assert cache.get(key) is None
        assert not os.path.exists(path)  # corrupt entry evicted
        cache.put(key, [1, 2, 3])  # recompute path stays usable
        assert cache.get(key) == [1, 2, 3]

    def test_clear(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        for index in range(3):
            cache.put(cache.make_key(index), index)
        assert cache.clear() == 3
        assert cache.size() == 0

    def test_code_version_stable(self):
        assert code_version() == code_version()
        assert len(code_version()) == 64  # sha256 hex

    def test_default_cache_dir_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir() == ".repro_cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/elsewhere")
        assert default_cache_dir() == "/tmp/elsewhere"


class TestSuiteRunnerDiskCache:
    def test_second_runner_hits_disk(self, tmp_path):
        with SuiteRunner(CONFIG, cache_dir=str(tmp_path)) as runner:
            first = runner.run("ata", PipelineMode.EVR)
            assert (runner.cache_hits, runner.cache_misses) == (0, 1)
        # A fresh runner (fresh in-memory memo) must load from disk.
        with SuiteRunner(CONFIG, cache_dir=str(tmp_path)) as runner:
            second = runner.run("ata", PipelineMode.EVR)
            assert isinstance(second, RunMetrics)
            assert second == first
            assert (runner.cache_hits, runner.cache_misses) == (1, 0)
            assert "1 hits, 0 misses" in runner.cache_summary()

    def test_config_change_misses(self, tmp_path):
        with SuiteRunner(CONFIG, cache_dir=str(tmp_path)) as runner:
            runner.run("ata", PipelineMode.EVR)
        other = GPUConfig.tiny(frames=3)
        with SuiteRunner(other, cache_dir=str(tmp_path)) as runner:
            runner.run("ata", PipelineMode.EVR)
            assert (runner.cache_hits, runner.cache_misses) == (0, 1)

    def test_no_cache_dir_disables_disk(self):
        with SuiteRunner(CONFIG) as runner:
            runner.run("ata", PipelineMode.BASELINE)
            assert runner.cache_summary() == "run cache: disabled"


class TestCacheCLI:
    def test_info_and_clear(self, tmp_path, capsys):
        cache = DiskCache(str(tmp_path))
        cache.put(cache.make_key("x"), 1)
        assert main(["cache", "info", "--dir", str(tmp_path)]) == 0
        assert "cached runs: 1" in capsys.readouterr().out
        assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
        assert "removed 1 cached runs" in capsys.readouterr().out
        assert cache.size() == 0

    def test_clear_empty_directory(self, tmp_path, capsys):
        assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
        assert "removed 0 cached runs" in capsys.readouterr().out
