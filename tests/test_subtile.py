"""Tests for the sub-tile (2x2 quadrant) FVP ablation."""

import numpy as np
import pytest

from repro import ConfigError, GPU, GPUConfig, PipelineFeatures, PipelineMode
from repro.core.subtile import (
    SubTileVisibilityPredictor,
    compute_quadrant_fvps,
)
from repro.hw import FVPType, LayerBuffer, ZBuffer
from repro.scenes import benchmark_stream


def full():
    return np.ones((16, 16), dtype=bool)


def quadrant_mask(qx, qy):
    mask = np.zeros((16, 16), dtype=bool)
    mask[qy * 8:(qy + 1) * 8, qx * 8:(qx + 1) * 8] = True
    return mask


class TestQuadrantFVPs:
    def test_uniform_woz_tile(self):
        z = ZBuffer(16, 16)
        lb = LayerBuffer(16, 16)
        z.write(full(), np.full((16, 16), 0.4))
        lb.write(full(), 1, is_woz=True)
        entries = compute_quadrant_fvps(lb, z)
        assert all(e.fvp_type is FVPType.WOZ for e in entries)
        assert all(e.value == pytest.approx(0.4) for e in entries)

    def test_mixed_depth_quadrants(self):
        """Per-quadrant Z_far refines the tile-wide maximum."""
        z = ZBuffer(16, 16)
        lb = LayerBuffer(16, 16)
        lb.write(full(), 1, is_woz=True)
        z.write(quadrant_mask(0, 0), np.full((16, 16), 0.2))
        z.write(quadrant_mask(1, 0), np.full((16, 16), 0.8))
        z.write(quadrant_mask(0, 1), np.full((16, 16), 0.3))
        z.write(quadrant_mask(1, 1), np.full((16, 16), 0.5))
        entries = compute_quadrant_fvps(lb, z)
        values = [e.value for e in entries]
        assert values == [pytest.approx(v) for v in (0.2, 0.8, 0.3, 0.5)]

    def test_nwoz_quadrant(self):
        z = ZBuffer(16, 16)
        lb = LayerBuffer(16, 16)
        lb.write(full(), 1, is_woz=True)
        lb.write(quadrant_mask(1, 1), 3, is_woz=False)  # sprite covers one
        entries = compute_quadrant_fvps(lb, z)
        assert entries[0].fvp_type is FVPType.WOZ
        assert entries[3].fvp_type is FVPType.NWOZ
        assert entries[3].value == 3


class TestSubTilePredictor:
    def _predictor(self):
        predictor = SubTileVisibilityPredictor(
            num_tiles=4, tile_width=16, tile_height=16, tiles_x=2
        )
        z = ZBuffer(16, 16)
        lb = LayerBuffer(16, 16)
        lb.write(full(), 1, is_woz=True)
        z.write(quadrant_mask(0, 0), np.full((16, 16), 0.2))
        z.write(quadrant_mask(1, 0), np.full((16, 16), 0.8))
        z.write(quadrant_mask(0, 1), np.full((16, 16), 0.3))
        z.write(quadrant_mask(1, 1), np.full((16, 16), 0.5))
        predictor.record_tile(0, lb, z)
        return predictor

    def test_unknown_tile_predicts_visible(self):
        predictor = SubTileVisibilityPredictor(4, 16, 16, 2)
        assert not predictor.predict(0, True, 0.99, 1, bbox=(0, 0, 4, 4))

    def test_quadrant_local_prediction(self):
        predictor = self._predictor()
        # A primitive confined to the near quadrant (Z_far 0.2) at depth
        # 0.4: occluded there, even though the tile-wide Z_far is 0.8.
        assert predictor.predict(0, True, 0.4, 1, bbox=(0, 0, 6, 6))
        # The same primitive over the far quadrant (Z_far 0.8): visible.
        assert not predictor.predict(0, True, 0.4, 1, bbox=(10, 0, 15, 6))

    def test_spanning_bbox_needs_all_quadrants(self):
        predictor = self._predictor()
        # Spanning all quadrants: threshold is the max (0.8).
        assert not predictor.predict(0, True, 0.7, 1, bbox=(0, 0, 16, 16))
        assert predictor.predict(0, True, 0.9, 1, bbox=(0, 0, 16, 16))

    def test_off_tile_bbox_is_conservative(self):
        predictor = self._predictor()
        assert not predictor.predict(0, True, 0.99, 1,
                                     bbox=(100, 100, 120, 120))

    def test_without_bbox_checks_all(self):
        predictor = self._predictor()
        assert predictor.predict(0, True, 0.9, 1)
        assert not predictor.predict(0, True, 0.7, 1)


class TestFeatureIntegration:
    def test_requires_evr_hardware(self):
        with pytest.raises(ConfigError):
            PipelineFeatures(subtile_fvp=True)

    def test_incompatible_with_history(self):
        with pytest.raises(ConfigError):
            PipelineFeatures(evr_hardware=True, subtile_fvp=True,
                             fvp_history=2)

    def test_renders_identical_images(self):
        config = GPUConfig.tiny(frames=4)
        stream = benchmark_stream("tib", config)
        features = PipelineFeatures(
            rendering_elimination=True, evr_hardware=True,
            evr_reorder=True, evr_signature_filter=True, subtile_fvp=True,
        )
        baseline = GPU(config, PipelineMode.BASELINE).render_stream(stream)
        subtile = GPU(config, features).render_stream(stream)
        for expected, actual in zip(baseline.frames, subtile.frames):
            assert np.array_equal(expected.image, actual.image)
