"""Tests for the per-frame time series and CSV export."""

import csv
import io

import pytest

from repro import GPU, GPUConfig, PipelineMode
from repro.harness import frame_series, write_csv
from repro.scenes import benchmark_stream


@pytest.fixture(scope="module")
def run_result():
    config = GPUConfig.tiny(frames=4)
    stream = benchmark_stream("cde", config)
    return GPU(config, PipelineMode.EVR).render_stream(stream)


class TestFrameSeries:
    def test_one_record_per_frame(self, run_result):
        records = frame_series(run_result)
        assert [r.frame for r in records] == [0, 1, 2, 3]

    def test_totals_consistent_with_run(self, run_result):
        records = frame_series(run_result)
        series_total = sum(r.total_cycles for r in records)
        run_total = run_result.total_cycles(warmup=0).total
        assert series_total == pytest.approx(run_total)

    def test_warmup_transient_visible(self, run_result):
        """Frames 0-1 skip nothing; steady frames skip (static scene
        regions exist in cde)."""
        records = frame_series(run_result)
        assert records[0].tiles_skipped == 0
        assert records[-1].tiles_skipped > 0

    def test_energy_positive_per_frame(self, run_result):
        assert all(r.energy_joules > 0 for r in frame_series(run_result))


class TestCSV:
    def test_csv_roundtrip(self, run_result, tmp_path):
        path = str(tmp_path / "series.csv")
        records = frame_series(run_result)
        write_csv(records, path)
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(records)
        assert int(rows[2]["frame"]) == 2
        assert float(rows[2]["total_cycles"]) == pytest.approx(
            records[2].total_cycles
        )

    def test_csv_to_file_object(self, run_result):
        buffer = io.StringIO()
        write_csv(frame_series(run_result), buffer)
        assert buffer.getvalue().startswith("frame,")
