"""Tests for :class:`repro.resilience.ResilientScheduler`.

The failure paths are staged exactly with :class:`ScriptedFaultPlan`
(fault kind per (job-key, attempt)), so every scenario — retry on raise,
corrupt-result rejection, worker crash with pool rebuild, hang with
per-job timeout, degradation to serial — is deterministic and fast.
Job keys are ``"<batch>:<index>"`` with batches counted per scheduler
instance, so a fresh scheduler's first ``map`` uses keys ``1:0, 1:1, …``.
"""

from __future__ import annotations

import os

import pytest

from repro.engine import ProcessPoolScheduler, SerialScheduler
from repro.errors import (
    JobRetryExhaustedError,
    JobTimeoutError,
    WorkerCrashError,
)
from repro.obs.metrics import global_registry
from repro.resilience import (
    JobFailure,
    ResilientScheduler,
    RetryPolicy,
    ScriptedFaultPlan,
    backoff_delay,
)

# Fast policies: effectively-zero backoff keeps the retry tests snappy.
FAST = RetryPolicy(max_attempts=3, backoff_base=0.001, backoff_max=0.002)


def _square(n: int) -> int:
    return n * n


def _flaky_once(arg):
    """Raises on item 3 exactly once (a flag file remembers), then heals
    — the shape of a real transient failure, not an injected one."""
    n, flag = arg
    if n == 3 and not os.path.exists(flag):
        with open(flag, "w"):
            pass
        raise RuntimeError("transient failure")
    return n * n


def _boom_on_two(n):
    if n == 2:
        raise RuntimeError("permanent failure")
    return n


def _fresh_registry():
    registry = global_registry()
    registry.reset()
    return registry


class TestSerialPath:
    def test_passthrough_without_faults(self):
        with ResilientScheduler(SerialScheduler(), policy=FAST) as scheduler:
            assert scheduler.map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty_map(self):
        with ResilientScheduler(SerialScheduler(), policy=FAST) as scheduler:
            assert scheduler.map(_square, []) == []

    def test_retries_transient_raise(self):
        registry = _fresh_registry()
        plan = ScriptedFaultPlan({("1:1", 1): "raise", ("1:1", 2): "raise"})
        with ResilientScheduler(SerialScheduler(), policy=FAST,
                                fault_plan=plan) as scheduler:
            assert scheduler.map(_square, [5, 6, 7]) == [25, 36, 49]
        assert registry.counter("resilience.retries").value == 2
        assert registry.counter("resilience.injected_faults").value == 2
        assert registry.counter("resilience.jobs_failed").value == 0

    def test_retries_corrupt_result(self):
        registry = _fresh_registry()
        plan = ScriptedFaultPlan({("1:0", 1): "corrupt"})
        with ResilientScheduler(SerialScheduler(), policy=FAST,
                                fault_plan=plan) as scheduler:
            assert scheduler.map(_square, [4]) == [16]
        assert registry.counter("resilience.corrupt_results").value == 1

    def test_crash_converted_in_process(self):
        # Serial execution cannot lose a worker; an injected crash is
        # converted to an ordinary (retryable) exception.
        plan = ScriptedFaultPlan({("1:0", 1): "crash"})
        with ResilientScheduler(SerialScheduler(), policy=FAST,
                                fault_plan=plan) as scheduler:
            assert scheduler.map(_square, [2]) == [4]

    def test_exhaustion_raises_typed_error(self):
        plan = ScriptedFaultPlan({("1:0", attempt): "raise"
                                  for attempt in (1, 2, 3)})
        with ResilientScheduler(SerialScheduler(), policy=FAST,
                                fault_plan=plan) as scheduler:
            with pytest.raises(JobRetryExhaustedError) as excinfo:
                scheduler.map(_square, [1])
        assert excinfo.value.key == "1:0"
        assert excinfo.value.attempts == 3

    def test_map_resilient_returns_failure_slots(self):
        registry = _fresh_registry()
        plan = ScriptedFaultPlan({("1:1", attempt): "raise"
                                  for attempt in (1, 2, 3)})
        settled = []
        with ResilientScheduler(SerialScheduler(), policy=FAST,
                                fault_plan=plan) as scheduler:
            results = scheduler.map_resilient(
                _square, [1, 2, 3],
                on_result=lambda index, value: settled.append(index),
            )
        assert results[0] == 1 and results[2] == 9
        failure = results[1]
        assert isinstance(failure, JobFailure)
        assert (failure.index, failure.kind, failure.attempts) == (1, "error", 3)
        assert sorted(settled) == [0, 1, 2]
        assert registry.counter("resilience.jobs_failed").value == 1

    def test_backoff_delays_follow_policy(self):
        plan = ScriptedFaultPlan({("1:0", 1): "raise", ("1:0", 2): "raise"})
        scheduler = ResilientScheduler(SerialScheduler(), policy=FAST,
                                       fault_plan=plan)
        slept = []
        scheduler._sleep = slept.append
        assert scheduler.map(_square, [3]) == [9]
        assert slept == [backoff_delay(FAST, 1, "1:0"),
                         backoff_delay(FAST, 2, "1:0")]

    def test_batches_are_keyed_independently(self):
        # The second map's jobs draw under batch 2, so a batch-1 script
        # leaves them untouched.
        plan = ScriptedFaultPlan({("1:0", attempt): "raise"
                                  for attempt in (1, 2, 3)})
        with ResilientScheduler(SerialScheduler(), policy=FAST,
                                fault_plan=plan) as scheduler:
            assert isinstance(
                scheduler.map_resilient(_square, [1])[0], JobFailure
            )
            assert scheduler.map(_square, [1]) == [1]


class TestJobFailureTaxonomy:
    def test_to_error_by_kind(self):
        make = lambda kind: JobFailure(0, "1:0", kind, "boom", 3)
        assert isinstance(make("timeout").to_error(), JobTimeoutError)
        assert isinstance(make("crash").to_error(), WorkerCrashError)
        assert isinstance(make("error").to_error(), JobRetryExhaustedError)
        assert isinstance(make("corrupt").to_error(), JobRetryExhaustedError)


class TestPoolPath:
    def test_passthrough_preserves_order(self):
        with ProcessPoolScheduler(2) as pool:
            with ResilientScheduler(pool, policy=FAST) as scheduler:
                assert scheduler.map(_square, list(range(8))) == [
                    n * n for n in range(8)
                ]

    def test_retries_injected_raise_under_pool(self):
        registry = _fresh_registry()
        plan = ScriptedFaultPlan({("1:2", 1): "raise"})
        with ProcessPoolScheduler(2) as pool:
            with ResilientScheduler(pool, policy=FAST,
                                    fault_plan=plan) as scheduler:
                assert scheduler.map(_square, list(range(5))) == [
                    n * n for n in range(5)
                ]
        assert registry.counter("resilience.injected_faults").value == 1
        assert registry.counter("resilience.pool_rebuilds").value == 0

    def test_worker_crash_rebuilds_pool(self):
        registry = _fresh_registry()
        plan = ScriptedFaultPlan({("1:1", 1): "crash"})
        with ProcessPoolScheduler(2) as pool:
            with ResilientScheduler(pool, policy=FAST,
                                    fault_plan=plan) as scheduler:
                assert scheduler.map(_square, list(range(4))) == [
                    0, 1, 4, 9
                ]
                assert not scheduler._degraded
        assert registry.counter("resilience.pool_rebuilds").value >= 1
        assert registry.counter("resilience.crashes").value >= 1

    def test_hang_trips_timeout_and_recovers(self):
        registry = _fresh_registry()
        plan = ScriptedFaultPlan({("1:0", 1): "hang"}, hang_seconds=20.0)
        policy = RetryPolicy(max_attempts=3, timeout_seconds=0.4,
                             backoff_base=0.001, backoff_max=0.002)
        with ProcessPoolScheduler(2) as pool:
            with ResilientScheduler(pool, policy=policy,
                                    fault_plan=plan) as scheduler:
                assert scheduler.map(_square, [1, 2]) == [1, 4]
        assert registry.counter("resilience.timeouts").value >= 1
        assert registry.counter("resilience.pool_rebuilds").value >= 1

    def test_degrades_to_serial_after_rebuild_budget(self):
        registry = _fresh_registry()
        plan = ScriptedFaultPlan({("1:0", 1): "crash"})
        policy = RetryPolicy(max_attempts=3, backoff_base=0.001,
                             backoff_max=0.002, max_pool_rebuilds=0)
        with ProcessPoolScheduler(2) as pool:
            with ResilientScheduler(pool, policy=policy,
                                    fault_plan=plan) as scheduler:
                assert scheduler.map(_square, list(range(4))) == [
                    0, 1, 4, 9
                ]
                assert scheduler._degraded
        assert registry.counter("resilience.serial_fallbacks").value == 1

    def test_timeout_exhaustion_is_typed(self):
        # Every attempt of job 0 hangs past the deadline: the job fails
        # permanently as a timeout; job 1 still completes.
        plan = ScriptedFaultPlan(
            {("1:0", attempt): "hang" for attempt in (1, 2)},
            hang_seconds=20.0,
        )
        policy = RetryPolicy(max_attempts=2, timeout_seconds=0.3,
                             backoff_base=0.001, backoff_max=0.002,
                             max_pool_rebuilds=8)
        with ProcessPoolScheduler(2) as pool:
            with ResilientScheduler(pool, policy=policy,
                                    fault_plan=plan) as scheduler:
                results = scheduler.map_resilient(_square, [0, 1])
        failure = results[0]
        assert isinstance(failure, JobFailure)
        assert failure.kind == "timeout"
        assert isinstance(failure.to_error(), JobTimeoutError)
        assert results[1] == 1


class TestOptimisticFastPath:
    """With no fault plan and no timeout, pool batches take one chunked
    unsupervised pass; supervision only engages when that pass fails."""

    def test_real_transient_exception_recovers(self, tmp_path):
        registry = _fresh_registry()
        flag = str(tmp_path / "failed-once")
        items = [(n, flag) for n in range(5)]
        with ProcessPoolScheduler(2) as pool:
            with ResilientScheduler(pool, policy=FAST) as scheduler:
                assert scheduler.map(_flaky_once, items) == [
                    n * n for n in range(5)
                ]
        assert registry.counter("resilience.errors").value >= 1

    def test_permanent_exception_exhausts_whole_batch_budget(self):
        policy = RetryPolicy(max_attempts=1)
        with ProcessPoolScheduler(2) as pool:
            with ResilientScheduler(pool, policy=policy) as scheduler:
                results = scheduler.map_resilient(_boom_on_two, [1, 2, 3])
        # A failed chunked pass charges the whole batch one attempt; at
        # max_attempts=1 that exhausts every job.
        assert all(isinstance(value, JobFailure) for value in results)
        assert all(failure.attempts == 1 for failure in results)


class TestLifecycle:
    def test_close_delegates_and_is_idempotent(self):
        pool = ProcessPoolScheduler(2)
        scheduler = ResilientScheduler(pool, policy=FAST)
        scheduler.map(_square, [1, 2])
        scheduler.close()
        scheduler.close()
        assert pool._executor is None

    def test_properties_delegate(self):
        with ProcessPoolScheduler(3) as pool:
            scheduler = ResilientScheduler(pool, policy=FAST)
            assert scheduler.jobs == 3
            assert scheduler.profiler is None
            assert "ResilientScheduler" in repr(scheduler)
