"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RenderState
from repro.core import predict_occluded
from repro.core.rendering_elimination import RenderingElimination
from repro.geom import ScreenTriangle, VertexAttributes
from repro.hw import FVPEntry, FVPType, LayerBuffer, SignatureBuffer, ZBuffer
from repro.hw.signature_buffer import combine_signature
from repro.math3d import Vec2


class TestSignatureProperties:
    crcs = st.lists(st.integers(min_value=0, max_value=2**32 - 1),
                    min_size=0, max_size=20)

    @given(crcs)
    def test_same_sequence_same_signature(self, crc_list):
        a = 0
        b = 0
        for crc in crc_list:
            a = combine_signature(a, crc)
            b = combine_signature(b, crc)
        assert a == b

    @given(crcs, st.integers(min_value=0, max_value=2**32 - 1))
    def test_appending_changes_signature(self, crc_list, extra):
        base = 0
        for crc in crc_list:
            base = combine_signature(base, crc)
        extended = combine_signature(base, extra)
        assert extended != base or not crc_list  # CRC32 of 4 bytes never
        # maps a state to itself for all inputs; allow the vacuous case.

    @given(st.data())
    def test_signature_buffer_matches_iff_same_stream(self, data):
        crc_values = st.integers(min_value=0, max_value=2**16)
        first = data.draw(st.lists(crc_values, max_size=8))
        second = data.draw(st.lists(crc_values, max_size=8))
        buffer = SignatureBuffer(1)
        for crc in first:
            buffer.update(0, crc)
        buffer.rotate_frame()
        for crc in second:
            buffer.update(0, crc)
        if first == second:
            assert buffer.matches_previous(0)
        # (different streams may collide in principle; CRC collisions over
        # these tiny domains do not occur for identical prefixes)


class TestPredictionProperties:
    @given(
        st.booleans(),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.integers(min_value=0, max_value=100),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.integers(min_value=0, max_value=100),
        st.booleans(),
    )
    def test_prediction_is_deterministic_and_total(
        self, writes_z, z_near, layer, fvp_value, fvp_layer, fvp_is_woz
    ):
        entry = (
            FVPEntry(FVPType.WOZ, fvp_value)
            if fvp_is_woz
            else FVPEntry(FVPType.NWOZ, fvp_layer)
        )
        first = predict_occluded(entry, writes_z, z_near, layer)
        second = predict_occluded(entry, writes_z, z_near, layer)
        assert first == second
        assert isinstance(first, bool)

    @given(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_woz_rule_is_conservative(self, z_near, z_far):
        """A primitive is labeled occluded only when strictly farther
        than the FVP: z_near <= Z_far can never be predicted occluded."""
        entry = FVPEntry(FVPType.WOZ, z_far)
        if z_near <= z_far:
            assert not predict_occluded(entry, True, z_near, 0)

    @given(st.integers(min_value=0, max_value=50),
           st.integers(min_value=0, max_value=50))
    def test_nwoz_rule_strict(self, layer, l_far):
        entry = FVPEntry(FVPType.NWOZ, l_far)
        assert predict_occluded(entry, False, 0.0, layer) == (layer < l_far)


class TestLayerBufferProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=10),   # layer
                st.booleans(),                            # is_woz
                st.integers(min_value=0, max_value=15),   # column stripe
            ),
            max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_l_far_is_min_of_written_or_clear(self, writes):
        buffer = LayerBuffer(4, 4)
        for layer, is_woz, column in writes:
            mask = np.zeros((4, 4), dtype=bool)
            mask[:, column % 4] = True
            buffer.write(mask, layer, is_woz)
        assert buffer.l_far <= min(
            (layer for layer, _, _ in writes), default=0
        ) or buffer.l_far >= 0
        assert buffer.l_far == int(buffer.layers.min())

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_z_far_tracks_running_min_per_pixel(self, depths):
        z = ZBuffer(2, 2)
        mask = np.ones((2, 2), dtype=bool)
        expected = 1.0
        for depth in depths:
            plane = np.full((2, 2), depth)
            passing = z.test(mask, plane)
            z.write(passing, plane)
            expected = min(expected, depth)
        assert z.z_far == pytest.approx(expected)


class TestRenderingEliminationProperties:
    @given(
        st.lists(st.tuples(st.integers(min_value=0, max_value=2**16),
                           st.booleans()), max_size=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_filtered_signature_ignores_occluded(self, primitives):
        """The EVR-filtered signature equals the unfiltered signature of
        just the visible subset."""
        filtered = RenderingElimination(1, filter_occluded=True)
        reference = RenderingElimination(1, filter_occluded=False)
        for crc, occluded in primitives:
            filtered.on_primitive_binned(0, crc, occluded)
            if not occluded:
                reference.on_primitive_binned(0, crc, False)
        assert (
            filtered.signature_buffer.current_signature(0)
            == reference.signature_buffer.current_signature(0)
        )
