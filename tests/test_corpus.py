"""Tests for the adversarial workload corpus and its differential gate.

Covers the four layers end to end: the seeded stress families
(determinism, renderability), the on-disk corpus store (round-trip,
integrity), the delta-debugging shrinker, and the differential replay
gate — including the flagship property: an injected pixel fault is
detected, minimized, quarantined, and the quarantined trace reproduces
the violation standalone.
"""

import io
import json
import os

import pytest

from repro import GPUConfig
from repro.cli import main
from repro.commands import Frame, FrameStream
from repro.commands.draw import DrawCommand
from repro.commands.state import RenderState
from repro.commands.trace import load_trace, save_trace
from repro.corpus import (
    FAMILIES,
    build_corpus,
    family_names,
    family_stream,
    get_family,
    load_corpus,
    make_pixel_corruptor,
    read_manifest,
    replay_families,
    shrink_stream,
    trace_filename,
)
from repro.errors import CorpusError
from repro.geom import quad
from repro.math3d import Vec3, Vec4, orthographic
from repro.resilience import FaultPlan
from repro.validate import validate_stream

CONFIG = GPUConfig.tiny(frames=3)
BACKENDS = ("python", "numpy")


def encode(stream: FrameStream) -> str:
    buffer = io.StringIO()
    save_trace(stream, buffer)
    return buffer.getvalue()


class TestFamilies:
    def test_registry_names_sorted_and_complete(self):
        names = family_names()
        assert names == tuple(sorted(FAMILIES))
        assert "degenerate" in names and "hidden-motion" in names
        assert len(names) >= 7

    def test_unknown_family_raises(self):
        with pytest.raises(CorpusError, match="unknown stress family"):
            get_family("doom")
        with pytest.raises(CorpusError):
            family_stream("doom", CONFIG)

    @pytest.mark.parametrize("name", family_names())
    def test_streams_deterministic_and_nontrivial(self, name):
        first = family_stream(name, CONFIG)
        second = family_stream(name, CONFIG)
        assert encode(first) == encode(second)
        frames = list(first)
        assert len(frames) == CONFIG.frames
        assert all(frame.triangle_count > 0 for frame in frames)

    def test_seed_changes_the_stream(self):
        base = family_stream("sliver", CONFIG, seed=1)
        other = family_stream("sliver", CONFIG, seed=2)
        assert encode(base) != encode(other)


class TestStore:
    def test_build_and_load_round_trip(self, tmp_path):
        directory = str(tmp_path / "corpus")
        names = ["degenerate", "sliver"]
        manifest = build_corpus(directory, CONFIG, names=names)
        assert sorted(manifest["families"]) == sorted(names)
        streams, loaded = load_corpus(directory)
        assert sorted(streams) == sorted(names)
        for name in names:
            assert encode(streams[name]) == encode(
                family_stream(name, CONFIG))
            record = loaded["families"][name]
            assert record["seed"] == get_family(name).default_seed
            assert record["frames"] == CONFIG.frames

    def test_tampered_trace_rejected(self, tmp_path):
        directory = str(tmp_path / "corpus")
        build_corpus(directory, CONFIG, names=["sliver"])
        path = os.path.join(directory, trace_filename("sliver"))
        with open(path, "a") as handle:
            handle.write(" ")
        with pytest.raises(CorpusError, match="does not match"):
            load_corpus(directory)

    def test_missing_manifest_and_bad_version(self, tmp_path):
        with pytest.raises(CorpusError, match="no corpus manifest"):
            read_manifest(str(tmp_path))
        directory = str(tmp_path / "corpus")
        build_corpus(directory, CONFIG, names=["sliver"])
        manifest_path = os.path.join(directory, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["version"] = 999
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(CorpusError, match="unsupported corpus version"):
            read_manifest(directory)

    def test_unknown_family_requested(self, tmp_path):
        directory = str(tmp_path / "corpus")
        build_corpus(directory, CONFIG, names=["sliver"])
        with pytest.raises(CorpusError, match="no family"):
            load_corpus(directory, names=["degenerate"])


def synthetic_stream(num_frames=4, draws_per_frame=4):
    """Frames of labeled quads; command position 2 is labeled "bad"."""
    projection = orthographic(0, 32, 24, 0, -1.0, 1.0)

    def build(index):
        commands = []
        for position in range(draws_per_frame):
            mesh = quad(Vec3(2.0 * position, 2.0, 0.0),
                        Vec3(4, 0, 0), Vec3(0, 4, 0),
                        Vec4(0.5, 0.5, 0.5, 1.0))
            commands.append(DrawCommand.from_mesh(
                mesh, state=RenderState.sprite_2d(),
                label="bad" if position == 2 else f"ok{position}"))
        return Frame(commands, projection=projection, index=index)

    return FrameStream(build, num_frames)


class TestShrinker:
    def test_minimizes_to_single_frame_and_draw(self):
        stream = synthetic_stream()

        def still_fails(candidate):
            frames = list(candidate)
            return bool(frames) and any(
                command.label == "bad" for command in frames[0].commands)

        outcome = shrink_stream(stream, still_fails)
        assert outcome.minimal and outcome.reduced
        assert outcome.frames == 1
        assert outcome.draws == 1
        assert list(outcome.stream)[0].commands[0].label == "bad"
        assert outcome.original_frames == 4
        assert outcome.original_draws == 16

    def test_respects_eval_budget(self):
        stream = synthetic_stream(num_frames=6, draws_per_frame=6)
        evals = []

        def still_fails(candidate):
            evals.append(1)
            return True

        outcome = shrink_stream(stream, still_fails, max_evals=5)
        assert outcome.evals <= 5
        assert len(evals) <= 5

    def test_non_reproducing_failure_falls_back_to_original(self):
        stream = synthetic_stream()
        calls = {"n": 0}

        def flaky(candidate):
            calls["n"] += 1
            return calls["n"] == 1  # fails once, then never again

        outcome = shrink_stream(stream, flaky)
        assert not outcome.minimal
        assert encode(outcome.stream) == encode(stream)


class TestPixelCorruptor:
    def test_none_without_pixel_rate(self):
        assert make_pixel_corruptor(None, "fam") is None
        plan = FaultPlan({"crash": 1.0})
        assert make_pixel_corruptor(plan, "fam") is None

    def test_corruptor_changes_exactly_one_pixel(self):
        from repro.pipeline import GPU, PipelineMode
        plan = FaultPlan({"pixel": 1.0}, seed=9)
        corruptor = make_pixel_corruptor(plan, "fam")
        stream = family_stream("sliver", CONFIG)
        result = GPU(CONFIG, PipelineMode.BASELINE).render_stream(stream)
        mangled = corruptor("baseline", "python", result)
        diff = (mangled.frames[0].image != result.frames[0].image)
        assert diff.sum() == 1
        # Later frames are untouched.
        import numpy as np
        for expected, actual in zip(result.frames[1:], mangled.frames[1:]):
            np.testing.assert_array_equal(expected.image, actual.image)


class TestGate:
    def test_clean_families_pass_differentially(self):
        streams = {name: family_stream(name, CONFIG)
                   for name in ("degenerate", "sliver")}
        results = replay_families(streams, CONFIG, backends=BACKENDS)
        assert [result.family for result in results] == list(streams)
        for result in results:
            assert result.passed, result.report.render()
            labels = " ".join(result.report.checks)
            assert "[python]" in labels and "[numpy]" in labels

    def test_injected_fault_detected_shrunk_quarantined(self, tmp_path):
        quarantine = str(tmp_path / "quarantine")
        plan = FaultPlan({"pixel": 1.0}, seed=5)
        streams = {"degenerate": family_stream("degenerate", CONFIG)}
        results = replay_families(
            streams, CONFIG, backends=BACKENDS, fault_plan=plan,
            quarantine_dir=quarantine)
        (result,) = results
        assert not result.passed
        assert result.shrunk is not None and result.shrunk.reduced
        assert result.shrunk.frames == 1
        assert os.path.exists(result.trace_path)
        assert os.path.exists(result.report_path)
        with open(result.report_path) as handle:
            document = json.load(handle)
        assert document["report"] == "corpus-violation"
        assert document["family"] == "degenerate"
        assert document["fault_plan"] == "pixel:1"
        assert document["fault_seed"] == 5
        assert document["backends"] == list(BACKENDS)
        assert document["failures"]
        assert document["shrink"]["minimal"]
        assert "repro trace replay" in document["replay_hint"]
        assert "--backends python numpy" in document["replay_hint"]

        # The flagship property: the minimized quarantined trace
        # reproduces the violation standalone.
        minimized = load_trace(result.trace_path)
        assert len(minimized) == result.shrunk.frames
        corruptor = make_pixel_corruptor(plan, "degenerate")
        report = validate_stream(minimized, CONFIG, backends=BACKENDS,
                                 corruptor=corruptor)
        assert not report.passed
        # Without the fault the minimized trace is clean: the violation
        # is the injection, not the shrink.
        clean = validate_stream(minimized, CONFIG, backends=BACKENDS)
        assert clean.passed, clean.render()

    def test_strict_stops_at_first_violation(self):
        plan = FaultPlan({"pixel": 1.0}, seed=5)
        streams = {name: family_stream(name, CONFIG)
                   for name in ("degenerate", "sliver")}
        results = replay_families(streams, CONFIG, fault_plan=plan,
                                  strict=True)
        assert len(results) == 1
        assert not results[0].passed

    def test_no_shrink_quarantines_full_stream(self, tmp_path):
        quarantine = str(tmp_path / "quarantine")
        plan = FaultPlan({"pixel": 1.0}, seed=5)
        streams = {"sliver": family_stream("sliver", CONFIG)}
        (result,) = replay_families(
            streams, CONFIG, fault_plan=plan,
            quarantine_dir=quarantine, shrink=False)
        assert result.shrunk is None
        assert len(load_trace(result.trace_path)) == CONFIG.frames


class TestCorpusCLI:
    ARGS = ["--frames", "3", "--width", "64", "--height", "48"]

    def test_build_list_replay_round_trip(self, tmp_path, capsys):
        directory = str(tmp_path / "tiny")
        assert main(["corpus", "build", "--dir", directory,
                     "--families", "degenerate", "sliver"]
                    + self.ARGS) == 0
        assert "built 2 families" in capsys.readouterr().out
        assert main(["corpus", "list", "--dir", directory]) == 0
        out = capsys.readouterr().out
        assert "degenerate" in out and "sliver" in out
        assert main(["corpus", "replay", "--dir", directory,
                     "--quarantine", str(tmp_path / "q")]) == 0
        assert "all 2 families passed" in capsys.readouterr().out

    def test_list_registry_without_dir(self, capsys):
        assert main(["corpus", "list"]) == 0
        assert "registered stress families" in capsys.readouterr().out

    def test_replay_detects_injected_fault(self, tmp_path, capsys):
        directory = str(tmp_path / "tiny")
        quarantine = str(tmp_path / "q")
        assert main(["corpus", "build", "--dir", directory,
                     "--families", "degenerate"] + self.ARGS) == 0
        capsys.readouterr()
        assert main(["corpus", "replay", "--dir", directory,
                     "--quarantine", quarantine,
                     "--inject-faults", "pixel:1.0",
                     "--fault-seed", "7"]) == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out
        assert os.path.exists(
            os.path.join(quarantine, "degenerate.trace.json"))
        assert os.path.exists(
            os.path.join(quarantine, "degenerate.violation.json"))

    def test_replay_in_memory_without_dir(self, tmp_path, capsys,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["corpus", "replay", "--families", "sliver",
                     "--backends", "python"] + self.ARGS) == 0
        assert "all 1 families passed" in capsys.readouterr().out

    def test_replay_missing_dir_is_usage_error(self, tmp_path, capsys):
        assert main(["corpus", "replay",
                     "--dir", str(tmp_path / "nope")]) == 2
        assert "no corpus manifest" in capsys.readouterr().err


class TestTraceCLI:
    ARGS = ["--frames", "3", "--width", "64", "--height", "48"]

    def test_record_replay_benchmark(self, tmp_path, capsys):
        path = str(tmp_path / "cde.trace.json")
        assert main(["trace", "record", "cde", "--output", path]
                    + self.ARGS) == 0
        assert "round-trip bit-identical" in capsys.readouterr().out
        assert main(["trace", "replay", path] + self.ARGS) == 0
        assert "checks passed" in capsys.readouterr().out

    def test_record_stress_family(self, tmp_path, capsys):
        path = str(tmp_path / "sliver.trace.json")
        assert main(["trace", "record", "sliver", "--output", path]
                    + self.ARGS) == 0
        stream = load_trace(path)
        assert encode(stream) == encode(
            family_stream("sliver", CONFIG))

    def test_record_unknown_target_is_usage_error(self, capsys):
        assert main(["trace", "record", "doom"]) == 2
        assert "unknown trace source" in capsys.readouterr().err

    def test_replay_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["trace", "replay",
                     str(tmp_path / "nope.json")]) == 2
        assert "no trace file" in capsys.readouterr().err

    def test_replay_reproduces_quarantined_violation(self, tmp_path,
                                                     capsys):
        # End-to-end: gate quarantines a minimized repro; `repro trace
        # replay` with the report's fault spec reproduces it.
        quarantine = str(tmp_path / "q")
        plan = FaultPlan({"pixel": 1.0}, seed=11)
        streams = {"sliver": family_stream("sliver", CONFIG)}
        (result,) = replay_families(streams, CONFIG,
                                    backends=("python",),
                                    fault_plan=plan,
                                    quarantine_dir=quarantine)
        assert not result.passed
        capsys.readouterr()
        assert main(["trace", "replay", result.trace_path,
                     "--backends", "python",
                     "--inject-faults", "pixel:1.0",
                     "--fault-seed", "11"] + self.ARGS) == 1
        assert "[FAIL]" in capsys.readouterr().out
