"""Tests for the experiment harness: runner, tables, experiments."""

import pytest

from repro import GPUConfig
from repro.harness import (
    figure6_energy,
    figure7_time,
    figure8_overshading,
    figure9_redundant_tiles,
    figure10_energy_vs_re,
    figure11_time_vs_re,
    format_table,
    run_benchmark,
    table2_parameters,
    table3_suite,
)
from repro.harness.runner import SuiteRunner, run_suite
from repro.pipeline import PipelineMode


@pytest.fixture(scope="module")
def runner():
    """Shared memoizing runner on a small config."""
    return SuiteRunner(GPUConfig.tiny(frames=5))


class TestFormatTable:
    def test_alignment_and_precision(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["bb", 2]],
                            precision=2)
        lines = text.splitlines()
        assert lines[0].endswith("value")
        assert "1.23" in text
        assert "2" in text

    def test_title(self):
        text = format_table(["x"], [[1]], title="hello")
        assert text.splitlines()[0] == "hello"


class TestRunner:
    def test_run_benchmark_metrics(self):
        metrics = run_benchmark("hop", PipelineMode.BASELINE,
                                GPUConfig.tiny(frames=3))
        assert metrics.benchmark == "hop"
        assert metrics.mode == "baseline"
        assert metrics.total_cycles > 0
        assert metrics.energy_joules > 0
        assert metrics.redundant_tile_rate == 0.0

    def test_suite_runner_memoizes(self, runner):
        first = runner.run("hop", PipelineMode.BASELINE)
        second = runner.run("hop", PipelineMode.BASELINE)
        assert first is second

    def test_run_suite_subset(self):
        results = run_suite(
            [PipelineMode.BASELINE], GPUConfig.tiny(frames=2),
            benchmarks=["hop"],
        )
        assert ("hop", "baseline") in results


class TestTables:
    def test_table2_renders(self):
        result = table2_parameters()
        text = result.render()
        assert "1196x768" in text
        assert "cache:l2" in text
        assert "queue:fragment" in text

    def test_table3_lists_suite(self):
        result = table3_suite()
        assert len(result.rows) == 20
        assert "Candy Crush Saga" in result.render()


class TestFigures:
    """Each figure function runs on a 2-benchmark subset for speed; the
    full-suite versions are the bench targets."""

    BENCHES_2D = ["cde", "hop"]
    BENCHES_3D = ["tib"]

    def test_figure6(self, runner):
        result = figure6_energy(runner, benchmarks=self.BENCHES_2D)
        assert result.rows[-1][0] == "average"
        for row in result.rows[:-1]:
            assert 0.0 < row[1] <= 1.5  # normalized energy
        assert "avg_energy_savings" in result.summary

    def test_figure7(self, runner):
        result = figure7_time(runner, benchmarks=self.BENCHES_2D)
        for row in result.rows[:-1]:
            geometry, raster, total = row[1], row[2], row[3]
            assert total == pytest.approx(geometry + raster)

    def test_figure8(self, runner):
        result = figure8_overshading(runner, benchmarks=self.BENCHES_3D)
        for row in result.rows:
            baseline, evr, oracle = row[1], row[2], row[3]
            assert oracle <= evr + 1e-9
            assert evr <= baseline + 1e-9

    def test_figure9(self, runner):
        result = figure9_redundant_tiles(runner, benchmarks=self.BENCHES_2D)
        for row in result.rows[:-1]:
            re_rate, evr_rate, oracle_rate = row[1], row[2], row[3]
            assert 0.0 <= re_rate <= 1.0
            assert evr_rate <= oracle_rate + 0.05

    def test_figure10(self, runner):
        result = figure10_energy_vs_re(runner, benchmarks=self.BENCHES_2D)
        assert result.rows[-1][0] == "average"
        assert result.summary["avg_energy_vs_re"] > 0

    def test_figure11(self, runner):
        result = figure11_time_vs_re(runner, benchmarks=self.BENCHES_2D)
        for row in result.rows[:-1]:
            assert row[3] == pytest.approx(row[1] + row[2])
            assert row[6] == pytest.approx(row[4] + row[5])

    def test_render_does_not_crash(self, runner):
        text = figure9_redundant_tiles(runner,
                                       benchmarks=self.BENCHES_2D).render()
        assert "Figure 9" in text
