"""Tests for the per-tile on-chip buffers (Z, Color, Layer)."""

import numpy as np
import pytest

from repro.hw import ColorBuffer, LayerBuffer, ZBuffer


def full_mask():
    return np.ones((4, 4), dtype=bool)


def depth_plane(value):
    return np.full((4, 4), value)


class TestZBuffer:
    def test_clear_to_far(self):
        z = ZBuffer(4, 4, clear_depth=1.0)
        assert z.z_far == 1.0

    def test_strict_less_test(self):
        z = ZBuffer(4, 4)
        z.write(full_mask(), depth_plane(0.5))
        closer = z.test(full_mask(), depth_plane(0.4))
        equal = z.test(full_mask(), depth_plane(0.5))
        farther = z.test(full_mask(), depth_plane(0.6))
        assert closer.all()
        assert not equal.any()
        assert not farther.any()

    def test_less_equal_mode(self):
        z = ZBuffer(4, 4)
        z.write(full_mask(), depth_plane(0.5))
        assert z.test(full_mask(), depth_plane(0.5), less_equal=True).all()

    def test_partial_mask(self):
        z = ZBuffer(4, 4)
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = True
        count = z.write(mask, depth_plane(0.3))
        assert count == 1
        assert z.depth[0, 0] == 0.3
        assert z.depth[1, 1] == 1.0

    def test_z_far_tracks_maximum(self):
        z = ZBuffer(4, 4)
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = True
        z.write(mask, depth_plane(0.3))
        assert z.z_far == 1.0  # untouched pixels stay at clear depth
        z.write(full_mask(), depth_plane(0.2))
        assert z.z_far == pytest.approx(0.2)

    def test_preload(self):
        z = ZBuffer(4, 4)
        z.preload(depth_plane(0.25))
        assert z.z_far == 0.25

    def test_clear_resets(self):
        z = ZBuffer(4, 4)
        z.write(full_mask(), depth_plane(0.1))
        z.clear()
        assert z.z_far == 1.0


class TestColorBuffer:
    def test_clear_color(self):
        cb = ColorBuffer(4, 4, clear_color=(0.1, 0.2, 0.3, 1.0))
        assert np.allclose(cb.color[0, 0], [0.1, 0.2, 0.3, 1.0])

    def test_opaque_write(self):
        cb = ColorBuffer(4, 4)
        rgba = np.zeros((4, 4, 4))
        rgba[:, :] = [1.0, 0.0, 0.0, 1.0]
        count = cb.write(full_mask(), rgba)
        assert count == 16
        assert np.allclose(cb.color[2, 2], [1, 0, 0, 1])

    def test_alpha_blend_half(self):
        cb = ColorBuffer(4, 4, clear_color=(0.0, 0.0, 0.0, 1.0))
        rgba = np.zeros((4, 4, 4))
        rgba[:, :] = [1.0, 1.0, 1.0, 0.5]
        cb.blend(full_mask(), rgba)
        assert np.allclose(cb.color[0, 0, :3], [0.5, 0.5, 0.5])

    def test_alpha_one_blend_equals_write(self):
        a = ColorBuffer(4, 4)
        b = ColorBuffer(4, 4)
        rgba = np.zeros((4, 4, 4))
        rgba[:, :] = [0.3, 0.6, 0.9, 1.0]
        a.blend(full_mask(), rgba)
        b.write(full_mask(), rgba)
        assert np.allclose(a.color, b.color)

    def test_blend_not_commutative(self):
        red = np.zeros((4, 4, 4))
        red[:, :] = [1.0, 0.0, 0.0, 0.5]
        blue = np.zeros((4, 4, 4))
        blue[:, :] = [0.0, 0.0, 1.0, 0.5]
        ab = ColorBuffer(4, 4)
        ab.blend(full_mask(), red)
        ab.blend(full_mask(), blue)
        ba = ColorBuffer(4, 4)
        ba.blend(full_mask(), blue)
        ba.blend(full_mask(), red)
        assert not np.allclose(ab.color, ba.color)

    def test_snapshot_is_copy(self):
        cb = ColorBuffer(4, 4)
        snap = cb.snapshot()
        cb.clear()
        snap[0, 0, 0] = 42.0
        assert cb.color[0, 0, 0] != 42.0

    def test_byte_size_rgba8(self):
        assert ColorBuffer(16, 16).byte_size == 16 * 16 * 4


class TestLayerBuffer:
    def test_clear_layer_is_zero(self):
        lb = LayerBuffer(4, 4)
        assert lb.l_far == 0

    def test_l_far_is_minimum_visible_layer(self):
        lb = LayerBuffer(4, 4)
        lb.write(full_mask(), 2, is_woz=False)
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, :] = True
        lb.write(mask, 5, is_woz=False)
        assert lb.l_far == 2

    def test_zr_register_tracks_last_woz(self):
        lb = LayerBuffer(4, 4)
        lb.write(full_mask(), 2, is_woz=True)
        assert lb.zr_register == 2
        lb.write(full_mask(), 3, is_woz=False)
        assert lb.zr_register == 2

    def test_fvp_type_woz_when_zr_equals_lfar(self):
        lb = LayerBuffer(4, 4)
        lb.write(full_mask(), 2, is_woz=True)
        assert lb.fvp_is_woz  # L_far == 2 == ZR

    def test_fvp_type_nwoz_when_covered_by_sprite(self):
        lb = LayerBuffer(4, 4)
        lb.write(full_mask(), 2, is_woz=True)
        lb.write(full_mask(), 3, is_woz=False)  # NWOZ covers everything
        assert lb.l_far == 3
        assert not lb.fvp_is_woz

    def test_empty_mask_does_not_update_zr(self):
        lb = LayerBuffer(4, 4)
        empty = np.zeros((4, 4), dtype=bool)
        lb.write(empty, 7, is_woz=True)
        assert lb.zr_register == -1

    def test_clear(self):
        lb = LayerBuffer(4, 4)
        lb.write(full_mask(), 3, is_woz=True)
        lb.clear()
        assert lb.l_far == 0
        assert lb.zr_register == -1
