"""Tests for the unified experiment spec (:mod:`repro.spec`).

Covers the properties the rest of the system builds on: serialization
round-trips preserve equality, the canonical hash is stable across
processes and sensitive only to result-affecting fields, resolution
layers compose with correct precedence and provenance, and the CLI's
spec-file path is bit-identical to the equivalent flag path.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.cli import main
from repro.config import GPUConfig
from repro.errors import ConfigError, SpecError
from repro.obs.log import reset_warn_once
from repro.pipeline import PipelineMode
from repro.spec import (
    PRESETS,
    FeatureOverrides,
    ResilienceSpec,
    RunSpec,
    WorkloadSpec,
    dumps_toml,
    parse_set,
    resolve_spec,
    spec_from_dict,
)

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


class TestRoundTrip:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_toml_round_trip_every_preset(self, preset, tmp_path):
        spec = RunSpec.preset(preset)
        path = str(tmp_path / f"{preset}.toml")
        loaded = RunSpec.from_file(spec.to_file(path))
        assert loaded == spec
        assert loaded.spec_hash() == spec.spec_hash()

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_json_round_trip_every_preset(self, preset, tmp_path):
        spec = RunSpec.preset(preset)
        path = str(tmp_path / f"{preset}.json")
        assert RunSpec.from_file(spec.to_file(path)) == spec

    def test_round_trip_with_non_defaults(self, tmp_path):
        spec = resolve_spec(sets=[
            "features.evr_reorder=false",
            "workload.benchmarks=hop,cde",
            "resilience.retries=3",
            "resilience.job_timeout=12.5",
            "obs.trace=t.json",
            "scheduler.jobs=4",
        ], env={}).spec
        path = str(tmp_path / "custom.toml")
        assert RunSpec.from_file(spec.to_file(path)) == spec

    def test_toml_emitter_parses_with_tomllib(self):
        import tomllib

        text = RunSpec.preset("paper").to_toml()
        data = tomllib.loads(text)
        assert data["gpu"]["screen_width"] == 1196
        assert spec_from_dict(data) == RunSpec.preset("paper")

    def test_float_fields_survive_toml(self, tmp_path):
        # repr(1.0) must emit "1.0" (a TOML float), not "1".
        text = dumps_toml(RunSpec().to_dict())
        assert "voltage_v = 1.0" in text


class TestSpecHash:
    def test_stable_in_fresh_subprocess(self, tmp_path):
        spec = RunSpec.preset("paper")
        path = str(tmp_path / "paper.toml")
        spec.to_file(path)
        script = textwrap.dedent(f"""
            from repro.spec import RunSpec
            print(RunSpec.from_file({path!r}).spec_hash())
        """)
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env={**os.environ, "PYTHONPATH": SRC},
        ).stdout.strip()
        assert output == spec.spec_hash()

    def test_changed_field_changes_hash(self):
        base = RunSpec()
        changed = resolve_spec(sets=["gpu.frames=11"], env={}).spec
        assert changed.gpu.frames == 11
        assert changed.spec_hash() != base.spec_hash()

    def test_feature_override_changes_hash(self):
        base = RunSpec()
        changed = resolve_spec(sets=["features.evr_reorder=false"],
                               env={}).spec
        assert changed.spec_hash() != base.spec_hash()

    def test_cost_and_energy_change_hash(self):
        base = RunSpec()
        assert resolve_spec(sets=["cost.geometry_scale=9.0"],
                            env={}).spec.spec_hash() != base.spec_hash()
        assert resolve_spec(sets=["energy.alu_op_pj=99.0"],
                            env={}).spec.spec_hash() != base.spec_hash()

    def test_execution_policy_does_not_change_hash(self):
        """Scheduler, resilience, obs and workload are bit-transparent
        execution policy: the engine guarantees identical results under
        any of them, so they must never split the cache."""
        base = RunSpec()
        policy = resolve_spec(sets=[
            "scheduler.jobs=8",
            "resilience.retries=5",
            "resilience.job_timeout=3.0",
            "obs.verbose=true",
            "obs.trace=t.json",
            "workload.benchmarks=hop",
            "workload.modes=evr",
        ], env={}).spec
        assert policy.spec_hash() == base.spec_hash()

    def test_int_float_normalization(self, tmp_path):
        # TOML `job_timeout = 30` (int) and CLI 30.0 must hash alike.
        path = tmp_path / "t.toml"
        path.write_text("[resilience]\njob_timeout = 30\n")
        from_file = RunSpec.from_file(str(path))
        assert from_file.resilience.job_timeout == 30.0
        assert isinstance(from_file.resilience.job_timeout, float)


class TestValidation:
    def test_unknown_key_rejected(self):
        with pytest.raises(SpecError, match="unknown spec key"):
            spec_from_dict({"gpu": {"screen_widht": 64}})

    def test_unknown_section_rejected(self):
        with pytest.raises(SpecError, match="unknown spec key"):
            spec_from_dict({"gpus": {}})

    def test_type_mismatch_rejected(self):
        with pytest.raises(SpecError, match="expected an integer"):
            spec_from_dict({"gpu": {"frames": "ten"}})
        with pytest.raises(SpecError, match="expected an integer"):
            spec_from_dict({"gpu": {"frames": True}})  # bool is not int

    def test_invalid_mode_rejected(self):
        with pytest.raises(SpecError, match="unknown mode"):
            WorkloadSpec(modes=("warp-speed",))

    def test_invalid_resilience_rejected(self):
        with pytest.raises(SpecError):
            ResilienceSpec(retries=0)
        with pytest.raises(SpecError):
            ResilienceSpec(job_timeout=-1.0)
        with pytest.raises(SpecError, match="inject_faults"):
            ResilienceSpec(inject_faults="explode:2.0")

    def test_gpu_validation_still_applies(self):
        # GPUConfig's own __post_init__ fires through the spec layer.
        with pytest.raises(ConfigError):
            spec_from_dict({"gpu": {"screen_width": -5}})

    def test_unreadable_file_rejected(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read spec file"):
            RunSpec.from_file(str(tmp_path / "missing.toml"))

    def test_invalid_toml_rejected(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("gpu = [unclosed\n")
        with pytest.raises(SpecError, match="invalid TOML"):
            RunSpec.from_file(str(path))


class TestFeatureOverrides:
    def test_apply_overrides_mode_features(self):
        overrides = FeatureOverrides(evr_reorder=False)
        features = overrides.apply(PipelineMode.EVR.features())
        assert features.evr_hardware and not features.evr_reorder

    def test_empty_overrides_are_identity(self):
        features = PipelineMode.EVR.features()
        assert FeatureOverrides().apply(features) is features

    def test_features_for(self):
        spec = resolve_spec(sets=["features.evr_reorder=false"], env={}).spec
        assert not spec.features_for(PipelineMode.EVR).evr_reorder
        assert spec.features_for(PipelineMode.BASELINE).early_z

    def test_invalid_override_rejected(self):
        with pytest.raises(SpecError):
            FeatureOverrides(fvp_history=0)
        with pytest.raises(SpecError):
            FeatureOverrides(prediction_point="everywhere")


@pytest.fixture
def propagating_logs():
    """Let ``repro.*`` records reach caplog even if an earlier CLI test
    called ``setup_logging`` (which turns propagation off)."""
    import logging

    logger = logging.getLogger("repro")
    saved = logger.propagate
    logger.propagate = True
    yield
    logger.propagate = saved


class TestResolution:
    def test_precedence_preset_file_cli_set(self, tmp_path):
        path = tmp_path / "s.toml"
        path.write_text("[gpu]\nframes = 7\nscreen_width = 320\n")
        resolved = resolve_spec(
            preset="paper",
            file=str(path),
            cli={"gpu": {"frames": 9}},
            sets=["gpu.screen_height=240"],
            env={},
        )
        spec = resolved.spec
        assert spec.gpu.frames == 9            # cli beats file
        assert spec.gpu.screen_width == 320    # file beats preset
        assert spec.gpu.screen_height == 240   # --set beats everything
        assert resolved.source_of("gpu.frames") == "cli"
        assert resolved.source_of("gpu.screen_width") == f"file:{path}"
        assert resolved.source_of("gpu.screen_height") == "cli:--set"
        assert resolved.source_of("gpu.tile_width") == "default"

    def test_preset_provenance(self):
        resolved = resolve_spec(preset="paper", env={})
        assert resolved.source_of("gpu.screen_width") == "preset:paper"
        assert resolved.source_of("cost") == "default"

    def test_unknown_preset_rejected(self):
        with pytest.raises(SpecError, match="unknown preset"):
            resolve_spec(preset="gigantic", env={})

    def test_env_layer_applies(self):
        resolved = resolve_spec(env={"REPRO_JOBS": "4",
                                     "REPRO_FAULTS": "raise:0.5"})
        assert resolved.spec.scheduler.jobs == 4
        assert resolved.spec.resilience.inject_faults == "raise:0.5"
        assert resolved.source_of("scheduler.jobs") == "env:REPRO_JOBS"
        assert (resolved.source_of("resilience.inject_faults")
                == "env:REPRO_FAULTS")

    def test_cli_beats_env(self):
        resolved = resolve_spec(env={"REPRO_JOBS": "4"},
                                cli={"scheduler": {"jobs": 2}})
        assert resolved.spec.scheduler.jobs == 2
        assert resolved.source_of("scheduler.jobs") == "cli"

    def test_malformed_env_warns_once_and_falls_back(self, caplog,
                                                     propagating_logs):
        reset_warn_once()
        with caplog.at_level("WARNING", logger="repro.spec"):
            first = resolve_spec(env={"REPRO_JOBS": "many"})
            second = resolve_spec(env={"REPRO_JOBS": "many"})
        assert first.spec.scheduler.jobs == 1   # fell back to serial
        assert second.spec.scheduler.jobs == 1
        warnings = [r for r in caplog.records if "REPRO_JOBS" in r.message]
        assert len(warnings) == 1               # one-shot
        assert "'many'" in warnings[0].message  # names the bad value

    def test_malformed_env_faults_warns(self, caplog, propagating_logs):
        reset_warn_once()
        with caplog.at_level("WARNING", logger="repro.spec"):
            resolved = resolve_spec(env={"REPRO_FAULTS": "explode:2.0"})
        assert resolved.spec.resilience.inject_faults == ""
        assert any("REPRO_FAULTS" in r.message for r in caplog.records)

    def test_malformed_env_jobs_warns_in_default_jobs(self, caplog,
                                                      monkeypatch,
                                                      propagating_logs):
        # Satellite: config.default_jobs (the legacy path) also names
        # the bad value instead of swallowing it silently.
        from repro.config import default_jobs

        reset_warn_once()
        monkeypatch.setenv("REPRO_JOBS", "lots")
        with caplog.at_level("WARNING", logger="repro.config"):
            assert default_jobs() == 1
            assert default_jobs() == 1
        warnings = [r for r in caplog.records if "REPRO_JOBS" in r.message]
        assert len(warnings) == 1
        assert "'lots'" in warnings[0].message


class TestParseSet:
    def test_scalars(self):
        assert parse_set("a.b=true") == ("a.b", True)
        assert parse_set("a.b=false") == ("a.b", False)
        assert parse_set("a.b=3") == ("a.b", 3)
        assert parse_set("a.b=2.5") == ("a.b", 2.5)
        assert parse_set("a.b=near") == ("a.b", "near")
        assert parse_set("a.b='true'") == ("a.b", "true")

    def test_lists(self):
        assert parse_set("w.modes=baseline,evr") == (
            "w.modes", ["baseline", "evr"]
        )

    def test_malformed_rejected(self):
        with pytest.raises(SpecError, match="malformed --set"):
            parse_set("no-equals-sign")
        with pytest.raises(SpecError, match="malformed --set"):
            parse_set("=5")

    def test_set_through_scalar_rejected(self):
        with pytest.raises(SpecError, match="not a table"):
            resolve_spec(sets=["gpu.frames.deeper=1"], env={})


class TestResilienceSpecSemantics:
    def test_armed_matrix(self):
        assert not ResilienceSpec().armed
        assert ResilienceSpec(retries=2).armed
        assert ResilienceSpec(job_timeout=1.0).armed
        assert ResilienceSpec(inject_faults="raise:0.1").armed

    def test_hang_scales_with_timeout(self):
        spec = ResilienceSpec(inject_faults="hang:1.0", job_timeout=2.0)
        assert spec.fault_plan().hang_seconds == 4.0
        untimed = ResilienceSpec(inject_faults="hang:1.0")
        assert untimed.fault_plan().hang_seconds == 30.0

    def test_default_attempts_once_armed(self):
        assert ResilienceSpec(job_timeout=1.0).retry_policy().max_attempts == 4


class TestCliIntegration:
    SMALL = ["--frames", "3", "--width", "64", "--height", "48"]

    def test_spec_file_run_matches_flag_run(self, tmp_path, capsys):
        """Acceptance: a spec-file-driven run is bit-identical to the
        equivalent CLI-flag run."""
        assert main(["run", "hop", "--modes", "baseline", "evr"]
                    + self.SMALL) == 0
        flag_out = capsys.readouterr().out

        path = str(tmp_path / "run.toml")
        resolve_spec(cli={
            "gpu": {"frames": 3, "screen_width": 64, "screen_height": 48},
            "workload": {"benchmarks": ["hop"],
                         "modes": ["baseline", "evr"]},
        }, env={}).spec.to_file(path)
        cache_dir = str(tmp_path / "cache")
        os.environ["REPRO_CACHE_DIR"] = cache_dir
        try:
            assert main(["run", "--spec", path, "-q"]) == 0
            spec_out = capsys.readouterr().out
            # Second identical invocation must be served from the disk
            # cache (hash determinism within and across processes).
            assert main(["run", "--spec", path]) == 0
            second_out = capsys.readouterr().out
        finally:
            del os.environ["REPRO_CACHE_DIR"]
        assert spec_out == flag_out
        assert "run cache: 2 hits, 0 misses" in second_out
        assert second_out.splitlines()[-5:] == flag_out.splitlines()[-5:]

    def test_spec_show_prints_provenance(self, tmp_path, capsys):
        path = str(tmp_path / "s.toml")
        RunSpec.preset("tiny").to_file(path)
        assert main(["spec", "show", "--spec", path,
                     "--set", "gpu.frames=2"]) == 0
        out = capsys.readouterr().out
        assert "spec_hash:" in out
        assert f"file:{path}" in out      # file-layer provenance
        assert "cli:--set" in out         # --set provenance
        assert "default" in out           # untouched fields

    def test_spec_diff_between_presets(self, capsys):
        assert main(["spec", "diff", "paper", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "gpu.screen_width" in out
        assert "1196" in out and "64" in out

    def test_spec_dump_round_trips(self, tmp_path, capsys):
        out_path = str(tmp_path / "dumped.toml")
        assert main(["spec", "dump", "--preset", "paper",
                     "--output", out_path]) == 0
        assert RunSpec.from_file(out_path) == RunSpec.preset("paper")

    def test_bad_spec_is_a_clean_usage_error(self, tmp_path, capsys):
        path = tmp_path / "bad.toml"
        path.write_text("[gpu]\nscreen_widht = 64\n")
        assert main(["run", "hop", "--spec", str(path)]) == 2
        err = capsys.readouterr().err
        assert "unknown spec key" in err

    def test_set_override_flows_to_features(self, capsys):
        # --set rendering_elimination on the baseline changes the run.
        assert main(["run", "hop", "--modes", "baseline"]
                    + self.SMALL) == 0
        plain = capsys.readouterr().out
        assert main(["run", "hop", "--modes", "baseline", "--set",
                     "features.rendering_elimination=true"]
                    + self.SMALL) == 0
        with_re = capsys.readouterr().out
        assert plain != with_re


class TestRunnerSpecIdentity:
    def test_legacy_kwargs_and_spec_share_cache_keys(self, tmp_path):
        from repro.harness.runner import SuiteRunner

        config = GPUConfig.tiny(frames=2)
        with SuiteRunner(config, cache_dir=str(tmp_path)) as runner:
            legacy = runner.run("hop", PipelineMode.BASELINE)
        spec = RunSpec.from_config(config)
        with SuiteRunner(spec=spec, cache_dir=str(tmp_path)) as runner:
            from_spec = runner.run("hop", PipelineMode.BASELINE)
            assert runner.cache_hits == 1
        assert legacy == from_spec

    def test_frames_kwarg_folds_into_spec(self, tmp_path):
        from repro.harness.runner import SuiteRunner

        config = GPUConfig.tiny(frames=9)
        with SuiteRunner(config, frames=2,
                         cache_dir=str(tmp_path)) as runner:
            folded = runner.run("hop", PipelineMode.BASELINE)
            assert runner.spec.gpu.frames == 2
        with SuiteRunner(GPUConfig.tiny(frames=2),
                         cache_dir=str(tmp_path)) as runner:
            direct = runner.run("hop", PipelineMode.BASELINE)
            assert runner.cache_hits == 1
        assert folded == direct

    def test_spec_supplies_execution_policy(self):
        from repro.harness.runner import SuiteRunner

        spec = resolve_spec(sets=["scheduler.jobs=3",
                                  "resilience.retries=2",
                                  "resilience.strict=true"], env={}).spec
        runner = SuiteRunner(spec=spec)
        assert runner.jobs == 3
        assert runner.retry_policy.max_attempts == 2
        assert runner.strict
        assert runner.resilient
        runner.close()
