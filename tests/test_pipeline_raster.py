"""Tests for the Raster Pipeline: Early-Z, shading, blending, skipping."""

import numpy as np
import pytest

from repro import (
    BlendMode,
    DrawCommand,
    Frame,
    GPU,
    GPUConfig,
    PipelineFeatures,
    PipelineMode,
    RenderState,
    ShaderProfile,
)
from repro.geom import quad, screen_quad
from repro.math3d import Vec3, Vec4

from tests.conftest import make_depth_frame, make_sprite_frame


class TestEarlyZ:
    def test_front_to_back_kills_back(self, tiny_config, ortho_screen):
        frame = make_depth_frame(
            tiny_config, ortho_screen, 0,
            [(0.5, Vec4(0, 1, 0, 1)), (-0.5, Vec4(1, 0, 0, 1))],  # near first
        )
        gpu = GPU(tiny_config, PipelineMode.BASELINE)
        result = gpu.render_frame(frame)
        pixels = tiny_config.num_pixels
        assert result.stats.fragments_shaded == pixels
        assert result.stats.early_z_kills == pixels

    def test_back_to_front_shades_everything(self, tiny_config, ortho_screen):
        frame = make_depth_frame(
            tiny_config, ortho_screen, 0,
            [(-0.5, Vec4(1, 0, 0, 1)), (0.5, Vec4(0, 1, 0, 1))],  # far first
        )
        gpu = GPU(tiny_config, PipelineMode.BASELINE)
        result = gpu.render_frame(frame)
        assert result.stats.fragments_shaded == 2 * tiny_config.num_pixels
        assert result.stats.early_z_kills == 0
        assert result.stats.overdrawn_fragments == tiny_config.num_pixels

    def test_early_z_disabled_shades_everything(self, tiny_config,
                                                ortho_screen):
        frame = make_depth_frame(
            tiny_config, ortho_screen, 0,
            [(0.5, Vec4(0, 1, 0, 1)), (-0.5, Vec4(1, 0, 0, 1))],
        )
        gpu = GPU(tiny_config, PipelineFeatures(early_z=False))
        result = gpu.render_frame(frame)
        assert result.stats.fragments_shaded == 2 * tiny_config.num_pixels

    def test_early_z_disabled_image_still_correct(self, tiny_config,
                                                  ortho_screen):
        frame = make_depth_frame(
            tiny_config, ortho_screen, 0,
            [(0.5, Vec4(0, 1, 0, 1)), (-0.5, Vec4(1, 0, 0, 1))],
        )
        with_z = GPU(tiny_config, PipelineMode.BASELINE).render_frame(frame)
        without_z = GPU(
            tiny_config, PipelineFeatures(early_z=False)
        ).render_frame(frame)
        assert np.array_equal(with_z.image, without_z.image)
        # Near quad (green) wins in both.
        assert np.allclose(with_z.image[10, 10], [0, 1, 0, 1])


class TestSpritesAndBlending:
    def test_painters_order(self, tiny_config, ortho_screen):
        frame = make_sprite_frame(
            tiny_config, ortho_screen, 0,
            [
                (0, 0, 64, 48, Vec4(0, 0, 1, 1)),
                (8, 8, 16, 16, Vec4(1, 0, 0, 1)),   # drawn later, on top
            ],
        )
        result = GPU(tiny_config, PipelineMode.BASELINE).render_frame(frame)
        assert np.allclose(result.image[12, 12], [1, 0, 0, 1])
        assert np.allclose(result.image[40, 40], [0, 0, 1, 1])

    def test_alpha_blending_result(self, tiny_config, ortho_screen):
        background = DrawCommand.from_mesh(
            screen_quad(0, 0, 64, 48, color=Vec4(0, 0, 0, 1)),
            state=RenderState.sprite_2d(),
        )
        translucent = DrawCommand.from_mesh(
            screen_quad(0, 0, 64, 48, color=Vec4(1, 1, 1, 0.5)),
            state=RenderState.sprite_2d(blend=BlendMode.ALPHA),
        )
        frame = Frame([background, translucent], projection=ortho_screen)
        result = GPU(tiny_config, PipelineMode.BASELINE).render_frame(frame)
        assert np.allclose(result.image[10, 10, :3], [0.5, 0.5, 0.5])

    def test_sprites_skip_early_z(self, tiny_config, ortho_screen):
        frame = make_sprite_frame(
            tiny_config, ortho_screen, 0,
            [(0, 0, 64, 48, Vec4(0, 0, 1, 1))],
        )
        result = GPU(tiny_config, PipelineMode.BASELINE).render_frame(frame)
        assert result.stats.early_z_tests == 0


class TestTextureTraffic:
    def test_texture_samples_counted(self, tiny_config, ortho_screen):
        shader = ShaderProfile(texture_fetches=2, texture_id=1)
        frame = Frame(
            [DrawCommand.from_mesh(
                screen_quad(0, 0, 16, 16),
                state=RenderState.sprite_2d(shader=shader))],
            projection=ortho_screen,
        )
        gpu = GPU(tiny_config, PipelineMode.BASELINE)
        result = gpu.render_frame(frame)
        assert result.stats.texture_samples == 2 * result.stats.fragments_shaded
        texture_accesses = result.raster_snapshot["texture1"]["accesses"]
        assert texture_accesses > 0


class TestTileSkipping:
    def test_skipped_tiles_reuse_previous_colors(self, tiny_config,
                                                 static_2d_stream):
        gpu = GPU(tiny_config, PipelineMode.RE)
        results = [gpu.render_frame(f) for f in static_2d_stream]
        assert results[1].stats.tiles_skipped == tiny_config.num_tiles
        assert np.array_equal(results[1].image, results[0].image)

    def test_skipped_tiles_flush_nothing(self, tiny_config, static_2d_stream):
        gpu = GPU(tiny_config, PipelineMode.RE)
        results = [gpu.render_frame(f) for f in static_2d_stream]
        assert results[1].stats.color_flush_bytes == 0
        assert results[1].stats.fragments_shaded == 0


class TestOracleZ:
    def test_oracle_shades_only_visible(self, tiny_config,
                                        back_to_front_stream):
        gpu = GPU(tiny_config, PipelineMode.ORACLE)
        frames = list(back_to_front_stream)
        result = gpu.render_frame(frames[0])
        assert result.stats.fragments_shaded == tiny_config.num_pixels

    def test_oracle_image_matches_baseline(self, tiny_config,
                                           back_to_front_stream):
        frames = list(back_to_front_stream)
        base = GPU(tiny_config, PipelineMode.BASELINE).render_frame(frames[0])
        oracle = GPU(tiny_config, PipelineMode.ORACLE).render_frame(frames[0])
        assert np.array_equal(base.image, oracle.image)


class TestPartialTiles:
    def test_non_divisible_resolution(self):
        config = GPUConfig(screen_width=40, screen_height=24, frames=2)
        assert config.tiles_x == 3  # 40/16 -> partial last column
        from repro.math3d import orthographic
        proj = orthographic(0, 40, 24, 0, -1, 1)
        frame = Frame(
            [DrawCommand.from_mesh(screen_quad(0, 0, 40, 24),
                                   state=RenderState.sprite_2d())],
            projection=proj,
        )
        result = GPU(config, PipelineMode.BASELINE).render_frame(frame)
        assert result.image.shape == (24, 40, 4)
        # Every on-screen pixel covered exactly once.
        assert result.stats.fragments_shaded == 40 * 24
