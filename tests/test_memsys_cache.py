"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MemoryModelError
from repro.config import CacheConfig
from repro.memsys import Cache


def small_cache(ways=2, lines=8, line_bytes=64):
    return Cache(CacheConfig("test", lines * line_bytes, line_bytes, ways))


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        first = cache.access(0, 4)
        second = cache.access(0, 4)
        assert (first.misses, first.hits) == (1, 0)
        assert (second.misses, second.hits) == (0, 1)

    def test_spanning_access_touches_two_lines(self):
        cache = small_cache()
        result = cache.access(60, 8)  # crosses the 64-byte boundary
        assert result.lines == 2
        assert result.misses == 2

    def test_same_line_different_offsets_hit(self):
        cache = small_cache()
        cache.access(0, 4)
        assert cache.access(32, 4).hits == 1

    def test_invalid_access(self):
        cache = small_cache()
        with pytest.raises(MemoryModelError):
            cache.access(0, 0)
        with pytest.raises(MemoryModelError):
            cache.access(-1, 4)


class TestLRUReplacement:
    def test_eviction_of_least_recent(self):
        # 2-way, 4 sets: addresses 0, 256, 512 share set 0 (line=64, sets=4).
        cache = small_cache(ways=2, lines=8)
        cache.access(0, 4)      # miss, set0 = {0}
        cache.access(256, 4)    # miss, set0 = {0, 256}
        cache.access(0, 4)      # hit, 0 becomes MRU
        cache.access(512, 4)    # miss, evicts 256
        assert cache.access(0, 4).hits == 1       # still resident
        assert cache.access(256, 4).misses == 1   # was evicted

    def test_writeback_only_for_dirty(self):
        cache = small_cache(ways=1, lines=4)  # direct-mapped, 4 sets
        cache.access(0, 4, write=True)        # dirty line in set 0
        result = cache.access(256, 4)         # evicts dirty -> writeback
        assert result.writebacks == 1
        cache.access(512, 4)                  # evicts clean -> no writeback
        result = cache.access(768, 4)
        assert result.writebacks == 0

    def test_write_hit_marks_dirty(self):
        cache = small_cache(ways=1, lines=4)
        cache.access(0, 4)                 # clean
        cache.access(0, 4, write=True)     # now dirty
        result = cache.access(256, 4)      # evict -> writeback
        assert result.writebacks == 1


class TestFlush:
    def test_flush_writes_back_dirty_lines(self):
        cache = small_cache()
        cache.access(0, 4, write=True)
        cache.access(64, 4)
        assert cache.flush() == 1
        # Everything invalidated.
        assert cache.access(0, 4).misses == 1

    def test_flush_empty(self):
        assert small_cache().flush() == 0


class TestStats:
    def test_counters_accumulate(self):
        cache = small_cache()
        cache.access(0, 4)
        cache.access(0, 4)
        assert cache.accesses == 2
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_reset(self):
        cache = small_cache()
        cache.access(0, 4)
        cache.reset_stats()
        assert cache.accesses == 0
        assert cache.hit_rate == 0.0
        # Contents survive a stats reset.
        assert cache.access(0, 4).hits == 1

    def test_snapshot_keys(self):
        snap = small_cache().snapshot()
        assert set(snap) == {"accesses", "hits", "misses", "writebacks"}


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4096),
                st.integers(min_value=1, max_value=128),
                st.booleans(),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_hits_plus_misses_equals_lines(self, operations):
        cache = small_cache()
        for address, size, write in operations:
            result = cache.access(address, size, write)
            assert result.hits + result.misses == result.lines
        assert cache.hits + cache.misses == cache.line_accesses

    @given(st.lists(st.integers(min_value=0, max_value=1023), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_working_set_within_capacity_never_remisses(self, addresses):
        # 8 lines of 64B = 512B capacity; working set limited to 8 lines
        # in distinct sets is too strict, so restrict to one line.
        cache = small_cache(ways=8, lines=8)  # fully associative
        unique_lines = {a // 64 for a in addresses}
        if len(unique_lines) > 8:
            return
        seen = set()
        for address in addresses:
            result = cache.access(address, 1)
            line = address // 64
            if line in seen:
                assert result.hits == 1
            seen.add(line)
