"""Tests for the pipeline-balance (queue) model."""

import pytest

from repro import GPU, GPUConfig, PipelineMode
from repro.harness.balance import pipeline_balance_report
from repro.scenes import benchmark_stream
from repro.timing import (
    FrameStats,
    PipelineBalance,
    StageLoad,
    geometry_balance,
    raster_balance,
)


class TestPipelineBalanceMath:
    def _balance(self):
        return PipelineBalance([
            StageLoad("a", 10, 100.0),
            StageLoad("b", 10, 400.0, upstream_queue_entries=15),
            StageLoad("c", 10, 50.0, upstream_queue_entries=3),
        ])

    def test_bottleneck(self):
        assert self._balance().bottleneck.name == "b"

    def test_additive_is_sum(self):
        assert self._balance().additive_cycles == 550.0

    def test_pipelined_between_bottleneck_and_additive(self):
        balance = self._balance()
        assert balance.bottleneck.busy_cycles <= balance.pipelined_cycles
        assert balance.pipelined_cycles <= balance.additive_cycles

    def test_pipelined_formula(self):
        balance = self._balance()
        # a has no upstream queue: fully exposed (100); c: 50/(1+3).
        assert balance.pipelined_cycles == pytest.approx(
            400.0 + 100.0 + 50.0 / 4.0
        )

    def test_deeper_queue_hides_more(self):
        shallow = PipelineBalance([
            StageLoad("a", 1, 100.0),
            StageLoad("b", 1, 50.0, upstream_queue_entries=1),
        ])
        deep = PipelineBalance([
            StageLoad("a", 1, 100.0),
            StageLoad("b", 1, 50.0, upstream_queue_entries=63),
        ])
        assert deep.pipelined_cycles < shallow.pipelined_cycles

    def test_utilization_normalized_to_bottleneck(self):
        utilization = self._balance().utilization()
        assert utilization["b"] == 1.0
        assert utilization["a"] == pytest.approx(0.25)


class TestStageConstruction:
    def test_geometry_stages_named_after_figure1(self):
        balance = geometry_balance(FrameStats(), GPUConfig.default())
        names = [stage.name for stage in balance.stages]
        assert names == [
            "command-processor", "vertex-processor",
            "primitive-assembly", "polygon-list-builder",
        ]

    def test_raster_stages_named_after_figure1(self):
        balance = raster_balance(FrameStats(), GPUConfig.default())
        names = [stage.name for stage in balance.stages]
        assert names == [
            "tile-scheduler", "rasterizer", "early-z",
            "fragment-processors", "blend",
        ]

    def test_queue_depths_come_from_table2(self):
        config = GPUConfig.default()
        balance = raster_balance(FrameStats(), config)
        fragment_stage = balance.stages[3]
        assert fragment_stage.upstream_queue_entries == 64


class TestOnRealWorkloads:
    def test_fragment_processors_bound_raster(self):
        """On shading-heavy scenes the fragment processors are the
        bottleneck — the architectural premise of removing ineffectual
        fragments."""
        config = GPUConfig.tiny(frames=3)
        stream = benchmark_stream("tib", config)
        result = GPU(config, PipelineMode.BASELINE).render_stream(stream)
        balance = raster_balance(result.total_stats(), config)
        assert balance.bottleneck.name == "fragment-processors"

    def test_evr_relieves_the_bottleneck(self):
        config = GPUConfig.tiny(frames=5)
        stream = benchmark_stream("tib", config)
        base = GPU(config, PipelineMode.BASELINE).render_stream(stream)
        evr = GPU(config, PipelineMode.EVR).render_stream(stream)
        base_balance = raster_balance(base.total_stats(), config)
        evr_balance = raster_balance(evr.total_stats(), config)
        assert (
            evr_balance.bottleneck.busy_cycles
            < base_balance.bottleneck.busy_cycles
        )

    def test_report_renders(self):
        result = pipeline_balance_report(
            GPUConfig.tiny(frames=3), benchmarks=["hop"]
        )
        text = result.render()
        assert "bottleneck" in text
        assert len(result.rows) == 2  # geometry + raster
