"""Tests for the DRAM channel model."""

import pytest

from repro import GPUConfig, MemoryModelError
from repro.memsys import DRAMChannelModel


@pytest.fixture
def dram():
    return DRAMChannelModel(GPUConfig.default())


class TestAccounting:
    def test_read_write_bytes(self, dram):
        dram.read(128)
        dram.write(256)
        assert dram.stats.read_bytes == 128
        assert dram.stats.write_bytes == 256
        assert dram.stats.total_bytes == 384

    def test_requests_round_up_to_lines(self, dram):
        dram.read(1)
        assert dram.stats.read_requests == 1
        dram.read(65)
        assert dram.stats.read_requests == 3  # 1 + 2

    def test_line_helpers(self, dram):
        dram.read_lines(3)
        dram.write_lines(2)
        assert dram.stats.read_bytes == 3 * 64
        assert dram.stats.write_bytes == 2 * 64
        dram.read_lines(0)  # no-op
        assert dram.stats.read_bytes == 3 * 64

    def test_invalid_sizes(self, dram):
        with pytest.raises(MemoryModelError):
            dram.read(0)
        with pytest.raises(MemoryModelError):
            dram.write(-4)

    def test_reset(self, dram):
        dram.read(64)
        dram.reset_stats()
        assert dram.stats.total_bytes == 0
        assert dram.cycles() == 0.0


class TestCycleModel:
    def test_bandwidth_bound_for_streaming(self, dram):
        # Large transfer: bandwidth term dominates.
        dram.write(4096)
        expected_bandwidth_cycles = 4096 / 4  # 4 B/cycle
        assert dram.cycles() == pytest.approx(expected_bandwidth_cycles)

    def test_cycles_monotonic_in_traffic(self, dram):
        dram.read(64)
        before = dram.cycles()
        dram.read(6400)
        assert dram.cycles() > before

    def test_snapshot(self, dram):
        dram.read(64)
        snap = dram.snapshot()
        assert snap["read_requests"] == 1
        assert snap["read_bytes"] == 64
