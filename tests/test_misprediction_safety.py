"""Regression test for the misprediction-poisoning correctness repair.

The paper's Table I safety argument implicitly assumes that a primitive
excluded from a tile's signature was truly occluded in the previous
frame.  A primitive that is *visible* but drifts farther every frame can
be mispredicted occluded two frames in a row: both signatures then
exclude it, they match, and the tile is wrongly skipped while the
primitive visibly moved.  (Found by the cross-mode image-equality
invariants on the *ata* benchmark.)

The repair: any predicted-occluded primitive contributing to a tile's
final image taints the tile, which poisons its signature so the next
frame cannot match.  These tests construct the minimal failing scene and
check both the safety (images identical to baseline) and the mechanism
(poison events fire; prediction was indeed wrong).
"""

import numpy as np
import pytest

from repro import (
    DrawCommand,
    Frame,
    FrameStream,
    GPU,
    GPUConfig,
    PipelineMode,
    RenderState,
)
from repro.geom import quad
from repro.math3d import Vec3, Vec4, orthographic

WIDTH, HEIGHT = 32, 16   # a 2x1-tile screen


@pytest.fixture
def config():
    return GPUConfig(screen_width=WIDTH, screen_height=HEIGHT, frames=6)


@pytest.fixture
def stream(config):
    """A full-screen WOZ quad that drifts away from the camera every
    frame while its color changes: it is always fully visible (it is the
    only geometry), yet ``Z_near(i+1) > Z_far(i)`` holds every frame, so
    EVR predicts it occluded and excludes it from every signature.
    Without the poisoning repair, the empty signatures match and the
    tile is skipped while the visible color keeps changing."""
    projection = orthographic(0, WIDTH, HEIGHT, 0, -1.0, 1.0)

    def build(index):
        state = RenderState.opaque_3d(cull_backface=False)
        drift_z = -0.5 - 0.04 * index       # farther every frame
        drifter = DrawCommand.from_mesh(
            quad(Vec3(0, 0, drift_z), Vec3(WIDTH, 0, 0), Vec3(0, HEIGHT, 0),
                 Vec4(1.0, 0.1 * index, 0.1, 1.0)),   # visibly changing
            state=state, label="drifter",
        )
        return Frame([drifter], projection=projection, index=index)

    return FrameStream(build, 6)


def test_prediction_is_actually_wrong(config, stream):
    """Sanity: the scene really does trigger occluded-predictions for a
    visible primitive (otherwise this regression test tests nothing)."""
    gpu = GPU(config, PipelineMode.EVR)
    result = gpu.render_stream(stream)
    stats = result.total_stats(warmup=0)
    assert stats.predicted_occluded > 0
    assert stats.signature_poisons > 0


def test_images_match_baseline_despite_mispredictions(config, stream):
    baseline = GPU(config, PipelineMode.BASELINE).render_stream(stream)
    evr = GPU(config, PipelineMode.EVR).render_stream(stream)
    for index, (expected, actual) in enumerate(
        zip(baseline.frames, evr.frames)
    ):
        assert np.array_equal(expected.image, actual.image), (
            f"frame {index} diverged"
        )


def test_poisoned_tiles_rerender(config, stream):
    """Tiles with a visible mispredicted primitive must not be skipped."""
    gpu = GPU(config, PipelineMode.EVR)
    for frame in stream:
        result = gpu.render_frame(frame)
        if result.stats.signature_poisons:
            # The drifter's tile was poisoned this frame; next frame it
            # cannot be skipped even if signatures would match.
            break
    else:
        pytest.fail("scene never poisoned a tile")


def test_poison_counters_exposed(config, stream):
    gpu = GPU(config, PipelineMode.EVR)
    gpu.render_stream(stream)
    assert gpu.re is not None
    assert gpu.re.stats.tiles_poisoned > 0


def test_no_poisoning_without_mispredictions(config):
    """A fully static scene never poisons (exclusions are all correct)."""
    projection = orthographic(0, WIDTH, HEIGHT, 0, -1.0, 1.0)
    state = RenderState.opaque_3d(cull_backface=False)

    def build(index):
        far = DrawCommand.from_mesh(
            quad(Vec3(0, 0, -0.5), Vec3(WIDTH, 0, 0), Vec3(0, HEIGHT, 0),
                 Vec4(1, 0, 0, 1)),
            state=state,
        )
        near = DrawCommand.from_mesh(
            quad(Vec3(0, 0, 0.5), Vec3(WIDTH, 0, 0), Vec3(0, HEIGHT, 0),
                 Vec4(0, 1, 0, 1)),
            state=state,
        )
        return Frame([far, near], projection=projection, index=index)

    gpu = GPU(config, PipelineMode.EVR)
    result = gpu.render_stream(FrameStream(build, 6))
    assert result.total_stats(warmup=0).signature_poisons == 0
    assert result.total_stats(warmup=0).predicted_occluded > 0
