"""Tests for the ``repro bench`` harness (``repro.harness.bench``)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.harness.bench import (
    BENCH_PRESETS,
    check_bench_regression,
    format_bench_summary,
    run_bench,
    write_bench_json,
)


@pytest.fixture(scope="module")
def tiny_record():
    """One real bench run on the tiny preset, both backends, shared by
    the tests below (a run takes a few seconds)."""
    return run_bench("tiny", backends=("numpy", "python"), repeat=1)


class TestPresets:
    def test_known_presets(self):
        assert {"tiny", "default", "scaled", "paper"} <= set(BENCH_PRESETS)

    def test_unknown_preset_raises(self):
        with pytest.raises(ConfigError, match="unknown bench preset"):
            run_bench("nonexistent")

    def test_preset_configs_resolve(self):
        for preset in BENCH_PRESETS.values():
            config = preset.config()
            assert config.screen_width == preset.width
            assert config.frames == preset.frames


class TestRunBench:
    def test_record_shape(self, tiny_record):
        assert tiny_record["preset"] == "tiny"
        assert set(tiny_record["backends"]) == {"numpy", "python"}
        for result in tiny_record["backends"].values():
            assert result["frames"] == BENCH_PRESETS["tiny"].frames
            assert result["frames_per_second"] > 0
            assert result["cache_ops"] > 0
            sweep = result["kernel_sweep"]
            assert sweep["fragments"] > 0
            assert sweep["fragments_per_second"] > 0
            assert sweep["sweep_passes"] == 2

    def test_backends_sweep_same_workload(self, tiny_record):
        sweeps = [result["kernel_sweep"]
                  for result in tiny_record["backends"].values()]
        # Bit-identity: both backends must deliver the same fragments
        # over the same captured display lists.
        assert sweeps[0]["fragments"] == sweeps[1]["fragments"]
        assert sweeps[0]["entries"] == sweeps[1]["entries"]

    def test_speedup_present_and_positive(self, tiny_record):
        speedup = tiny_record["speedup"]
        assert speedup["fragments_per_second"] > 0
        assert speedup["frames_per_second"] > 0
        assert speedup["cache_ops_per_second"] > 0

    def test_machine_info_recorded(self, tiny_record):
        machine = tiny_record["machine"]
        assert machine["numpy_version"]
        assert machine["cpu_model"]
        assert machine["cpu_count"] >= 1
        assert machine["python_version"].count(".") == 2

    def test_memsys_sweep_replays_one_shared_trace(self, tiny_record):
        sweeps = [result["memsys_sweep"]
                  for result in tiny_record["backends"].values()]
        # Both backends replay the same recorded pipeline trace and,
        # being bit-identical, must simulate the same number of cache
        # accesses; only the wall time may differ.
        assert sweeps[0]["trace_ops"] == sweeps[1]["trace_ops"] > 0
        assert sweeps[0]["cache_ops"] == sweeps[1]["cache_ops"] > 0
        for sweep in sweeps:
            assert sweep["best_seconds"] > 0
            assert sweep["cache_ops_per_second"] == pytest.approx(
                sweep["cache_ops"] / sweep["best_seconds"])

    def test_reduce_phase_is_subdivided(self, tiny_record):
        for result in tiny_record["backends"].values():
            phases = result["raster_phase_ms"]
            assert {"reduce", "reduce-replay", "reduce-finalize"} \
                <= set(phases)
            # The sub-spans nest inside the reduce span.
            assert phases["reduce-replay"] + phases["reduce-finalize"] \
                <= phases["reduce"] * 1.01

    def test_summary_mentions_backends(self, tiny_record):
        text = format_bench_summary(tiny_record)
        assert "numpy" in text
        assert "python" in text
        assert "speedup" in text

    def test_json_roundtrip(self, tiny_record, tmp_path):
        path = tmp_path / "BENCH_tiny.json"
        write_bench_json(tiny_record, str(path))
        restored = json.loads(path.read_text())
        assert restored["preset"] == "tiny"
        assert restored["speedup"]["fragments_per_second"] == pytest.approx(
            tiny_record["speedup"]["fragments_per_second"])


class TestRegressionGate:
    def _record(self, speedup, replay=None):
        out = {"speedup": {"fragments_per_second": speedup}}
        if replay is not None:
            out["speedup"]["cache_ops_per_second"] = replay
        return out

    def _baseline(self, tmp_path, speedup, replay=None):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(self._record(speedup, replay)))
        return str(path)

    def test_clean_when_within_tolerance(self, tmp_path):
        baseline = self._baseline(tmp_path, 10.0)
        assert check_bench_regression(self._record(9.0), baseline,
                                      tolerance=0.2) == []
        # Improvements are always clean.
        assert check_bench_regression(self._record(14.0), baseline,
                                      tolerance=0.2) == []

    def test_fails_below_tolerance_floor(self, tmp_path):
        baseline = self._baseline(tmp_path, 10.0)
        failures = check_bench_regression(self._record(7.9), baseline,
                                          tolerance=0.2)
        assert len(failures) == 1
        assert "regressed" in failures[0]

    def test_missing_speedup_is_a_failure(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"speedup": {}}))
        failures = check_bench_regression(self._record(10.0), str(baseline))
        assert failures

    def test_gates_replay_ratio_when_baselined(self, tmp_path):
        baseline = self._baseline(tmp_path, 10.0, replay=5.0)
        # Both ratios healthy: clean.
        assert check_bench_regression(self._record(10.0, replay=4.5),
                                      baseline, tolerance=0.2) == []
        # Kernel ratio healthy but replay throughput collapsed: fails.
        failures = check_bench_regression(self._record(10.0, replay=3.0),
                                          baseline, tolerance=0.2)
        assert len(failures) == 1
        assert "replay" in failures[0]
        # A record with no replay ratio can't satisfy the baseline.
        failures = check_bench_regression(self._record(10.0), baseline,
                                          tolerance=0.2)
        assert failures

    def test_old_baseline_without_replay_ratio_still_gates_kernel(
            self, tmp_path):
        baseline = self._baseline(tmp_path, 10.0)
        assert check_bench_regression(self._record(9.0, replay=999.0),
                                      baseline, tolerance=0.2) == []
