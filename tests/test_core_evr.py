"""Tests for the EVR core: FVP computation and the prediction rules.

Includes a faithful reconstruction of the paper's Figure 3 worked example
(hybrid WOZ/NWOZ FVP computation).
"""

import numpy as np
import pytest

from repro.core import VisibilityPredictor, compute_fvp, predict_occluded
from repro.hw import FVPEntry, FVPType, LayerBuffer, ZBuffer


def full_mask():
    return np.ones((4, 4), dtype=bool)


def depth_plane(value):
    return np.full((4, 4), value)


class TestPredictOccluded:
    def test_no_entry_predicts_visible(self):
        assert not predict_occluded(None, writes_z=True, z_near=0.9, layer=1)

    def test_nwoz_fvp_layer_rule(self):
        entry = FVPEntry(FVPType.NWOZ, 3)
        assert predict_occluded(entry, writes_z=False, z_near=0.0, layer=2)
        assert not predict_occluded(entry, writes_z=False, z_near=0.0, layer=3)
        assert not predict_occluded(entry, writes_z=False, z_near=0.0, layer=4)

    def test_nwoz_fvp_applies_to_woz_primitives_too(self):
        entry = FVPEntry(FVPType.NWOZ, 3)
        assert predict_occluded(entry, writes_z=True, z_near=0.1, layer=2)

    def test_woz_fvp_depth_rule(self):
        entry = FVPEntry(FVPType.WOZ, 0.5)
        assert predict_occluded(entry, writes_z=True, z_near=0.6, layer=9)
        assert not predict_occluded(entry, writes_z=True, z_near=0.5, layer=9)
        assert not predict_occluded(entry, writes_z=True, z_near=0.4, layer=9)

    def test_woz_fvp_never_predicts_nwoz_occluded(self):
        # Section III-C: with a WOZ FVP, only WOZ primitives can be
        # labeled occluded (NWOZ depth is unknown to the Z-buffer).
        entry = FVPEntry(FVPType.WOZ, 0.5)
        assert not predict_occluded(entry, writes_z=False, z_near=0.9, layer=1)


class TestComputeFVP:
    def test_pure_woz_tile(self):
        z = ZBuffer(4, 4)
        lb = LayerBuffer(4, 4)
        z.write(full_mask(), depth_plane(0.42))
        lb.write(full_mask(), 2, is_woz=True)
        entry = compute_fvp(lb, z)
        assert entry.fvp_type is FVPType.WOZ
        assert entry.value == pytest.approx(0.42)

    def test_nwoz_covering_tile(self):
        z = ZBuffer(4, 4)
        lb = LayerBuffer(4, 4)
        lb.write(full_mask(), 3, is_woz=False)
        entry = compute_fvp(lb, z)
        assert entry.fvp_type is FVPType.NWOZ
        assert entry.value == 3

    def test_empty_tile_is_conservative(self):
        entry = compute_fvp(LayerBuffer(4, 4), ZBuffer(4, 4))
        assert entry.fvp_type is FVPType.NWOZ
        assert entry.value == 0  # no layer is below 0 -> nothing occluded


class TestFigure3Scenarios:
    """The paper's Figure 3 worked examples.

    A tile seen top-down: layers drawn left (near) to right (far).
    """

    def test_figure_3a_nwoz_fvp(self):
        # Layers: 1 (NWOZ, occluded by 2), 2 (NWOZ, occluded by 3 and 4),
        # 3 (NWOZ, visible), 4 (NWOZ, visible, nearer).  L_far = 3 and
        # the FVP is a layer.
        z = ZBuffer(4, 4)
        lb = LayerBuffer(4, 4)
        lb.write(full_mask(), 1, is_woz=False)        # layer 1 everywhere
        lb.write(full_mask(), 2, is_woz=False)        # layer 2 covers 1
        left = np.zeros((4, 4), dtype=bool)
        left[:, :2] = True
        right = ~left
        lb.write(left, 3, is_woz=False)               # layer 3 visible left
        lb.write(right, 4, is_woz=False)              # layer 4 visible right
        entry = compute_fvp(lb, z)
        assert entry.fvp_type is FVPType.NWOZ
        assert entry.value == 3

    def test_figure_3b_woz_fvp(self):
        # Layer 1 is a WOZ batch with depths 0, 0.5 and 1 across the
        # tile; deeper-z parts are occluded by nearer WOZ geometry except
        # where only z=0.5 covers.  The tile's farthest *visible* point
        # belongs to WOZ geometry, so the FVP is Z_far = 0.5.
        z = ZBuffer(4, 4)
        lb = LayerBuffer(4, 4)
        near = np.zeros((4, 4), dtype=bool)
        near[:, :2] = True
        far = ~near
        # WOZ batch (all layer 1): fragment depths.
        z.write(full_mask(), depth_plane(1.0))        # depth-1 geometry
        lb.write(full_mask(), 1, is_woz=True)
        mid = depth_plane(0.5)
        passing = z.test(far, mid)
        z.write(passing, mid)                          # 0.5 covers right half
        lb.write(passing, 1, is_woz=True)
        zero = depth_plane(0.0)
        passing = z.test(near, zero)
        z.write(passing, zero)                         # 0 covers left half
        lb.write(passing, 1, is_woz=True)
        entry = compute_fvp(lb, z)
        assert entry.fvp_type is FVPType.WOZ
        assert entry.value == pytest.approx(0.5)


class TestVisibilityPredictor:
    def test_records_and_predicts(self):
        predictor = VisibilityPredictor(num_tiles=4)
        z = ZBuffer(4, 4)
        lb = LayerBuffer(4, 4)
        z.write(full_mask(), depth_plane(0.5))
        lb.write(full_mask(), 1, is_woz=True)
        predictor.record_tile(2, lb, z)
        assert predictor.predict(2, writes_z=True, z_near=0.7, layer=1)
        assert not predictor.predict(2, writes_z=True, z_near=0.3, layer=1)
        assert predictor.stats.predictions == 2
        assert predictor.stats.predicted_occluded == 1
        assert predictor.occluded_rate == 0.5

    def test_unrecorded_tile_predicts_visible(self):
        predictor = VisibilityPredictor(num_tiles=4)
        assert not predictor.predict(0, writes_z=True, z_near=0.99, layer=0)

    def test_occluded_rate_empty(self):
        assert VisibilityPredictor(1).occluded_rate == 0.0
