"""Tests for repro.commands: render state, draw commands, frame streams."""

import pytest

from repro import (
    BlendMode,
    CommandError,
    DrawCommand,
    Frame,
    FrameStream,
    RenderState,
    ShaderProfile,
)
from repro.geom import screen_quad
from repro.math3d import Mat4


class TestShaderProfile:
    def test_defaults_are_valid(self):
        profile = ShaderProfile()
        assert profile.fragment_instructions > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"vertex_instructions": -1},
            {"fragment_instructions": -1},
            {"texture_fetches": -1},
            {"texture_size": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(CommandError):
            ShaderProfile(**kwargs)

    def test_pack_distinguishes_shaders(self):
        assert ShaderProfile(texture_id=0).pack() != ShaderProfile(
            texture_id=1
        ).pack()


class TestRenderState:
    def test_woz_classification(self):
        assert RenderState.opaque_3d().writes_z
        assert not RenderState.translucent_3d().writes_z
        assert not RenderState.sprite_2d().writes_z

    def test_opaque_classification(self):
        assert RenderState.opaque_3d().opaque
        assert not RenderState.translucent_3d().opaque
        assert RenderState.sprite_2d().opaque
        assert not RenderState.sprite_2d(blend=BlendMode.ALPHA).opaque

    def test_depth_write_requires_test(self):
        with pytest.raises(CommandError):
            RenderState(depth_test=False, depth_write=True)

    def test_pack_covers_flags(self):
        seen = {
            RenderState.opaque_3d().pack(),
            RenderState.opaque_3d(cull_backface=False).pack(),
            RenderState.translucent_3d().pack(),
            RenderState.sprite_2d().pack(),
        }
        assert len(seen) == 4

    def test_immutable(self):
        with pytest.raises(Exception):
            RenderState().depth_test = False


class TestDrawCommand:
    def test_empty_rejected(self):
        with pytest.raises(CommandError):
            DrawCommand([])

    def test_counts(self):
        command = DrawCommand.from_mesh(screen_quad(0, 0, 10, 10))
        assert command.triangle_count == 2
        assert command.vertex_count == 6

    def test_matrix_overrides_default_none(self):
        command = DrawCommand.from_mesh(screen_quad(0, 0, 10, 10))
        assert command.view is None
        assert command.projection is None


class TestFrame:
    def test_empty_rejected(self):
        with pytest.raises(CommandError):
            Frame([])

    def test_counts(self):
        frame = Frame(
            [DrawCommand.from_mesh(screen_quad(0, 0, 10, 10))] * 3
        )
        assert frame.triangle_count == 6
        assert frame.vertex_count == 18


class TestFrameStream:
    @staticmethod
    def _builder(index):
        return Frame(
            [DrawCommand.from_mesh(screen_quad(0, 0, 10, 10))], index=index
        )

    def test_len_and_iteration(self):
        stream = FrameStream(self._builder, 5)
        assert len(stream) == 5
        assert [frame.index for frame in stream] == [0, 1, 2, 3, 4]

    def test_frame_access(self):
        stream = FrameStream(self._builder, 5)
        assert stream.frame(3).index == 3

    def test_out_of_range(self):
        stream = FrameStream(self._builder, 5)
        with pytest.raises(CommandError):
            stream.frame(5)
        with pytest.raises(CommandError):
            stream.frame(-1)

    def test_zero_frames_rejected(self):
        with pytest.raises(CommandError):
            FrameStream(self._builder, 0)

    def test_builder_index_mismatch_detected(self):
        stream = FrameStream(lambda i: self._builder(0), 3)
        with pytest.raises(CommandError):
            stream.frame(1)

    def test_from_frames(self):
        frames = [self._builder(i) for i in range(3)]
        stream = FrameStream.from_frames(frames)
        assert len(stream) == 3
        assert stream.frame(2) is frames[2]

    def test_replay_is_identical(self):
        stream = FrameStream(self._builder, 3)
        first = [frame.triangle_count for frame in stream]
        second = [frame.triangle_count for frame in stream]
        assert first == second
