"""Table I's visibility casuistry, exercised end-to-end.

For a primitive P whose visibility transitions across frames, EVR-aided
Rendering Elimination must (a) never skip a tile whose colors changed, and
(b) actually skip the tiles baseline RE cannot when only hidden geometry
changes (scenario C — the case the optimization exists for).

Every scenario renders the same stream under BASELINE, RE and EVR and
asserts pixel-exact equality, which is the paper's correctness claim.
"""

import numpy as np
import pytest

from repro import (
    DrawCommand,
    Frame,
    FrameStream,
    GPU,
    GPUConfig,
    PipelineMode,
    RenderState,
)
from repro.geom import quad
from repro.math3d import Vec3, Vec4, orthographic

WIDTH, HEIGHT = 64, 48


@pytest.fixture
def config():
    return GPUConfig(screen_width=WIDTH, screen_height=HEIGHT, frames=5)


@pytest.fixture
def projection():
    return orthographic(0, WIDTH, HEIGHT, 0, -1.0, 1.0)


def woz_quad(x, y, w, h, world_z, color):
    """A depth-tested, depth-writing rectangle at depth ``world_z``
    (larger world-z is closer to the camera under this projection)."""
    mesh = quad(Vec3(x, y, world_z), Vec3(w, 0, 0), Vec3(0, h, 0), color)
    return DrawCommand.from_mesh(
        mesh, state=RenderState.opaque_3d(cull_backface=False)
    )


def render_all_modes(config, stream):
    outputs = {}
    for mode in (PipelineMode.BASELINE, PipelineMode.RE, PipelineMode.EVR):
        gpu = GPU(config, mode)
        outputs[mode] = gpu.render_stream(stream)
    return outputs


def assert_images_identical(outputs):
    baseline_frames = outputs[PipelineMode.BASELINE].frames
    for mode in (PipelineMode.RE, PipelineMode.EVR):
        for base_frame, frame in zip(baseline_frames, outputs[mode].frames):
            assert np.array_equal(base_frame.image, frame.image), (
                f"{mode} diverged at frame {frame.index}"
            )


class TestScenarioA:
    """Visible -> visible: EVR behaves exactly like RE."""

    def test_static_visible_scene_skips_everywhere(self, config, projection):
        def build(i):
            return Frame(
                [
                    woz_quad(0, 0, WIDTH, HEIGHT, -0.5, Vec4(0.2, 0.2, 0.2, 1)),
                    woz_quad(8, 8, 16, 16, 0.5, Vec4(1, 0, 0, 1)),  # P, near
                ],
                projection=projection, index=i,
            )

        stream = FrameStream(build, config.frames)
        outputs = render_all_modes(config, stream)
        assert_images_identical(outputs)
        re_skips = outputs[PipelineMode.RE].total_stats().tiles_skipped
        evr_skips = outputs[PipelineMode.EVR].total_stats().tiles_skipped
        steady = outputs[PipelineMode.RE].total_stats().tiles_total
        assert re_skips == evr_skips == steady


class TestScenarioB:
    """Visible -> occluded: P stays in the signature for one frame (it
    was visible in frame i), then drops out; no errors either way."""

    def test_occluder_arrives(self, config, projection):
        def build(i):
            commands = [
                woz_quad(0, 0, WIDTH, HEIGHT, -0.5, Vec4(0.2, 0.2, 0.2, 1)),
                woz_quad(8, 8, 16, 16, 0.0, Vec4(1, 0, 0, 1)),  # P
            ]
            if i >= 2:  # occluder covers P from frame 2 on
                commands.append(
                    woz_quad(0, 0, WIDTH, HEIGHT, 0.5, Vec4(0, 0, 1, 1))
                )
            return Frame(commands, projection=projection, index=i)

        stream = FrameStream(build, config.frames)
        outputs = render_all_modes(config, stream)
        assert_images_identical(outputs)


class TestScenarioC:
    """Occluded -> occluded with changing attributes: the EVR win case.

    Baseline RE re-renders every frame (P's color keeps changing); EVR
    excludes P from the signature and skips, with identical images.
    """

    def _stream(self, config, projection):
        def build(i):
            return Frame(
                [
                    woz_quad(0, 0, WIDTH, HEIGHT, -0.5,
                             Vec4(0.2, 0.2, 0.2, 1)),
                    # P: far, fully hidden, color changes every frame.
                    woz_quad(8, 8, 16, 16, 0.0,
                             Vec4(1, 0.1 * i, 0, 1)),
                    # Static occluder covering everything.
                    woz_quad(0, 0, WIDTH, HEIGHT, 0.5, Vec4(0, 0, 1, 1)),
                ],
                projection=projection, index=i,
            )

        return FrameStream(build, config.frames)

    def test_images_identical(self, config, projection):
        outputs = render_all_modes(config, self._stream(config, projection))
        assert_images_identical(outputs)

    def test_evr_skips_what_re_cannot(self, config, projection):
        outputs = render_all_modes(config, self._stream(config, projection))
        re_stats = outputs[PipelineMode.RE].total_stats()
        evr_stats = outputs[PipelineMode.EVR].total_stats()
        # RE skips only the tiles P never touches; EVR skips everything.
        assert re_stats.tiles_skipped < re_stats.tiles_total
        assert evr_stats.tiles_skipped == evr_stats.tiles_total

    def test_signature_updates_saved(self, config, projection):
        outputs = render_all_modes(config, self._stream(config, projection))
        evr_stats = outputs[PipelineMode.EVR].total_stats()
        assert evr_stats.signature_skips > 0


class TestScenarioD:
    """Occluded -> visible: the tile MUST re-render.  Table I's two
    sub-cases: (i) P moves closer than the old FVP; (ii) the occluder
    moves away."""

    def test_primitive_moves_closer(self, config, projection):
        def build(i):
            p_depth = 0.9 if i >= 3 else 0.0  # jumps in front at frame 3
            return Frame(
                [
                    woz_quad(0, 0, WIDTH, HEIGHT, -0.5,
                             Vec4(0.2, 0.2, 0.2, 1)),
                    woz_quad(8, 8, 16, 16, p_depth, Vec4(1, 0, 0, 1)),
                    woz_quad(0, 0, WIDTH, HEIGHT, 0.5, Vec4(0, 0, 1, 1)),
                ],
                projection=projection, index=i,
            )

        stream = FrameStream(build, config.frames)
        outputs = render_all_modes(config, stream)
        assert_images_identical(outputs)
        # P is visible (red) at frame 3+ in all modes.
        final = outputs[PipelineMode.EVR].frames[-1].image
        assert np.allclose(final[12, 12], [1, 0, 0, 1])

    def test_occluder_disappears(self, config, projection):
        def build(i):
            commands = [
                woz_quad(0, 0, WIDTH, HEIGHT, -0.5, Vec4(0.2, 0.2, 0.2, 1)),
                woz_quad(8, 8, 16, 16, 0.0, Vec4(1, 0, 0, 1)),
            ]
            if i < 3:  # occluder present only in frames 0-2
                commands.append(
                    woz_quad(0, 0, WIDTH, HEIGHT, 0.5, Vec4(0, 0, 1, 1))
                )
            return Frame(commands, projection=projection, index=i)

        stream = FrameStream(build, config.frames)
        outputs = render_all_modes(config, stream)
        assert_images_identical(outputs)
        final = outputs[PipelineMode.EVR].frames[-1].image
        assert np.allclose(final[12, 12], [1, 0, 0, 1])

    def test_occluder_moves_aside(self, config, projection):
        def build(i):
            occluder_x = 0 if i < 3 else 32
            return Frame(
                [
                    woz_quad(0, 0, WIDTH, HEIGHT, -0.5,
                             Vec4(0.2, 0.2, 0.2, 1)),
                    woz_quad(8, 8, 16, 16, 0.0, Vec4(1, 0, 0, 1)),
                    woz_quad(occluder_x, 0, 32, HEIGHT, 0.5,
                             Vec4(0, 0, 1, 1)),
                ],
                projection=projection, index=i,
            )

        stream = FrameStream(build, config.frames)
        outputs = render_all_modes(config, stream)
        assert_images_identical(outputs)
