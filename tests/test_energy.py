"""Tests for the energy model."""

import pytest

from repro import GPUConfig
from repro.energy import EnergyModel, EnergyParameters
from repro.timing import FrameStats


@pytest.fixture
def model():
    return EnergyModel(GPUConfig.default())


def snapshot(dram_bytes=0, l2_accesses=0, texture_accesses=0):
    return {
        "vertex": {"accesses": 0},
        "texture0": {"accesses": texture_accesses},
        "tile": {"accesses": 0},
        "l2": {"accesses": l2_accesses},
        "dram": {
            "read_bytes": dram_bytes,
            "write_bytes": 0,
            "read_requests": dram_bytes // 64,
            "write_requests": 0,
        },
    }


class TestBreakdown:
    def test_total_is_sum_of_components(self, model):
        stats = FrameStats(fragment_instructions=1000, early_z_tests=100,
                           blend_operations=50, lgt_accesses=10,
                           signature_updates=5, layer_id_bytes=20)
        breakdown = model.compute(stats, snapshot(dram_bytes=4096), 1e6,
                                  evr_enabled=True, re_enabled=True)
        assert breakdown.total == pytest.approx(
            sum(value for key, value in breakdown.as_dict().items()
                if key != "total")
        )

    def test_dram_dominates_compute_per_byte(self, model):
        # Moving one byte from DRAM costs more than one ALU op: the
        # premise of the whole paper.
        params = model.params
        assert params.dram_pj_per_byte > params.alu_op_pj

    def test_zero_run_zero_dynamic_energy(self, model):
        breakdown = model.compute(FrameStats(), snapshot(), 0.0,
                                  evr_enabled=False, re_enabled=False)
        assert breakdown.total == 0.0

    def test_static_energy_scales_with_cycles(self, model):
        short = model.compute(FrameStats(), snapshot(), 1e6,
                              evr_enabled=False, re_enabled=False)
        long = model.compute(FrameStats(), snapshot(), 2e6,
                             evr_enabled=False, re_enabled=False)
        assert long.static == pytest.approx(2 * short.static)


class TestFeatureToggles:
    def test_evr_structures_only_when_enabled(self, model):
        stats = FrameStats(lgt_accesses=100, fvp_lookups=100,
                           layer_buffer_writes=100, layer_id_bytes=200)
        off = model.compute(stats, snapshot(), 1e6, evr_enabled=False,
                            re_enabled=False)
        on = model.compute(stats, snapshot(), 1e6, evr_enabled=True,
                           re_enabled=False)
        assert off.evr_structures == 0.0
        assert off.parameter_buffer_overhead == 0.0
        assert on.evr_structures > 0.0
        assert on.parameter_buffer_overhead > 0.0

    def test_re_structures_only_when_enabled(self, model):
        stats = FrameStats(signature_updates=100)
        off = model.compute(stats, snapshot(), 1e6, evr_enabled=False,
                            re_enabled=False)
        on = model.compute(stats, snapshot(), 1e6, evr_enabled=False,
                           re_enabled=True)
        assert off.re_structures == 0.0
        assert on.re_structures > 0.0


class TestCacheEnergy:
    def test_l2_more_expensive_than_l1(self, model):
        l1_heavy = model.compute(FrameStats(), snapshot(texture_accesses=100),
                                 0.0, False, False)
        l2_heavy = model.compute(FrameStats(), snapshot(l2_accesses=100),
                                 0.0, False, False)
        assert l2_heavy.caches > l1_heavy.caches

    def test_dram_energy_scales_with_bytes(self, model):
        small = model.compute(FrameStats(), snapshot(dram_bytes=64), 0.0,
                              False, False)
        large = model.compute(FrameStats(), snapshot(dram_bytes=6400), 0.0,
                              False, False)
        assert large.dram > 10 * small.dram


class TestParameters:
    def test_static_joules_conversion(self):
        params = EnergyParameters()
        # 1 mW for 1 second at 400 MHz = 1 mJ.
        joules = params.static_joules(1.0, 400e6, 400.0)
        assert joules == pytest.approx(1e-3)
