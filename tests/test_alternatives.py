"""Tests for the alternative culling mechanisms (Z-prepass, HiZ)."""

import numpy as np
import pytest

from repro import (
    ConfigError,
    GPU,
    GPUConfig,
    PipelineFeatures,
    PipelineMode,
)
from repro.harness import culling_alternatives
from repro.scenes import benchmark_stream

from tests.conftest import make_depth_frame
from repro import FrameStream
from repro.math3d import Vec4, orthographic


@pytest.fixture
def config():
    return GPUConfig.tiny(frames=4)


@pytest.fixture
def b2f_stream(config):
    """Back-to-front WOZ quads with animated colors (never skipped)."""
    projection = orthographic(0, config.screen_width, config.screen_height,
                              0, -1.0, 1.0)

    def build(index):
        return make_depth_frame(
            config, projection, index,
            [
                (-0.5, Vec4(1.0, 0.01 * index, 0.0, 1.0)),
                (0.5, Vec4(0.0, 1.0, 0.01 * index, 1.0)),
            ],
        )

    return FrameStream(build, config.frames)


class TestZPrepass:
    def test_exclusive_with_oracle(self):
        with pytest.raises(ConfigError):
            PipelineFeatures(z_prepass=True, oracle_z=True)

    def test_prepass_matches_oracle_shading(self, config, b2f_stream):
        prepass = GPU(config, PipelineFeatures(z_prepass=True)).render_stream(
            b2f_stream
        )
        oracle = GPU(config, PipelineMode.ORACLE).render_stream(b2f_stream)
        assert (
            prepass.total_stats(warmup=0).fragments_shaded
            == oracle.total_stats(warmup=0).fragments_shaded
        )

    def test_prepass_image_matches_baseline(self, config, b2f_stream):
        baseline = GPU(config, PipelineMode.BASELINE).render_stream(b2f_stream)
        prepass = GPU(config, PipelineFeatures(z_prepass=True)).render_stream(
            b2f_stream
        )
        for expected, actual in zip(baseline.frames, prepass.frames):
            assert np.array_equal(expected.image, actual.image)

    def test_prepass_overhead_charged(self, config, b2f_stream):
        baseline = GPU(config, PipelineMode.BASELINE).render_stream(b2f_stream)
        prepass = GPU(config, PipelineFeatures(z_prepass=True)).render_stream(
            b2f_stream
        )
        base_stats = baseline.total_stats(warmup=0)
        pre_stats = prepass.total_stats(warmup=0)
        assert pre_stats.prepass_fragments > 0
        assert pre_stats.prepass_depth_writes > 0
        # Geometry is resubmitted: roughly twice the vertex work.
        assert pre_stats.vertices_fetched == 2 * base_stats.vertices_fetched
        # The prepass geometry overhead must show up in cycles.
        assert (
            prepass.total_cycles(warmup=0).geometry
            > baseline.total_cycles(warmup=0).geometry
        )


class TestHierarchicalZ:
    def test_culls_hidden_primitives_front_to_back(self, config):
        projection = orthographic(0, config.screen_width,
                                  config.screen_height, 0, -1.0, 1.0)

        def build(index):
            return make_depth_frame(
                config, projection, index,
                [
                    (0.5, Vec4(0.0, 1.0, 0.01 * index, 1.0)),   # near first
                    (-0.5, Vec4(1.0, 0.01 * index, 0.0, 1.0)),  # far second
                ],
            )

        stream = FrameStream(build, config.frames)
        hiz = GPU(config, PipelineFeatures(hierarchical_z=True)).render_stream(
            stream
        )
        stats = hiz.total_stats(warmup=0)
        assert stats.hiz_culled > 0
        # The far quad never even rasterizes in fully-covered tiles.
        baseline = GPU(config, PipelineMode.BASELINE).render_stream(stream)
        assert (
            stats.primitives_rasterized
            < baseline.total_stats(warmup=0).primitives_rasterized
        )

    def test_powerless_back_to_front(self, config, b2f_stream):
        hiz = GPU(config, PipelineFeatures(hierarchical_z=True)).render_stream(
            b2f_stream
        )
        assert hiz.total_stats(warmup=0).hiz_culled == 0

    def test_image_unchanged(self, config, b2f_stream):
        baseline = GPU(config, PipelineMode.BASELINE).render_stream(b2f_stream)
        hiz = GPU(config, PipelineFeatures(hierarchical_z=True)).render_stream(
            b2f_stream
        )
        for expected, actual in zip(baseline.frames, hiz.frames):
            assert np.array_equal(expected.image, actual.image)

    def test_composes_with_evr_reorder(self, config):
        """EVR's reordering puts visible geometry first, which is what
        makes HiZ effective on badly-ordered scenes."""
        stream = benchmark_stream("tib", config)
        hiz_only = GPU(config, PipelineFeatures(hierarchical_z=True))
        combined = GPU(config, PipelineFeatures(
            evr_hardware=True, evr_reorder=True, hierarchical_z=True,
        ))
        hiz_culled = hiz_only.render_stream(stream).total_stats(
            warmup=0
        ).hiz_culled
        combined_culled = combined.render_stream(stream).total_stats(
            warmup=0
        ).hiz_culled
        assert combined_culled > hiz_culled


class TestAlternativesHarness:
    def test_report_shape(self):
        result = culling_alternatives(GPUConfig.tiny(frames=3),
                                      benchmarks=["tib"])
        mechanisms = [row[1] for row in result.rows]
        assert mechanisms == ["baseline", "hiz", "z-prepass",
                              "evr-reorder-only", "evr-hiz", "oracle"]
        frags = {row[1]: row[2] for row in result.rows}
        assert frags["z-prepass"] == pytest.approx(frags["oracle"])
        assert (frags["oracle"] <= frags["evr-reorder-only"]
                <= frags["baseline"])

    def test_rivals_report_shape(self):
        from repro.harness.alternatives import rival_techniques

        result = rival_techniques(GPUConfig.tiny(frames=3),
                                  benchmarks=["tib"])
        techniques = [row[1] for row in result.rows]
        assert techniques == ["baseline", "evr", "dsr", "fhv", "vrpipe-et"]
        frags = {row[1]: row[2] for row in result.rows}
        # Approximate rivals never shade more than baseline.
        for name in ("evr", "dsr", "fhv", "vrpipe-et"):
            assert frags[name] <= frags["baseline"]
