"""Unit and property tests for repro.math3d vectors."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.math3d import Vec2, Vec3, Vec4

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                   allow_infinity=False)


class TestVec2:
    def test_add_sub(self):
        assert Vec2(1, 2) + Vec2(3, 4) == Vec2(4, 6)
        assert Vec2(3, 4) - Vec2(1, 2) == Vec2(2, 2)

    def test_scalar_multiply_both_sides(self):
        assert Vec2(1, 2) * 3 == Vec2(3, 6)
        assert 3 * Vec2(1, 2) == Vec2(3, 6)

    def test_negation(self):
        assert -Vec2(1, -2) == Vec2(-1, 2)

    def test_dot(self):
        assert Vec2(1, 2).dot(Vec2(3, 4)) == 11

    def test_cross_is_signed_area(self):
        assert Vec2(1, 0).cross(Vec2(0, 1)) == 1.0
        assert Vec2(0, 1).cross(Vec2(1, 0)) == -1.0

    def test_length(self):
        assert Vec2(3, 4).length() == 5.0

    def test_iter_and_tuple(self):
        assert list(Vec2(1, 2)) == [1, 2]
        assert Vec2(1, 2).as_tuple() == (1, 2)

    @given(finite, finite, finite, finite)
    def test_cross_antisymmetry(self, ax, ay, bx, by):
        a, b = Vec2(ax, ay), Vec2(bx, by)
        assert a.cross(b) == pytest.approx(-b.cross(a), rel=1e-9, abs=1e-6)


class TestVec3:
    def test_arithmetic(self):
        assert Vec3(1, 2, 3) + Vec3(4, 5, 6) == Vec3(5, 7, 9)
        assert Vec3(4, 5, 6) - Vec3(1, 2, 3) == Vec3(3, 3, 3)
        assert Vec3(1, 2, 3) * 2 == Vec3(2, 4, 6)
        assert -Vec3(1, 2, 3) == Vec3(-1, -2, -3)

    def test_cross_right_handed(self):
        assert Vec3(1, 0, 0).cross(Vec3(0, 1, 0)) == Vec3(0, 0, 1)
        assert Vec3(0, 1, 0).cross(Vec3(0, 0, 1)) == Vec3(1, 0, 0)

    def test_normalized(self):
        n = Vec3(0, 3, 4).normalized()
        assert n.length() == pytest.approx(1.0)
        assert n == Vec3(0, 0.6, 0.8)

    def test_normalized_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Vec3(0, 0, 0).normalized()

    def test_to_vec4(self):
        assert Vec3(1, 2, 3).to_vec4() == Vec4(1, 2, 3, 1)
        assert Vec3(1, 2, 3).to_vec4(0.0) == Vec4(1, 2, 3, 0)

    @given(finite, finite, finite)
    def test_cross_self_is_zero(self, x, y, z):
        v = Vec3(x, y, z)
        cross = v.cross(v)
        assert cross.length() == pytest.approx(0.0, abs=1e-3)

    @given(finite, finite, finite, finite, finite, finite)
    def test_cross_orthogonal_to_operands(self, ax, ay, az, bx, by, bz):
        a, b = Vec3(ax, ay, az), Vec3(bx, by, bz)
        c = a.cross(b)
        scale = max(a.length() * b.length(), 1.0)
        assert c.dot(a) / (scale * max(c.length(), 1.0)) == pytest.approx(
            0.0, abs=1e-6
        )


class TestVec4:
    def test_arithmetic(self):
        assert Vec4(1, 2, 3, 4) + Vec4(1, 1, 1, 1) == Vec4(2, 3, 4, 5)
        assert Vec4(2, 3, 4, 5) - Vec4(1, 1, 1, 1) == Vec4(1, 2, 3, 4)
        assert Vec4(1, 2, 3, 4) * 2 == Vec4(2, 4, 6, 8)

    def test_dot(self):
        assert Vec4(1, 2, 3, 4).dot(Vec4(4, 3, 2, 1)) == 20

    def test_perspective_divide(self):
        assert Vec4(2, 4, 6, 2).perspective_divide() == Vec3(1, 2, 3)

    def test_perspective_divide_zero_w_raises(self):
        with pytest.raises(ZeroDivisionError):
            Vec4(1, 1, 1, 0).perspective_divide()

    def test_default_w_is_one(self):
        assert Vec4().w == 1.0

    def test_xyz(self):
        assert Vec4(1, 2, 3, 4).xyz() == Vec3(1, 2, 3)


class TestImmutability:
    def test_vectors_are_frozen(self):
        for v in (Vec2(1, 2), Vec3(1, 2, 3), Vec4(1, 2, 3, 4)):
            with pytest.raises(Exception):
                v.x = 99.0

    def test_vectors_hashable(self):
        assert len({Vec3(1, 2, 3), Vec3(1, 2, 3), Vec3(0, 0, 0)}) == 2
