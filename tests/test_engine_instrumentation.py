"""Edge cases of the engine's instrumentation merge/reduce.

The reducers run once per tile per frame, in a fixed order; these tests
pin the corner cases that fixed order must survive: empty records,
missing units, and float ``dram_cycles`` accumulation (where summation
order changes the result — determinism comes from the engine always
reducing in tile order, not from the arithmetic being associative).
"""

from __future__ import annotations

from repro.engine.instrumentation import Instrumentation, merge_unit_counters


class TestMergeUnitCounters:
    def test_merge_into_empty(self):
        into = {}
        merge_unit_counters(into, {"l2": {"hits": 3}})
        assert into == {"l2": {"hits": 3}}

    def test_merge_from_empty_is_identity(self):
        into = {"l2": {"hits": 3}}
        merge_unit_counters(into, {})
        assert into == {"l2": {"hits": 3}}

    def test_merge_disjoint_units_and_counters(self):
        into = {"l2": {"hits": 1}}
        merge_unit_counters(into, {"l2": {"misses": 2}, "dram": {"reads": 4}})
        assert into == {"l2": {"hits": 1, "misses": 2},
                        "dram": {"reads": 4}}

    def test_merge_returns_into_for_chaining(self):
        into = {}
        assert merge_unit_counters(into, {"u": {"c": 1}}) is into


class TestInstrumentationMerge:
    def test_merge_empty_records(self):
        total = Instrumentation().merge(Instrumentation())
        assert total.units == {}
        assert total.dram_cycles == 0.0

    def test_merge_is_in_place_and_chains(self):
        record = Instrumentation(units={"l2": {"hits": 1}}, dram_cycles=1.0)
        result = record.merge(
            Instrumentation(units={"l2": {"hits": 2}}, dram_cycles=0.5)
        )
        assert result is record
        assert record.units == {"l2": {"hits": 3}}
        assert record.dram_cycles == 1.5

    def test_merge_does_not_mutate_source(self):
        source = Instrumentation(units={"l2": {"hits": 2}}, dram_cycles=0.5)
        Instrumentation().merge(source)
        assert source.units == {"l2": {"hits": 2}}
        assert source.dram_cycles == 0.5

    def test_reduce_nothing(self):
        total = Instrumentation.reduce([])
        assert total.units == {}
        assert total.dram_cycles == 0.0

    def test_reduce_starts_from_fresh_record(self):
        records = [Instrumentation(units={"u": {"c": 1}})]
        first = Instrumentation.reduce(records)
        second = Instrumentation.reduce(records)
        assert first.units == second.units
        assert first.units is not second.units

    def test_reduce_float_accumulation_is_order_sensitive(self):
        # 1.0 + 1e16 absorbs the 1.0 (1e16 + 1.0 == 1e16), so summing
        # [1.0, 1e16, -1e16] left-to-right loses the 1.0 while the
        # reverse order ([-1e16, 1e16, 1.0]) keeps it.  The engine's
        # determinism therefore rests on reducing in a *fixed* (tile)
        # order, not on float addition being associative.
        records = [Instrumentation(dram_cycles=c)
                   for c in (1.0, 1e16, -1e16)]
        forward = Instrumentation.reduce(records)
        backward = Instrumentation.reduce(reversed(records))
        assert forward.dram_cycles == 0.0
        assert backward.dram_cycles == 1.0

    def test_reduce_same_order_is_deterministic(self):
        records = [Instrumentation(dram_cycles=c)
                   for c in (0.1, 0.2, 0.3, 1e16, -1e16)]
        results = {Instrumentation.reduce(records).dram_cycles
                   for _ in range(5)}
        assert len(results) == 1
