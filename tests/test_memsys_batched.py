"""Cross-backend bit-identity of the batched memory system.

The scalar :class:`~repro.memsys.MemorySystem` defines the semantics;
the batched model must reproduce every observable — per-cache counters,
snapshots, DRAM traffic and cycle estimates, frame-flush behaviour —
bit for bit on arbitrary traces.  Random op sequences (mixed streams,
line-straddling sizes, frame boundaries, mid-sequence counter
observations) are the proof; a handful of directed tests pin the
mechanisms (exact LRU via rank stepping, run collapse, L2 cursor
continuity).
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GPUConfig
from repro.config import CacheConfig
from repro.memsys import BatchedMemorySystem, MemorySystem
from repro.memsys.batched import _LaneLRU
from repro.memsys.cache import Cache
from repro.obs.metrics import global_registry
from repro.memsys.ops import (
    EndFrameOp,
    FBLoadOp,
    FlushOp,
    MemOps,
    PBReadOp,
    PBWriteOp,
    ResetStatsOp,
    TextureOp,
    VertexOp,
    VertexRangeOp,
    replay_memory_trace,
)

#: A deliberately tiny hierarchy: single-digit sets and constant
#: evictions, so the fuzzer exercises victim selection and writebacks
#: far harder than the real geometry would.
_TINY = dataclasses.replace(
    GPUConfig.default(),
    caches=(
        CacheConfig("vertex", 256, 64, 2, 1, 1),
        CacheConfig("texture0", 128, 64, 2, 1, 1),
        CacheConfig("texture1", 128, 64, 2, 1, 1),
        CacheConfig("texture2", 128, 64, 2, 1, 1),
        CacheConfig("texture3", 128, 64, 2, 1, 1),
        CacheConfig("tile", 512, 64, 8, 8, 1),
        CacheConfig("l2", 1024, 64, 8, 8, 2),
        CacheConfig("color_buffer", 1024, 64, 1, 1, 1),
        CacheConfig("depth_buffer", 1024, 64, 1, 1, 1),
    ),
)

_CONFIGS = {"default": GPUConfig.default(), "tiny": _TINY}


def _uv_lists():
    floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
    return st.lists(floats, min_size=1, max_size=40)


def _op_strategy():
    return st.one_of(
        st.tuples(st.just("vertex"), st.integers(0, 200),
                  st.sampled_from([4, 30, 48, 100])),
        st.tuples(st.just("vertex_range"), st.integers(0, 100),
                  st.integers(0, 20), st.sampled_from([30, 48])),
        st.tuples(st.just("pb_write"), st.integers(0, 5000),
                  st.integers(1, 300)),
        st.tuples(st.just("pb_read"), st.integers(0, 5000),
                  st.integers(1, 300)),
        st.tuples(st.just("texture"), st.integers(0, 5),
                  st.sampled_from([4, 16, 100, 256]), _uv_lists(),
                  st.integers(1, 4), st.booleans()),
        st.tuples(st.just("fb_flush"), st.integers(1, 4096)),
        st.tuples(st.just("fb_load"), st.integers(1, 4096)),
        st.tuples(st.just("end_frame")),
        st.tuples(st.just("reset_stats")),
    )


def _apply(memory, op) -> None:
    kind = op[0]
    if kind == "vertex":
        memory.fetch_vertex(op[1], op[2])
    elif kind == "vertex_range":
        memory.fetch_vertex_range(op[1], op[2], op[3])
    elif kind == "pb_write":
        memory.parameter_buffer_write(op[1], op[2])
    elif kind == "pb_read":
        memory.parameter_buffer_read(op[1], op[2])
    elif kind == "texture":
        u = np.array(op[3], np.float64)
        memory.texture_batch(op[1], op[2], u, u[::-1].copy(),
                             samples_per_fragment=op[4], bilinear=op[5])
    elif kind == "fb_flush":
        memory.framebuffer_flush(op[1])
    elif kind == "fb_load":
        memory.framebuffer_load(op[1])
    elif kind == "end_frame":
        memory.end_frame()
    elif kind == "reset_stats":
        memory.reset_stats()
    else:  # pragma: no cover
        raise AssertionError(kind)


def _observe(memory):
    return memory.snapshot(), memory.dram.cycles()


class TestFuzzBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(ops=st.lists(_op_strategy(), max_size=60),
           config_name=st.sampled_from(sorted(_CONFIGS)),
           observe_every=st.integers(5, 25))
    def test_direct_calls_match(self, ops, config_name, observe_every):
        """Op-by-op public-API calls: every counter matches, including
        at observation points *inside* the sequence (which force the
        batched model to drain mid-stream)."""
        config = _CONFIGS[config_name]
        scalar = MemorySystem(config)
        batched = BatchedMemorySystem(config)
        for index, op in enumerate(ops):
            _apply(scalar, op)
            _apply(batched, op)
            if index % observe_every == 0:
                assert _observe(scalar) == _observe(batched)
        assert _observe(scalar) == _observe(batched)
        assert scalar._l2_cursor == batched._l2_cursor

    @settings(max_examples=40, deadline=None)
    @given(ops=st.lists(_op_strategy(), max_size=80),
           config_name=st.sampled_from(sorted(_CONFIGS)))
    def test_recorded_trace_replay_matches(self, ops, config_name):
        """A whole recorded trace (markers included) replayed through
        ``replay_memory_trace``: the scalar model dispatches per op, the
        batched model consumes the list in one drain."""
        trace = MemOps()
        for op in ops:
            kind = op[0]
            if kind == "vertex":
                trace.append(VertexOp(op[1], op[2]))
            elif kind == "vertex_range":
                trace.append(VertexRangeOp(op[1], op[2], op[3]))
            elif kind == "pb_write":
                trace.append(PBWriteOp(op[1], op[2]))
            elif kind == "pb_read":
                trace.append(PBReadOp(op[1], op[2]))
            elif kind == "texture":
                u = np.array(op[3], np.float64)
                trace.append(TextureOp(op[1], op[2], u, u[::-1].copy(),
                                       op[4]))
            elif kind == "fb_flush":
                trace.append(FlushOp(op[1]))
            elif kind == "fb_load":
                trace.append(FBLoadOp(op[1]))
            elif kind == "end_frame":
                trace.append(EndFrameOp())
            elif kind == "reset_stats":
                trace.append(ResetStatsOp())
        config = _CONFIGS[config_name]
        scalar = MemorySystem(config)
        batched = BatchedMemorySystem(config)
        replay_memory_trace(trace, scalar)
        replay_memory_trace(trace, batched)
        assert _observe(scalar) == _observe(batched)
        assert scalar._l2_cursor == batched._l2_cursor


class TestLaneLRU:
    """The rank-stepping LRU against the OrderedDict reference."""

    @settings(max_examples=60, deadline=None)
    @given(data=st.data(),
           sets=st.sampled_from([1, 2, 8]),
           ways=st.sampled_from([1, 2, 8]))
    def test_matches_scalar_cache(self, data, sets, ways):
        n = data.draw(st.integers(0, 120))
        lines = data.draw(st.lists(
            st.integers(0, 4 * sets * ways), min_size=n, max_size=n))
        writes = data.draw(st.lists(st.booleans(), min_size=n, max_size=n))

        cache = Cache(CacheConfig("ref", sets * ways * 64, 64, ways, 1, 1))
        expected = []
        for line, write in zip(lines, writes):
            result = cache.access(line * 64, 64, write=write)
            expected.append((bool(result.hits), bool(result.writebacks)))

        lru = _LaneLRU(np.full(sets, ways, np.int64))
        line_arr = np.array(lines, np.int64)
        hit, wb = lru.simulate(line_arr % sets, line_arr // sets,
                               np.array(writes, bool))
        assert list(zip(hit.tolist(), wb.tolist())) == expected

    def test_chunked_equals_single_shot(self):
        """State carries across simulate() calls: splitting a stream at
        arbitrary points (as drains do) must not change any outcome."""
        rng = np.random.default_rng(7)
        lanes = rng.integers(0, 4, 300)
        tags = rng.integers(0, 6, 300)
        writes = rng.random(300) < 0.3

        one = _LaneLRU(np.full(4, 2, np.int64))
        hit_a, wb_a = one.simulate(lanes, tags, writes)

        chunked = _LaneLRU(np.full(4, 2, np.int64))
        hits, wbs = [], []
        for lo, hi in [(0, 1), (1, 50), (50, 51), (51, 300)]:
            h, w = chunked.simulate(lanes[lo:hi], tags[lo:hi], writes[lo:hi])
            hits.append(h)
            wbs.append(w)
        assert np.array_equal(np.concatenate(hits), hit_a)
        assert np.array_equal(np.concatenate(wbs), wb_a)
        assert np.array_equal(one.tags, chunked.tags)
        assert np.array_equal(one.dirty, chunked.dirty)

    def test_run_collapse_counts_dirty_correctly(self):
        """A same-line run with one write anywhere leaves the line dirty
        (the collapse ORs the run's write flags)."""
        lru = _LaneLRU(np.full(1, 1, np.int64))
        lanes = np.zeros(3, np.int64)
        tags = np.zeros(3, np.int64)
        hit, _ = lru.simulate(lanes, tags, np.array([False, True, False]))
        assert hit.tolist() == [False, True, True]
        # Evict by touching another tag: the dirty line must write back.
        _, wb = lru.simulate(np.zeros(1, np.int64), np.ones(1, np.int64),
                             np.zeros(1, bool))
        assert wb.tolist() == [True]


class TestDrainBoundaries:
    def test_l2_cursor_survives_drains_and_frames(self):
        config = GPUConfig.default()
        scalar = MemorySystem(config)
        batched = BatchedMemorySystem(config)
        for memory in (scalar, batched):
            memory.fetch_vertex_range(0, 64, 48)
            memory.snapshot()  # force a drain mid-frame
            memory.parameter_buffer_write(0, 4096)
            memory.end_frame()
            memory.fetch_vertex_range(64, 64, 48)
        assert _observe(scalar) == _observe(batched)
        assert scalar._l2_cursor == batched._l2_cursor

    def test_end_frame_flushes_dirty_parameter_buffer(self):
        batched = BatchedMemorySystem(GPUConfig.default())
        batched.parameter_buffer_write(0, 4096)
        batched.end_frame()
        snap = batched.snapshot()
        assert snap["tile"]["writebacks"] > 0
        assert snap["dram"]["write_bytes"] > 0

    def test_counter_reads_force_drain(self):
        batched = BatchedMemorySystem(GPUConfig.default())
        batched.fetch_vertex(0)
        assert batched.vertex_cache.accesses == 1
        assert batched.vertex_cache.misses == 1
        batched.fetch_vertex(0)
        assert batched.vertex_cache.hits == 1
        assert batched.vertex_cache.hit_rate == 0.5

    def test_eager_validation_matches_scalar(self):
        from repro import MemoryModelError

        scalar = MemorySystem(GPUConfig.default())
        batched = BatchedMemorySystem(GPUConfig.default())
        for memory in (scalar, batched):
            with pytest.raises(MemoryModelError):
                memory.fetch_vertex(0, 0)
            with pytest.raises(MemoryModelError):
                memory.fetch_vertex_range(0, -1)
            with pytest.raises(MemoryModelError):
                memory.parameter_buffer_read(0, -5)
            with pytest.raises(MemoryModelError):
                memory.framebuffer_flush(0)
        # Nothing leaked into the counters on either side.
        assert _observe(scalar) == _observe(batched)


class TestBatchingTelemetry:
    """The batched model reports its vectorization quality to the
    global metrics registry (surfaced via ``--metrics`` and the
    dashboard's memsys panel) without perturbing simulation."""

    def setup_method(self):
        global_registry().reset()

    def test_drain_batch_sizes_are_observed(self):
        batched = BatchedMemorySystem(GPUConfig.default())
        for vertex in range(5):
            batched.fetch_vertex(vertex)
        batched.snapshot()  # forces one drain of 5 pending ops
        summary = global_registry().as_dict()
        histogram = summary["histograms"]["memsys.drain_batch_ops"]
        assert histogram["count"] == 1
        assert histogram["max"] >= 5

    def test_lane_collapse_counters(self):
        batched = BatchedMemorySystem(GPUConfig.default())
        # Same vertex fetched repeatedly: consecutive same-line accesses
        # collapse into runs inside one lane.
        for _ in range(8):
            batched.fetch_vertex(0)
        batched.snapshot()
        counters = global_registry().as_dict()["counters"]
        assert counters["memsys.line_accesses"] >= 8
        assert counters["memsys.collapsed_runs"] >= 1
        assert counters["memsys.batch_lanes"] >= 1
        assert "memsys.scalar_tail_lanes" in counters

    def test_telemetry_never_changes_results(self):
        config = GPUConfig.default()
        first = BatchedMemorySystem(config)
        for vertex in range(32):
            first.fetch_vertex(vertex % 7)
        baseline = _observe(first)
        global_registry().reset()
        second = BatchedMemorySystem(config)
        for vertex in range(32):
            second.fetch_vertex(vertex % 7)
        assert _observe(second) == baseline
