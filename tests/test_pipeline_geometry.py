"""Tests for the Geometry Pipeline: shading, assembly and binning."""

import numpy as np
import pytest

from repro import (
    DrawCommand,
    Frame,
    GPU,
    GPUConfig,
    PipelineFeatures,
    PipelineMode,
    RenderState,
)
from repro.geom import box_mesh, quad, screen_quad
from repro.math3d import Mat4, Vec3, Vec4, look_at, orthographic, perspective
from repro.timing import FrameStats

import math


def render_one(config, frame, mode=PipelineMode.BASELINE):
    gpu = GPU(config, mode)
    return gpu, gpu.render_frame(frame)


class TestVertexProcessingCounters:
    def test_vertices_and_instructions(self, tiny_config, ortho_screen):
        frame = Frame(
            [DrawCommand.from_mesh(screen_quad(0, 0, 32, 32),
                                   state=RenderState.sprite_2d())],
            projection=ortho_screen,
        )
        _, result = render_one(tiny_config, frame)
        assert result.stats.vertices_fetched == 6
        assert result.stats.primitives_in == 2
        expected = 6 * RenderState.sprite_2d().shader.vertex_instructions
        assert result.stats.vertex_instructions == expected


class TestCulling:
    def test_offscreen_culled(self, tiny_config, ortho_screen):
        frame = Frame(
            [DrawCommand.from_mesh(screen_quad(-500, -500, 10, 10),
                                   state=RenderState.sprite_2d())],
            projection=ortho_screen,
        )
        _, result = render_one(tiny_config, frame)
        assert result.stats.primitives_culled == 2
        assert result.stats.primitives_binned == 0

    def test_backface_culling_on_boxes(self, tiny_config):
        view = look_at(Vec3(0, 0, 5), Vec3(0, 0, 0), Vec3(0, 1, 0))
        proj = perspective(math.radians(60), 4 / 3, 0.5, 50.0)
        frame = Frame(
            [DrawCommand.from_mesh(box_mesh(Vec3(0, 0, 0), Vec3(1, 1, 1)),
                                   state=RenderState.opaque_3d())],
            view=view, projection=proj,
        )
        _, result = render_one(tiny_config, frame)
        # A box has 12 triangles; at most half face the camera.
        assert result.stats.primitives_binned <= 6
        assert result.stats.primitives_binned >= 2

    def test_no_backface_culling_when_disabled(self, tiny_config):
        view = look_at(Vec3(0, 0, 5), Vec3(0, 0, 0), Vec3(0, 1, 0))
        proj = perspective(math.radians(60), 4 / 3, 0.5, 50.0)
        frame = Frame(
            [DrawCommand.from_mesh(
                box_mesh(Vec3(0, 0, 0), Vec3(1, 1, 1)),
                state=RenderState.opaque_3d(cull_backface=False))],
            view=view, projection=proj,
        )
        _, result = render_one(tiny_config, frame)
        assert result.stats.primitives_binned == 12

    def test_behind_camera_culled(self, tiny_config):
        view = look_at(Vec3(0, 0, 5), Vec3(0, 0, 0), Vec3(0, 1, 0))
        proj = perspective(math.radians(60), 4 / 3, 0.5, 50.0)
        frame = Frame(
            [DrawCommand.from_mesh(
                quad(Vec3(-1, -1, 20), Vec3(2, 0, 0), Vec3(0, 2, 0)),
                state=RenderState.opaque_3d(cull_backface=False))],
            view=view, projection=proj,
        )
        _, result = render_one(tiny_config, frame)
        assert result.stats.primitives_binned == 0


class TestBinning:
    def test_small_sprite_bins_to_one_tile(self, tiny_config, ortho_screen):
        frame = Frame(
            [DrawCommand.from_mesh(screen_quad(2, 2, 8, 8),
                                   state=RenderState.sprite_2d())],
            projection=ortho_screen,
        )
        _, result = render_one(tiny_config, frame)
        assert result.stats.primitive_tile_pairs == 2  # 2 triangles x 1 tile

    def test_fullscreen_bins_to_all_tiles(self, tiny_config, ortho_screen):
        frame = Frame(
            [DrawCommand.from_mesh(
                screen_quad(0, 0, tiny_config.screen_width,
                            tiny_config.screen_height),
                state=RenderState.sprite_2d())],
            projection=ortho_screen,
        )
        gpu, result = render_one(tiny_config, frame)
        # Each of the 2 triangles conservatively overlaps most tiles.
        assert result.stats.display_list_writes >= tiny_config.num_tiles
        total_entries = sum(
            len(dl) for _, dl in gpu.parameter_buffer.tiles()
        )
        assert total_entries == result.stats.display_list_writes

    def test_parameter_buffer_bytes_counted(self, tiny_config, ortho_screen):
        frame = Frame(
            [DrawCommand.from_mesh(screen_quad(2, 2, 8, 8),
                                   state=RenderState.sprite_2d())],
            projection=ortho_screen,
        )
        _, result = render_one(tiny_config, frame)
        assert result.stats.parameter_buffer_bytes == 2 * 144

    def test_layer_bytes_only_under_evr(self, tiny_config, ortho_screen):
        frame_builder = lambda: Frame(
            [DrawCommand.from_mesh(screen_quad(2, 2, 8, 8),
                                   state=RenderState.sprite_2d())],
            projection=ortho_screen,
        )
        _, base = render_one(tiny_config, frame_builder())
        _, evr = render_one(tiny_config, frame_builder(), PipelineMode.EVR)
        assert base.stats.layer_id_bytes == 0
        assert evr.stats.layer_id_bytes == 2 * 2  # 2 pairs x 2 bytes
        assert evr.stats.lgt_accesses == 2
        assert evr.stats.fvp_lookups == 2


class TestSignatures:
    def _frame(self, config, projection, offset):
        return Frame(
            [DrawCommand.from_mesh(screen_quad(2 + offset, 2, 8, 8),
                                   state=RenderState.sprite_2d())],
            projection=projection,
        )

    def test_signature_changes_when_object_moves(self, tiny_config,
                                                 ortho_screen):
        gpu = GPU(tiny_config, PipelineMode.RE)
        gpu.render_frame(self._frame(tiny_config, ortho_screen, 0))
        moved = self._frame(tiny_config, ortho_screen, 1)
        result = gpu.render_frame(moved)
        assert result.stats.tiles_skipped < tiny_config.num_tiles

    def test_signature_stable_for_static_object(self, tiny_config,
                                                ortho_screen):
        gpu = GPU(tiny_config, PipelineMode.RE)
        gpu.render_frame(self._frame(tiny_config, ortho_screen, 0))
        result = gpu.render_frame(self._frame(tiny_config, ortho_screen, 0))
        assert result.stats.tiles_skipped == tiny_config.num_tiles

    def test_model_matrix_motion_changes_signature(self, tiny_config,
                                                   ortho_screen):
        """A static mesh moved via the model matrix must still break
        redundancy: signatures are over post-transform positions."""
        from repro.math3d import translate

        def frame_with_model(offset):
            return Frame(
                [DrawCommand.from_mesh(
                    screen_quad(2, 2, 8, 8),
                    model=translate(Vec3(offset, 0, 0)),
                    state=RenderState.sprite_2d())],
                projection=ortho_screen,
            )

        gpu = GPU(tiny_config, PipelineMode.RE)
        gpu.render_frame(frame_with_model(0.0))
        result = gpu.render_frame(frame_with_model(3.0))
        assert result.stats.tiles_skipped < tiny_config.num_tiles
