"""Randomized cross-mode correctness fuzzing.

Generates random animated scenes (mixed WOZ/NWOZ, random depths, motion,
blending, partial overlaps, HUD-like overlays) and checks the library's
strongest invariant: BASELINE, RE and EVR render pixel-identical frames.

This is the test class that originally exposed the misprediction-
poisoning hole (DESIGN.md §5b), generalized from the fixed benchmark
suite to hypothesis-driven scene generation.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    BlendMode,
    DrawCommand,
    Frame,
    FrameStream,
    GPU,
    GPUConfig,
    PipelineMode,
    RenderState,
)
from repro.geom import quad
from repro.math3d import Vec3, Vec4, orthographic

WIDTH, HEIGHT = 48, 32
CONFIG = GPUConfig(screen_width=WIDTH, screen_height=HEIGHT, frames=5)
PROJECTION = orthographic(0, WIDTH, HEIGHT, 0, -1.0, 1.0)


@st.composite
def rect_specs(draw):
    """One animated rectangle: geometry, depth, state and motion."""
    x = draw(st.floats(min_value=-10, max_value=WIDTH - 2))
    y = draw(st.floats(min_value=-10, max_value=HEIGHT - 2))
    w = draw(st.floats(min_value=2, max_value=WIDTH))
    h = draw(st.floats(min_value=2, max_value=HEIGHT))
    depth = draw(st.floats(min_value=-0.9, max_value=0.9))
    kind = draw(st.sampled_from(["woz", "sprite", "translucent"]))
    alpha = draw(st.sampled_from([0.4, 1.0]))
    dx = draw(st.floats(min_value=-4, max_value=4))
    dz = draw(st.floats(min_value=-0.05, max_value=0.05))
    color_seed = draw(st.integers(min_value=0, max_value=255))
    animate_color = draw(st.booleans())
    return (x, y, w, h, depth, kind, alpha, dx, dz, color_seed,
            animate_color)


def build_stream(specs):
    def build(index):
        commands = [
            DrawCommand.from_mesh(
                quad(Vec3(0, 0, -0.95), Vec3(WIDTH, 0, 0), Vec3(0, HEIGHT, 0),
                     Vec4(0.1, 0.1, 0.15, 1.0)),
                state=RenderState.sprite_2d(),
                label="background",
            )
        ]
        for spec_index, spec in enumerate(specs):
            (x, y, w, h, depth, kind, alpha, dx, dz, color_seed,
             animate_color) = spec
            frame_x = x + dx * index
            frame_depth = max(-0.95, min(0.95, depth + dz * index))
            green = ((color_seed + (17 * index if animate_color else 0))
                     % 256) / 255.0
            color = Vec4(0.8, green, 0.3, alpha if kind == "translucent"
                         else 1.0)
            mesh = quad(Vec3(frame_x, y, frame_depth),
                        Vec3(w, 0, 0), Vec3(0, h, 0), color)
            if kind == "woz":
                state = RenderState.opaque_3d(cull_backface=False)
            elif kind == "translucent":
                state = RenderState.sprite_2d(blend=BlendMode.ALPHA)
            else:
                state = RenderState.sprite_2d()
            commands.append(
                DrawCommand.from_mesh(mesh, state=state,
                                      label=f"rect{spec_index}")
            )
        return Frame(commands, projection=PROJECTION, index=index)

    return FrameStream(build, CONFIG.frames)


@given(st.lists(rect_specs(), min_size=1, max_size=7))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_all_modes_pixel_identical_on_random_scenes(specs):
    stream = build_stream(specs)
    reference = None
    for mode in (PipelineMode.BASELINE, PipelineMode.RE, PipelineMode.EVR):
        result = GPU(CONFIG, mode).render_stream(stream)
        images = [frame.image for frame in result.frames]
        if reference is None:
            reference = images
            continue
        for index, (expected, actual) in enumerate(zip(reference, images)):
            np.testing.assert_array_equal(
                expected, actual,
                err_msg=f"{mode.value} frame {index} diverged",
            )


@given(st.lists(rect_specs(), min_size=1, max_size=6))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_reorder_only_never_changes_image(specs):
    stream = build_stream(specs)
    baseline = GPU(CONFIG, PipelineMode.BASELINE).render_stream(stream)
    reorder = GPU(CONFIG, PipelineMode.EVR_REORDER_ONLY).render_stream(stream)
    for expected, actual in zip(baseline.frames, reorder.frames):
        np.testing.assert_array_equal(expected.image, actual.image)


@given(st.lists(rect_specs(), min_size=1, max_size=6))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_skip_counts_within_oracle_bound(specs):
    """EVR may never skip more tiles than are pixel-identical."""
    stream = build_stream(specs)
    evr = GPU(CONFIG, PipelineMode.EVR).render_stream(stream)
    oracle = GPU(CONFIG, PipelineMode.ORACLE).render_stream(stream)
    # Per-frame: skipped tiles must be a subset of truly-equal tiles,
    # so the counts must satisfy skipped <= equal.
    evr_skipped = sum(f.stats.tiles_skipped for f in evr.frames)
    assert evr_skipped <= oracle.comparator.tiles_equal


# ---------------------------------------------------------------------------
# Corpus stress families as hypothesis strategies: the named adversarial
# workloads (repro.corpus) must satisfy the same contracts under *any*
# seed, not just the seeds the committed corpus pins.
# ---------------------------------------------------------------------------

from repro.corpus import family_names, family_stream  # noqa: E402
from repro.validate import validate_stream  # noqa: E402

STRESS_CONFIG = GPUConfig(screen_width=48, screen_height=32, frames=3)


@given(st.sampled_from(family_names()),
       st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_stress_families_satisfy_contracts_under_any_seed(family, seed):
    stream = family_stream(family, STRESS_CONFIG, seed=seed)
    report = validate_stream(stream, STRESS_CONFIG)
    assert report.passed, f"{family} seed={seed}\n{report.render()}"


@given(st.sampled_from(family_names()),
       st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_stress_families_differential_across_backends(family, seed):
    """Scalar and batched backends must stay bit-identical on the
    adversarial geometry (slivers, zero-area, deep stacks) too."""
    stream = family_stream(family, STRESS_CONFIG, seed=seed)
    report = validate_stream(stream, STRESS_CONFIG,
                             modes=(PipelineMode.BASELINE,
                                    PipelineMode.EVR),
                             backends=("python", "numpy"))
    assert report.passed, f"{family} seed={seed}\n{report.render()}"
