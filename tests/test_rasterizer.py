"""Tests for the tile-scoped edge-function rasterizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RenderState
from repro.geom import ScreenTriangle, VertexAttributes
from repro.math3d import Vec2, Vec4
from repro.pipeline import rasterize_in_tile


def make_triangle(points, z=(0.5, 0.5, 0.5), colors=None):
    if colors is None:
        colors = [Vec4(1, 1, 1, 1)] * 3
    return ScreenTriangle(
        xy=tuple(Vec2(*p) for p in points),
        z=z,
        attributes=tuple(VertexAttributes(color=c) for c in colors),
        command_id=0,
        primitive_id=0,
        state=RenderState.sprite_2d(),
        signature_bytes=b"",
    )


class TestCoverage:
    def test_full_tile_triangle(self):
        tri = make_triangle([(-10, -10), (50, -10), (-10, 50)])
        batch = rasterize_in_tile(tri, 0, 0, 16, 16)
        assert batch is not None
        assert batch.fragment_count == 256

    def test_no_coverage_returns_none(self):
        tri = make_triangle([(100, 100), (110, 100), (100, 110)])
        assert rasterize_in_tile(tri, 0, 0, 16, 16) is None

    def test_degenerate_returns_none(self):
        tri = make_triangle([(0, 0), (10, 10), (20, 20)])
        assert rasterize_in_tile(tri, 0, 0, 16, 16) is None

    def test_winding_independent_coverage(self):
        ccw = make_triangle([(0, 0), (16, 0), (0, 16)])
        cw = make_triangle([(0, 0), (0, 16), (16, 0)])
        a = rasterize_in_tile(ccw, 0, 0, 16, 16)
        b = rasterize_in_tile(cw, 0, 0, 16, 16)
        assert np.array_equal(a.mask, b.mask)

    def test_half_tile_right_triangle(self):
        # Hypotenuse through the diagonal: about half the pixels.
        tri = make_triangle([(0, 0), (16, 0), (0, 16)])
        batch = rasterize_in_tile(tri, 0, 0, 16, 16)
        assert 100 <= batch.fragment_count <= 156

    def test_pixel_center_sampling(self):
        # A quad-like triangle covering x in [0, 4), y in [0, 4): covers
        # pixel centers 0.5..3.5.
        tri = make_triangle([(0, 0), (4, 0), (0, 4)])
        batch = rasterize_in_tile(tri, 0, 0, 16, 16)
        assert batch.mask[0, 0]
        assert not batch.mask[0, 4]

    def test_shared_edge_no_double_coverage(self):
        # Two triangles of a quad share the diagonal; every covered pixel
        # belongs to exactly one.
        a = make_triangle([(0, 0), (16, 0), (16, 16)])
        b = make_triangle([(0, 0), (16, 16), (0, 16)])
        batch_a = rasterize_in_tile(a, 0, 0, 16, 16)
        batch_b = rasterize_in_tile(b, 0, 0, 16, 16)
        overlap = batch_a.mask & batch_b.mask
        union = batch_a.mask | batch_b.mask
        assert not overlap.any()
        assert union.all()

    def test_tile_offset(self):
        tri = make_triangle([(16, 16), (48, 16), (16, 48)])
        tile0 = rasterize_in_tile(tri, 0, 0, 16, 16)
        tile1 = rasterize_in_tile(tri, 16, 16, 16, 16)
        assert tile0 is None or tile0.fragment_count == 0
        assert tile1.fragment_count > 0


class TestInterpolation:
    def test_depth_at_vertices(self):
        tri = make_triangle([(0, 0), (16, 0), (0, 16)], z=(0.0, 1.0, 0.5))
        batch = rasterize_in_tile(tri, 0, 0, 16, 16)
        # Pixel (0.5, 0.5) is near vertex 0 (z=0).
        assert batch.depth[0, 0] < 0.1

    def test_depth_linear_along_edge(self):
        tri = make_triangle([(-16, 0), (32, 0), (0, 32)], z=(0.0, 1.0, 0.0))
        batch = rasterize_in_tile(tri, 0, 0, 16, 16)
        row = batch.depth[1, :]
        mask_row = batch.mask[1, :]
        values = row[mask_row]
        assert (np.diff(values) > 0).all()  # monotonic left to right

    def test_flat_color(self):
        color = Vec4(0.25, 0.5, 0.75, 1.0)
        tri = make_triangle([(-10, -10), (50, -10), (-10, 50)],
                            colors=[color] * 3)
        batch = rasterize_in_tile(tri, 0, 0, 16, 16)
        assert np.allclose(batch.rgba[batch.mask],
                           [0.25, 0.5, 0.75, 1.0])

    def test_gradient_color(self):
        colors = [Vec4(0, 0, 0, 1), Vec4(1, 0, 0, 1), Vec4(0, 0, 0, 1)]
        tri = make_triangle([(-16, 0), (32, 0), (0, 32)], colors=colors)
        batch = rasterize_in_tile(tri, 0, 0, 16, 16)
        row = batch.rgba[1, :, 0]
        values = row[batch.mask[1, :]]
        assert (np.diff(values) > 0).all()

    def test_winding_swap_keeps_attribute_binding(self):
        colors = [Vec4(1, 0, 0, 1), Vec4(0, 1, 0, 1), Vec4(0, 0, 1, 1)]
        ccw = make_triangle([(0, 0), (16, 0), (0, 16)], z=(0.1, 0.5, 0.9),
                            colors=colors)
        cw = make_triangle([(0, 0), (0, 16), (16, 0)], z=(0.1, 0.9, 0.5),
                           colors=[colors[0], colors[2], colors[1]])
        a = rasterize_in_tile(ccw, 0, 0, 16, 16)
        b = rasterize_in_tile(cw, 0, 0, 16, 16)
        assert np.allclose(a.rgba[a.mask], b.rgba[b.mask])
        assert np.allclose(a.depth[a.mask], b.depth[b.mask])

    def test_uv_interpolation_range(self):
        tri = make_triangle([(-20, -20), (60, -20), (-20, 60)])
        batch = rasterize_in_tile(tri, 0, 0, 16, 16)
        assert (batch.u[batch.mask] >= -0.01).all()
        assert (batch.v[batch.mask] >= -0.01).all()


class TestProperties:
    coords = st.floats(min_value=-40.0, max_value=60.0, allow_nan=False)

    @given(coords, coords, coords, coords, coords, coords)
    @settings(max_examples=80, deadline=None)
    def test_coverage_within_bbox(self, x0, y0, x1, y1, x2, y2):
        tri = make_triangle([(x0, y0), (x1, y1), (x2, y2)])
        batch = rasterize_in_tile(tri, 0, 0, 16, 16)
        if batch is None:
            return
        min_x, min_y, max_x, max_y = tri.bounding_box()
        ys, xs = np.nonzero(batch.mask)
        assert (xs + 0.5 >= min_x - 1e-9).all()
        assert (xs + 0.5 <= max_x + 1e-9).all()
        assert (ys + 0.5 >= min_y - 1e-9).all()
        assert (ys + 0.5 <= max_y + 1e-9).all()

    @given(coords, coords, coords, coords, coords, coords)
    @settings(max_examples=80, deadline=None)
    def test_depth_within_vertex_range(self, x0, y0, x1, y1, x2, y2):
        tri = make_triangle([(x0, y0), (x1, y1), (x2, y2)],
                            z=(0.2, 0.7, 0.4))
        batch = rasterize_in_tile(tri, 0, 0, 16, 16)
        if batch is None:
            return
        covered = batch.depth[batch.mask]
        assert (covered >= 0.2 - 1e-9).all()
        assert (covered <= 0.7 + 1e-9).all()
