"""Tests for the scene generators and the benchmark suite."""

import pytest

from repro import BlendMode, GPUConfig, SceneError
from repro.math3d import Vec2, Vec3, Vec4
from repro.scenes import (
    BENCHMARKS,
    BoxSpec,
    CircularMotion,
    HUDSpec,
    JitterMotion,
    Layer2D,
    LinearOscillation,
    Scene2D,
    Scene3D,
    SpriteSpec,
    StaticMotion,
    benchmark_info,
    benchmark_names,
    benchmark_stream,
)


class TestMotions:
    def test_static(self):
        assert StaticMotion().offset(5) == Vec3(0, 0, 0)

    def test_linear_oscillation_periodic(self):
        motion = LinearOscillation(Vec3(10, 0, 0), period_frames=8)
        zero = motion.offset(0)
        full = motion.offset(8)
        assert zero.x == pytest.approx(full.x, abs=1e-9)
        assert motion.offset(2).x == pytest.approx(10.0)

    def test_circular_radius(self):
        motion = CircularMotion(radius=5.0, period_frames=16)
        for frame in range(16):
            offset = motion.offset(frame)
            assert (offset.x ** 2 + offset.y ** 2) ** 0.5 == pytest.approx(5.0)

    def test_jitter_deterministic(self):
        motion = JitterMotion(amplitude=3.0, seed=7)
        assert motion.offset(4) == motion.offset(4)

    def test_jitter_varies_with_frame(self):
        motion = JitterMotion(amplitude=3.0, seed=7)
        offsets = {motion.offset(i).as_tuple() for i in range(8)}
        assert len(offsets) > 4

    def test_jitter_bounded(self):
        motion = JitterMotion(amplitude=3.0, seed=7)
        for frame in range(32):
            offset = motion.offset(frame)
            assert abs(offset.x) <= 3.0
            assert abs(offset.y) <= 3.0


class TestScene2D:
    def _layer(self):
        return Layer2D("test", [SpriteSpec(Vec2(10, 10), Vec2(8, 8))])

    def test_needs_layers(self):
        with pytest.raises(SceneError):
            Scene2D(64, 48, [])

    def test_frame_structure(self):
        scene = Scene2D(64, 48, [self._layer()])
        frame = scene.build_frame(0)
        assert frame.index == 0
        assert len(frame.commands) == 1
        assert frame.commands[0].label == "test"

    def test_hud_appended_last(self):
        hud = HUDSpec(panels=((0, 0, 64, 8),))
        scene = Scene2D(64, 48, [self._layer()], hud=hud)
        frame = scene.build_frame(0)
        assert frame.commands[-1].label == "hud"

    def test_sprites_are_nwoz(self):
        scene = Scene2D(64, 48, [self._layer()])
        state = scene.build_frame(0).commands[0].state
        assert not state.writes_z
        assert not state.depth_test

    def test_motion_moves_sprites(self):
        layer = Layer2D("moving", [
            SpriteSpec(Vec2(20, 20), Vec2(8, 8),
                       motion=LinearOscillation(Vec3(10, 0, 0), 8))
        ])
        scene = Scene2D(64, 48, [layer])
        p0 = scene.build_frame(0).commands[0].triangles[0].v0.position
        p2 = scene.build_frame(2).commands[0].triangles[0].v0.position
        assert p0.x != p2.x

    def test_stream_deterministic(self):
        scene = Scene2D(64, 48, [self._layer()])
        a = scene.stream(3)
        b = scene.stream(3)
        for frame_a, frame_b in zip(a, b):
            tris_a = [t.pack() for c in frame_a.commands for t in c.triangles]
            tris_b = [t.pack() for c in frame_b.commands for t in c.triangles]
            assert tris_a == tris_b


class TestScene3D:
    def _scene(self, **kwargs):
        return Scene3D(
            64, 48,
            boxes=[BoxSpec(Vec3(0, 1, 0), Vec3(2, 2, 2))],
            **kwargs,
        )

    def test_bad_draw_order_rejected(self):
        with pytest.raises(SceneError):
            self._scene(draw_order="random")

    def test_command_structure(self):
        scene = self._scene(hud=HUDSpec(panels=((0, 0, 64, 8),)))
        frame = scene.build_frame(0)
        labels = [c.label for c in frame.commands]
        assert labels[0] == "background"
        assert "ground" in labels
        assert labels[-1] == "hud"

    def test_background_and_hud_are_nwoz(self):
        scene = self._scene(hud=HUDSpec(panels=((0, 0, 64, 8),)))
        frame = scene.build_frame(0)
        assert not frame.commands[0].state.writes_z
        assert not frame.commands[-1].state.writes_z

    def test_world_geometry_is_woz(self):
        frame = self._scene().build_frame(0)
        box_command = next(c for c in frame.commands if c.label == "box")
        assert box_command.state.writes_z

    def test_static_camera(self):
        scene = self._scene(camera_orbit_period=0.0)
        assert scene.eye(0) == scene.eye(10)

    def test_orbiting_camera_moves(self):
        scene = self._scene(camera_orbit_period=16.0)
        assert scene.eye(0) != scene.eye(4)

    def test_orbit_preserves_distance(self):
        scene = self._scene(camera_orbit_period=16.0)
        target = scene.camera_target

        def dist(frame):
            eye = scene.eye(frame)
            return ((eye.x - target.x) ** 2 + (eye.z - target.z) ** 2) ** 0.5

        assert dist(0) == pytest.approx(dist(7))

    def test_translucents_after_world(self):
        from repro.scenes.scene3d import TranslucentSpec
        scene = Scene3D(
            64, 48,
            boxes=[BoxSpec(Vec3(0, 1, 0), Vec3(2, 2, 2))],
            translucents=[TranslucentSpec(Vec3(0, 2, 0), 2.0)],
        )
        frame = scene.build_frame(0)
        labels = [c.label for c in frame.commands]
        assert labels.index("effect") > labels.index("box")
        effect = next(c for c in frame.commands if c.label == "effect")
        assert effect.state.blend is BlendMode.ALPHA
        assert effect.state.depth_test and not effect.state.depth_write


class TestBenchmarkSuite:
    def test_twenty_benchmarks(self):
        assert len(BENCHMARKS) == 20
        assert len(benchmark_names("3D")) == 6
        assert len(benchmark_names("2D")) == 14

    def test_paper_aliases_present(self):
        expected = {
            "300", "ata", "csn", "mst", "ter", "tib",
            "abi", "arm", "ale", "ccs", "cde", "coc", "ctr", "dpe",
            "hay", "hop", "mto", "red", "wmw", "wog",
        }
        assert set(BENCHMARKS) == expected

    def test_unknown_benchmark(self):
        with pytest.raises(SceneError):
            benchmark_info("nope")

    def test_streams_build(self):
        config = GPUConfig.tiny(frames=2)
        for alias in ("cde", "tib"):
            stream = benchmark_stream(alias, config)
            assert len(stream) == 2
            frame = stream.frame(0)
            assert frame.triangle_count > 0

    def test_stream_deterministic_across_builds(self):
        config = GPUConfig.tiny(frames=2)
        a = benchmark_stream("hay", config).frame(1)
        b = benchmark_stream("hay", config).frame(1)
        packs_a = [t.pack() for c in a.commands for t in c.triangles]
        packs_b = [t.pack() for c in b.commands for t in c.triangles]
        assert packs_a == packs_b

    def test_frames_override(self):
        config = GPUConfig.tiny(frames=2)
        assert len(benchmark_stream("cde", config, frames=7)) == 7

    def test_3d_benchmarks_have_woz_and_nwoz(self):
        config = GPUConfig.tiny(frames=1)
        frame = benchmark_stream("tib", config).frame(0)
        woz = [c for c in frame.commands if c.state.writes_z]
        nwoz = [c for c in frame.commands if not c.state.writes_z]
        assert woz and nwoz

    def test_2d_benchmarks_are_pure_nwoz(self):
        config = GPUConfig.tiny(frames=1)
        for alias in benchmark_names("2D"):
            frame = benchmark_stream(alias, config).frame(0)
            assert all(not c.state.writes_z for c in frame.commands), alias

    def test_hidden_motion_requires_hud(self):
        from repro.scenes.benchmarks import _sprite_scene
        with pytest.raises(SceneError):
            _sprite_scene(GPUConfig.tiny(), seed=1, layers=1,
                          sprites_per_layer=1, animated_fraction=0.0,
                          hidden_motion_sprites=2)
