"""Tests for the structured event bus (:mod:`repro.obs.events`).

The load-bearing properties: sequence numbers are monotonic, the wire
form round-trips (and tolerates unknown kinds/fields), worker-side
forwarding replays events on the parent bus in submission order even
when the worker fork-inherited a live parent bus, subscribers are
one-way (a raising subscriber is disconnected, and a run with every
subscriber attached is bit-identical to a bare run).
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.config import GPUConfig
from repro.engine import ProcessPoolScheduler, SerialScheduler
from repro.harness.runner import metrics_from_result
from repro.obs import ChromeTracer, MetricsRegistry
from repro.obs.events import (
    CorpusFamilyChecked,
    EVENT_SCHEMA_VERSION,
    EventBus,
    EventForwardingCall,
    ForwardedResult,
    JsonlEventWriter,
    MetricSample,
    MetricsSubscriber,
    NULL_BUS,
    PhaseCompleted,
    RunFinished,
    RunStarted,
    TileJobFinished,
    TracerSubscriber,
    event_from_wire,
    get_bus,
    publishing,
    read_event_log,
    replay_forwarded,
    set_bus,
    to_wire,
)
from repro.pipeline import GPU, PipelineMode
from repro.scenes import benchmark_stream


class TestBusBasics:
    def test_null_bus_is_default_and_disabled(self):
        assert get_bus() is NULL_BUS
        assert not NULL_BUS.enabled
        NULL_BUS.emit(MetricSample(name="x", value=1.0))  # no-op

    def test_null_bus_rejects_subscribers(self):
        with pytest.raises(RuntimeError):
            NULL_BUS.subscribe(lambda event: None)

    def test_publishing_scopes_and_restores(self):
        bus = EventBus()
        with publishing(bus):
            assert get_bus() is bus
        assert get_bus() is NULL_BUS

    def test_set_bus_returns_previous(self):
        bus = EventBus()
        assert set_bus(bus) is NULL_BUS
        assert set_bus(NULL_BUS) is bus

    def test_emit_stamps_monotonic_seq_and_ts(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit(MetricSample(name="a", value=1.0))
        bus.emit(MetricSample(name="b", value=2.0))
        bus.emit(MetricSample(name="c", value=3.0))
        assert [event.seq for event in seen] == [1, 2, 3]
        assert all(event.ts > 0 for event in seen)
        assert bus.emitted == 3

    def test_delivery_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(lambda e: order.append("first"))
        bus.subscribe(lambda e: order.append("second"))
        bus.emit(MetricSample(name="x", value=0.0))
        assert order == ["first", "second"]

    def test_raising_subscriber_is_disconnected_not_fatal(self):
        bus = EventBus()
        good = []

        def bad(event):
            raise ValueError("subscriber bug")

        bus.subscribe(bad)
        bus.subscribe(good.append)
        bus.emit(MetricSample(name="x", value=0.0))
        bus.emit(MetricSample(name="y", value=1.0))
        # The bad subscriber saw at most one event; the good one saw both.
        assert [event.name for event in good] == ["x", "y"]

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.unsubscribe(seen.append)
        bus.emit(MetricSample(name="x", value=0.0))
        assert seen == []


class TestWireForm:
    EVENTS = [
        RunStarted(benchmark="cde", mode="evr", frames=4),
        PhaseCompleted(phase="raster", frame=2, seconds=0.5,
                       fragments=100, cache_ops=200),
        TileJobFinished(tile=7, fragments=64, worker=123,
                        start=1.0, end=2.0),
        MetricSample(name="suite.progress", value=0.5),
        RunFinished(benchmark="cde", mode="evr", seconds=1.5,
                    frames=4, fragments=400),
        CorpusFamilyChecked(family="sliver", frames=4, seconds=0.8,
                            passed=False, checks=13, failures=9,
                            shrink_evals=17),
    ]

    def test_round_trip_every_kind(self):
        for event in self.EVENTS:
            wire = to_wire(event)
            assert wire["v"] == EVENT_SCHEMA_VERSION
            assert wire["kind"] == event.kind
            json.dumps(wire)  # JSON-serialisable
            assert event_from_wire(wire) == event

    def test_unknown_kind_is_skipped(self):
        assert event_from_wire({"v": EVENT_SCHEMA_VERSION,
                                "kind": "quantum-flux"}) is None

    def test_foreign_version_is_skipped(self):
        wire = to_wire(MetricSample(name="x", value=1.0))
        wire["v"] = EVENT_SCHEMA_VERSION + 1
        assert event_from_wire(wire) is None

    def test_unknown_fields_of_known_kind_are_ignored(self):
        wire = to_wire(MetricSample(name="x", value=1.0))
        wire["added_in_v2"] = "whatever"
        assert event_from_wire(wire) == MetricSample(name="x", value=1.0)

    def test_jsonl_writer_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        bus = EventBus()
        writer = JsonlEventWriter(path)
        bus.subscribe(writer)
        for event in self.EVENTS:
            bus.emit(event)
        writer.close()
        writer.close()  # idempotent
        assert writer.written == len(self.EVENTS)
        replayed = read_event_log(path)
        assert [event.kind for event in replayed] == \
            [event.kind for event in self.EVENTS]
        assert [event.seq for event in replayed] == \
            list(range(1, len(self.EVENTS) + 1))

    def test_reader_skips_torn_tail(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps(to_wire(self.EVENTS[0])) + "\n")
            handle.write('{"v": 1, "kind": "metric-sa')  # killed mid-write
        assert len(read_event_log(path)) == 1


def _square_and_emit(item):
    """Pool-mapped job (module-level: must pickle into workers)."""
    get_bus().emit(MetricSample(name="job", value=float(item)))
    return item * item


class TestForwarding:
    def test_in_parent_passes_through_without_buffering(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)

        def fn(item):
            get_bus().emit(MetricSample(name="inner", value=item))
            return item * 2

        with publishing(bus):
            wrapped = EventForwardingCall(fn)
            result = wrapped(21)
        assert isinstance(result, ForwardedResult)
        assert result.result == 42
        assert result.events == []  # emitted live, nothing buffered
        assert [event.name for event in seen] == ["inner"]

    def test_in_worker_buffers_even_with_inherited_bus(self):
        # Simulate a forked worker: the parent's live bus object is
        # inherited, but the pid check reroutes emission to a buffer.
        parent_subscribers = []
        parent_bus = EventBus()
        parent_bus.subscribe(parent_subscribers.append)

        def fn(item):
            get_bus().emit(MetricSample(name="inner", value=item))
            return item

        with publishing(parent_bus):
            wrapped = EventForwardingCall(fn, parent_pid=os.getpid() + 1)
            result = wrapped(7)
        assert result.result == 7
        assert [event.name for event in result.events] == ["inner"]
        assert parent_subscribers == []  # parent saw nothing in-worker

    def test_replay_forwarded_restamps_on_parent_bus(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit(MetricSample(name="before", value=0.0))
        forwarded = ForwardedResult(
            "payload",
            [MetricSample(name="a", value=1.0, seq=1, ts=5.0),
             MetricSample(name="b", value=2.0, seq=2, ts=6.0)],
        )
        assert replay_forwarded(forwarded, bus) == "payload"
        assert [event.seq for event in seen] == [1, 2, 3]  # re-stamped

    def test_replay_passes_plain_values_through(self):
        assert replay_forwarded(123) == 123

    def test_pool_scheduler_forwards_worker_events(self):
        calls = list(range(8))
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        with publishing(bus):
            with ProcessPoolScheduler(jobs=2) as scheduler:
                results = scheduler.map(_square_and_emit, calls)
        assert results == [item * item for item in calls]
        samples = [event for event in seen if event.name == "job"]
        # Ordered: submission order, re-stamped monotonically.
        assert [event.value for event in samples] == [float(i) for i in calls]
        seqs = [event.seq for event in samples]
        assert seqs == sorted(seqs)


class TestConsumerSubscribers:
    def test_tracer_subscriber_emits_instants(self):
        tracer = ChromeTracer()
        bus = EventBus()
        bus.subscribe(TracerSubscriber(tracer))
        bus.emit(RunStarted(benchmark="cde", mode="evr", frames=4))
        instants = [e for e in tracer.events if e.get("ph") == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "run-started"
        assert instants[0]["args"]["benchmark"] == "cde"

    def test_metrics_subscriber_counts_and_observes(self):
        registry = MetricsRegistry()
        bus = EventBus()
        bus.subscribe(MetricsSubscriber(registry))
        bus.emit(PhaseCompleted(phase="raster", frame=0, seconds=0.25))
        bus.emit(PhaseCompleted(phase="raster", frame=1, seconds=0.75))
        bus.emit(MetricSample(name="suite.progress", value=0.5))
        snapshot = registry.as_dict()
        assert snapshot["counters"]["events.phase-completed"] == 2
        assert snapshot["counters"]["events.metric-sample"] == 1
        histogram = snapshot["histograms"]["events.phase_seconds.raster"]
        assert histogram["count"] == 2 and histogram["sum"] == 1.0
        assert snapshot["gauges"]["events.sample.suite.progress"] == 0.5


def _render(config, scheduler=None, subscribers=()):
    """One tiny EVR run; returns distilled metrics.  ``subscribers``
    attach to a fresh bus installed for the run."""
    stream = benchmark_stream("hop", config)
    if subscribers:
        bus = EventBus()
        for subscriber in subscribers:
            bus.subscribe(subscriber)
        with publishing(bus):
            result = GPU(config, PipelineMode.EVR,
                         scheduler=scheduler).render_stream(stream)
    else:
        result = GPU(config, PipelineMode.EVR,
                     scheduler=scheduler).render_stream(stream)
    return metrics_from_result("hop", PipelineMode.EVR, result)


class TestBitIdentity:
    """The one-way contract: subscribers never change what they watch."""

    def test_serial_run_identical_with_and_without_bus(self, tmp_path):
        config = GPUConfig.tiny(frames=3)
        bare = _render(config)
        sink = []
        tracer = ChromeTracer()
        registry = MetricsRegistry()
        writer = JsonlEventWriter(str(tmp_path / "events.jsonl"))
        observed = _render(config, subscribers=(
            sink.append, writer, TracerSubscriber(tracer),
            MetricsSubscriber(registry),
        ))
        writer.close()
        assert dataclasses.asdict(observed) == dataclasses.asdict(bare)
        assert sink  # the bus actually saw the run

    def test_pool_run_identical_with_and_without_bus(self, tmp_path):
        config = GPUConfig.tiny(frames=3)
        with ProcessPoolScheduler(jobs=2) as scheduler:
            bare = _render(config, scheduler)
        writer = JsonlEventWriter(str(tmp_path / "events.jsonl"))
        sink = []
        with ProcessPoolScheduler(jobs=2) as scheduler:
            observed = _render(config, scheduler,
                               subscribers=(sink.append, writer))
        writer.close()
        assert dataclasses.asdict(observed) == dataclasses.asdict(bare)
        kinds = {event.kind for event in sink}
        assert "tile-job-finished" in kinds and "phase-completed" in kinds

    def test_fuzz_identity_across_seeds(self):
        # Fuzz over benchmark/frame-count variations: bus-on always
        # equals bus-off, whatever the workload shape.
        for benchmark, frames in (("hop", 2), ("cde", 2), ("tib", 3)):
            config = GPUConfig.tiny(frames=frames)
            stream = benchmark_stream(benchmark, config)
            bare = GPU(config, PipelineMode.EVR).render_stream(stream)
            bus = EventBus()
            bus.subscribe(lambda event: None)
            with publishing(bus):
                stream = benchmark_stream(benchmark, config)
                observed = GPU(config, PipelineMode.EVR).render_stream(stream)
            bare_metrics = metrics_from_result(benchmark, PipelineMode.EVR,
                                               bare)
            observed_metrics = metrics_from_result(benchmark,
                                                   PipelineMode.EVR,
                                                   observed)
            assert (dataclasses.asdict(observed_metrics)
                    == dataclasses.asdict(bare_metrics))
            assert bus.emitted > 0
