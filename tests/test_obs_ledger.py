"""Tests for the persistent run ledger (:mod:`repro.obs.ledger`).

Covers the append/stamp/read round trip, directory resolution
(argument → ``$REPRO_LEDGER_DIR`` → default, ``off`` disables), group
keying, gc, drift detection (the ``repro ledger check`` gate) and the
phase accumulator, plus the CLI surface (``ledger list/show/diff/gc/
check``, ``bench --history``, ``dashboard``).
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.cli import main
from repro.harness.runner import RunMetrics
from repro.obs.events import EventBus, PhaseCompleted, RunStarted
from repro.obs.ledger import (
    DEFAULT_LEDGER_DIR,
    PhaseAccumulator,
    RunLedger,
    diff_entries,
    entry_label,
    format_ledger_rows,
    resolve_ledger_dir,
    run_key,
)


def make_metrics(benchmark="hop", mode="evr", redundant=0.35,
                 error=""):
    nan = float("nan")
    failed = bool(error)
    return RunMetrics(
        benchmark=benchmark, mode=mode,
        geometry_cycles=nan if failed else 1000.0,
        raster_cycles=nan if failed else 2000.0,
        energy_joules=nan if failed else 0.25,
        energy_breakdown={} if failed else {"l2": 0.1},
        shaded_fragments_per_pixel=nan if failed else 1.2,
        redundant_tile_rate=nan if failed else redundant,
        overshading_kills=0,
        predicted_occluded_rate=nan if failed else 0.4,
        error=error,
    )


class TestResolution:
    def test_argument_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "env"))
        assert resolve_ledger_dir(str(tmp_path / "arg")) == \
            str(tmp_path / "arg")

    def test_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "env"))
        assert resolve_ledger_dir(None) == str(tmp_path / "env")
        assert resolve_ledger_dir("") == str(tmp_path / "env")

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
        assert resolve_ledger_dir(None) == DEFAULT_LEDGER_DIR

    @pytest.mark.parametrize("value", ["off", "none", "OFF", "disabled"])
    def test_disabled_values(self, value):
        assert resolve_ledger_dir(value) == ""

    def test_disabled_ledger_is_inert(self):
        ledger = RunLedger("off")
        assert not ledger.enabled
        assert ledger.append({"kind": "run"}) is None
        assert ledger.entries() == []
        assert ledger.record_run("hash", make_metrics()) is None


class TestAppendAndRead:
    def test_append_stamps_provenance(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger"))
        stamped = ledger.append({"kind": "run", "benchmark": "hop"})
        assert stamped["v"] == 1
        assert stamped["ts"] > 0
        assert "git_sha" in stamped and "code_version" in stamped
        assert "machine" in stamped
        [entry] = ledger.entries()
        assert entry["benchmark"] == "hop"

    def test_append_only(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger"))
        for index in range(3):
            ledger.append({"kind": "run", "index": index})
        assert [entry["index"] for entry in ledger.entries()] == [0, 1, 2]

    def test_record_run_distills_metrics(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger"))
        stamped = ledger.record_run("abc123", make_metrics(),
                                    phases={"raster": 0.5},
                                    source="figure")
        assert stamped["kind"] == "run"
        assert stamped["spec_hash"] == "abc123"
        assert stamped["benchmark"] == "hop" and stamped["mode"] == "evr"
        assert stamped["source"] == "figure"
        assert stamped["metrics"]["redundant_tile_rate"] == 0.35
        assert stamped["phases"] == {"raster": 0.5}
        assert "benchmark" not in stamped["metrics"]
        assert "error" not in stamped["metrics"]

    def test_record_run_skips_failed_cells(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger"))
        assert ledger.record_run("abc", make_metrics(error="crashed")) \
            is None
        assert ledger.entries() == []

    def test_record_bench_extracts_ratios(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger"))
        stamped = ledger.record_bench({
            "preset": "default",
            "speedup": {"frames_per_second": 2.5},
            "backends": {
                "numpy": {"wall_seconds": 1.0, "frames_per_second": 10.0,
                          "memsys_sweep": {"cache_ops_per_second": 5e5}},
            },
        })
        assert stamped["kind"] == "bench"
        assert stamped["speedup"]["frames_per_second"] == 2.5
        assert stamped["backends"]["numpy"]["cache_ops_per_second"] == 5e5

    def test_torn_tail_is_tolerated(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger"))
        ledger.append({"kind": "run", "index": 0})
        with open(ledger.path, "a") as handle:
            handle.write('{"kind": "run", "ind')
        assert len(ledger.entries()) == 1

    def test_run_key_grouping(self):
        run = {"kind": "run", "spec_hash": "h", "benchmark": "hop",
               "mode": "evr", "git_sha": "a"}
        same_cell_other_commit = dict(run, git_sha="b")
        assert run_key(run) == run_key(same_cell_other_commit)
        assert run_key(run) != run_key(dict(run, mode="re"))
        assert run_key({"kind": "bench", "preset": "default"}) == \
            ("bench", "default")


class TestGcAndCheck:
    def seed(self, tmp_path, rates):
        ledger = RunLedger(str(tmp_path / "ledger"))
        for rate in rates:
            ledger.record_run("h", make_metrics(redundant=rate))
        return ledger

    def test_gc_keeps_newest_per_group(self, tmp_path):
        ledger = self.seed(tmp_path, [0.30, 0.31, 0.32, 0.33])
        ledger.record_run("h", make_metrics(mode="re", redundant=0.5))
        kept, dropped = ledger.gc(keep=2)
        assert (kept, dropped) == (3, 2)
        entries = ledger.entries()
        evr = [e for e in entries if e["mode"] == "evr"]
        assert [e["metrics"]["redundant_tile_rate"] for e in evr] == \
            [0.32, 0.33]

    def test_gc_rejects_nonpositive_keep(self, tmp_path):
        with pytest.raises(ValueError):
            self.seed(tmp_path, [0.3]).gc(keep=0)

    def test_check_passes_within_tolerance(self, tmp_path):
        ledger = self.seed(tmp_path, [0.30, 0.31, 0.32])
        assert ledger.check() == []

    def test_check_flags_rate_drift(self, tmp_path):
        ledger = self.seed(tmp_path, [0.30, 0.31, 0.30, 0.45])
        findings = ledger.check()
        assert len(findings) == 1
        assert "redundant_tile_rate" in findings[0]
        assert "drifted" in findings[0]

    def test_check_single_entry_groups_pass(self, tmp_path):
        ledger = self.seed(tmp_path, [0.30])
        assert ledger.check() == []

    def bench_entry(self, fps):
        return {"preset": "default",
                "speedup": {"frames_per_second": fps},
                "backends": {}}

    def test_check_flags_bench_ratio_drop(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger"))
        for fps in (2.0, 2.1, 1.2):  # >20% below median 2.0
            ledger.record_bench(self.bench_entry(fps))
        findings = ledger.check()
        assert len(findings) == 1 and "fell" in findings[0]

    def test_check_ignores_bench_speedups(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger"))
        for fps in (2.0, 2.1, 5.0):  # faster is never drift
            ledger.record_bench(self.bench_entry(fps))
        assert ledger.check() == []


class TestPhaseAccumulator:
    def test_attributes_phases_to_current_run(self):
        bus = EventBus()
        accumulator = PhaseAccumulator()
        bus.subscribe(accumulator)
        bus.emit(RunStarted(benchmark="hop", mode="evr", frames=2))
        bus.emit(PhaseCompleted(phase="geometry", frame=0, seconds=0.1))
        bus.emit(PhaseCompleted(phase="raster", frame=0, seconds=0.4))
        bus.emit(PhaseCompleted(phase="raster", frame=1, seconds=0.6))
        bus.emit(RunStarted(benchmark="hop", mode="re", frames=2))
        bus.emit(PhaseCompleted(phase="raster", frame=0, seconds=9.0))
        evr = accumulator.for_cell("hop", "evr")
        assert evr["geometry"] == pytest.approx(0.1)
        assert evr["raster"] == pytest.approx(1.0)
        assert accumulator.for_cell("hop", "re")["raster"] == \
            pytest.approx(9.0)
        assert accumulator.for_cell("hop", "oracle") == {}

    def test_phases_before_any_run_are_dropped(self):
        accumulator = PhaseAccumulator()
        accumulator(PhaseCompleted(phase="raster", frame=0, seconds=1.0))
        assert accumulator.phases == {}


class TestFormatting:
    def test_entry_label_and_rows(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger"))
        ledger.record_run("h", make_metrics())
        ledger.record_bench({"preset": "default",
                             "speedup": {"frames_per_second": 2.0},
                             "backends": {}})
        entries = ledger.entries()
        assert entry_label(entries[0]) == "hop:evr"
        assert entry_label(entries[1]) == "bench:default"
        rows = format_ledger_rows(entries)
        assert len(rows) == 2
        assert "redundant tiles 0.3500" in rows[0]
        assert "frames/s x2.00" in rows[1]

    def test_diff_entries_reports_deltas(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger"))
        ledger.record_run("h", make_metrics(redundant=0.30))
        ledger.record_run("h", make_metrics(redundant=0.40))
        old, new = ledger.entries()
        lines = diff_entries(old, new)
        assert any("redundant_tile_rate" in line and "0.3" in line
                   for line in lines)

    def test_diff_identical_entries(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger"))
        ledger.record_run("h", make_metrics())
        ledger.record_run("h", make_metrics())
        old, new = ledger.entries()
        assert diff_entries(old, new) == ["  (no numeric change)"]


class TestLedgerCli:
    SMALL = ["--frames", "2", "--width", "64", "--height", "48"]

    def ledger_dir(self, tmp_path):
        return str(tmp_path / "cli_ledger")

    def run_once(self, tmp_path):
        assert main(["run", "hop", "--modes", "evr", "--ledger",
                     self.ledger_dir(tmp_path)] + self.SMALL) == 0

    def test_run_appends_and_list_shows(self, tmp_path, capsys):
        self.run_once(tmp_path)
        capsys.readouterr()
        assert main(["ledger", "list", "--ledger",
                     self.ledger_dir(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 entries" in out and "hop:evr" in out

    def test_show_dumps_json(self, tmp_path, capsys):
        self.run_once(tmp_path)
        capsys.readouterr()
        assert main(["ledger", "show", "--ledger",
                     self.ledger_dir(tmp_path)]) == 0
        entry = json.loads(capsys.readouterr().out)
        assert entry["benchmark"] == "hop" and entry["kind"] == "run"
        assert entry["source"] == "run"

    def test_check_gates_drift_through_cli(self, tmp_path, capsys):
        directory = self.ledger_dir(tmp_path)
        ledger = RunLedger(directory)
        for rate in (0.30, 0.31, 0.30):
            ledger.record_run("h", make_metrics(redundant=rate))
        assert main(["ledger", "check", "--ledger", directory]) == 0
        ledger.record_run("h", make_metrics(redundant=0.60))
        assert main(["ledger", "check", "--ledger", directory]) == 1
        assert "DRIFT" in capsys.readouterr().err

    def test_gc_through_cli(self, tmp_path, capsys):
        directory = self.ledger_dir(tmp_path)
        ledger = RunLedger(directory)
        for rate in (0.30, 0.31, 0.32):
            ledger.record_run("h", make_metrics(redundant=rate))
        assert main(["ledger", "gc", "--keep", "1",
                     "--ledger", directory]) == 0
        assert len(ledger.entries()) == 1

    def test_disabled_ledger_errors_cleanly(self, capsys):
        assert main(["ledger", "list", "--ledger", "off"]) == 2
        assert "disabled" in capsys.readouterr().err

    def test_ledger_off_disables_run_recording(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "unused"))
        assert main(["run", "hop", "--modes", "evr", "--ledger", "off"]
                    + self.SMALL) == 0
        assert not os.path.exists(str(tmp_path / "unused"))

    def test_bench_history_empty(self, tmp_path, capsys):
        assert main(["bench", "--history", "--preset", "default",
                     "--ledger", self.ledger_dir(tmp_path)]) == 0
        assert "no bench history" in capsys.readouterr().out

    def test_bench_history_prints_trajectory(self, tmp_path, capsys):
        directory = self.ledger_dir(tmp_path)
        ledger = RunLedger(directory)
        for fps in (2.0, 2.2):
            ledger.record_bench({"preset": "default",
                                 "speedup": {"frames_per_second": fps},
                                 "backends": {}})
        assert main(["bench", "--history", "--preset", "default",
                     "--ledger", directory]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out
        assert "frames_per_second x2.00" in out
        assert "frames_per_second x2.20" in out

    def test_figure_records_cells(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        directory = self.ledger_dir(tmp_path)
        assert main(["figure", "fig9", "--benchmarks", "hop",
                     "--ledger", directory] + self.SMALL) == 0
        entries = RunLedger(directory).entries()
        assert {entry["mode"] for entry in entries} == \
            {"re", "evr", "oracle"}
        assert all(entry["source"] == "figure" for entry in entries)
