"""Tests for the ablation features and the ablation harness."""

import pytest

from repro import ConfigError, GPU, GPUConfig, PipelineFeatures
from repro.core import VisibilityPredictor
from repro.harness import (
    ablation_draw_order,
    ablation_history,
    ablation_prediction_point,
)
from repro.hw import FVPEntry, FVPType, LayerBuffer, ZBuffer
from repro.scenes import benchmark_stream

import numpy as np


def _evr(**overrides):
    base = dict(rendering_elimination=True, evr_hardware=True,
                evr_reorder=True, evr_signature_filter=True)
    base.update(overrides)
    return PipelineFeatures(**base)


class TestFeatureValidation:
    def test_history_must_be_positive(self):
        with pytest.raises(ConfigError):
            PipelineFeatures(fvp_history=0)

    def test_prediction_point_validated(self):
        with pytest.raises(ConfigError):
            PipelineFeatures(prediction_point="median")

    def test_defaults_match_paper(self):
        features = PipelineFeatures()
        assert features.fvp_history == 1
        assert features.prediction_point == "near"


class TestPredictorHistory:
    def _record(self, predictor, tile, depth):
        z = ZBuffer(4, 4)
        lb = LayerBuffer(4, 4)
        mask = np.ones((4, 4), dtype=bool)
        z.write(mask, np.full((4, 4), depth))
        lb.write(mask, 1, is_woz=True)
        predictor.record_tile(tile, lb, z)

    def test_history_one_uses_latest_only(self):
        predictor = VisibilityPredictor(4, history=1)
        self._record(predictor, 0, 0.3)
        self._record(predictor, 0, 0.6)
        # Latest Z_far is 0.6: a primitive at 0.5 is predicted visible,
        # one at 0.7 occluded.
        assert not predictor.predict(0, True, 0.5, 1)
        assert predictor.predict(0, True, 0.7, 1)

    def test_history_two_requires_both_frames(self):
        predictor = VisibilityPredictor(4, history=2)
        self._record(predictor, 0, 0.3)
        self._record(predictor, 0, 0.6)
        # 0.5 is behind frame-old Z_far (0.3) but not the latest (0.6):
        # visible either way; 0.45 is behind 0.3 only -> conservative
        # history-2 predictor says visible.
        assert not predictor.predict(0, True, 0.45, 1)
        # 0.7 is behind both -> occluded.
        assert predictor.predict(0, True, 0.7, 1)

    def test_invalid_history(self):
        with pytest.raises(ValueError):
            VisibilityPredictor(4, history=0)


class TestPredictionPointFeature:
    def test_aggressive_point_predicts_more(self):
        config = GPUConfig.tiny(frames=5)
        stream = benchmark_stream("tib", config)
        results = {}
        for point in ("near", "far"):
            gpu = GPU(config, _evr(prediction_point=point))
            run = gpu.render_stream(stream)
            results[point] = run.total_stats(warmup=0).predicted_occluded
        assert results["far"] >= results["near"]

    def test_aggressive_point_still_renders_correctly(self):
        from repro.pipeline import PipelineMode
        config = GPUConfig.tiny(frames=5)
        stream = benchmark_stream("tib", config)
        baseline = GPU(config, PipelineMode.BASELINE).render_stream(stream)
        aggressive = GPU(config, _evr(prediction_point="far")).render_stream(
            stream
        )
        for expected, actual in zip(baseline.frames, aggressive.frames):
            assert np.array_equal(expected.image, actual.image)


class TestAblationHarness:
    CONFIG = GPUConfig.tiny(frames=5)

    def test_prediction_point_rows(self):
        result = ablation_prediction_point(self.CONFIG, benchmarks=["tib"])
        assert len(result.rows) == 3
        points = [row[1] for row in result.rows]
        assert points == ["near", "centroid", "far"]

    def test_history_rows(self):
        result = ablation_history(self.CONFIG, benchmarks=["tib"],
                                  depths=(1, 2))
        assert len(result.rows) == 2

    def test_draw_order_spread(self):
        result = ablation_draw_order(GPUConfig.default(frames=5))
        assert result.summary["evr_spread"] <= result.summary[
            "baseline_spread"
        ] + 1e-9
