"""Tests for the scheduler profiler and its observability-only contract."""

from __future__ import annotations

import os

import pytest

from repro.config import GPUConfig
from repro.engine import ProcessPoolScheduler, SerialScheduler
from repro.obs import ChromeTracer, SchedulerProfiler, global_registry, tracing
from repro.obs.profile import phase_breakdown
from repro.pipeline import GPU, PipelineMode
from repro.scenes import benchmark_stream

CONFIG = GPUConfig.tiny(frames=3)


def _render(scheduler):
    stream = benchmark_stream("hop", CONFIG)
    gpu = GPU(CONFIG, PipelineMode.EVR, scheduler=scheduler)
    return gpu.render_stream(stream)


def _slow_square(n: int) -> int:
    total = 0
    for i in range(2000):
        total += i
    return n * n


class TestProfilerPassThrough:
    def test_results_unchanged_serial(self):
        profiler = SchedulerProfiler()
        scheduler = SerialScheduler(profiler=profiler)
        assert scheduler.map(_slow_square, [3, 1, 2]) == [9, 1, 4]
        assert len(profiler.timings) == 3
        assert len(profiler.batches) == 1

    def test_results_unchanged_pool(self):
        profiler = SchedulerProfiler()
        with ProcessPoolScheduler(2, profiler=profiler) as pool:
            assert pool.map(_slow_square, list(range(8))) == [
                n * n for n in range(8)
            ]
        assert len(profiler.timings) == 8

    def test_profiled_run_bit_identical(self):
        plain = _render(SerialScheduler())
        profiled = _render(SerialScheduler(profiler=SchedulerProfiler()))
        for frame_a, frame_b in zip(plain.frames, profiled.frames):
            assert frame_a.image.tobytes() == frame_b.image.tobytes()
            assert frame_a.stats.as_dict() == frame_b.stats.as_dict()


class TestTimings:
    def test_timings_are_ordered_and_labelled(self):
        profiler = SchedulerProfiler()
        scheduler = SerialScheduler(profiler=profiler)
        scheduler.map(_slow_square, [5, 6])
        first, second = profiler.timings
        assert first.label == "job 0" and second.label == "job 1"
        assert first.end <= second.start  # serial: strictly sequential
        assert first.duration > 0.0
        assert first.queue_wait >= 0.0
        assert first.worker == os.getpid()

    def test_batch_wall_covers_jobs(self):
        profiler = SchedulerProfiler()
        SerialScheduler(profiler=profiler).map(_slow_square, [1, 2, 3])
        [batch] = profiler.batches
        assert batch.jobs == 3
        assert batch.wall >= sum(t.duration for t in profiler.timings)

    def test_pool_workers_differ_from_parent(self):
        profiler = SchedulerProfiler()
        with ProcessPoolScheduler(2, profiler=profiler) as pool:
            pool.map(_slow_square, list(range(8)))
        workers = {t.worker for t in profiler.timings}
        assert os.getpid() not in workers


class TestSummaries:
    def test_job_summary_empty(self):
        assert SchedulerProfiler().job_summary()["jobs"] == 0

    def test_job_and_worker_summaries(self):
        profiler = SchedulerProfiler()
        SerialScheduler(profiler=profiler).map(_slow_square, [1, 2, 3, 4])
        summary = profiler.job_summary()
        assert summary["jobs"] == 4
        assert summary["busy_seconds"] > 0.0
        assert summary["max_seconds"] >= summary["mean_seconds"]
        [worker] = profiler.worker_summary()
        assert worker["worker"] == "main"
        assert worker["jobs"] == 4
        assert 0.0 < worker["occupancy"] <= 1.0

    def test_registry_counters_fed(self):
        registry = global_registry()
        registry.reset()
        profiler = SchedulerProfiler()
        SerialScheduler(profiler=profiler).map(_slow_square, [1, 2])
        assert registry.counter("scheduler.jobs").value == 2
        assert registry.counter("scheduler.batches").value == 1
        assert registry.histogram("scheduler.job_seconds").count == 2
        registry.reset()


class TestTraceIntegration:
    def test_tile_spans_on_main_track_when_serial(self):
        tracer = ChromeTracer()
        profiler = SchedulerProfiler(tracer)
        with tracing(tracer):
            _render(SerialScheduler(profiler=profiler))
        tiles = [e for e in tracer.events if e.get("cat") == "tile"]
        assert tiles
        main_tid = tracer.track_id("main")
        assert {e["tid"] for e in tiles} == {main_tid}

    def test_phase_breakdown_orders_by_total(self):
        tracer = ChromeTracer()
        with tracing(tracer):
            _render(SerialScheduler(profiler=SchedulerProfiler(tracer)))
        rows = phase_breakdown(tracer)
        names = [row["span"] for row in rows]
        assert "frame" in names and "geometry" in names and "raster" in names
        totals = [row["total_ms"] for row in rows]
        assert totals == sorted(totals, reverse=True)
        for row in rows:
            assert row["mean_ms"] * row["count"] == pytest.approx(
                row["total_ms"]
            )
