"""Shared fixtures: small configs and canonical test scenes."""

from __future__ import annotations

import pytest

from repro import (
    DrawCommand,
    Frame,
    FrameStream,
    GPUConfig,
    RenderState,
)
from repro.geom import quad, screen_quad
from repro.math3d import Mat4, Vec3, Vec4, orthographic


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path, monkeypatch):
    """Point the run ledger at a per-test directory so CLI tests never
    append to (or read) a developer's real ``.repro_ledger/``."""
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "test_ledger"))


@pytest.fixture
def tiny_config() -> GPUConfig:
    """64x48 screen -> 4x3 tiles, 4 frames."""
    return GPUConfig.tiny(frames=4)


@pytest.fixture
def ortho_screen(tiny_config):
    """Pixel-space orthographic projection for the tiny config."""
    return orthographic(
        0.0,
        float(tiny_config.screen_width),
        float(tiny_config.screen_height),
        0.0,
        -1.0,
        1.0,
    )


def make_sprite_frame(config, projection, index, sprites):
    """Build a frame of 2D sprites: (x, y, w, h, color) tuples."""
    commands = [
        DrawCommand.from_mesh(
            screen_quad(x, y, w, h, color=color),
            state=RenderState.sprite_2d(),
            label=f"sprite{i}",
        )
        for i, (x, y, w, h, color) in enumerate(sprites)
    ]
    return Frame(commands, view=Mat4.identity(), projection=projection,
                 index=index)


@pytest.fixture
def static_2d_stream(tiny_config, ortho_screen):
    """3 identical frames: background + one sprite (fully redundant)."""

    def build(index):
        return make_sprite_frame(
            tiny_config,
            ortho_screen,
            index,
            [
                (0, 0, tiny_config.screen_width, tiny_config.screen_height,
                 Vec4(0.1, 0.2, 0.3, 1.0)),
                (8, 8, 16, 16, Vec4(1.0, 0.0, 0.0, 1.0)),
            ],
        )

    return FrameStream(build, tiny_config.frames)


def make_depth_frame(config, projection, index, quads, writes_z=True,
                     color_shift=0.0):
    """Build a frame of depth-tested full-screen quads.

    ``quads`` is a list of (z, color) tuples drawn in order; z is world-z
    with larger values closer to the camera under the test projection.
    """
    commands = []
    for i, (z, color) in enumerate(quads):
        mesh = quad(
            Vec3(0.0, 0.0, z),
            Vec3(float(config.screen_width), 0.0, 0.0),
            Vec3(0.0, float(config.screen_height), 0.0),
            color,
        )
        state = (
            RenderState.opaque_3d(cull_backface=False)
            if writes_z
            else RenderState.sprite_2d()
        )
        commands.append(DrawCommand.from_mesh(mesh, state=state,
                                              label=f"quad{i}"))
    return Frame(commands, view=Mat4.identity(), projection=projection,
                 index=index)


@pytest.fixture
def back_to_front_stream(tiny_config, ortho_screen):
    """Two full-screen WOZ quads drawn back-to-front, colors animated so
    Rendering Elimination never skips (isolates the reordering effect)."""

    def build(index):
        return make_depth_frame(
            tiny_config,
            ortho_screen,
            index,
            [
                (-0.5, Vec4(1.0, 0.01 * index, 0.0, 1.0)),   # far
                (0.5, Vec4(0.0, 1.0, 0.01 * index, 1.0)),    # near
            ],
        )

    return FrameStream(build, tiny_config.frames)
