"""Tests for the paper-vs-measured report plumbing.

The full report runs the entire suite (exercised by the bench targets
and ``python -m repro report``); these tests check the claim registry
and the extraction plumbing on a reduced suite.
"""

import pytest

from repro import GPUConfig
from repro.harness.report import _claims, paper_vs_measured, render_report
from repro.harness.runner import SuiteRunner


class TestClaimRegistry:
    def test_every_figure_covered(self):
        experiments = {claim.experiment for claim in _claims()}
        assert experiments == {
            "Figure 6", "Figure 7", "Figure 8", "Figure 9",
            "Figure 10", "Figure 11",
        }

    def test_paper_values_sane(self):
        for claim in _claims():
            assert 0.0 < claim.paper_value <= 1.0
            assert claim.metric
            assert callable(claim.extract)


class TestReducedSuiteReport:
    @pytest.fixture(scope="class")
    def runner(self):
        return SuiteRunner(GPUConfig.tiny(frames=4))

    def test_rows_schema(self, runner, monkeypatch):
        # Reduce every figure to a two-benchmark subset for speed.
        import repro.harness.report as report_module

        subset = ["tib", "cde"]
        originals = {}
        for name in ("figure6_energy", "figure7_time",
                     "figure8_overshading", "figure9_redundant_tiles",
                     "figure10_energy_vs_re", "figure11_time_vs_re"):
            figure = getattr(report_module, name)
            originals[name] = figure
            if name == "figure8_overshading":
                benchmarks = ["tib"]
            else:
                benchmarks = subset
            monkeypatch.setattr(
                report_module, name,
                (lambda fig, marks: lambda r, benchmarks=None:
                 fig(r, benchmarks=marks))(figure, benchmarks),
            )
        rows = paper_vs_measured(runner)
        assert len(rows) == len(_claims())
        for row in rows:
            assert set(row) == {"experiment", "metric", "paper",
                                "measured", "note"}
            assert isinstance(row["measured"], float)

    def test_render_report_markdown(self, runner, monkeypatch):
        import repro.harness.report as report_module

        for name in ("figure6_energy", "figure7_time",
                     "figure8_overshading", "figure9_redundant_tiles",
                     "figure10_energy_vs_re", "figure11_time_vs_re"):
            figure = getattr(report_module, name)
            benchmarks = ["tib"]
            monkeypatch.setattr(
                report_module, name,
                (lambda fig, marks: lambda r, benchmarks=None:
                 fig(r, benchmarks=marks))(figure, benchmarks),
            )
        text = render_report(runner)
        assert text.startswith("# Paper vs measured")
        assert "| Figure 9 |" in text
        assert "```" in text
