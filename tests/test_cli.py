"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "cde"])
        assert args.benchmark == "cde"
        assert args.modes == ["baseline", "re", "evr"]
        assert args.frames == 10

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom"])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig9"])
        assert args.figure == "fig9"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    SMALL = ["--frames", "3", "--width", "64", "--height", "48"]

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Castle Defense" in out

    def test_run(self, capsys):
        assert main(["run", "hop", "--modes", "baseline", "evr"]
                    + self.SMALL) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "evr" in out
        assert "tiles skipped" in out

    def test_figure_table2(self, capsys):
        assert main(["figure", "table2"] + self.SMALL) == 0
        assert "400 MHz" in capsys.readouterr().out

    def test_figure_subset(self, capsys):
        assert main(["figure", "fig9", "--benchmarks", "hop"]
                    + self.SMALL) == 0
        assert "hop" in capsys.readouterr().out

    def test_render(self, tmp_path, capsys):
        output = str(tmp_path / "frames")
        assert main(["render", "hop", "--output", output, "--mode",
                     "baseline"] + self.SMALL) == 0
        files = sorted(os.listdir(output))
        assert files == ["hop_000.ppm", "hop_001.ppm", "hop_002.ppm"]
        with open(os.path.join(output, files[0]), "rb") as handle:
            assert handle.read(2) == b"P6"
