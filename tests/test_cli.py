"""Tests for the command-line interface."""

import json
import os

import pytest

import repro.cli
from repro.cli import build_parser, main
from repro.engine import SerialScheduler
from repro.obs import NULL_TRACER, get_tracer
from repro.spec import spec_from_args


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        # Parser defaults are all None so spec files are never masked by
        # untouched flags; the resolved spec supplies the real defaults.
        args = build_parser().parse_args(["run", "cde"])
        assert args.benchmark == "cde"
        assert args.modes is None
        assert args.frames is None
        spec = spec_from_args(args).spec
        assert spec.workload.modes == ("baseline", "re", "evr")
        assert spec.gpu.frames == 10
        assert spec.gpu.screen_width == 192
        assert spec.gpu.screen_height == 160

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom"])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig9"])
        assert args.figure == "fig9"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_verbosity_flags_on_subcommands(self):
        args = build_parser().parse_args(["run", "cde", "-v"])
        assert args.verbose and not args.quiet
        args = build_parser().parse_args(["list", "--quiet"])
        assert args.quiet
        with pytest.raises(SystemExit):  # mutually exclusive
            build_parser().parse_args(["run", "cde", "-v", "-q"])

    def test_obs_flags(self):
        args = build_parser().parse_args(
            ["run", "cde", "--trace", "t.json", "--metrics", "m.jsonl"]
        )
        assert args.trace == "t.json"
        assert args.metrics == "m.jsonl"

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile", "hop"])
        assert args.mode == "evr"
        assert args.trace is None
        assert spec_from_args(args).spec.obs.trace == ""


class TestCommands:
    SMALL = ["--frames", "3", "--width", "64", "--height", "48"]

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Castle Defense" in out

    def test_run(self, capsys):
        assert main(["run", "hop", "--modes", "baseline", "evr"]
                    + self.SMALL) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "evr" in out
        assert "tiles skipped" in out

    def test_figure_table2(self, capsys):
        assert main(["figure", "table2"] + self.SMALL) == 0
        assert "400 MHz" in capsys.readouterr().out

    def test_figure_subset(self, capsys):
        assert main(["figure", "fig9", "--benchmarks", "hop"]
                    + self.SMALL) == 0
        assert "hop" in capsys.readouterr().out

    def test_render(self, tmp_path, capsys):
        output = str(tmp_path / "frames")
        assert main(["render", "hop", "--output", output, "--mode",
                     "baseline"] + self.SMALL) == 0
        files = sorted(os.listdir(output))
        assert files == ["hop_000.ppm", "hop_001.ppm", "hop_002.ppm"]
        with open(os.path.join(output, files[0]), "rb") as handle:
            assert handle.read(2) == b"P6"

    def test_profile(self, capsys):
        assert main(["profile", "hop", "--mode", "evr"] + self.SMALL) == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
        assert "geometry" in out and "raster" in out
        assert "worker occupancy" in out
        assert "main" in out  # serial run: everything on the main track


class TestObservabilityFlags:
    SMALL = ["--frames", "3", "--width", "64", "--height", "48"]

    def test_quiet_suppresses_info_keeps_result(self, tmp_path, capsys):
        output = str(tmp_path / "frames")
        assert main(["render", "hop", "--output", output, "-q",
                     "--mode", "baseline"] + self.SMALL) == 0
        assert capsys.readouterr().out == ""  # per-frame notes are info
        assert len(os.listdir(output)) == 3

    def test_verbose_adds_detail(self, capsys):
        assert main(["run", "hop", "--modes", "baseline", "-v"]
                    + self.SMALL) == 0
        out = capsys.readouterr().out
        assert "simulating hop:baseline" in out

    def test_run_trace_and_metrics_export(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.json")
        metrics_path = str(tmp_path / "metrics.jsonl")
        assert main(["run", "hop", "--modes", "baseline", "evr",
                     "--trace", trace_path, "--metrics", metrics_path]
                    + self.SMALL) == 0
        assert get_tracer() is NULL_TRACER  # tracer uninstalled after

        with open(trace_path) as handle:
            trace = json.load(handle)
        cats = {e.get("cat") for e in trace["traceEvents"]}
        assert {"frame", "phase", "tile"} <= cats

        with open(metrics_path) as handle:
            records = [json.loads(line) for line in handle]
        kinds = [r["record"] for r in records]
        assert kinds.count("frame") == 6  # 3 frames x 2 modes
        assert kinds.count("run") == 2
        assert kinds[-1] == "registry"
        run = next(r for r in records
                   if r["record"] == "run" and r["mode"] == "evr")
        assert "poison_rate" in run["fvp_confusion"]
        assert "skip_rate" in run["re"]

    def test_run_metrics_csv(self, tmp_path):
        path = str(tmp_path / "metrics.csv")
        assert main(["run", "hop", "--modes", "baseline",
                     "--metrics", path] + self.SMALL) == 0
        with open(path) as handle:
            header = handle.readline()
        assert "fvp_confusion.poison_rate" in header

    def test_run_results_identical_with_observability(self, capsys):
        argv = ["run", "hop", "--modes", "baseline", "evr"] + self.SMALL
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--trace", os.devnull]) == 0
        traced = capsys.readouterr().out
        # The headline table (last 5 lines) is unchanged by tracing.
        assert traced.splitlines()[-5:] == plain.splitlines()[-5:]

    def test_figure_metrics_export(self, tmp_path, capsys):
        path = str(tmp_path / "figure.jsonl")
        assert main(["figure", "fig9", "--benchmarks", "hop",
                     "--metrics", path] + self.SMALL) == 0
        with open(path) as handle:
            records = [json.loads(line) for line in handle]
        kinds = [r["record"] for r in records]
        assert "suite-run" in kinds and "suite-summary" in kinds
        summary = next(r for r in records
                       if r["record"] == "suite-summary")
        assert summary["cache_hits"] + summary["cache_misses"] >= 1

    def test_scheduler_closed_when_command_raises(self, monkeypatch):
        closes = []

        class _SpyScheduler(SerialScheduler):
            def close(self):
                closes.append(True)
                super().close()

        class _ExplodingGPU:
            def __init__(self, *args, **kwargs):
                pass

            @classmethod
            def from_spec(cls, spec, mode, scheduler=None, config=None):
                return cls()

            def render_stream(self, stream):
                raise RuntimeError("boom")

        monkeypatch.setattr(repro.cli, "make_scheduler",
                            lambda jobs, profiler=None: _SpyScheduler())
        monkeypatch.setattr(repro.cli, "GPU", _ExplodingGPU)
        with pytest.raises(RuntimeError):
            main(["run", "hop"] + self.SMALL)
        assert closes  # the with-block released the scheduler anyway
        assert get_tracer() is NULL_TRACER


class TestResilienceFlags:
    SMALL = ["--frames", "2", "--width", "64", "--height", "48"]

    def test_parser_accepts_resilience_flags(self):
        args = build_parser().parse_args(
            ["figure", "fig9", "--inject-faults", "crash:0.2,hang:0.1",
             "--fault-seed", "7", "--retries", "5", "--job-timeout", "30",
             "--resume", "--strict"]
        )
        assert args.inject_faults == "crash:0.2,hang:0.1"
        assert args.fault_seed == 7
        assert args.retries == 5
        assert args.job_timeout == 30.0
        assert args.resume and args.strict

    def test_run_has_no_suite_flags(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "cde", "--resume"])

    def test_resilience_defaults_disarmed(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        args = build_parser().parse_args(["run", "cde"])
        resilience = spec_from_args(args).spec.resilience
        assert not resilience.armed
        assert resilience.retry_policy() is None
        assert resilience.fault_plan() is None

    def test_env_spec_arms_the_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "raise:0.5")
        args = build_parser().parse_args(["run", "cde"])
        resilience = spec_from_args(args).spec.resilience
        policy = resilience.retry_policy()
        plan = resilience.fault_plan()
        assert policy is not None and policy.max_attempts == 4
        assert plan.rates == {"raise": 0.5}

    def test_retries_alone_arm_policy_without_plan(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        args = build_parser().parse_args(["run", "cde", "--retries", "2"])
        resilience = spec_from_args(args).spec.resilience
        assert resilience.retry_policy().max_attempts == 2
        assert resilience.fault_plan() is None

    def test_run_with_retries_armed_matches_plain_run(self, monkeypatch,
                                                      capsys):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        argv = ["run", "hop", "--modes", "baseline", "evr"] + self.SMALL
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--retries", "3"]) == 0
        armed = capsys.readouterr().out
        assert armed == plain  # resilience wrapper is bit-transparent

    def test_figure_with_faults_injected_completes(self, monkeypatch,
                                                   tmp_path, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["figure", "fig9", "--benchmarks", "hop",
                     "--inject-faults", "raise:0.4", "--retries", "6"]
                    + self.SMALL) == 0
        assert "hop" in capsys.readouterr().out

    def test_strict_fails_on_permanent_failures(self, monkeypatch,
                                                tmp_path, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = ["figure", "fig9", "--benchmarks", "hop",
                "--inject-faults", "raise:1.0", "--retries", "1"] + self.SMALL
        assert main(argv) == 0  # graceful degradation by default
        out = capsys.readouterr().out
        assert "FAILED" in out and "nan" in out
        assert main(argv + ["--strict"]) == 1

    def test_resume_roundtrip_through_cli(self, monkeypatch, tmp_path,
                                          capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = ["figure", "fig9", "--benchmarks", "hop", "--retries", "2",
                "--resume"] + self.SMALL
        assert main(argv) == 0
        first = capsys.readouterr().out
        # Strip the *.pkl run cache so only the journal can satisfy the
        # resumed invocation.
        for name in os.listdir(tmp_path):
            if name.endswith(".pkl"):
                os.remove(os.path.join(tmp_path, name))
        assert main(argv + ["-v"]) == 0
        resumed = capsys.readouterr().out
        assert "cells resumed" in resumed
        assert first.splitlines()[:6] == resumed.splitlines()[:6]


class TestEventBusCli:
    """`--live` / `--events` through the CLI: ordered streams, plain-line
    fallback, and the headline acceptance check — a fully observed
    ProcessPool run is bit-identical to a bare run."""

    SMALL = ["--frames", "2", "--width", "64", "--height", "48"]

    def test_parser_accepts_bus_flags(self):
        args = build_parser().parse_args(
            ["run", "cde", "--live", "--events", "e.jsonl",
             "--ledger", "off"])
        assert args.live and args.events == "e.jsonl"
        assert args.ledger == "off"
        spec = spec_from_args(args).spec
        assert spec.obs.live and spec.obs.events == "e.jsonl"
        assert spec.obs.wants_bus()

    def test_bus_flags_do_not_change_spec_hash(self):
        bare = spec_from_args(build_parser().parse_args(
            ["run", "cde"])).spec
        observed = spec_from_args(build_parser().parse_args(
            ["run", "cde", "--live", "--events", "e.jsonl"])).spec
        assert bare.spec_hash() == observed.spec_hash()

    def test_live_plain_fallback_lines(self, capsys):
        assert main(["run", "hop", "--modes", "evr", "--live",
                     "--ledger", "off"] + self.SMALL) == 0
        captured = capsys.readouterr()
        # Progress goes to stderr (plain lines when not a TTY); the
        # result table stays alone on stdout.
        assert "start  hop:evr" in captured.err
        assert "done   hop:evr" in captured.err
        assert "frag/s" in captured.err and "cache-ops/s" in captured.err
        assert "geom cyc" in captured.out

    def test_events_stream_is_ordered_and_complete(self, tmp_path,
                                                   capsys):
        path = str(tmp_path / "events.jsonl")
        assert main(["run", "hop", "--modes", "evr", "--events", path,
                     "--ledger", "off"] + self.SMALL) == 0
        with open(path) as handle:
            records = [json.loads(line) for line in handle]
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        kinds = {r["kind"] for r in records}
        assert {"run-started", "phase-completed", "tile-job-finished",
                "run-finished"} <= kinds

    def test_pool_figure_bit_identical_with_full_observability(
            self, tmp_path, monkeypatch, capsys):
        argv = ["figure", "fig9", "--benchmarks", "hop", "--jobs", "2"] \
            + self.SMALL
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "bare"))
        assert main(argv + ["--ledger", "off"]) == 0
        bare = capsys.readouterr().out
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "observed"))
        events = str(tmp_path / "e.jsonl")
        metrics = str(tmp_path / "m.jsonl")
        assert main(argv + ["--live", "--events", events,
                            "--metrics", metrics,
                            "--ledger", str(tmp_path / "ledger")]) == 0
        observed = capsys.readouterr().out
        # The figure table is the tail of the quiet output in both runs.
        assert bare.splitlines()[:4] == observed.splitlines()[:4]
        # Worker events crossed the result channel in order.
        with open(events) as handle:
            records = [json.loads(line) for line in handle]
        assert [r["seq"] for r in records] == \
            sorted(r["seq"] for r in records)
        assert any(r["kind"] == "tile-job-finished" and r["worker"]
                   for r in records)
        # And the run was ledgered with measured phase timings.
        from repro.obs.ledger import RunLedger
        entries = RunLedger(str(tmp_path / "ledger")).entries()
        assert len(entries) == 3
        assert any(entry["phases"].get("raster", 0) > 0
                   for entry in entries)

    def test_bench_records_ledger_entry(self, tmp_path, capsys,
                                        monkeypatch):
        monkeypatch.chdir(tmp_path)
        ledger_dir = str(tmp_path / "ledger")
        assert main(["bench", "--preset", "tiny", "--repeat", "1",
                     "--backends", "numpy",
                     "--ledger", ledger_dir, "-q"]) == 0
        from repro.obs.ledger import RunLedger
        entries = RunLedger(ledger_dir).entries()
        assert len(entries) == 1 and entries[0]["kind"] == "bench"
