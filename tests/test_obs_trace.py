"""Tests for the span tracer and its Chrome trace-event export.

The golden-file test renders a small benchmark under a
:class:`~repro.obs.ChromeTracer` and checks the exported JSON against
the trace-event format contract Perfetto/chrome://tracing rely on:
every complete event carries ``ts``/``dur``/``pid``/``tid``, tracks are
named through ``thread_name`` metadata, and within any one track spans
are properly nested — pairwise disjoint or contained, never partially
overlapping — with the ``frame ⊇ phase ⊇ tile`` chain present.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.config import GPUConfig
from repro.obs import (
    NULL_TRACER,
    ChromeTracer,
    NullTracer,
    SchedulerProfiler,
    get_tracer,
    set_tracer,
    tracing,
)
from repro.engine import SerialScheduler
from repro.pipeline import GPU, PipelineMode
from repro.scenes import benchmark_stream


class TestNullTracer:
    def test_is_default(self):
        assert get_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled

    def test_span_is_shared_noop(self):
        span_a = NULL_TRACER.span("a", category="x", foo=1)
        span_b = NULL_TRACER.span("b")
        assert span_a is span_b  # one shared object, no per-call garbage
        with span_a:
            pass

    def test_complete_and_instant_are_noops(self):
        NULL_TRACER.complete("n", "c", 0.0, 1.0)
        NULL_TRACER.instant("n")


class TestTracerInstallation:
    def test_set_tracer_returns_previous(self):
        tracer = ChromeTracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)

    def test_tracing_scope_restores_on_exception(self):
        before = get_tracer()
        try:
            with tracing(ChromeTracer()):
                assert get_tracer() is not before
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert get_tracer() is before


class TestChromeTracer:
    def test_span_records_complete_event(self):
        tracer = ChromeTracer()
        with tracer.span("work", category="test", answer=42):
            pass
        [event] = tracer.spans()
        assert event["name"] == "work"
        assert event["cat"] == "test"
        assert event["ph"] == "X"
        assert event["dur"] >= 0.0
        assert event["args"] == {"answer": 42}

    def test_tracks_get_metadata_events(self):
        tracer = ChromeTracer()
        tid_main = tracer.track_id("main")
        tid_worker = tracer.track_id("worker-7")
        assert tracer.track_id("main") == tid_main  # stable on reuse
        names = {
            event["args"]["name"]: event["tid"]
            for event in tracer.events
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert names == {"main": tid_main, "worker-7": tid_worker}

    def test_write_round_trips_json(self, tmp_path):
        tracer = ChromeTracer()
        with tracer.span("a"):
            pass
        path = str(tmp_path / "trace.json")
        tracer.write(path)
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["traceEvents"] == tracer.export()["traceEvents"]

    def test_spans_filters_by_category(self):
        tracer = ChromeTracer()
        with tracer.span("a", category="one"):
            pass
        with tracer.span("b", category="two"):
            pass
        assert [e["name"] for e in tracer.spans("one")] == ["a"]


def _contained(inner, outer) -> bool:
    return (outer["ts"] <= inner["ts"]
            and inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"])


def _disjoint(a, b) -> bool:
    return (a["ts"] + a["dur"] <= b["ts"]
            or b["ts"] + b["dur"] <= a["ts"])


class TestGoldenTrace:
    """Export contract for a real (tiny) simulated run."""

    @classmethod
    def setup_class(cls):
        config = GPUConfig.tiny(frames=3)
        tracer = ChromeTracer()
        with tracing(tracer):
            scheduler = SerialScheduler(profiler=SchedulerProfiler(tracer))
            stream = benchmark_stream("hop", config)
            GPU(config, PipelineMode.EVR,
                scheduler=scheduler).render_stream(stream)
        cls.trace = tracer.export()
        cls.events = cls.trace["traceEvents"]

    def test_trace_is_json_serializable(self):
        json.dumps(self.trace)

    def test_complete_events_are_well_formed(self):
        spans = [e for e in self.events if e.get("ph") == "X"]
        assert spans
        for event in spans:
            assert isinstance(event["name"], str) and event["name"]
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert event["pid"] == 1
            assert isinstance(event["tid"], int)

    def test_every_track_is_named(self):
        named = {
            e["tid"] for e in self.events
            if e.get("ph") == "M" and e["name"] == "thread_name"
        }
        used = {e["tid"] for e in self.events if e.get("ph") == "X"}
        assert used <= named

    def test_spans_properly_nested_per_track(self):
        by_track = {}
        for event in self.events:
            if event.get("ph") == "X":
                by_track.setdefault(event["tid"], []).append(event)
        for spans in by_track.values():
            spans.sort(key=lambda e: (e["ts"], -e["dur"]))
            for i, a in enumerate(spans):
                for b in spans[i + 1:]:
                    assert (_contained(b, a) or _contained(a, b)
                            or _disjoint(a, b)), (
                        f"partial overlap: {a['name']} vs {b['name']}"
                    )

    def test_frame_phase_tile_chain(self):
        frames = [e for e in self.events if e.get("cat") == "frame"]
        phases = [e for e in self.events if e.get("cat") == "phase"]
        tiles = [e for e in self.events if e.get("cat") == "tile"]
        assert len(frames) == 3
        assert {e["name"] for e in phases} == {"geometry", "raster"}
        assert tiles  # serial scheduler: tiles land on the main track
        # Every phase sits inside a frame; every tile inside a raster phase.
        for phase in phases:
            assert any(_contained(phase, frame) for frame in frames)
        rasters = [e for e in phases if e["name"] == "raster"]
        for tile in tiles:
            assert any(_contained(tile, raster) for raster in rasters)

    def test_tile_spans_cover_unskipped_tiles(self):
        tiles = [e for e in self.events if e.get("cat") == "tile"]
        executes = [e for e in self.events
                    if e.get("cat") == "raster" and e["name"] == "execute"]
        assert len(tiles) == sum(e["args"]["tiles"] for e in executes)


class TestGoldenTraceReduce:
    """The ``frame → raster → reduce-replay/reduce-finalize`` chain must
    nest correctly under both kernel backends, with non-negative self
    time everywhere (children never exceed their parent's wall time)."""

    @staticmethod
    def render_events(backend):
        config = GPUConfig.tiny(frames=2)
        tracer = ChromeTracer()
        with tracing(tracer):
            stream = benchmark_stream("hop", config)
            GPU(config, PipelineMode.EVR,
                backend=backend).render_stream(stream)
        return tracer.export()["traceEvents"]

    def assert_reduce_chain(self, events):
        spans = [e for e in events if e.get("ph") == "X"]
        frames = [e for e in spans if e.get("cat") == "frame"]
        rasters = [e for e in spans
                   if e.get("cat") == "phase" and e["name"] == "raster"]
        reduces = [e for e in spans
                   if e.get("cat") == "raster" and e["name"] == "reduce"]
        replays = [e for e in spans
                   if e.get("cat") == "raster"
                   and e["name"] == "reduce-replay"]
        finalizes = [e for e in spans
                     if e.get("cat") == "raster"
                     and e["name"] == "reduce-finalize"]
        # One reduce (with both sub-loops) per rendered frame.
        assert len(frames) == 2
        assert len(reduces) == len(replays) == len(finalizes) == 2
        for raster in rasters:
            assert any(_contained(raster, frame) for frame in frames)
        for reduce_span in reduces:
            assert any(_contained(reduce_span, raster)
                       for raster in rasters)
        for child in replays + finalizes:
            assert any(_contained(child, reduce_span)
                       for reduce_span in reduces)
        # Self time: within each reduce, the two sub-loops never sum to
        # more than the parent's wall time (they are disjoint siblings).
        for reduce_span in reduces:
            children = [c for c in replays + finalizes
                        if _contained(c, reduce_span)]
            assert sum(c["dur"] for c in children) <= reduce_span["dur"]

    def test_numpy_backend(self):
        self.assert_reduce_chain(self.render_events("numpy"))

    def test_python_backend(self):
        self.assert_reduce_chain(self.render_events("python"))


class TestFlushOnCrash:
    """Satellite contract: a run that dies mid-way still leaves valid
    observability artifacts on disk."""

    def test_arm_flush_writes_at_exit(self, tmp_path):
        tracer = ChromeTracer()
        with tracer.span("work", category="test"):
            pass
        path = str(tmp_path / "crash.json")
        tracer.arm_flush(path)
        tracer._flush_at_exit()  # what atexit would run
        with open(path) as handle:
            trace = json.load(handle)
        assert any(e.get("name") == "work"
                   for e in trace["traceEvents"])

    def test_flush_at_exit_is_one_shot(self, tmp_path):
        tracer = ChromeTracer()
        path = str(tmp_path / "crash.json")
        tracer.arm_flush(path)
        tracer._flush_at_exit()
        os.remove(path)
        tracer._flush_at_exit()  # armed path consumed: no rewrite
        assert not os.path.exists(path)

    def test_disarm_flush_cancels_backstop(self, tmp_path):
        tracer = ChromeTracer()
        path = str(tmp_path / "crash.json")
        tracer.arm_flush(path)
        tracer.disarm_flush()
        tracer._flush_at_exit()
        assert not os.path.exists(path)

    def test_trace_written_when_command_raises(self, tmp_path,
                                               monkeypatch, capsys):
        # An exception escaping the command still leaves the partial
        # trace on disk as valid JSON (the finally path).
        import repro.cli as cli

        def explode(runner, subset):
            with get_tracer().span("doomed", category="test"):
                raise RuntimeError("mid-run crash")

        monkeypatch.setitem(cli._FIGURES, "fig9", explode)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        path = str(tmp_path / "partial.json")
        with pytest.raises(RuntimeError):
            cli.main(["figure", "fig9", "--trace", path,
                      "--frames", "2", "--width", "64", "--height", "48"])
        with open(path) as handle:
            trace = json.load(handle)
        assert any(e.get("name") == "doomed"
                   for e in trace["traceEvents"])

    def test_faulted_run_leaves_valid_trace_and_event_log(self, tmp_path,
                                                          monkeypatch,
                                                          capsys):
        import repro.cli as cli

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        trace_path = str(tmp_path / "faulted.json")
        events_path = str(tmp_path / "faulted.jsonl")
        assert cli.main(
            ["figure", "fig9", "--benchmarks", "hop",
             "--inject-faults", "raise:1.0", "--retries", "1",
             "--trace", trace_path, "--events", events_path,
             "--frames", "2", "--width", "64", "--height", "48"]
        ) == 0  # graceful degradation
        with open(trace_path) as handle:
            json.load(handle)  # valid JSON despite every cell failing
        from repro.obs.events import read_event_log
        events = read_event_log(events_path)
        assert any(e.kind == "fault-injected" for e in events)
