"""Tests for the typed memory-trace ops (``repro.engine.tile_job``).

Tile jobs record their memory accesses as typed NamedTuples and replay
them in tile order; under the pool scheduler the trace crosses a
process boundary, so ``MemOps`` pickles itself in a packed wire form.
These tests pin (a) replay equivalence through a pickle round-trip and
(b) the "never larger than the historical raw-tuple encoding" size
property that justified the packing.
"""

from __future__ import annotations

import pickle

import numpy as np

from repro.engine.tile_job import (
    FlushOp,
    MemOps,
    MemoryTrace,
    PBReadOp,
    TextureOp,
    replay_memory_trace,
)


def _sample_trace() -> MemOps:
    """A representative tile trace: pointer reads, texture bursts, flush."""
    trace = MemoryTrace()
    rng = np.random.default_rng(11)
    for index in range(40):
        trace.parameter_buffer_read(index * 64, 48)
    for _ in range(4):
        u = rng.random(37)
        v = rng.random(37)
        trace.texture_batch(3, 256, u, v, samples_per_fragment=2)
    trace.framebuffer_flush(16 * 16 * 4)
    return trace.ops


class _RecordingMemory:
    """Duck-typed MemorySystem stand-in that logs the calls it receives."""

    def __init__(self) -> None:
        self.calls = []

    def parameter_buffer_read(self, offset, size):
        self.calls.append(("pb", offset, size))

    def texture_batch(self, texture_id, texture_size, u, v,
                      samples_per_fragment):
        self.calls.append(("tex", texture_id, texture_size,
                           u.tobytes(), v.tobytes(), samples_per_fragment))

    def framebuffer_flush(self, num_bytes):
        self.calls.append(("flush", num_bytes))


class TestReplayEquivalence:
    def test_pickle_roundtrip_replays_identically(self):
        ops = _sample_trace()
        restored = pickle.loads(pickle.dumps(ops))
        assert isinstance(restored, MemOps)
        assert len(restored) == len(ops)

        direct, roundtripped = _RecordingMemory(), _RecordingMemory()
        replay_memory_trace(ops, direct)
        replay_memory_trace(restored, roundtripped)
        assert direct.calls == roundtripped.calls

    def test_roundtrip_preserves_types_and_fields(self):
        ops = _sample_trace()
        restored = pickle.loads(pickle.dumps(ops))
        for original, copy in zip(ops, restored):
            assert type(original) is type(copy)
            if isinstance(original, TextureOp):
                assert (original.texture_id, original.texture_size,
                        original.samples_per_fragment) == (
                            copy.texture_id, copy.texture_size,
                            copy.samples_per_fragment)
                np.testing.assert_array_equal(original.u, copy.u)
                np.testing.assert_array_equal(original.v, copy.v)
            else:
                assert original == copy

    def test_empty_trace(self):
        restored = pickle.loads(pickle.dumps(MemOps()))
        assert isinstance(restored, MemOps)
        assert restored == []


class TestWireSize:
    def test_packed_never_larger_than_raw_tuples(self):
        """The packed form must beat the historical string-tagged tuples."""
        ops = _sample_trace()
        raw = []
        for op in ops:
            if isinstance(op, PBReadOp):
                raw.append(("pb_read", op.offset, op.size))
            elif isinstance(op, TextureOp):
                raw.append(("texture", op.texture_id, op.texture_size,
                            op.u, op.v, op.samples_per_fragment))
            else:
                raw.append(("flush", op.num_bytes))
        for protocol in (2, pickle.HIGHEST_PROTOCOL):
            packed = len(pickle.dumps(ops, protocol))
            legacy = len(pickle.dumps(raw, protocol))
            assert packed <= legacy, (
                f"protocol {protocol}: packed {packed} > legacy {legacy}")

    def test_packed_beats_naive_namedtuple_pickle(self):
        ops = _sample_trace()
        packed = len(pickle.dumps(ops, pickle.HIGHEST_PROTOCOL))
        naive = len(pickle.dumps(list(ops), pickle.HIGHEST_PROTOCOL))
        assert packed < naive


class TestOpCodes:
    def test_codes_are_distinct_single_bytes(self):
        codes = {PBReadOp.code, TextureOp.code, FlushOp.code}
        assert len(codes) == 3
        assert all(0 <= code <= 255 for code in codes)
