"""Tests for the timing model: stats counters and the cost model."""

import dataclasses

import pytest

from repro import GPUConfig
from repro.timing import CostModel, CostParameters, FrameStats, StatsAccumulator


class TestFrameStats:
    def test_defaults_zero(self):
        stats = FrameStats()
        assert all(
            getattr(stats, field.name) == 0
            for field in dataclasses.fields(stats)
        )

    def test_merge_sums_everything(self):
        a = FrameStats(fragments_shaded=10, tiles_rendered=2)
        b = FrameStats(fragments_shaded=5, tiles_rendered=1, early_z_kills=7)
        a.merge(b)
        assert a.fragments_shaded == 15
        assert a.tiles_rendered == 3
        assert a.early_z_kills == 7

    def test_merge_returns_self(self):
        a = FrameStats()
        assert a.merge(FrameStats()) is a

    def test_as_dict_roundtrip(self):
        stats = FrameStats(fragments_shaded=3)
        assert stats.as_dict()["fragments_shaded"] == 3

    def test_overshading_ratio(self):
        stats = FrameStats(fragments_shaded=20, overdrawn_fragments=10)
        assert stats.overshading_ratio == 2.0
        assert FrameStats().overshading_ratio == 0.0


class TestStatsAccumulator:
    def test_total(self):
        acc = StatsAccumulator()
        acc.add(FrameStats(fragments_shaded=1))
        acc.add(FrameStats(fragments_shaded=2))
        assert acc.total().fragments_shaded == 3
        assert len(acc) == 2

    def test_totals_excluding_first(self):
        acc = StatsAccumulator()
        acc.add(FrameStats(fragments_shaded=100))
        acc.add(FrameStats(fragments_shaded=1))
        assert acc.totals_excluding_first().fragments_shaded == 1

    def test_excluding_first_with_single_frame_keeps_it(self):
        acc = StatsAccumulator()
        acc.add(FrameStats(fragments_shaded=5))
        assert acc.totals_excluding_first().fragments_shaded == 5


class TestCostModel:
    @pytest.fixture
    def model(self):
        return CostModel(GPUConfig.default())

    def test_empty_stats_cost_zero(self, model):
        stats = FrameStats()
        assert model.geometry_cycles(stats) == 0.0
        assert model.raster_cycles(stats) == 0.0

    def test_geometry_scales_with_vertex_work(self, model):
        small = FrameStats(vertex_instructions=100)
        big = FrameStats(vertex_instructions=1000)
        assert model.geometry_cycles(big) > model.geometry_cycles(small)

    def test_fragment_processors_divide_shading(self):
        config = GPUConfig.default()
        one = CostModel(config.scaled(fragment_processors=1))
        four = CostModel(config)
        stats = FrameStats(fragment_instructions=4000)
        assert one.raster_cycles(stats) == pytest.approx(
            4 * four.raster_cycles(stats)
        )

    def test_signature_updates_cost_geometry_cycles(self, model):
        without = FrameStats()
        with_sig = FrameStats(signature_updates=100)
        assert model.geometry_cycles(with_sig) > model.geometry_cycles(without)

    def test_dram_stalls_partially_exposed(self, model):
        stats = FrameStats()
        assert model.geometry_cycles(stats, dram_cycles=1000.0) == pytest.approx(
            1000.0 * model.params.memory_stall_exposure
            * model.params.geometry_scale
        )

    def test_breakdown_total(self, model):
        stats = FrameStats(vertex_instructions=10, fragment_instructions=40)
        breakdown = model.breakdown(stats)
        assert breakdown.total == breakdown.geometry + breakdown.raster

    def test_seconds(self, model):
        assert model.seconds(400e6) == pytest.approx(1.0)

    def test_custom_parameters(self):
        config = GPUConfig.default()
        expensive = CostModel(
            config, CostParameters(signature_update_cycles=100.0)
        )
        cheap = CostModel(config, CostParameters(signature_update_cycles=1.0))
        stats = FrameStats(signature_updates=10)
        assert expensive.geometry_cycles(stats) > cheap.geometry_cycles(stats)
