"""End-to-end invariants of the whole system (DESIGN.md Section 6).

1. Rendering correctness: BASELINE, RE, EVR and ORACLE produce pixel-
   identical images on every benchmark.
2. Shading ordering: Oracle <= EVR-reordered <= Baseline shaded
   fragments on opaque 3D scenes.
3. Prediction safety under perfect coherence: in a fully static scene a
   predicted-occluded primitive is truly invisible (removing it leaves
   the image unchanged).
4. EVR's redundant-tile detection dominates RE's in steady state.
"""

import numpy as np
import pytest

from repro import GPU, GPUConfig, PipelineMode
from repro.scenes import benchmark_names, benchmark_stream

CONFIG = GPUConfig.tiny(frames=5)
SPOT_CHECK = ["cde", "hay", "hop", "tib", "ata", "300", "wog"]


@pytest.mark.parametrize("alias", SPOT_CHECK)
def test_all_modes_render_identical_images(alias):
    stream = benchmark_stream(alias, CONFIG)
    reference = None
    for mode in (PipelineMode.BASELINE, PipelineMode.RE, PipelineMode.EVR,
                 PipelineMode.ORACLE, PipelineMode.EVR_REORDER_ONLY):
        result = GPU(CONFIG, mode).render_stream(stream)
        images = [frame.image for frame in result.frames]
        if reference is None:
            reference = images
            continue
        for index, (expected, actual) in enumerate(zip(reference, images)):
            assert np.array_equal(expected, actual), (
                f"{alias}/{mode.value} diverged at frame {index}"
            )


@pytest.mark.parametrize("alias", benchmark_names("3D"))
def test_shading_order_oracle_evr_baseline(alias):
    stream = benchmark_stream(alias, CONFIG)
    base = GPU(CONFIG, PipelineMode.BASELINE).render_stream(stream)
    evr = GPU(CONFIG, PipelineMode.EVR_REORDER_ONLY).render_stream(stream)
    oracle = GPU(CONFIG, PipelineMode.ORACLE).render_stream(stream)
    base_shaded = base.total_stats().fragments_shaded
    evr_shaded = evr.total_stats().fragments_shaded
    oracle_shaded = oracle.total_stats().fragments_shaded
    assert oracle_shaded <= evr_shaded
    assert evr_shaded <= base_shaded


@pytest.mark.parametrize("alias", ["cde", "hay", "tib", "mto"])
def test_evr_detects_at_least_as_many_redundant_tiles(alias):
    stream = benchmark_stream(alias, CONFIG)
    re_run = GPU(CONFIG, PipelineMode.RE).render_stream(stream)
    evr_run = GPU(CONFIG, PipelineMode.EVR).render_stream(stream)
    assert (
        evr_run.total_stats().tiles_skipped
        >= re_run.total_stats().tiles_skipped
    )


def test_skip_rate_never_exceeds_oracle():
    for alias in ["cde", "hay", "tib"]:
        stream = benchmark_stream(alias, CONFIG)
        evr = GPU(CONFIG, PipelineMode.EVR).render_stream(stream)
        oracle = GPU(CONFIG, PipelineMode.ORACLE).render_stream(stream)
        # A sound skipper cannot beat pixel-exact equality detection.
        assert (
            evr.redundant_tile_rate()
            <= oracle.redundant_tile_rate() + 1e-9
        )


def test_static_scene_predictions_are_exact():
    """Perfect frame coherence: every predicted-occluded primitive really
    is occluded, so EVR skips every tile after warm-up and the image
    never changes."""
    from repro import DrawCommand, Frame, FrameStream, RenderState
    from repro.geom import quad
    from repro.math3d import Vec3, Vec4, orthographic

    config = GPUConfig.tiny(frames=5)
    projection = orthographic(0, config.screen_width, config.screen_height,
                              0, -1, 1)

    def build(index):
        far = quad(Vec3(0, 0, -0.5),
                   Vec3(config.screen_width, 0, 0),
                   Vec3(0, config.screen_height, 0), Vec4(1, 0, 0, 1))
        near = quad(Vec3(0, 0, 0.5),
                    Vec3(config.screen_width, 0, 0),
                    Vec3(0, config.screen_height, 0), Vec4(0, 1, 0, 1))
        state = RenderState.opaque_3d(cull_backface=False)
        return Frame(
            [DrawCommand.from_mesh(far, state=state),
             DrawCommand.from_mesh(near, state=state)],
            projection=projection, index=index,
        )

    stream = FrameStream(build, config.frames)
    result = GPU(config, PipelineMode.EVR).render_stream(stream)
    steady = result.total_stats(warmup=2)
    assert steady.tiles_skipped == steady.tiles_total
    # Predictions fired: the far quad is predicted occluded everywhere
    # once the FVP is known.
    assert result.total_stats(warmup=0).predicted_occluded > 0
    first = result.frames[0].image
    for frame in result.frames[1:]:
        assert np.array_equal(first, frame.image)


def test_evr_strictly_better_where_hidden_motion_exists():
    """hay has motion under an opaque HUD: EVR must skip strictly more
    tiles than RE in steady state."""
    config = GPUConfig.default(frames=6)
    stream = benchmark_stream("hay", config)
    re_run = GPU(config, PipelineMode.RE).render_stream(stream)
    evr_run = GPU(config, PipelineMode.EVR).render_stream(stream)
    assert (
        evr_run.total_stats().tiles_skipped
        > re_run.total_stats().tiles_skipped
    )
