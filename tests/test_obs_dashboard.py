"""Tests for the HTML dashboard (:mod:`repro.obs.dashboard`).

The contract: one self-contained file — inline CSS and SVG only, no
scripts, no external references — whose panels are populated from the
ledger/event-log/metrics inputs when data exists and degrade to
explicit "no data" notes when it doesn't.
"""

from __future__ import annotations

import json
import re

from repro.cli import main
from repro.obs.dashboard import (
    build_dashboard,
    effectiveness_panel,
    memsys_panel,
    occupancy_panel,
    phase_panel,
    trajectory_panel,
    write_dashboard,
)
from repro.harness.runner import RunMetrics
from repro.obs.events import EventBus, JsonlEventWriter, TileJobFinished
from repro.obs.ledger import RunLedger


def make_metrics(benchmark="hop", mode="evr", redundant=0.35):
    return RunMetrics(
        benchmark=benchmark, mode=mode, geometry_cycles=1000.0,
        raster_cycles=2000.0, energy_joules=0.25,
        energy_breakdown={"l2": 0.1}, shaded_fragments_per_pixel=1.2,
        redundant_tile_rate=redundant, overshading_kills=0,
        predicted_occluded_rate=0.4,
    )


def seeded_ledger(tmp_path):
    ledger = RunLedger(str(tmp_path / "ledger"))
    for benchmark in ("hop", "cde"):
        for mode, rate in (("re", 0.45), ("evr", 0.35), ("oracle", 0.9)):
            ledger.record_run(
                "h", make_metrics(benchmark=benchmark, mode=mode,
                                  redundant=rate),
                phases={"geometry": 0.1, "raster": 0.4},
            )
    for fps in (2.0, 2.2, 2.1):
        ledger.record_bench({
            "preset": "default",
            "speedup": {"frames_per_second": fps,
                        "cache_ops_per_second": fps * 2},
            "backends": {},
        })
    return ledger


def event_log(tmp_path):
    path = str(tmp_path / "events.jsonl")
    bus = EventBus()
    writer = JsonlEventWriter(path)
    bus.subscribe(writer)
    for tile, (worker, start) in enumerate(
        [(100, 1.0), (101, 1.1), (100, 1.4), (101, 1.5)]
    ):
        bus.emit(TileJobFinished(tile=tile, fragments=64, worker=worker,
                                 start=start, end=start + 0.2))
    writer.close()
    return path


def metrics_export(tmp_path):
    path = str(tmp_path / "metrics.jsonl")
    record = {
        "record": "registry",
        "counters": {"memsys.line_accesses": 1000,
                     "memsys.collapsed_runs": 400,
                     "memsys.batch_lanes": 64,
                     "memsys.scalar_tail_lanes": 8},
        "gauges": {},
        "histograms": {"memsys.drain_batch_ops":
                       {"count": 10, "sum": 320.0, "min": 8.0,
                        "max": 64.0, "mean": 32.0}},
    }
    with open(path, "w") as handle:
        handle.write(json.dumps({"record": "spec"}) + "\n")
        handle.write(json.dumps(record) + "\n")
    return path


class TestSelfContainment:
    def test_no_scripts_or_external_references(self, tmp_path):
        page = build_dashboard(seeded_ledger(tmp_path),
                               events_path=event_log(tmp_path),
                               metrics_path=metrics_export(tmp_path))
        assert "<script" not in page
        assert "http://" not in page and "https://" not in page
        # No external resource loads: every src=/href= would be one.
        assert not re.search(r'\b(src|href)\s*=', page)
        assert page.startswith("<!DOCTYPE html>")
        assert "<svg" in page and "<style>" in page

    def test_write_dashboard_creates_file(self, tmp_path):
        path = str(tmp_path / "dash.html")
        assert write_dashboard(path, seeded_ledger(tmp_path)) == path
        with open(path) as handle:
            assert "repro dashboard" in handle.read()


class TestPanels:
    def test_effectiveness_panel_draws_benchmarks_and_modes(self, tmp_path):
        panel = effectiveness_panel(seeded_ledger(tmp_path).entries())
        assert "<svg" in panel
        assert "hop" in panel and "cde" in panel
        assert "evr" in panel and "oracle" in panel

    def test_trajectory_panel_draws_ratio_series(self, tmp_path):
        panel = trajectory_panel(seeded_ledger(tmp_path).entries())
        assert "<svg" in panel and "polyline" in panel
        assert "frames_per_second" in panel

    def test_phase_panel_stacks_measured_phases(self, tmp_path):
        panel = phase_panel(seeded_ledger(tmp_path).entries())
        assert "<svg" in panel
        assert "geometry" in panel and "raster" in panel

    def test_occupancy_panel_one_lane_per_worker(self, tmp_path):
        panel = occupancy_panel(event_log(tmp_path))
        assert "<svg" in panel
        assert "pid 100" in panel and "pid 101" in panel

    def test_memsys_panel_derives_ratios(self, tmp_path):
        panel = memsys_panel(metrics_export(tmp_path))
        # 400/1000 collapse ratio and 8/64 tail fraction.
        assert "40.00%" in panel
        assert "12.50%" in panel

    def test_empty_inputs_render_explicit_notes(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "empty"))
        page = build_dashboard(ledger)
        assert page.count('class="empty"') >= 4
        assert "no run entries" in page


class TestDashboardCli:
    def test_dashboard_command(self, tmp_path, capsys):
        ledger = seeded_ledger(tmp_path)
        out_path = str(tmp_path / "dash.html")
        assert main(["dashboard", "--output", out_path,
                     "--ledger", ledger.directory,
                     "--events", event_log(tmp_path),
                     "--metrics", metrics_export(tmp_path)]) == 0
        assert "dashboard (9 ledger entries)" in capsys.readouterr().out
        with open(out_path) as handle:
            page = handle.read()
        assert "<script" not in page and "<svg" in page
