"""Tests for the fault-injection harness and retry policy arithmetic.

Everything in :mod:`repro.resilience.faults` / ``.policy`` promises
determinism — the same plan, seed, key and attempt must produce the same
decision (and the same backoff delay) on every run.  These tests pin
that promise, the spec parser, and the fault semantics themselves.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import InjectedFaultError
from repro.resilience import (
    CorruptedResult,
    FAULT_KINDS,
    FaultPlan,
    FaultyCall,
    RetryPolicy,
    ScriptedFaultPlan,
    backoff_delay,
    corrupt_pixel,
    stable_unit,
)


class TestStableUnit:
    def test_deterministic_and_in_range(self):
        for text in ("", "a", "0|raise|1:3|2", "x" * 1000):
            draw = stable_unit(text)
            assert draw == stable_unit(text)
            assert 0.0 <= draw < 1.0

    def test_distinct_inputs_distinct_draws(self):
        draws = {stable_unit(f"key-{i}") for i in range(100)}
        assert len(draws) == 100


class TestFaultPlanParse:
    def test_empty_spec_is_none(self):
        assert FaultPlan.parse("") is None
        assert FaultPlan.parse("   ") is None
        assert FaultPlan.parse(None) is None

    def test_parse_roundtrip(self):
        plan = FaultPlan.parse("crash:0.2,hang:0.1", seed=7)
        assert plan.rates == {"hang": 0.1, "crash": 0.2}
        assert plan.seed == 7
        reparsed = FaultPlan.parse(plan.describe())
        assert reparsed.rates == plan.rates

    def test_parse_tolerates_spacing_and_blanks(self):
        plan = FaultPlan.parse(" raise:0.5 , ,corrupt:1 ")
        assert plan.rates == {"raise": 0.5, "corrupt": 1.0}

    @pytest.mark.parametrize("spec", ["nonsense:0.5", "raise", "raise:two",
                                      "raise:-0.1", "raise:1.5"])
    def test_rejects_malformed_specs(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_rejects_nonpositive_hang(self):
        with pytest.raises(ValueError):
            FaultPlan({"hang": 0.5}, hang_seconds=0.0)


class TestFaultPlanDecide:
    def test_decisions_are_deterministic(self):
        plan = FaultPlan({"raise": 0.3, "crash": 0.3}, seed=11)
        twin = FaultPlan({"raise": 0.3, "crash": 0.3}, seed=11)
        decisions = [plan.decide(f"1:{i}", attempt)
                     for i in range(50) for attempt in (1, 2)]
        assert decisions == [twin.decide(f"1:{i}", attempt)
                             for i in range(50) for attempt in (1, 2)]
        assert any(kind is not None for kind in decisions)
        assert any(kind is None for kind in decisions)

    def test_seed_decorrelates(self):
        a = FaultPlan({"raise": 0.5}, seed=0)
        b = FaultPlan({"raise": 0.5}, seed=1)
        decisions_a = [a.decide(f"1:{i}", 1) for i in range(64)]
        decisions_b = [b.decide(f"1:{i}", 1) for i in range(64)]
        assert decisions_a != decisions_b

    def test_rate_extremes(self):
        always = FaultPlan({"raise": 1.0})
        never = FaultPlan({"raise": 0.0})
        assert all(always.decide(f"1:{i}", 1) == "raise" for i in range(16))
        assert all(never.decide(f"1:{i}", 1) is None for i in range(16))

    def test_redraws_per_attempt(self):
        plan = FaultPlan({"raise": 0.5}, seed=3)
        outcomes = {plan.decide("1:0", attempt) for attempt in range(1, 20)}
        assert outcomes == {None, "raise"}  # transient, not sticky

    def test_scripted_plan_is_exact(self):
        plan = ScriptedFaultPlan({("1:0", 1): "raise", ("1:2", 2): "crash"})
        assert plan.decide("1:0", 1) == "raise"
        assert plan.decide("1:0", 2) is None
        assert plan.decide("1:2", 2) == "crash"
        assert plan.decide("1:1", 1) is None

    def test_scripted_plan_validates_kinds(self):
        with pytest.raises(ValueError):
            ScriptedFaultPlan({("1:0", 1): "meltdown"})


class TestFaultyCall:
    def test_no_plan_is_passthrough(self):
        call = FaultyCall(lambda x: x + 1, None, "1:0", 1, os.getpid())
        assert call(41) == 42

    def test_raise_fault(self):
        plan = ScriptedFaultPlan({("1:0", 1): "raise"})
        call = FaultyCall(lambda x: x, plan, "1:0", 1, os.getpid())
        with pytest.raises(InjectedFaultError):
            call(0)
        # A different attempt of the same job is clean.
        assert FaultyCall(lambda x: x, plan, "1:0", 2, os.getpid())(5) == 5

    def test_corrupt_fault_returns_sentinel(self):
        plan = ScriptedFaultPlan({("1:0", 1): "corrupt"})
        value = FaultyCall(lambda x: x, plan, "1:0", 1, os.getpid())(9)
        assert isinstance(value, CorruptedResult)
        assert (value.key, value.attempt) == ("1:0", 1)

    def test_hang_fault_completes_normally(self):
        plan = ScriptedFaultPlan({("1:0", 1): "hang"}, hang_seconds=0.01)
        call = FaultyCall(lambda x: x * 2, plan, "1:0", 1, os.getpid())
        assert call(4) == 8  # merely slow, never wedged

    def test_crash_fault_converted_in_process(self):
        # In the parent process an injected crash must become an
        # ordinary exception — the harness must never kill itself.
        plan = ScriptedFaultPlan({("1:0", 1): "crash"})
        call = FaultyCall(lambda x: x, plan, "1:0", 1, os.getpid())
        with pytest.raises(InjectedFaultError, match="converted in-process"):
            call(0)

    def test_fault_kinds_cover_all_paths(self):
        # "pixel" is appended (never inserted) so pre-existing plans
        # keep their draw order.
        assert FAULT_KINDS == ("raise", "corrupt", "hang", "crash",
                               "pixel")

    def test_pixel_fault_ignored_by_job_execution(self):
        # Render-level corruption means nothing to the retry machinery:
        # a job under a pixel-only plan must run untouched.
        plan = ScriptedFaultPlan({("1:0", 1): "pixel"})
        call = FaultyCall(lambda x: x * 2, plan, "1:0", 1, os.getpid())
        assert call(4) == 8


class TestCorruptPixel:
    def test_deterministic_and_single_pixel(self):
        image = np.zeros((8, 12, 4), dtype=np.float64)
        first = corrupt_pixel(image, "corpus/fam/evr/numpy", seed=3)
        second = corrupt_pixel(image, "corpus/fam/evr/numpy", seed=3)
        np.testing.assert_array_equal(first, second)
        assert np.count_nonzero(first != image) == 1
        # The input is never mutated.
        assert not image.any()

    def test_key_and_seed_select_different_pixels(self):
        image = np.zeros((32, 32, 4), dtype=np.float64)
        a = corrupt_pixel(image, "corpus/fam/evr/numpy", seed=0)
        b = corrupt_pixel(image, "corpus/fam/re/numpy", seed=0)
        c = corrupt_pixel(image, "corpus/fam/evr/numpy", seed=1)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_never_a_noop(self):
        # The additive nudge must change the pixel whatever its value.
        image = np.full((4, 4, 4), 0.5, dtype=np.float64)
        corrupted = corrupt_pixel(image, "k", seed=0)
        assert np.count_nonzero(corrupted != image) == 1


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 4
        assert policy.timeout_seconds is None

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"timeout_seconds": 0.0},
        {"timeout_seconds": -1.0},
        {"backoff_base": -0.1},
        {"backoff_factor": 0.5},
        {"jitter": 1.5},
        {"max_pool_rebuilds": -1},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestBackoffDelay:
    POLICY = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                         backoff_max=0.5, jitter=0.0)

    def test_exponential_with_cap(self):
        delays = [backoff_delay(self.POLICY, attempt, "k")
                  for attempt in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_max=0.5, jitter=0.25)
        for attempt in (1, 2, 3):
            raw = backoff_delay(self.POLICY, attempt, "k")
            jittered = backoff_delay(policy, attempt, "k")
            assert jittered == backoff_delay(policy, attempt, "k")
            # Jitter only ever shaves: delays land in [0.75*raw, raw].
            assert raw * 0.75 <= jittered <= raw
            expected = raw * (1.0 - 0.25 * stable_unit(f"backoff|k|{attempt}"))
            assert jittered == expected

    def test_jitter_desynchronizes_keys(self):
        policy = RetryPolicy(jitter=0.25)
        assert (backoff_delay(policy, 1, "a")
                != backoff_delay(policy, 1, "b"))

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            backoff_delay(self.POLICY, 0, "k")
