"""Tests for trace capture and replay."""

import io
import json

import numpy as np
import pytest

from repro import CommandError, GPU, GPUConfig, PipelineMode
from repro.commands import load_trace, save_trace
from repro.scenes import benchmark_stream


@pytest.fixture
def config():
    return GPUConfig.tiny(frames=3)


@pytest.fixture
def stream(config):
    return benchmark_stream("tib", config)


class TestRoundtrip:
    def test_frame_structure_preserved(self, stream, tmp_path):
        path = str(tmp_path / "trace.json")
        save_trace(stream, path)
        replayed = load_trace(path)
        assert len(replayed) == len(stream)
        for original, loaded in zip(stream, replayed):
            assert loaded.index == original.index
            assert len(loaded.commands) == len(original.commands)
            for cmd_a, cmd_b in zip(original.commands, loaded.commands):
                assert cmd_a.label == cmd_b.label
                assert cmd_a.state == cmd_b.state
                assert cmd_a.triangle_count == cmd_b.triangle_count

    def test_geometry_bit_exact(self, stream, tmp_path):
        path = str(tmp_path / "trace.json")
        save_trace(stream, path)
        replayed = load_trace(path)
        for original, loaded in zip(stream, replayed):
            for cmd_a, cmd_b in zip(original.commands, loaded.commands):
                packs_a = [t.pack() for t in cmd_a.triangles]
                packs_b = [t.pack() for t in cmd_b.triangles]
                assert packs_a == packs_b
                assert cmd_a.model == cmd_b.model

    def test_replay_renders_identical_images(self, config, stream, tmp_path):
        path = str(tmp_path / "trace.json")
        save_trace(stream, path)
        replayed = load_trace(path)
        direct = GPU(config, PipelineMode.EVR).render_stream(stream)
        from_trace = GPU(config, PipelineMode.EVR).render_stream(replayed)
        for a, b in zip(direct.frames, from_trace.frames):
            assert np.array_equal(a.image, b.image)

    def test_file_object_io(self, stream):
        buffer = io.StringIO()
        save_trace(stream, buffer)
        buffer.seek(0)
        replayed = load_trace(buffer)
        assert len(replayed) == len(stream)


class TestValidation:
    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(CommandError):
            load_trace(str(path))

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "repro-trace", "version": 99,
                                    "frames": []}))
        with pytest.raises(CommandError):
            load_trace(str(path))

    def test_rejects_empty_trace(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"format": "repro-trace", "version": 1,
                                    "frames": []}))
        with pytest.raises(CommandError):
            load_trace(str(path))
