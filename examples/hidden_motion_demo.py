#!/usr/bin/env python3
"""Hidden-motion demo: the case EVR-aided Rendering Elimination exists for.

A farm-simulation-style scene (the paper's *hay*) animates sprites under
a static opaque toolbar.  Baseline RE cannot skip those tiles — the
moving sprites change the tile signature every frame even though nothing
visible changes — while EVR predicts them occluded, leaves them out of
the signature, and keeps skipping.

Prints the per-frame skip counts side by side and verifies the rendered
images are pixel-identical.

Usage::

    python examples/hidden_motion_demo.py [frames]
"""

import sys

import numpy as np

from repro import GPU, GPUConfig, PipelineMode
from repro.harness import format_table
from repro.scenes import benchmark_stream


def per_frame_skips(config, stream, mode):
    gpu = GPU(config, mode)
    skips = []
    images = []
    for frame in stream:
        result = gpu.render_frame(frame)
        skips.append(result.stats.tiles_skipped)
        images.append(result.image)
    return skips, images


def main() -> None:
    frames = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    config = GPUConfig.default(frames=frames)
    stream = benchmark_stream("hay", config)

    re_skips, re_images = per_frame_skips(config, stream, PipelineMode.RE)
    evr_skips, evr_images = per_frame_skips(config, stream, PipelineMode.EVR)

    rows = [
        [index, config.num_tiles, re_count, evr_count,
         evr_count - re_count]
        for index, (re_count, evr_count)
        in enumerate(zip(re_skips, evr_skips))
    ]
    print(format_table(
        ["frame", "tiles", "RE skips", "EVR skips", "EVR advantage"],
        rows,
        title="hay (Hayday): animated critters under a static opaque HUD",
    ))

    for index, (re_image, evr_image) in enumerate(zip(re_images, evr_images)):
        assert np.array_equal(re_image, evr_image), f"frame {index} differs!"
    print("\nAll frames pixel-identical between RE and EVR (the paper's "
          "Table I safety argument, verified).")

    steady_re = sum(re_skips[2:])
    steady_evr = sum(evr_skips[2:])
    total = config.num_tiles * (frames - 2)
    print(f"Steady state: RE skips {steady_re / total:.1%} of tiles, "
          f"EVR skips {steady_evr / total:.1%} "
          f"(+{(steady_evr - steady_re) / total:.1%}; the paper reports "
          ">10% extra on hay/wmw, up to 30%).")


if __name__ == "__main__":
    main()
