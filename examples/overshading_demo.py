#!/usr/bin/env python3
"""Overshading reduction demo (the paper's Section IV-A / Figure 8).

Builds a deliberately bad scene — opaque boxes submitted back-to-front,
the worst case for the Early Depth Test — and shows how EVR's Algorithm-1
reordering recovers almost all of the oracle's (perfect Z-prepass)
fragment savings without any extra render pass.

Usage::

    python examples/overshading_demo.py [num_boxes] [frames]
"""

import sys

from repro import GPU, GPUConfig, PipelineMode
from repro.harness import format_table
from repro.math3d import Vec3, Vec4
from repro.scenes import BoxSpec, LinearOscillation, Scene3D


def build_scene(config, num_boxes):
    """A column of boxes stacked along the view axis: each nearer box
    fully hides the one behind it, submitted farthest-first."""
    boxes = []
    for index in range(num_boxes):
        # Boxes shrink with distance so every one is fully occluded by
        # the next nearer one; slight motion defeats tile skipping.
        distance = 2.0 * index
        size = 5.0 - 2.5 * index / num_boxes
        boxes.append(
            BoxSpec(
                center=Vec3(0.0, 2.0, -distance),
                size=Vec3(size, size, 0.5),
                color=Vec4(1.0 - index / num_boxes, 0.2,
                           index / num_boxes, 1.0),
                motion=LinearOscillation(Vec3(0.2, 0.0, 0.0),
                                         period_frames=16,
                                         phase=index),
                name=f"slab{index}",
            )
        )
    return Scene3D(
        config.screen_width,
        config.screen_height,
        boxes=boxes,
        ground_size=0.0,            # no ground: isolate the slabs
        hud=None,
        translucents=(),
        camera_eye=Vec3(0.0, 2.0, 10.0),
        camera_target=Vec3(0.0, 2.0, 0.0),
        draw_order="back_to_front",  # worst case on purpose
    )


def main() -> None:
    num_boxes = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    frames = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    config = GPUConfig.default(frames=frames)
    scene = build_scene(config, num_boxes)
    stream = scene.stream(frames)

    rows = []
    for mode, label in (
        (PipelineMode.BASELINE, "baseline (early-Z only)"),
        (PipelineMode.EVR_REORDER_ONLY, "EVR reordering"),
        (PipelineMode.ORACLE, "oracle (perfect Z prepass)"),
    ):
        result = GPU(config, mode).render_stream(stream)
        stats = result.total_stats()
        rows.append([
            label,
            result.shaded_fragments_per_pixel(),
            stats.early_z_kills,
            stats.fragments_shaded,
        ])

    print(format_table(
        ["configuration", "shaded frags/px", "early-Z kills",
         "fragments shaded"],
        rows,
        title=(f"{num_boxes} mutually-occluding slabs, submitted "
               "back-to-front"),
    ))
    baseline, evr, oracle = (row[1] for row in rows)
    gap = (baseline - evr) / (baseline - oracle) if baseline > oracle else 1.0
    print(f"\nEVR removed {(1 - evr / baseline) * 100:.1f}% of shaded "
          f"fragments — {gap * 100:.0f}% of what a perfect oracle could "
          "(paper: 20% average reduction, 'close to the oracle').")


if __name__ == "__main__":
    main()
