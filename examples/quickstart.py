#!/usr/bin/env python3
"""Quickstart: render one benchmark under Baseline, RE and EVR.

Runs the *cde* (Castle Defense) benchmark — the suite's most redundant
workload — on a scaled-down Mali-450-class GPU and prints the headline
metrics the paper reports: execution cycles (split Geometry/Raster),
energy, redundant-tile rate and shaded fragments per pixel.

Usage::

    python examples/quickstart.py [benchmark] [frames]
"""

import sys

from repro import GPU, GPUConfig, PipelineMode
from repro.harness import format_table
from repro.scenes import benchmark_info, benchmark_stream


def main() -> None:
    alias = sys.argv[1] if len(sys.argv) > 1 else "cde"
    frames = int(sys.argv[2]) if len(sys.argv) > 2 else 10

    config = GPUConfig.default(frames=frames)
    info = benchmark_info(alias)
    print(f"Benchmark: {info.title} ({info.genre}, {info.scene_type})")
    print(f"  {info.description}")
    print(f"Config: {config.describe()['screen']} screen, "
          f"{config.num_tiles} tiles, {frames} frames\n")

    stream = benchmark_stream(alias, config)
    rows = []
    baseline_cycles = None
    baseline_energy = None
    for mode in (PipelineMode.BASELINE, PipelineMode.RE, PipelineMode.EVR):
        result = GPU(config, mode).render_stream(stream)
        cycles = result.total_cycles()
        energy = result.total_energy().total
        if baseline_cycles is None:
            baseline_cycles = cycles.total
            baseline_energy = energy
        rows.append([
            mode.value,
            cycles.geometry,
            cycles.raster,
            cycles.total / baseline_cycles,
            energy / baseline_energy,
            result.redundant_tile_rate(),
            result.shaded_fragments_per_pixel(),
        ])

    print(format_table(
        ["mode", "geom cycles", "raster cycles", "time (norm)",
         "energy (norm)", "tiles skipped", "frags/px"],
        rows,
        title=f"{alias}: Baseline vs RE vs EVR (steady state)",
    ))

    evr_row = rows[-1]
    print(f"\nEVR: {(1 - evr_row[3]) * 100:.1f}% faster and "
          f"{(1 - evr_row[4]) * 100:.1f}% less energy than the baseline "
          f"(paper averages: 39% / 43% across the full suite).")


if __name__ == "__main__":
    main()
