#!/usr/bin/env python3
"""Build a custom scene with the public API and export rendered frames.

Shows the full authoring surface: meshes, render states, per-command
projections (3D world + screen-space HUD in one frame), an animated
camera and PPM export of the simulated framebuffer.

Usage::

    python examples/custom_scene.py [output_dir]
"""

import math
import os
import sys

from repro import (
    DrawCommand,
    Frame,
    FrameStream,
    GPU,
    GPUConfig,
    PipelineMode,
    RenderState,
    ShaderProfile,
)
from repro.geom import box_mesh, grid_mesh, screen_quad
from repro.imageio import write_ppm
from repro.math3d import (
    Mat4,
    Vec3,
    Vec4,
    look_at,
    orthographic,
    perspective,
)


def build_frame(config, index):
    width, height = config.screen_width, config.screen_height
    screen_projection = orthographic(0, width, height, 0, -1, 1)
    projection = perspective(math.radians(60), width / height, 0.5, 100.0)
    angle = 2 * math.pi * index / 48.0
    eye = Vec3(10 * math.cos(angle), 6.0, 10 * math.sin(angle))
    view = look_at(eye, Vec3(0, 1, 0), Vec3(0, 1, 0))

    sky = DrawCommand.from_mesh(
        screen_quad(0, 0, width, height, color=Vec4(0.5, 0.7, 0.95, 1.0)),
        state=RenderState.sprite_2d(),
        label="sky",
        view=Mat4.identity(),
        projection=screen_projection,
    )
    ground = DrawCommand.from_mesh(
        grid_mesh(Vec3(-8, 0, -8), Vec3(0, 0, 16), Vec3(16, 0, 0), 4, 4,
                  Vec4(0.3, 0.5, 0.3, 1.0)),
        state=RenderState.opaque_3d(),
        label="ground",
    )
    tower = DrawCommand.from_mesh(
        box_mesh(Vec3(0, 2, 0), Vec3(2, 4, 2), Vec4(0.7, 0.6, 0.5, 1.0)),
        state=RenderState.opaque_3d(
            shader=ShaderProfile(fragment_instructions=20, texture_fetches=2)
        ),
        label="tower",
    )
    crate = DrawCommand.from_mesh(
        box_mesh(Vec3(3, 0.5, 2), Vec3(1, 1, 1), Vec4(0.8, 0.3, 0.2, 1.0)),
        state=RenderState.opaque_3d(),
        label="crate",
    )
    hud = DrawCommand.from_mesh(
        screen_quad(0, height - 16, width, 16, color=Vec4(0.1, 0.1, 0.15, 1)),
        state=RenderState.sprite_2d(),
        label="hud",
        view=Mat4.identity(),
        projection=screen_projection,
    )
    return Frame([sky, ground, tower, crate, hud],
                 view=view, projection=projection, index=index)


def main() -> None:
    output_dir = sys.argv[1] if len(sys.argv) > 1 else "out_frames"
    os.makedirs(output_dir, exist_ok=True)

    config = GPUConfig.default(frames=6)
    stream = FrameStream(lambda i: build_frame(config, i), config.frames)

    gpu = GPU(config, PipelineMode.EVR)
    result = gpu.render_stream(stream)

    for frame_result in result.frames:
        path = os.path.join(output_dir, f"frame_{frame_result.index:03d}.ppm")
        write_ppm(path, frame_result.image)
        stats = frame_result.stats
        print(f"frame {frame_result.index}: "
              f"{stats.fragments_shaded} fragments shaded, "
              f"{stats.tiles_skipped}/{stats.tiles_total} tiles skipped "
              f"-> {path}")

    cycles = result.total_cycles()
    print(f"\nSteady-state cycles: geometry={cycles.geometry:.0f} "
          f"raster={cycles.raster:.0f}")
    print(f"Energy: {result.total_energy().total * 1e3:.3f} mJ")
    print(f"Frames written to {output_dir}/ (view with any PPM viewer)")


if __name__ == "__main__":
    main()
