#!/usr/bin/env python3
"""Keyframed camera flythrough: how camera motion interacts with EVR.

Builds a small town of boxes and flies a keyframed camera through it.
A moving camera invalidates almost every tile every frame — Rendering
Elimination finds nothing — yet EVR's FVP prediction still reduces
overshading frame over frame (visibility is coherent even when pixels
are not), and the static HUD band remains skippable.

This is the *300*/*mst* behaviour of the paper's Figure 9, isolated.

Usage::

    python examples/flythrough.py [frames]
"""

import sys

from repro import GPU, GPUConfig, PipelineMode
from repro.harness import format_table
from repro.math3d import Vec3, Vec4
from repro.scenes import BoxSpec, HUDSpec, KeyframePath, Scene3D


class FlythroughScene(Scene3D):
    """A Scene3D whose eye follows a keyframed path."""

    def __init__(self, config, path: KeyframePath):
        towers = [
            BoxSpec(center=Vec3(x, 2.0, z), size=Vec3(2.0, 4.0, 2.0),
                    color=Vec4(0.5 + 0.05 * i, 0.45, 0.4, 1.0),
                    name=f"tower{i}")
            for i, (x, z) in enumerate(
                ((-6, -6), (6, -6), (-6, 6), (6, 6), (0, -8), (0, 8))
            )
        ]
        super().__init__(
            config.screen_width, config.screen_height,
            boxes=towers,
            hud=HUDSpec(panels=((0, config.screen_height - 16,
                                 config.screen_width, 16),)),
            camera_target=Vec3(0.0, 1.0, 0.0),
        )
        self._path = path

    def eye(self, frame: int) -> Vec3:
        return self._path.position(frame)


def main() -> None:
    frames = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    config = GPUConfig.default(frames=frames)
    path = KeyframePath.through(
        [
            Vec3(14.0, 6.0, 14.0),
            Vec3(0.0, 7.0, 18.0),
            Vec3(-14.0, 5.0, 12.0),
            Vec3(-16.0, 6.0, -2.0),
        ],
        frames_per_segment=frames / 3.0,
        easing="smooth",
    )
    scene = FlythroughScene(config, path)
    stream = scene.stream(frames)

    rows = []
    for mode in (PipelineMode.BASELINE, PipelineMode.RE, PipelineMode.EVR):
        result = GPU(config, mode).render_stream(stream)
        stats = result.total_stats()
        rows.append([
            mode.value,
            result.redundant_tile_rate(),
            result.shaded_fragments_per_pixel(),
            stats.early_z_kills,
        ])
    print(format_table(
        ["mode", "tiles skipped", "frags/px", "early-Z kills"],
        rows,
        title=f"keyframed flythrough, {frames} frames "
              "(camera moves every frame)",
    ))
    print("\nWith the camera in motion RE finds only the static HUD band, "
          "while EVR's frame-coherent visibility prediction still cuts "
          "overshading — the paper's 300/mst case.")


if __name__ == "__main__":
    main()
