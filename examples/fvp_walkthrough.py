#!/usr/bin/env python3
"""Walkthrough of the paper's Figure 3: FVP computation in hybrid tiles.

Reconstructs both Figure 3 scenarios with the actual hardware-structure
models (Layer Buffer, Z-buffer, ZR register) and shows how the FVP-type
and FVP depth are derived, then demonstrates the Section III-C prediction
rules against the stored FVP.

Usage::

    python examples/fvp_walkthrough.py
"""

import numpy as np

from repro.core import compute_fvp, predict_occluded
from repro.hw import FVPType, LayerBuffer, ZBuffer


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def full():
    return np.ones((4, 4), dtype=bool)


def halves():
    left = np.zeros((4, 4), dtype=bool)
    left[:, :2] = True
    return left, ~left


def scenario_3a() -> None:
    """Four NWOZ layers; layers 3 and 4 are visible, so L_far = 3 and
    the FVP is a layer identifier."""
    banner("Figure 3a: NWOZ layers only")
    z_buffer = ZBuffer(4, 4)
    layer_buffer = LayerBuffer(4, 4)

    layer_buffer.write(full(), 1, is_woz=False)
    print("layer 1 drawn (covers tile)   -> L_far =", layer_buffer.l_far)
    layer_buffer.write(full(), 2, is_woz=False)
    print("layer 2 drawn (covers layer 1)-> L_far =", layer_buffer.l_far)
    left, right = halves()
    layer_buffer.write(left, 3, is_woz=False)
    layer_buffer.write(right, 4, is_woz=False)
    print("layers 3+4 drawn (split tile) -> L_far =", layer_buffer.l_far)

    entry = compute_fvp(layer_buffer, z_buffer)
    assert entry.fvp_type is FVPType.NWOZ
    print(f"FVP: type={entry.fvp_type.name}, value=L_far={entry.value}")

    print("\nNext-frame predictions against this FVP:")
    for layer in (1, 2, 3, 4):
        occluded = predict_occluded(entry, writes_z=False, z_near=0.0,
                                    layer=layer)
        print(f"  primitive with layer {layer}: "
              f"{'OCCLUDED' if occluded else 'visible'}")


def scenario_3b() -> None:
    """A WOZ batch with depths 0 / 0.5 / 0.9: the depth-0.9 geometry is
    fully hidden, the farthest *visible* point is WOZ geometry at depth
    0.5, so the FVP is Z_far = 0.5."""
    banner("Figure 3b: WOZ geometry (FVP is a Z value)")
    z_buffer = ZBuffer(4, 4)
    layer_buffer = LayerBuffer(4, 4)
    left, right = halves()

    def draw_woz(mask, depth):
        plane = np.full((4, 4), depth)
        passing = z_buffer.test(mask, plane)
        z_buffer.write(passing, plane)
        layer_buffer.write(passing, 1, is_woz=True)
        print(f"  WOZ fragments at z={depth}: "
              f"{int(passing.sum())} visible")

    print("drawing WOZ batch (all layer 1):")
    draw_woz(full(), 0.9)
    draw_woz(right, 0.5)
    draw_woz(left, 0.0)

    print("Layer Buffer L_far =", layer_buffer.l_far,
          "| ZR register =", layer_buffer.zr_register,
          "-> FVP type is WOZ" if layer_buffer.fvp_is_woz else "NWOZ")
    entry = compute_fvp(layer_buffer, z_buffer)
    assert entry.fvp_type is FVPType.WOZ
    print(f"FVP: type={entry.fvp_type.name}, value=Z_far={entry.value}")

    print("\nNext-frame predictions against this FVP:")
    for z_near in (0.25, 0.5, 0.75):
        occluded = predict_occluded(entry, writes_z=True, z_near=z_near,
                                    layer=1)
        print(f"  WOZ primitive with Z_near={z_near}: "
              f"{'OCCLUDED' if occluded else 'visible'}")
    print("  NWOZ primitive (any position): visible "
          "(a Z-type FVP never predicts NWOZ geometry occluded)")


def main() -> None:
    scenario_3a()
    scenario_3b()
    print("\nDone: these are exactly the decisions the Polygon List "
          "Builder makes per (primitive, tile) during binning.")


if __name__ == "__main__":
    main()
