#!/usr/bin/env python3
"""Trace capture and replay — the paper's methodology, reproduced.

The paper's toolchain intercepts an application's GLES commands into a
trace file that feeds the simulator.  This example does the equivalent:
capture a benchmark's frame stream to JSON, replay it, verify the replay
renders bit-identical images, and run the cross-mode validator on the
replayed trace.

Usage::

    python examples/trace_capture.py [benchmark] [trace.json]
"""

import os
import sys

import numpy as np

from repro import GPU, GPUConfig, PipelineMode
from repro.commands import load_trace, save_trace
from repro.scenes import benchmark_stream
from repro.validate import validate_stream


def main() -> None:
    alias = sys.argv[1] if len(sys.argv) > 1 else "tib"
    trace_path = sys.argv[2] if len(sys.argv) > 2 else f"{alias}_trace.json"

    config = GPUConfig.default(frames=6)
    stream = benchmark_stream(alias, config)

    save_trace(stream, trace_path)
    size_kb = os.path.getsize(trace_path) / 1024
    print(f"captured {len(stream)} frames of '{alias}' to {trace_path} "
          f"({size_kb:.0f} KiB)")

    replayed = load_trace(trace_path)
    direct = GPU(config, PipelineMode.EVR).render_stream(stream)
    from_trace = GPU(config, PipelineMode.EVR).render_stream(replayed)
    for expected, actual in zip(direct.frames, from_trace.frames):
        assert np.array_equal(expected.image, actual.image)
    print("replay is bit-identical to direct rendering")

    report = validate_stream(replayed, config)
    print()
    print(report.render())
    sys.exit(0 if report.passed else 1)


if __name__ == "__main__":
    main()
