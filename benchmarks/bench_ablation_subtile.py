"""Ablation A4 bench target: FVP granularity (per-tile vs 2x2 sub-tile).

Finding (see the harness docstring): quadrant FVPs refine Z_far locally,
but the all-overlapped-quadrants requirement and NWOZ-terminated
quadrants blocking depth prediction roughly cancel the gain on this
suite — supporting the paper's single 4-byte FVP per tile.
"""

from repro.harness import ablation_subtile

from conftest import bench_config, publish


def test_ablation_subtile(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: ablation_subtile(bench_config()),
        rounds=1, iterations=1,
    )
    publish(capsys, result)
    by_granularity = {}
    for _, label, pred_rate, skip_rate, _ in result.rows:
        by_granularity.setdefault(label, []).append((pred_rate, skip_rate))
    # Both designs must produce comparable detection (within 20% rel.).
    for (tile_pred, tile_skip), (sub_pred, sub_skip) in zip(
        by_granularity["tile"], by_granularity["2x2-subtile"]
    ):
        assert abs(tile_skip - sub_skip) <= 0.2
