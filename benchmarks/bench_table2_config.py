"""Table II bench target: print the simulated GPU's parameters."""

from repro import GPUConfig
from repro.harness import table2_parameters

from conftest import publish


def test_table2_parameters(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: table2_parameters(GPUConfig.paper()), rounds=1, iterations=1
    )
    publish(capsys, result)
    rendered = result.render()
    assert "400 MHz" in rendered
    assert "1196x768" in rendered
    assert "16x16" in rendered
