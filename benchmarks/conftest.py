"""Shared infrastructure for the figure-regeneration bench targets.

All bench targets share one memoizing :class:`SuiteRunner` so that the
~90 (benchmark, mode) simulations are executed once per session even
though several figures consume the same runs.

Environment knobs:

* ``REPRO_BENCH_FRAMES`` — frames per run (default 10; the paper uses
  60, which also works but takes proportionally longer).
* ``REPRO_BENCH_SUBSET`` — comma-separated benchmark aliases to restrict
  the suite (default: all 20).
* ``REPRO_BENCH_WIDTH`` / ``REPRO_BENCH_HEIGHT`` — screen size (default
  192x160; use 1196x768 for the paper's full resolution).
* ``REPRO_JOBS`` — worker processes for the suite fan-out (default 1 =
  serial; results are bit-identical either way).
* ``REPRO_CACHE_DIR`` — persistent run-cache directory; set
  ``REPRO_BENCH_CACHE=0`` to disable disk caching entirely.

Rendered tables are printed to the terminal (bypassing capture) and
saved under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from typing import List, Optional

import pytest

from repro import GPUConfig
from repro.config import default_jobs
from repro.engine import default_cache_dir
from repro.harness.runner import SuiteRunner

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def bench_config() -> GPUConfig:
    frames = int(os.environ.get("REPRO_BENCH_FRAMES", "10"))
    width = int(os.environ.get("REPRO_BENCH_WIDTH", "192"))
    height = int(os.environ.get("REPRO_BENCH_HEIGHT", "160"))
    return GPUConfig(screen_width=width, screen_height=height, frames=frames)


def bench_subset() -> Optional[List[str]]:
    subset = os.environ.get("REPRO_BENCH_SUBSET", "")
    if not subset:
        return None
    return [alias.strip() for alias in subset.split(",") if alias.strip()]


@pytest.fixture(scope="session")
def suite_runner():
    cache_dir = (
        None if os.environ.get("REPRO_BENCH_CACHE", "1") == "0"
        else default_cache_dir()
    )
    with SuiteRunner(bench_config(), jobs=default_jobs(),
                     cache_dir=cache_dir) as runner:
        yield runner
        print(f"\n{runner.cache_summary()}")


@pytest.fixture(scope="session")
def subset() -> Optional[List[str]]:
    return bench_subset()


def publish(capsys, result) -> None:
    """Print a figure's table (bypassing capture) and save it."""
    text = result.render()
    with capsys.disabled():
        print()
        print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    filename = result.experiment.lower().replace(" ", "_") + ".txt"
    with open(os.path.join(RESULTS_DIR, filename), "w") as handle:
        handle.write(text + "\n")
