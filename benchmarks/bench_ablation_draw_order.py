"""Ablation A3 bench target: draw-order sensitivity.

Demonstrates Section IV-A's motivation: the baseline's Early Depth Test
is at the mercy of submission order (front-to-back is free, back-to-
front shades everything), while EVR's Algorithm-1 reordering makes
shaded work (nearly) order-independent without any application sorting.
"""

from repro.harness import ablation_draw_order

from conftest import bench_config, publish


def test_ablation_draw_order(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: ablation_draw_order(bench_config()),
        rounds=1, iterations=1,
    )
    publish(capsys, result)
    # Reordering must shrink the order-induced spread substantially.
    assert result.summary["evr_spread"] <= result.summary["baseline_spread"]
    assert result.summary["evr_spread"] <= 0.25 * max(
        result.summary["baseline_spread"], 1e-9
    )
