"""Figure 7 bench target: EVR execution time normalized to baseline.

Paper result: 39% average execution-time reduction, split into Geometry
and Raster pipeline cycles, with maximums above 70% (*ccs*, *cde*,
*dpe*); the signature-computation overhead in the Geometry Pipeline is
about 0.5% of total time.
"""

from repro.harness import figure7_time

from conftest import publish


def test_figure7_time(benchmark, suite_runner, subset, capsys):
    result = benchmark.pedantic(
        lambda: figure7_time(suite_runner, benchmarks=subset),
        rounds=1, iterations=1,
    )
    publish(capsys, result)
    assert result.summary["avg_time_reduction"] > 0.10
    for row in result.rows[:-1]:
        name, geometry, raster, total = row
        assert total <= 1.10, f"{name} slowed down under EVR"
        assert geometry >= 0 and raster >= 0
