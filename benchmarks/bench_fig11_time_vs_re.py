"""Figure 11 bench target: RE and EVR execution time vs the baseline GPU.

Paper result: EVR is faster than both the baseline and RE on every
benchmark; RE alone can *lose* to the baseline on low-redundancy apps
(*300*, *mst*) where signature computation isn't amortized, and EVR
reduces Geometry Pipeline time ~4% vs RE by skipping signature updates
of occluded primitives.
"""

from repro.harness import figure11_time_vs_re

from conftest import publish


def test_figure11_time_vs_re(benchmark, suite_runner, subset, capsys):
    result = benchmark.pedantic(
        lambda: figure11_time_vs_re(suite_runner, benchmarks=subset),
        rounds=1, iterations=1,
    )
    publish(capsys, result)
    assert result.summary["avg_evr_norm"] < result.summary["avg_re_norm"]
    for row in result.rows[:-1]:
        name = row[0]
        re_total, evr_total = row[3], row[6]
        assert evr_total <= re_total + 0.05, f"{name}: EVR slower than RE"
        assert evr_total <= 1.10, f"{name}: EVR slower than baseline"
