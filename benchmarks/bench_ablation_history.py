"""Ablation A2 bench target: FVP history depth.

The paper predicts from the previous frame's FVP alone.  Requiring a
primitive to be behind the FVPs of the last k frames is more
conservative: fewer mispredictions (poisons), fewer detections.
"""

from repro.harness import ablation_history

from conftest import bench_config, publish


def test_ablation_history(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: ablation_history(bench_config()),
        rounds=1, iterations=1,
    )
    publish(capsys, result)
    by_depth = {}
    for _, depth, pred_rate, _, poisons in result.rows:
        entry = by_depth.setdefault(depth, [0.0, 0])
        entry[0] += pred_rate
        entry[1] += poisons
    # Deeper history can only shrink the predicted-occluded set.
    assert by_depth[3][0] <= by_depth[1][0] + 1e-9
    assert by_depth[2][0] <= by_depth[1][0] + 1e-9
