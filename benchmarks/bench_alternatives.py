"""Analysis bench target: EVR vs Z-prepass vs Hierarchical-Z.

Reproduces the paper's qualitative claims about the alternatives it
declines (Sections IV-A and VIII): Z-prepass reaches oracle-level
fragment culling but pays geometry resubmission that offsets most of the
benefit, Hierarchical-Z is powerless against back-to-front submission,
and EVR's reordering both beats them on net cycles and makes HiZ
effective when combined.
"""

from repro.harness import culling_alternatives
from repro.scenes import benchmark_names

from conftest import bench_config, publish


def test_culling_alternatives(benchmark, subset, capsys):
    benchmarks_3d = [
        alias for alias in (subset or ("tib", "ata"))
        if alias in benchmark_names("3D")
    ] or ["tib", "ata"]
    result = benchmark.pedantic(
        lambda: culling_alternatives(bench_config(), benchmarks_3d),
        rounds=1, iterations=1,
    )
    publish(capsys, result)
    for alias in benchmarks_3d:
        rows = {row[1]: row for row in result.rows if row[0] == alias}
        # Z-prepass culls like the oracle...
        assert rows["z-prepass"][2] == rows["oracle"][2]
        # ...but pays more cycles than EVR's reordering.
        assert rows["z-prepass"][3] > rows["evr-reorder"][3]
        # EVR reordering beats the baseline.
        assert rows["evr-reorder"][3] < 1.0
        # HiZ composes with reordering.
        assert rows["evr+hiz"][4] >= rows["hiz"][4]
