"""Figure 6 bench target: EVR energy normalized to the baseline GPU.

Paper result: 43% average energy reduction, savings on every benchmark
(maximums above 80% on *cde* and *dpe*); Parameter Buffer layer-id writes
cost 2.1% and the extra hardware 1.2% on average.
"""

from repro.harness import figure6_energy

from conftest import publish


def test_figure6_energy(benchmark, suite_runner, subset, capsys):
    result = benchmark.pedantic(
        lambda: figure6_energy(suite_runner, benchmarks=subset),
        rounds=1, iterations=1,
    )
    publish(capsys, result)
    # Shape assertions: EVR saves energy on average, and overheads are
    # small fractions of baseline energy.
    assert result.summary["avg_energy_savings"] > 0.10
    for row in result.rows[:-1]:
        _, normalized, param_overhead, hw_overhead = row
        assert normalized < 1.05          # savings (tolerate ~noise)
        assert param_overhead < 0.10
        assert hw_overhead < 0.10
