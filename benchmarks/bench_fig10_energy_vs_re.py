"""Figure 10 bench target: EVR energy normalized to Rendering Elimination.

Paper result: 10% average energy reduction over the RE GPU, coming from
the extra redundant tiles detected and the overshading removed by
reordering.
"""

from repro.harness import figure10_energy_vs_re

from conftest import publish


def test_figure10_energy_vs_re(benchmark, suite_runner, subset, capsys):
    result = benchmark.pedantic(
        lambda: figure10_energy_vs_re(suite_runner, benchmarks=subset),
        rounds=1, iterations=1,
    )
    publish(capsys, result)
    assert result.summary["avg_savings_vs_re"] > 0.0
    for row in result.rows[:-1]:
        name, normalized = row
        assert normalized < 1.15, f"{name}: EVR much worse than RE"
