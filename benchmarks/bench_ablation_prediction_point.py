"""Ablation A1 bench target: conservatism of the predicted depth.

The paper compares the primitive's closest vertex (Z_near) against the
FVP — conservative by construction.  This ablation swaps in the centroid
and the farthest vertex: more predicted occlusion, but visible
primitives get mispredicted, costing signature poisons (re-rendered
tiles) instead of image errors thanks to the taint repair.
"""

from repro.harness import ablation_prediction_point

from conftest import bench_config, publish


def test_ablation_prediction_point(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: ablation_prediction_point(bench_config()),
        rounds=1, iterations=1,
    )
    publish(capsys, result)
    by_point = {}
    for _, point, pred_rate, _, poisons, _ in result.rows:
        entry = by_point.setdefault(point, [0.0, 0])
        entry[0] += pred_rate
        entry[1] += poisons
    # More aggressive points predict at least as much occlusion...
    assert by_point["far"][0] >= by_point["near"][0]
    assert by_point["centroid"][0] >= by_point["near"][0]
    # ...at the price of at least as many poisoned tiles.
    assert by_point["far"][1] >= by_point["near"][1]
