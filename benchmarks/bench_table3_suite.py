"""Table III bench target: print the benchmark suite inventory."""

from repro.harness import table3_suite

from conftest import publish


def test_table3_suite(benchmark, capsys):
    result = benchmark.pedantic(table3_suite, rounds=1, iterations=1)
    publish(capsys, result)
    assert len(result.rows) == 20
    types = [row[3] for row in result.rows]
    assert types.count("3D") == 6
    assert types.count("2D") == 14
