"""Figure 8 bench target: shaded fragments per pixel on 3D benchmarks.

Paper result: EVR's reordering removes ~20% of shaded fragments on the
3D apps and lands close to the perfect-Z oracle; the ordering
Oracle <= EVR <= Baseline holds everywhere.
"""

from repro.harness import figure8_overshading
from repro.scenes import benchmark_names

from conftest import publish


def test_figure8_overshading(benchmark, suite_runner, subset, capsys):
    benchmarks_3d = [
        alias for alias in (subset or benchmark_names("3D"))
        if alias in benchmark_names("3D")
    ] or list(benchmark_names("3D"))
    result = benchmark.pedantic(
        lambda: figure8_overshading(suite_runner, benchmarks=benchmarks_3d),
        rounds=1, iterations=1,
    )
    publish(capsys, result)
    assert result.summary["avg_overshading_reduction"] > 0.05
    for row in result.rows:
        name, baseline, evr, oracle = row
        assert oracle <= evr + 1e-9, f"{name}: EVR beat the oracle?!"
        assert evr <= baseline + 1e-9, f"{name}: EVR worse than baseline"
