"""Figure 9 bench target: redundant tiles detected by RE / EVR / Oracle.

Paper result: EVR skips 54% of tiles on average, about 5% more than
baseline RE; gains concentrate where hidden geometry changes under
opaque overlays (HUDs in *300*/*mst*, hidden animation in *hay*/*wmw*),
and EVR never detects fewer tiles than RE.
"""

from repro.harness import figure9_redundant_tiles

from conftest import publish


def test_figure9_redundant_tiles(benchmark, suite_runner, subset, capsys):
    result = benchmark.pedantic(
        lambda: figure9_redundant_tiles(suite_runner, benchmarks=subset),
        rounds=1, iterations=1,
    )
    publish(capsys, result)
    assert result.summary["avg_evr"] >= result.summary["avg_re"]
    assert result.summary["evr_minus_re"] > 0.0
    for row in result.rows[:-1]:
        name, re_rate, evr_rate, oracle_rate = row
        # Soundness: a signature skipper cannot beat the pixel oracle.
        assert evr_rate <= oracle_rate + 0.02, name
        # Dominance (small tolerance for prediction-transient noise).
        assert evr_rate >= re_rate - 0.02, name
