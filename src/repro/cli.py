"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``list`` — show the benchmark suite (Table III).
* ``modes`` — list the registered pipeline techniques (paper modes,
  alternative culling mechanisms, approximate rivals) and their
  validation contracts.
* ``run`` — simulate one benchmark under one or more registered
  techniques (``--modes``, or ``--mode`` for a single one) and print
  the headline metrics.
* ``figure`` — regenerate one of the paper's figures/tables.
* ``render`` — render a benchmark's frames to PPM images.
* ``report`` — paper-vs-measured markdown report (EXPERIMENTS.md body).
* ``profile`` — run one benchmark under the profiler and print where the
  wall-clock time went (phases, jobs, worker occupancy).
* ``validate`` — cross-mode pixel-equality and invariant checks;
  ``--backends`` adds backend bit-identity to the same report.
* ``trace`` — record a benchmark or stress family to a portable
  command-trace file, or replay a trace through validation (with a
  serialization round-trip bit-identity check).
* ``corpus`` — adversarial stress corpus: ``build`` serialized trace
  families, ``list`` them, ``replay`` them through the differential
  validation gate (all modes × all backends), shrinking and
  quarantining any violation.
* ``bench`` — measure backend throughput; ``--history`` prints the
  ledger's speedup trajectory.
* ``cache`` — inspect or clear the persistent run cache; ``gc`` prunes
  the quarantine directory to its newest entries.
* ``ledger`` — list/show/diff/gc the persistent run ledger; ``check``
  exits non-zero when the newest entries drift from the ledger median.
* ``dashboard`` — render the ledger as one self-contained HTML page.
* ``spec`` — show, diff or dump the resolved experiment spec.

Every experiment-running command resolves its parameters through one
declarative :class:`repro.spec.RunSpec`, layered from (later wins):
built-in defaults → ``--preset NAME`` → ``--spec FILE`` (TOML/JSON) →
environment (``REPRO_JOBS``, ``REPRO_FAULTS``) → explicit CLI flags →
dotted-path ``--set key=value`` overrides.  ``repro spec show`` prints
the fully resolved spec with the layer that supplied every field; a run
driven by a spec file is bit-identical to the same run driven by the
equivalent flags, and shares its disk-cache entries (keys derive from
the spec's canonical content hash).

Resilience (see :mod:`repro.resilience`): ``--retries N`` /
``--job-timeout S`` arm the resilient scheduler (bounded retries with
deterministic backoff, per-job timeouts and broken-pool recovery under
``--jobs``), and ``--inject-faults SPEC`` (or ``$REPRO_FAULTS``) with
``--fault-seed`` exercises those paths deterministically.  ``figure``
and ``report`` additionally checkpoint every finished (benchmark, mode)
cell to a journal in the cache directory; ``--resume`` replays it so an
interrupted sweep recomputes only unfinished cells, and ``--strict``
turns permanently failed cells into a non-zero exit (the default is
graceful degradation: the sweep completes with failed cells rendered as
``nan``).

Observability (see :mod:`repro.obs`): every subcommand takes ``-v`` /
``--verbose`` and ``-q`` / ``--quiet`` *after* the subcommand name;
``run``, ``figure``, ``report`` and ``profile`` additionally take
``--trace out.json`` (Chrome/Perfetto trace-event JSON) and ``--metrics
out.jsonl`` (or ``.csv``) to export what was measured.  ``--live``
renders per-benchmark progress (fragments/s, cache-ops/s) to the
terminal and ``--events out.jsonl`` streams the structured event bus to
a crash-durable JSONL log; both ride the same bus, fed from workers over
the result channel.  No observability flag changes any simulated result
— a run with subscribers attached is bit-identical to a bare run.
Metrics exports lead with a ``spec`` record carrying the resolved spec
and its hash for provenance.

Every ``run``/``figure``/``report``/``bench`` invocation also appends
its distilled results to the persistent run ledger (``.repro_ledger/``
by default; ``--ledger DIR`` or ``$REPRO_LEDGER_DIR`` overrides,
``--ledger off`` disables).  ``repro ledger list|show|diff|gc|check``
inspects it — ``check`` exits non-zero on drift from the ledger median —
and ``repro dashboard`` renders it into one self-contained HTML page.
"""

from __future__ import annotations

import argparse
import atexit
import io
import json
import os
import sys
import time
from contextlib import ExitStack, contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from . import __version__
from .commands import FrameStream
from .commands.trace import load_trace, save_trace
from .corpus import (
    DEFAULT_MAX_EVALS,
    MANIFEST_NAME,
    build_corpus,
    family_names,
    family_stream,
    get_family,
    load_corpus,
    make_pixel_corruptor,
    read_manifest,
    replay_families,
)
from .config import GPUConfig
from .engine import DiskCache, default_cache_dir, make_scheduler
from .engine.diskcache import DEFAULT_QUARANTINE_KEEP, run_cache_key
from .errors import CommandError, ConfigError, CorpusError, SpecError
from .harness import (
    ablation_draw_order,
    ablation_history,
    ablation_prediction_point,
    ablation_subtile,
    figure6_energy,
    figure7_time,
    figure8_overshading,
    figure9_redundant_tiles,
    figure10_energy_vs_re,
    figure11_time_vs_re,
    format_table,
    table2_parameters,
    table3_suite,
)
from .harness.alternatives import culling_alternatives, rival_techniques
from .harness.balance import pipeline_balance_report
from .harness.timeseries import frame_series, write_csv
from .harness.report import render_report
from .harness.runner import RunMetrics, SuiteRunner, metrics_from_result
from .harness.bench import (
    BENCH_PRESETS,
    check_bench_regression,
    format_bench_summary,
    run_bench,
    write_bench_json,
)
from .imageio import write_ppm
from .kernels import DEFAULT_BACKEND, available_backends
from .obs import (
    ChromeTracer,
    EventBus,
    JsonlEventWriter,
    LiveRenderer,
    MetricsSubscriber,
    Output,
    PhaseAccumulator,
    RunLedger,
    SchedulerProfiler,
    TracerSubscriber,
    global_registry,
    publishing,
    setup_logging,
    tracing,
    write_csv_records,
    write_jsonl,
)
from .obs.dashboard import write_dashboard
from .obs.events import RunFinished, RunStarted, get_bus
from .obs.ledger import (
    DEFAULT_RATE_TOLERANCE,
    DEFAULT_RATIO_TOLERANCE,
    diff_entries,
    entry_label,
    format_ledger_rows,
)
from .obs.log import verbosity_from_flags
from .obs.metrics import frame_record, run_record, spec_record
from .obs.profile import phase_breakdown
from .pipeline import GPU
from .resilience import ResilientScheduler
from .scenes import BENCHMARKS, benchmark_stream
from .spec import (
    PRESETS,
    ResolvedSpec,
    RunSpec,
    flatten_spec,
    preset_names,
    spec_from_args,
)
from .techniques import default_modes, get_technique, technique_names
from .validate import validate_stream

_FIGURES = {
    "table2": lambda runner, subset: table2_parameters(),
    "table3": lambda runner, subset: table3_suite(),
    "fig6": figure6_energy,
    "fig7": figure7_time,
    "fig8": figure8_overshading,
    "fig9": figure9_redundant_tiles,
    "fig10": figure10_energy_vs_re,
    "fig11": figure11_time_vs_re,
    "ablation-point": lambda runner, subset: ablation_prediction_point(
        runner.config, benchmarks=subset or ("tib", "ata"), jobs=runner.jobs
    ),
    "ablation-history": lambda runner, subset: ablation_history(
        runner.config, benchmarks=subset or ("tib", "ata"), jobs=runner.jobs
    ),
    "ablation-order": lambda runner, subset: ablation_draw_order(
        runner.config, jobs=runner.jobs
    ),
    "ablation-subtile": lambda runner, subset: ablation_subtile(
        runner.config, benchmarks=subset or ("tib", "ata"), jobs=runner.jobs
    ),
    "balance": lambda runner, subset: pipeline_balance_report(
        runner.config, benchmarks=subset or ("cde", "tib", "300")
    ),
    "alternatives": lambda runner, subset: culling_alternatives(
        runner.config, benchmarks=subset or ("tib", "ata"), runner=runner
    ),
    "rivals": lambda runner, subset: rival_techniques(
        runner.config, benchmarks=subset or ("tib", "ata"), runner=runner
    ),
}


# ---------------------------------------------------------------------------
# Argument groups
#
# Every default is ``None`` (or False for store_true flags): the parser
# records only what the user actually typed, so spec-file and preset
# values are never masked by untouched flags — `spec_from_args` layers
# the explicit values on top.
# ---------------------------------------------------------------------------

def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--spec", default=None, metavar="FILE",
        help="experiment spec file (TOML, or JSON with .json)",
    )
    parser.add_argument(
        "--preset", default=None, choices=preset_names(),
        help="built-in base configuration the spec/flags layer onto",
    )
    parser.add_argument(
        "--set", dest="set_overrides", action="append", default=[],
        metavar="KEY=VALUE",
        help="dotted-path spec override, e.g. "
             "--set features.evr_reorder=false (repeatable; highest "
             "precedence)",
    )


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--frames", type=int, default=None,
                        help="frames to simulate (default 10; paper: 60)")
    parser.add_argument("--width", type=int, default=None,
                        help="screen width in pixels (paper: 1196)")
    parser.add_argument("--height", type=int, default=None,
                        help="screen height in pixels (paper: 768)")


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for scheduler fan-out "
             "(default: $REPRO_JOBS or 1 = serial; "
             "negative = all CPU cores)",
    )
    parser.add_argument(
        "--backend", default=None, choices=available_backends(),
        help="backend for the fragment hot path and the memory-system "
             "trace replay (default: $REPRO_BACKEND or "
             f"{DEFAULT_BACKEND}; backends are bit-identical, "
             "so results and cache entries are shared)",
    )


def _add_backends_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backends", nargs="+", default=None,
        choices=available_backends(), metavar="BACKEND",
        help="kernel backends to render under; two or more make the "
             "validation differential (every mode × backend image is "
             "compared against the first backend's baseline). "
             "corpus replay defaults to all available backends",
    )


def _add_resilience_arguments(parser: argparse.ArgumentParser,
                              suite: bool = False) -> None:
    """Fault-tolerance flags (see :mod:`repro.resilience`).

    ``--strict`` is available everywhere and always resolves to the one
    ``resilience.strict`` spec field (one exit-code contract: 0 clean,
    1 failure/violation, 2 usage error); ``suite`` adds only the
    checkpoint-journal flag that is meaningless outside suite sweeps
    (``figure``, ``report``).
    """
    parser.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help="deterministic fault injection, e.g. 'crash:0.2,hang:0.1' "
             "(kinds: raise, corrupt, hang, crash, pixel; "
             "default: $REPRO_FAULTS)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None, metavar="N",
        help="seed decorrelating otherwise-identical fault plans",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="max attempts per job (arms the resilient scheduler; "
             "default 4 once armed)",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock timeout under a process pool "
             "(arms the resilient scheduler)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail hard: suite sweeps exit non-zero on permanently "
             "failed cells; corpus replay stops at the first violating "
             "family (violations always exit 1 either way)",
    )
    if suite:
        parser.add_argument(
            "--resume", action="store_true",
            help="replay completed (benchmark, mode) cells from the "
                 "checkpoint journal instead of recomputing them",
        )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a Chrome/Perfetto trace-event JSON file "
             "(open in chrome://tracing or ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="export metrics records; .csv writes flattened CSV, "
             "anything else JSON Lines",
    )
    parser.add_argument(
        "--events", default=None, metavar="FILE",
        help="stream the structured event bus to a JSONL log "
             "(crash-durable: each event is flushed as it arrives)",
    )
    parser.add_argument(
        "--live", action="store_true", default=False,
        help="live terminal progress (per-benchmark phases, fragments/s, "
             "cache-ops/s); falls back to plain lines when not a TTY",
    )
    _add_ledger_argument(parser)


def _add_ledger_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ledger", default=None, metavar="DIR",
        help="run-ledger directory (default: $REPRO_LEDGER_DIR or "
             ".repro_ledger; 'off' disables recording)",
    )


def _output_flags_parent() -> argparse.ArgumentParser:
    """Shared ``-v``/``-q`` flags, attached to every subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_mutually_exclusive_group()
    group.add_argument("-v", "--verbose", action="store_true",
                       help="extra diagnostics; repro logger at DEBUG")
    group.add_argument("-q", "--quiet", action="store_true",
                       help="primary output only (tables, reports)")
    return parent


def _make_output(args: argparse.Namespace) -> Output:
    """Configure logging from the parsed flags and return the writer
    (commands that don't resolve a spec: ``list``, ``cache``)."""
    verbosity = verbosity_from_flags(
        getattr(args, "verbose", False), getattr(args, "quiet", False)
    )
    setup_logging(verbosity)
    return Output(verbosity)


def _resolve(args: argparse.Namespace
             ) -> Tuple[ResolvedSpec, RunSpec, Output]:
    """Resolve the command's spec layers and configure output from it."""
    resolved = spec_from_args(args)
    spec = resolved.spec
    verbosity = spec.obs.verbosity()
    setup_logging(verbosity)
    return resolved, spec, Output(verbosity)


def _report_failures(runner: SuiteRunner, out: Output,
                     strict: bool) -> int:
    """Print any permanently failed cells; the exit code honours
    ``strict`` — always the resolved ``resilience.strict`` spec field,
    never an attribute sniffed off the runner (graceful degradation
    otherwise)."""
    if not runner.failures:
        return 0
    for (benchmark, mode), failure in sorted(
        runner.failures.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
    ):
        out.result(f"FAILED {benchmark}:{mode.value} "
                   f"after {failure.attempts} attempt(s): {failure.message}")
    out.result(f"{len(runner.failures)} suite cell(s) failed permanently"
               + ("" if strict else " (exit 0; use --strict to fail)"))
    return 1 if strict else 0


@contextmanager
def _command_tracer(trace_path: str,
                    out: Output) -> Iterator[Optional[ChromeTracer]]:
    """Install a :class:`ChromeTracer` for the command when ``--trace``
    (or ``obs.trace``) was given (yields None otherwise).

    Flush-on-crash: the file is written in a ``finally`` (an exception
    propagating through the command still leaves the partial trace on
    disk as valid JSON), and ``arm_flush`` registers an ``atexit``
    backstop for exits that skip the unwind entirely."""
    if not trace_path:
        yield None
        return
    tracer = ChromeTracer()
    tracer.arm_flush(trace_path)
    try:
        with tracing(tracer):
            yield tracer
    finally:
        tracer.disarm_flush()
        tracer.write(trace_path)
        out.info(f"trace ({len(tracer.events)} events) -> {trace_path}")


class _BusSession:
    """What a command gets back from :func:`_command_bus`: the live bus
    (None when no subscriber was requested) and the phase accumulator
    that fills the ledger's per-cell ``phases`` column."""

    def __init__(self) -> None:
        self.bus: Optional[EventBus] = None
        self.accumulator = PhaseAccumulator()

    def phases_for(self, benchmark: str, mode: str) -> Dict[str, float]:
        return self.accumulator.for_cell(benchmark, mode)


@contextmanager
def _command_bus(events_path: str, live: bool, out: Output,
                 tracer: Optional[ChromeTracer] = None,
                 ) -> Iterator[_BusSession]:
    """Install the event bus with the requested subscribers for the
    command's duration (``--events`` JSONL writer, ``--live`` renderer,
    tracer and metrics-registry consumers, the ledger's phase
    accumulator).  Without ``--events``/``--live`` the NULL_BUS stays
    installed and instrumented call sites pay one attribute check.

    The JSONL writer flushes per event and is additionally registered
    with ``atexit`` while open, so a crashed or killed run leaves a
    valid prefix of the stream on disk (flush-on-crash)."""
    session = _BusSession()
    if not (events_path or live):
        yield session
        return
    bus = EventBus()
    session.bus = bus
    bus.subscribe(session.accumulator)
    writer: Optional[JsonlEventWriter] = None
    renderer: Optional[LiveRenderer] = None
    if events_path:
        writer = JsonlEventWriter(events_path)
        atexit.register(writer.close)
        bus.subscribe(writer)
    if live:
        renderer = LiveRenderer()
        bus.subscribe(renderer)
    if tracer is not None:
        bus.subscribe(TracerSubscriber(tracer))
    bus.subscribe(MetricsSubscriber(global_registry()))
    try:
        with publishing(bus):
            yield session
    finally:
        if renderer is not None:
            renderer.close()
        if writer is not None:
            writer.close()
            atexit.unregister(writer.close)
            out.info(f"events ({writer.written} events) -> {events_path}")


def _ledger_record_suite(spec: RunSpec, runner: SuiteRunner,
                         session: _BusSession, out: Output,
                         source: str) -> None:
    """Append every settled (benchmark, mode) cell of a suite sweep to
    the run ledger (failed cells are skipped by ``record_run``)."""
    ledger = RunLedger(spec.obs.ledger)
    appended = 0
    for (benchmark, mode), metrics in sorted(
        runner.results().items(),
        key=lambda kv: (kv[0][0], kv[0][1].value),
    ):
        if ledger.record_run(
            spec.spec_hash(), metrics,
            phases=session.phases_for(benchmark, mode.value),
            source=source,
        ) is not None:
            appended += 1
    if appended:
        out.detail(f"ledger: {appended} entries -> {ledger.path}")


def _write_metrics(records: List[Dict[str, Any]], path: str,
                   out: Output) -> None:
    if path.endswith(".csv"):
        write_csv_records(records, path)
    else:
        write_jsonl(records, path)
    out.info(f"metrics ({len(records)} records) -> {path}")


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------

def _command_list(args: argparse.Namespace) -> int:
    out = _make_output(args)
    out.result(table3_suite().render())
    return 0


def _command_modes(args: argparse.Namespace) -> int:
    """List every registered technique with its validation contract."""
    out = _make_output(args)
    rows: List[List[object]] = []
    for technique in default_modes():
        contract = ("pixel-exact" if technique.pixel_exact
                    else f"err <= {technique.error_tolerance:g}")
        rows.append([
            technique.name,
            technique.kind,
            contract,
            ", ".join(technique.aliases) or "-",
            technique.summary,
        ])
    out.result(format_table(
        ["mode", "kind", "contract", "aliases", "summary"], rows,
        title=f"registered techniques ({len(rows)})",
    ))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    if getattr(args, "mode", None):
        # `--mode dsr` is sugar for `--modes dsr`: a single-technique
        # run without a comparison table base.
        args.modes = [args.mode]
    resolved, spec, out = _resolve(args)
    benchmarks = ([args.benchmark] if args.benchmark
                  else list(spec.workload.benchmarks))
    if not benchmarks:
        raise SpecError(
            "repro run needs a benchmark: pass one on the command line "
            "or set workload.benchmarks in the spec"
        )
    modes = spec.workload.pipeline_modes()
    config = spec.gpu
    records: List[Dict[str, Any]] = []
    global_registry().reset()
    policy = spec.resilience.retry_policy()
    plan = spec.resilience.fault_plan()
    # Spec-file-driven runs are declarative and therefore cacheable:
    # distilled metrics are keyed by the spec's content hash, so a second
    # identical invocation skips simulation entirely.  Exports (and live
    # telemetry) need the full per-frame results, so they always simulate.
    exporting = bool(args.csv or spec.obs.trace or spec.obs.metrics
                     or spec.obs.wants_bus())
    disk = (DiskCache(default_cache_dir())
            if args.spec and not exporting else None)
    ledger = RunLedger(spec.obs.ledger)
    ledger_entries = 0
    cache_hits = 0
    cache_misses = 0
    tables: List[str] = []
    with ExitStack() as stack:
        tracer = stack.enter_context(_command_tracer(spec.obs.trace, out))
        session = stack.enter_context(
            _command_bus(spec.obs.events, spec.obs.live, out, tracer))
        profiler = SchedulerProfiler(tracer) if tracer is not None else None
        scheduler = make_scheduler(spec.scheduler.jobs, profiler=profiler)
        if policy is not None:
            # Tile-level resilience: per-frame tile jobs are retried
            # (and, under a pool, timed out) individually.
            scheduler = ResilientScheduler(scheduler, policy=policy,
                                           fault_plan=plan)
        with scheduler:
            for benchmark in benchmarks:
                rows = []
                baseline_cycles: Optional[float] = None
                stream = None
                for mode in modes:
                    metrics: Optional[RunMetrics] = None
                    key = ""
                    if disk is not None:
                        key = run_cache_key(spec, benchmark, mode.value)
                        value = disk.get(key)
                        if isinstance(value, RunMetrics):
                            metrics = value
                            cache_hits += 1
                    if metrics is None:
                        if disk is not None:
                            cache_misses += 1
                        if stream is None:
                            stream = benchmark_stream(benchmark, config)
                        out.detail(f"simulating {benchmark}:{mode.value} "
                                   f"({config.frames} frames, {scheduler!r})")
                        bus = get_bus()
                        started = time.perf_counter()
                        if bus.enabled:
                            bus.emit(RunStarted(benchmark=benchmark,
                                                mode=mode.value,
                                                frames=config.frames))
                        result = GPU.from_spec(
                            spec, mode, scheduler=scheduler
                        ).render_stream(stream)
                        if bus.enabled:
                            bus.emit(RunFinished(
                                benchmark=benchmark, mode=mode.value,
                                seconds=time.perf_counter() - started,
                                frames=len(result.frames),
                                fragments=(result.total_stats()
                                           .fragments_shaded),
                            ))
                        if args.csv:
                            path = (f"{args.csv.rstrip('.csv')}"
                                    f"_{mode.value}.csv")
                            write_csv(frame_series(result), path)
                            out.info(f"per-frame series -> {path}")
                        if spec.obs.metrics:
                            records.extend(
                                frame_record(benchmark, mode.value, frame,
                                             result.cost_model,
                                             result.energy_model,
                                             result.features)
                                for frame in result.frames
                            )
                            records.append(
                                run_record(benchmark, mode.value, result)
                            )
                        metrics = metrics_from_result(benchmark, mode,
                                                      result)
                        if disk is not None:
                            disk.put(key, metrics)
                    if ledger.record_run(
                        spec.spec_hash(), metrics,
                        phases=session.phases_for(benchmark, mode.value),
                    ) is not None:
                        ledger_entries += 1
                    if baseline_cycles is None:
                        baseline_cycles = metrics.total_cycles
                    rows.append([
                        mode.value,
                        round(metrics.geometry_cycles),
                        round(metrics.raster_cycles),
                        metrics.total_cycles / baseline_cycles,
                        metrics.energy_joules * 1e3,
                        metrics.redundant_tile_rate,
                        metrics.shaded_fragments_per_pixel,
                    ])
                tables.append(format_table(
                    ["mode", "geom cyc", "raster cyc", "time vs first",
                     "energy (mJ)", "tiles skipped", "frags/px"],
                    rows,
                    title=f"{benchmark} @ {config.screen_width}x"
                          f"{config.screen_height}, {config.frames} frames",
                ))
    if spec.obs.metrics:
        records.insert(0, spec_record(spec))
        records.append({"record": "registry",
                        **global_registry().as_dict()})
        _write_metrics(records, spec.obs.metrics, out)
    if disk is not None:
        out.info(f"run cache: {cache_hits} hits, "
                 f"{cache_misses} misses ({disk.directory})")
    if ledger_entries:
        out.detail(f"ledger: {ledger_entries} entries -> {ledger.path}")
    # Tables last, so the primary payload is the tail of the output
    # whatever observability chatter preceded it.
    for table in tables:
        out.result(table)
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    resolved, spec, out = _resolve(args)
    global_registry().reset()
    with ExitStack() as stack:
        tracer = stack.enter_context(_command_tracer(spec.obs.trace, out))
        session = stack.enter_context(
            _command_bus(spec.obs.events, spec.obs.live, out, tracer))
        profiler = SchedulerProfiler(tracer) if tracer is not None else None
        with SuiteRunner(spec=spec,
                         cache_dir=default_cache_dir(),
                         profiler=profiler,
                         journal_dir=default_cache_dir()) as runner:
            subset = list(spec.workload.benchmarks) or None
            result = _FIGURES[args.figure](runner, subset)
            out.result(result.render())
            out.info(runner.cache_summary())
            if spec.obs.metrics:
                records = [spec_record(spec)]
                records.extend(runner.metrics_records())
                records.append({"record": "registry",
                                **global_registry().as_dict()})
                _write_metrics(records, spec.obs.metrics, out)
            status = _report_failures(runner, out, spec.resilience.strict)
        _ledger_record_suite(spec, runner, session, out, source="figure")
    return status


def _command_render(args: argparse.Namespace) -> int:
    resolved, spec, out = _resolve(args)
    config = spec.gpu
    stream = benchmark_stream(args.benchmark, config)
    mode = get_technique(args.mode)
    os.makedirs(args.output, exist_ok=True)
    gpu = GPU.from_spec(spec, mode)
    for frame in stream:
        result = gpu.render_frame(frame)
        path = os.path.join(
            args.output, f"{args.benchmark}_{frame.index:03d}.ppm"
        )
        write_ppm(path, result.image)
        out.info(f"frame {frame.index}: {result.stats.fragments_shaded} "
                 f"fragments, {result.stats.tiles_skipped} tiles skipped "
                 f"-> {path}")
    return 0


def _command_report(args: argparse.Namespace) -> int:
    resolved, spec, out = _resolve(args)
    global_registry().reset()
    with ExitStack() as stack:
        tracer = stack.enter_context(_command_tracer(spec.obs.trace, out))
        session = stack.enter_context(
            _command_bus(spec.obs.events, spec.obs.live, out, tracer))
        profiler = SchedulerProfiler(tracer) if tracer is not None else None
        with SuiteRunner(spec=spec,
                         cache_dir=default_cache_dir(),
                         profiler=profiler,
                         journal_dir=default_cache_dir()) as runner:
            report = render_report(runner)
            summary = runner.cache_summary()
            records = (runner.metrics_records() if spec.obs.metrics else [])
        _ledger_record_suite(spec, runner, session, out, source="report")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        out.info(f"report written to {args.output}")
    else:
        out.result(report)
    out.info(summary)
    if spec.obs.metrics:
        records.insert(0, spec_record(spec))
        records.append({"record": "registry", **global_registry().as_dict()})
        _write_metrics(records, spec.obs.metrics, out)
    return _report_failures(runner, out, spec.resilience.strict)


def _command_profile(args: argparse.Namespace) -> int:
    """Render one (benchmark, mode) run under a tracer + profiler and
    print the phase, job and worker-occupancy breakdowns."""
    resolved, spec, out = _resolve(args)
    config = spec.gpu
    mode = get_technique(args.mode)
    global_registry().reset()
    tracer = ChromeTracer()
    profiler = SchedulerProfiler(tracer)
    with tracing(tracer), _command_bus(spec.obs.events, spec.obs.live,
                                       out, tracer):
        with make_scheduler(spec.scheduler.jobs,
                            profiler=profiler) as scheduler:
            with tracer.span(f"run {args.benchmark}:{mode.value}",
                             category="harness"):
                stream = benchmark_stream(args.benchmark, config)
                GPU.from_spec(spec, mode,
                              scheduler=scheduler).render_stream(stream)

    phase_rows = [
        [row["span"], row["count"], row["total_ms"], row["mean_ms"]]
        for row in phase_breakdown(tracer)
    ]
    out.result(format_table(
        ["span", "count", "total ms", "mean ms"], phase_rows,
        title=f"phase breakdown: {args.benchmark}:{mode.value} @ "
              f"{config.screen_width}x{config.screen_height}, "
              f"{config.frames} frames",
    ))
    jobs = profiler.job_summary()
    out.result(format_table(
        ["tile jobs", "busy ms", "mean ms", "max ms",
         "mean wait ms", "max wait ms"],
        [[jobs["jobs"], jobs["busy_seconds"] * 1e3,
          jobs["mean_seconds"] * 1e3, jobs["max_seconds"] * 1e3,
          jobs["mean_queue_wait_seconds"] * 1e3,
          jobs["max_queue_wait_seconds"] * 1e3]],
        title="tile jobs",
    ))
    worker_rows = [
        [row["worker"], row["jobs"], row["busy_seconds"] * 1e3,
         row["occupancy"]]
        for row in profiler.worker_summary()
    ]
    out.result(format_table(
        ["worker", "jobs", "busy ms", "occupancy"], worker_rows,
        title="worker occupancy",
    ))
    if spec.obs.trace:
        tracer.write(spec.obs.trace)
        out.info(f"trace ({len(tracer.events)} events) -> {spec.obs.trace}")
    if spec.obs.metrics:
        _write_metrics(
            [spec_record(spec),
             {"record": "registry", **global_registry().as_dict()}],
            spec.obs.metrics, out,
        )
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    out = _make_output(args)
    cache = DiskCache(args.dir or default_cache_dir())
    if args.action == "clear":
        removed = cache.clear()
        out.result(f"removed {removed} cached runs ({cache.directory})")
    elif args.action == "gc":
        kept, removed = cache.gc_quarantine(args.keep)
        out.result(f"quarantine gc: kept {kept}, removed {removed} "
                   f"(newest {args.keep}, {cache.quarantine_dir()})")
    else:  # info
        out.result(f"cache directory: {cache.directory}")
        out.result(f"cached runs: {cache.size()}")
    return 0


def _entry_stamp(entry: Dict[str, Any]) -> str:
    ts = entry.get("ts")
    when = (time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(ts))
            if ts else "-")
    sha = (entry.get("git_sha") or "-")[:9]
    return f"{when}  {sha:<9}"


def _command_bench(args: argparse.Namespace) -> int:
    out = _make_output(args)
    ledger = RunLedger(args.ledger)
    if args.history:
        # Ratio trajectory straight from the ledger; does not run the
        # bench.
        entries = [entry for entry in ledger.entries()
                   if entry.get("kind") == "bench"
                   and entry.get("preset") == args.preset]
        if not entries:
            where = ledger.path if ledger.enabled else "ledger disabled"
            out.result(f"no bench history for preset {args.preset!r} "
                       f"({where})")
            return 0
        out.result(f"bench history: preset {args.preset} "
                   f"({len(entries)} entries, {ledger.path})")
        names = sorted({name for entry in entries
                        for name in entry.get("speedup", {})})
        for entry in entries:
            ratios = "  ".join(
                f"{name} x{entry['speedup'][name]:.2f}"
                for name in names if name in entry.get("speedup", {}))
            out.result(f"{_entry_stamp(entry)}  {ratios or '-'}")
        return 0
    with _command_bus(args.events or "", args.live, out):
        record = run_bench(args.preset, backends=args.backends,
                           repeat=args.repeat)
    path = args.output or f"BENCH_{args.preset}.json"
    write_bench_json(record, path)
    out.result(format_bench_summary(record))
    out.result(f"wrote {path}")
    if ledger.record_bench(record) is not None:
        out.detail(f"ledger: bench entry -> {ledger.path}")
    if args.check:
        failures = check_bench_regression(record, args.check,
                                          args.tolerance)
        for failure in failures:
            print(f"repro bench: REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        out.result(f"no regression against {args.check} "
                   f"(tolerance {args.tolerance:.0%})")
    return 0


def _command_ledger(args: argparse.Namespace) -> int:
    out = _make_output(args)
    ledger = RunLedger(args.ledger)
    if not ledger.enabled:
        print("repro ledger: the ledger is disabled (--ledger off / "
              "$REPRO_LEDGER_DIR)", file=sys.stderr)
        return 2
    if args.action == "gc":
        kept, dropped = ledger.gc(args.keep)
        out.result(f"ledger gc: kept {kept}, dropped {dropped} "
                   f"(newest {args.keep} per group, {ledger.path})")
        return 0
    if args.action == "check":
        findings = ledger.check(rate_tolerance=args.rate_tolerance,
                                ratio_tolerance=args.tolerance)
        for finding in findings:
            print(f"repro ledger: DRIFT: {finding}", file=sys.stderr)
        if findings:
            return 1
        groups = ledger.groups()
        gated = sum(1 for group in groups.values() if len(group) >= 2)
        out.result(f"ledger check: no drift ({gated} of {len(groups)} "
                   f"groups have history to gate against)")
        return 0
    entries = ledger.entries()
    if not entries:
        out.result(f"ledger empty ({ledger.path})")
        return 0
    if args.action == "list":
        out.result(f"ledger: {len(entries)} entries ({ledger.path})")
        for line in format_ledger_rows(entries):
            out.result(line)
        return 0
    if args.action == "show":
        index = len(entries) - 1
        if args.refs:
            try:
                index = int(args.refs[0])
            except ValueError:
                raise SpecError(
                    f"repro ledger show takes an entry index "
                    f"(from `ledger list`), got {args.refs[0]!r}"
                )
        if not -len(entries) <= index < len(entries):
            raise SpecError(
                f"ledger entry index {index} out of range "
                f"(0..{len(entries) - 1})"
            )
        out.result(json.dumps(entries[index], indent=2, sort_keys=True))
        return 0
    # diff: newest two entries of each group (optionally filtered by a
    # substring of the group label, e.g. `repro ledger diff tib:evr`).
    shown = 0
    for key, group in sorted(ledger.groups().items()):
        if len(group) < 2:
            continue
        label = entry_label(group[-1])
        if args.refs and not any(ref in label for ref in args.refs):
            continue
        out.result(f"{label}  ({_entry_stamp(group[-2])} -> "
                   f"{_entry_stamp(group[-1])})")
        for line in diff_entries(group[-2], group[-1]):
            out.result(line)
        shown += 1
    if not shown:
        out.result("ledger diff: no group has two entries to compare"
                   + (f" matching {args.refs}" if args.refs else ""))
    return 0


def _command_dashboard(args: argparse.Namespace) -> int:
    out = _make_output(args)
    ledger = RunLedger(args.ledger)
    path = write_dashboard(args.output, ledger,
                           events_path=args.events or None,
                           metrics_path=args.metrics or None)
    entries = ledger.entries()
    out.result(f"dashboard ({len(entries)} ledger entries) -> {path}")
    return 0


def _command_validate(args: argparse.Namespace) -> int:
    resolved, spec, out = _resolve(args)
    config = spec.gpu
    stream = benchmark_stream(args.benchmark, config)
    corruptor = make_pixel_corruptor(spec.resilience.fault_plan(),
                                     args.benchmark)
    report = validate_stream(stream, config, backends=args.backends,
                             corruptor=corruptor)
    out.result(report.render())
    return 0 if report.passed else 1


def _encode_stream(stream: FrameStream) -> str:
    """The stream's canonical trace serialization, as a string."""
    buffer = io.StringIO()
    save_trace(stream, buffer)
    return buffer.getvalue()


def _command_trace(args: argparse.Namespace) -> int:
    resolved, spec, out = _resolve(args)
    config = spec.gpu

    if args.action == "record":
        target = args.target
        if target in BENCHMARKS:
            stream = benchmark_stream(target, config)
        elif target in family_names():
            stream = family_stream(target, config)
        else:
            raise SpecError(
                f"unknown trace source {target!r}: not a benchmark "
                f"({', '.join(sorted(BENCHMARKS))}) and not a stress "
                f"family ({', '.join(family_names())})"
            )
        path = args.output or f"{target}.trace.json"
        save_trace(stream, path)
        # Round-trip bit-identity: the trace must decode to a stream
        # that re-encodes to the exact same bytes, or the file is not a
        # faithful capture.
        with open(path) as handle:
            reloaded = load_trace(handle)
        if _encode_stream(reloaded) != _encode_stream(stream):
            out.result(f"round-trip MISMATCH: {path} does not re-encode "
                       f"bit-identically; do not trust this capture")
            return 1
        frames = list(stream)
        draws = sum(len(frame.commands) for frame in frames)
        out.result(f"recorded {target}: {len(frames)} frames, {draws} "
                   f"draws -> {path} (round-trip bit-identical)")
        return 0

    # replay
    if not os.path.exists(args.target):
        raise SpecError(f"no trace file at {args.target!r}")
    stream = load_trace(args.target)
    encoded = _encode_stream(stream)
    if _encode_stream(load_trace(io.StringIO(encoded))) != encoded:
        out.result(f"round-trip MISMATCH: {args.target} decodes to a "
                   f"stream that does not re-encode bit-identically")
        return 1
    out.detail(f"replaying {args.target}: {len(stream)} frames "
               f"(round-trip bit-identical)")
    # The filename stem doubles as the fault-plan key, so a quarantined
    # corpus repro (`<family>.trace.json`) replayed with the violation
    # report's fault spec damages the exact same pixels and reproduces
    # the violation standalone.
    stem = os.path.basename(args.target).split(".")[0]
    corruptor = make_pixel_corruptor(spec.resilience.fault_plan(), stem)
    report = validate_stream(stream, config, backends=args.backends,
                             corruptor=corruptor)
    out.result(report.render())
    return 0 if report.passed else 1


def _command_corpus(args: argparse.Namespace) -> int:
    resolved, spec, out = _resolve(args)

    if args.action == "list":
        directory = args.dir
        if directory and os.path.exists(
                os.path.join(directory, MANIFEST_NAME)):
            manifest = read_manifest(directory)
            records = manifest.get("families", {})
            gpu = manifest.get("gpu", {})
            rows = [
                [name, record["frames"], record["draws"],
                 record["triangles"], record["seed"],
                 str(record["sha256"])[:12], record["adversary"]]
                for name, record in sorted(records.items())
            ]
            out.result(format_table(
                ["family", "frames", "draws", "tris", "seed", "sha256",
                 "adversary"],
                rows,
                title=f"corpus at {directory} "
                      f"({gpu.get('screen_width')}x"
                      f"{gpu.get('screen_height')}, "
                      f"{gpu.get('frames')} frames)",
            ))
        else:
            rows = [
                [family.name, family.default_seed, family.adversary,
                 family.description]
                for family in (get_family(name) for name in family_names())
            ]
            out.result(format_table(
                ["family", "seed", "adversary", "stresses"], rows,
                title="registered stress families",
            ))
        return 0

    if args.action == "build":
        directory = args.dir or os.path.join("corpus", "tiny")
        config = spec.gpu
        manifest = build_corpus(directory, config, names=args.families,
                                seed=args.seed)
        records = manifest["families"]
        frames = sum(record["frames"] for record in records.values())
        draws = sum(record["draws"] for record in records.values())
        out.result(f"built {len(records)} families ({frames} frames, "
                   f"{draws} draws) at {config.screen_width}x"
                   f"{config.screen_height} -> {directory}")
        return 0

    # replay: the differential gate.
    if args.dir:
        streams, manifest = load_corpus(args.dir, names=args.families)
        gpu = manifest["gpu"]
        # Replay under the configuration the corpus was generated for,
        # not whatever the local spec happens to resolve to.
        config = GPUConfig(screen_width=gpu["screen_width"],
                           screen_height=gpu["screen_height"],
                           frames=gpu["frames"])
        source = args.dir
    else:
        config = spec.gpu
        names = list(args.families) if args.families else list(family_names())
        streams = {name: family_stream(name, config, seed=args.seed)
                   for name in names}
        source = "generated in-memory"
    backends = list(args.backends) if args.backends \
        else list(available_backends())
    plan = spec.resilience.fault_plan()
    cache = DiskCache(default_cache_dir())
    quarantine = args.quarantine or os.path.join(cache.quarantine_dir(),
                                                 "corpus")
    out.detail(f"corpus replay: {len(streams)} families ({source}), "
               f"backends {', '.join(backends)}"
               + (f", faults {plan.describe()}" if plan is not None else ""))
    global_registry().reset()
    with ExitStack() as stack:
        stack.enter_context(
            _command_bus(spec.obs.events, spec.obs.live, out))
        results = replay_families(
            streams, config,
            backends=backends,
            fault_plan=plan,
            quarantine_dir=quarantine,
            strict=spec.resilience.strict,
            shrink=args.shrink,
            max_shrink_evals=args.max_shrink_evals,
        )
    rows = []
    for result in results:
        shrink_note = ""
        if result.shrunk is not None:
            shrunk = result.shrunk
            shrink_note = (f"{shrunk.original_frames}f/"
                           f"{shrunk.original_draws}d -> "
                           f"{shrunk.frames}f/{shrunk.draws}d")
        rows.append([
            result.family, result.frames, len(result.report.checks),
            len(result.report.failures), f"{result.seconds:.2f}",
            "ok" if result.passed else "VIOLATION", shrink_note,
        ])
    out.result(format_table(
        ["family", "frames", "checks", "failed", "sec", "status",
         "shrunk"],
        rows,
        title=f"corpus replay: {len(results)} families x "
              f"{len(backends)} backend(s)",
    ))
    failed = [result for result in results if not result.passed]
    for result in failed:
        for failure in result.report.failures:
            out.result(f"  {result.family}: {failure}")
        if result.trace_path:
            out.result(f"  quarantined repro: {result.trace_path} "
                       f"(+ {os.path.basename(result.report_path)})")
    if failed:
        if not args.quarantine:
            # The corpus quarantine lives under the disk cache's
            # quarantine directory and shares its retention cap.
            cache.gc_quarantine()
        skipped = len(streams) - len(results)
        out.result(f"{len(failed)} of {len(results)} families violated "
                   f"contracts"
                   + (f" ({skipped} not replayed under --strict)"
                      if skipped else ""))
        return 1
    out.result(f"all {len(results)} families passed "
               f"({', '.join(backends)})")
    return 0


def _spec_ref(ref: str) -> RunSpec:
    """A spec from a preset name or a spec-file path (``spec diff``)."""
    if ref in PRESETS:
        return RunSpec.preset(ref)
    if os.path.exists(ref):
        return RunSpec.from_file(ref)
    raise SpecError(
        f"unknown spec reference {ref!r}: not a preset "
        f"({', '.join(preset_names())}) and no such file"
    )


def _format_value(value: Any) -> str:
    if isinstance(value, list):
        return "[" + ", ".join(_format_value(item) for item in value) + "]"
    return repr(value) if isinstance(value, str) else str(value)


def _command_spec(args: argparse.Namespace) -> int:
    resolved, spec, out = _resolve(args)
    if args.action == "show":
        out.result(f"spec_hash: {spec.spec_hash()}")
        out.result(f"layers: {', '.join(resolved.layers)}")
        rows = [
            [path, _format_value(value), resolved.source_of(path)]
            for path, value in flatten_spec(spec)
        ]
        out.result(format_table(["field", "value", "layer"], rows,
                                title="resolved spec"))
        return 0
    if args.action == "dump":
        text = spec.to_toml()
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text)
            out.info(f"spec ({spec.spec_hash()[:12]}) -> {args.output}")
        else:
            out.result(text.rstrip("\n"))
        return 0
    # diff
    if len(args.refs) != 2:
        raise SpecError(
            "repro spec diff needs exactly two references "
            "(presets or spec files), e.g. `repro spec diff paper scaled`"
        )
    left = _spec_ref(args.refs[0])
    right = _spec_ref(args.refs[1])
    differences = left.diff(right)
    if not differences:
        out.result(f"specs are identical (hash {left.spec_hash()[:16]})")
        return 0
    rows = [
        [path, _format_value(a), _format_value(b)]
        for path, a, b in differences
    ]
    out.result(format_table(
        ["field", args.refs[0], args.refs[1]], rows,
        title=f"spec diff ({len(differences)} fields)",
    ))
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EVR (HPCA 2019) reproduction: TBR GPU simulator, "
                    "benchmarks and figure regeneration.",
    )
    parser.add_argument(
        "--version", action="version",
        version=(f"repro {__version__} "
                 f"(kernel backends: {', '.join(available_backends())}; "
                 f"default: {DEFAULT_BACKEND})"),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    output_flags = _output_flags_parent()

    subparsers.add_parser("list", help="show the benchmark suite",
                          parents=[output_flags])

    subparsers.add_parser(
        "modes",
        help="list the registered pipeline techniques and their "
             "validation contracts",
        parents=[output_flags],
    )

    run_parser = subparsers.add_parser("run", help="simulate one benchmark",
                                       parents=[output_flags])
    run_parser.add_argument("benchmark", nargs="?", default=None,
                            choices=sorted(BENCHMARKS),
                            help="benchmark alias (default: the spec's "
                                 "workload.benchmarks)")
    run_parser.add_argument(
        "--csv", default="",
        help="also dump a per-frame CSV per mode (prefix path)",
    )
    run_parser.add_argument(
        "--modes", nargs="+", default=None,
        choices=technique_names(include_aliases=True), metavar="MODE",
        help="registered techniques to compare (first is the "
             "normalization base; default baseline re evr; "
             "see `repro modes`)",
    )
    run_parser.add_argument(
        "--mode", default=None,
        choices=technique_names(include_aliases=True), metavar="MODE",
        help="shorthand for --modes with a single technique",
    )
    _add_spec_arguments(run_parser)
    _add_config_arguments(run_parser)
    _add_jobs_argument(run_parser)
    _add_resilience_arguments(run_parser)
    _add_obs_arguments(run_parser)

    figure_parser = subparsers.add_parser(
        "figure", help="regenerate a paper table/figure or an ablation",
        parents=[output_flags],
    )
    figure_parser.add_argument("figure", choices=sorted(_FIGURES))
    figure_parser.add_argument(
        "--benchmarks", nargs="*",
        help="restrict to these benchmark aliases",
    )
    _add_spec_arguments(figure_parser)
    _add_config_arguments(figure_parser)
    _add_jobs_argument(figure_parser)
    _add_resilience_arguments(figure_parser, suite=True)
    _add_obs_arguments(figure_parser)

    render_parser = subparsers.add_parser(
        "render", help="render a benchmark's frames to PPM files",
        parents=[output_flags],
    )
    render_parser.add_argument("benchmark", choices=sorted(BENCHMARKS))
    render_parser.add_argument(
        "--mode", default="evr",
        choices=technique_names(include_aliases=True), metavar="MODE",
        help="registered technique to render under (see `repro modes`)",
    )
    render_parser.add_argument("--output", default="out_frames")
    _add_spec_arguments(render_parser)
    _add_config_arguments(render_parser)

    report_parser = subparsers.add_parser(
        "report", help="paper-vs-measured markdown report (full suite)",
        parents=[output_flags],
    )
    report_parser.add_argument("--output", default="",
                               help="write to a file instead of stdout")
    _add_spec_arguments(report_parser)
    _add_config_arguments(report_parser)
    _add_jobs_argument(report_parser)
    _add_resilience_arguments(report_parser, suite=True)
    _add_obs_arguments(report_parser)

    profile_parser = subparsers.add_parser(
        "profile",
        help="profile one run: phase/job/worker time breakdown",
        parents=[output_flags],
    )
    profile_parser.add_argument("benchmark", choices=sorted(BENCHMARKS))
    profile_parser.add_argument(
        "--mode", default="evr",
        choices=technique_names(include_aliases=True), metavar="MODE",
        help="registered technique to profile (see `repro modes`)",
    )
    _add_spec_arguments(profile_parser)
    _add_config_arguments(profile_parser)
    _add_jobs_argument(profile_parser)
    _add_obs_arguments(profile_parser)

    bench_parser = subparsers.add_parser(
        "bench",
        help="measure backend throughput; emit BENCH_<preset>.json",
        parents=[output_flags],
    )
    bench_parser.add_argument(
        "--preset", default="default", choices=sorted(BENCH_PRESETS),
        help="bench workload (resolution, frames, geometry load)",
    )
    bench_parser.add_argument(
        "--backends", nargs="+", default=None,
        choices=available_backends(), metavar="BACKEND",
        help="backends to measure (default: all available)",
    )
    bench_parser.add_argument(
        "--repeat", type=int, default=3, metavar="N",
        help="kernel-sweep repetitions; best-of-N is reported",
    )
    bench_parser.add_argument(
        "--output", default="", metavar="FILE",
        help="result JSON path (default BENCH_<preset>.json)",
    )
    bench_parser.add_argument(
        "--check", default="", metavar="BASELINE",
        help="committed baseline JSON to gate against (exit 1 when the "
             "numpy/python speedup ratio regresses beyond --tolerance)",
    )
    bench_parser.add_argument(
        "--tolerance", type=float, default=0.2, metavar="FRAC",
        help="allowed fractional speedup regression for --check "
             "(default 0.2)",
    )
    bench_parser.add_argument(
        "--history", action="store_true",
        help="print the preset's speedup-ratio trajectory from the run "
             "ledger instead of benchmarking",
    )
    bench_parser.add_argument(
        "--events", default=None, metavar="FILE",
        help="stream bench events (per-backend rates, speedup ratios) "
             "to a JSONL log",
    )
    bench_parser.add_argument(
        "--live", action="store_true", default=False,
        help="live terminal progress while the bench runs",
    )
    _add_ledger_argument(bench_parser)

    cache_parser = subparsers.add_parser(
        "cache",
        help="inspect or clear the persistent run cache; gc prunes the "
             "quarantine directory",
        parents=[output_flags],
    )
    cache_parser.add_argument("action", choices=("info", "clear", "gc"))
    cache_parser.add_argument(
        "--dir", default="",
        help="cache directory (default: $REPRO_CACHE_DIR or .repro_cache)",
    )
    cache_parser.add_argument(
        "--keep", type=int, default=DEFAULT_QUARANTINE_KEEP, metavar="N",
        help="for gc: newest quarantined files kept — corrupt cache "
             "entries and corpus violation repros alike "
             f"(default {DEFAULT_QUARANTINE_KEEP})",
    )

    ledger_parser = subparsers.add_parser(
        "ledger",
        help="inspect the persistent run ledger; `check` gates drift",
        parents=[output_flags],
    )
    ledger_parser.add_argument(
        "action", choices=("list", "show", "diff", "gc", "check"),
    )
    ledger_parser.add_argument(
        "refs", nargs="*",
        help="for show: an entry index from `ledger list` (default "
             "newest); for diff: substring filters on the group label",
    )
    _add_ledger_argument(ledger_parser)
    ledger_parser.add_argument(
        "--keep", type=int, default=10, metavar="N",
        help="for gc: newest entries kept per (spec, benchmark, mode) "
             "or bench-preset group (default 10)",
    )
    ledger_parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_RATIO_TOLERANCE,
        metavar="FRAC",
        help="for check: allowed relative drop of a bench speedup ratio "
             f"below the ledger median (default {DEFAULT_RATIO_TOLERANCE})",
    )
    ledger_parser.add_argument(
        "--rate-tolerance", type=float, default=DEFAULT_RATE_TOLERANCE,
        metavar="ABS",
        help="for check: allowed absolute drift of EVR effectiveness "
             f"rates from the ledger median "
             f"(default {DEFAULT_RATE_TOLERANCE})",
    )

    dashboard_parser = subparsers.add_parser(
        "dashboard",
        help="render the run ledger as one self-contained HTML page",
        parents=[output_flags],
    )
    dashboard_parser.add_argument(
        "--output", default="dashboard.html", metavar="FILE",
        help="HTML output path (default dashboard.html)",
    )
    _add_ledger_argument(dashboard_parser)
    dashboard_parser.add_argument(
        "--events", default=None, metavar="FILE",
        help="event JSONL log feeding the worker-occupancy panel",
    )
    dashboard_parser.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="metrics JSONL export feeding the memory-system panel",
    )

    validate_parser = subparsers.add_parser(
        "validate",
        help="verify all modes render identical images on a benchmark",
        parents=[output_flags],
    )
    validate_parser.add_argument("benchmark", choices=sorted(BENCHMARKS))
    _add_backends_argument(validate_parser)
    _add_spec_arguments(validate_parser)
    _add_config_arguments(validate_parser)
    _add_resilience_arguments(validate_parser)

    trace_parser = subparsers.add_parser(
        "trace",
        help="record a benchmark/stress family to a portable trace "
             "file, or replay one through cross-mode validation",
        parents=[output_flags],
    )
    trace_parser.add_argument("action", choices=("record", "replay"))
    trace_parser.add_argument(
        "target",
        help="record: a benchmark alias or stress-family name; "
             "replay: a repro-trace JSON file",
    )
    trace_parser.add_argument(
        "--output", default="", metavar="FILE",
        help="record: trace path (default <target>.trace.json)",
    )
    _add_backends_argument(trace_parser)
    _add_spec_arguments(trace_parser)
    _add_config_arguments(trace_parser)
    _add_resilience_arguments(trace_parser)

    corpus_parser = subparsers.add_parser(
        "corpus",
        help="adversarial stress corpus: build trace families, list "
             "them, replay them through the differential gate",
        parents=[output_flags],
    )
    corpus_parser.add_argument("action", choices=("build", "list", "replay"))
    corpus_parser.add_argument(
        "--dir", default="", metavar="DIR",
        help="corpus directory (build default: corpus/tiny; replay "
             "generates streams in-memory when omitted; list shows the "
             "registry when omitted)",
    )
    corpus_parser.add_argument(
        "--families", nargs="+", default=None, choices=family_names(),
        metavar="FAMILY",
        help="restrict to these stress families (default: all)",
    )
    corpus_parser.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="build/in-memory replay: override every family's default "
             "seed",
    )
    _add_backends_argument(corpus_parser)
    corpus_parser.add_argument(
        "--quarantine", default="", metavar="DIR",
        help="where minimized violating traces and violation reports "
             "land (default: <cache>/quarantine/corpus, bounded by the "
             "disk-cache quarantine retention cap)",
    )
    corpus_parser.add_argument(
        "--no-shrink", dest="shrink", action="store_false", default=True,
        help="quarantine the full violating stream without "
             "delta-debugging it down first",
    )
    corpus_parser.add_argument(
        "--max-shrink-evals", type=int, default=DEFAULT_MAX_EVALS,
        metavar="N",
        help="predicate-evaluation budget for the shrinker "
             f"(default {DEFAULT_MAX_EVALS})",
    )
    _add_spec_arguments(corpus_parser)
    _add_config_arguments(corpus_parser)
    _add_resilience_arguments(corpus_parser)
    _add_obs_arguments(corpus_parser)

    spec_parser = subparsers.add_parser(
        "spec",
        help="show, diff or dump the resolved experiment spec",
        parents=[output_flags],
    )
    spec_parser.add_argument("action", choices=("show", "diff", "dump"))
    spec_parser.add_argument(
        "refs", nargs="*",
        help="for diff: two preset names or spec-file paths",
    )
    spec_parser.add_argument(
        "--output", default="",
        help="for dump: write the TOML here instead of stdout",
    )
    _add_spec_arguments(spec_parser)
    _add_config_arguments(spec_parser)
    _add_jobs_argument(spec_parser)
    _add_resilience_arguments(spec_parser, suite=True)
    _add_obs_arguments(spec_parser)

    return parser


_COMMANDS = {
    "list": _command_list,
    "modes": _command_modes,
    "run": _command_run,
    "figure": _command_figure,
    "render": _command_render,
    "report": _command_report,
    "profile": _command_profile,
    "validate": _command_validate,
    "trace": _command_trace,
    "corpus": _command_corpus,
    "bench": _command_bench,
    "cache": _command_cache,
    "ledger": _command_ledger,
    "dashboard": _command_dashboard,
    "spec": _command_spec,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ConfigError, CorpusError, CommandError) as error:
        # SpecError included: a bad spec/flag combination, an unknown
        # or tampered corpus, or an unreadable trace file is a usage
        # error, reported cleanly instead of as a traceback.
        print(f"repro: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
