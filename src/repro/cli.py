"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``list`` — show the benchmark suite (Table III).
* ``run`` — simulate one benchmark under one or more pipeline modes and
  print the headline metrics.
* ``figure`` — regenerate one of the paper's figures/tables.
* ``render`` — render a benchmark's frames to PPM images.
* ``report`` — paper-vs-measured markdown report (EXPERIMENTS.md body).
* ``profile`` — run one benchmark under the profiler and print where the
  wall-clock time went (phases, jobs, worker occupancy).
* ``validate`` — cross-mode pixel-equality and invariant checks.
* ``cache`` — inspect or clear the persistent run cache.

``run``, ``figure`` and ``report`` accept ``--jobs N`` (or the
``REPRO_JOBS`` environment variable) to fan independent simulations out
over worker processes; results are bit-identical to serial runs.

Resilience (see :mod:`repro.resilience`): the same three subcommands
accept ``--retries N`` / ``--job-timeout S`` to arm the resilient
scheduler (bounded retries with deterministic backoff, per-job timeouts
and broken-pool recovery under ``--jobs``), and ``--inject-faults SPEC``
(or ``$REPRO_FAULTS``) with ``--fault-seed`` to exercise those paths
deterministically.  ``figure`` and ``report`` additionally checkpoint
every finished (benchmark, mode) cell to a journal in the cache
directory; ``--resume`` replays it so an interrupted sweep recomputes
only unfinished cells, and ``--strict`` turns permanently failed cells
into a non-zero exit (the default is graceful degradation: the sweep
completes with failed cells rendered as ``nan``).

Observability (see :mod:`repro.obs`): every subcommand takes ``-v`` /
``--verbose`` and ``-q`` / ``--quiet`` *after* the subcommand name;
``run``, ``figure``, ``report`` and ``profile`` additionally take
``--trace out.json`` (Chrome/Perfetto trace-event JSON) and ``--metrics
out.jsonl`` (or ``.csv``) to export what was measured.  Neither flag
changes any simulated result.
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from .config import GPUConfig, default_jobs
from .engine import DiskCache, default_cache_dir, make_scheduler
from .harness import (
    ablation_draw_order,
    ablation_history,
    ablation_prediction_point,
    ablation_subtile,
    figure6_energy,
    figure7_time,
    figure8_overshading,
    figure9_redundant_tiles,
    figure10_energy_vs_re,
    figure11_time_vs_re,
    format_table,
    table2_parameters,
    table3_suite,
)
from .harness.alternatives import culling_alternatives
from .harness.balance import pipeline_balance_report
from .harness.timeseries import frame_series, write_csv
from .harness.report import render_report
from .harness.runner import SuiteRunner
from .imageio import write_ppm
from .obs import (
    ChromeTracer,
    Output,
    SchedulerProfiler,
    global_registry,
    setup_logging,
    tracing,
    write_csv_records,
    write_jsonl,
)
from .obs.log import verbosity_from_flags
from .obs.metrics import frame_record, run_record
from .obs.profile import phase_breakdown
from .pipeline import GPU, PipelineMode
from .resilience import FaultPlan, ResilientScheduler, RetryPolicy
from .scenes import BENCHMARKS, benchmark_stream
from .validate import validate_stream

_FIGURES = {
    "table2": lambda runner, subset: table2_parameters(),
    "table3": lambda runner, subset: table3_suite(),
    "fig6": figure6_energy,
    "fig7": figure7_time,
    "fig8": figure8_overshading,
    "fig9": figure9_redundant_tiles,
    "fig10": figure10_energy_vs_re,
    "fig11": figure11_time_vs_re,
    "ablation-point": lambda runner, subset: ablation_prediction_point(
        runner.config, benchmarks=subset or ("tib", "ata"), jobs=runner.jobs
    ),
    "ablation-history": lambda runner, subset: ablation_history(
        runner.config, benchmarks=subset or ("tib", "ata"), jobs=runner.jobs
    ),
    "ablation-order": lambda runner, subset: ablation_draw_order(
        runner.config, jobs=runner.jobs
    ),
    "ablation-subtile": lambda runner, subset: ablation_subtile(
        runner.config, benchmarks=subset or ("tib", "ata"), jobs=runner.jobs
    ),
    "balance": lambda runner, subset: pipeline_balance_report(
        runner.config, benchmarks=subset or ("cde", "tib", "300")
    ),
    "alternatives": lambda runner, subset: culling_alternatives(
        runner.config, benchmarks=subset or ("tib", "ata")
    ),
}


def _config_from_args(args: argparse.Namespace) -> GPUConfig:
    return GPUConfig(
        screen_width=args.width,
        screen_height=args.height,
        frames=args.frames,
    )


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--frames", type=int, default=10,
                        help="frames to simulate (default 10; paper: 60)")
    parser.add_argument("--width", type=int, default=192,
                        help="screen width in pixels (paper: 1196)")
    parser.add_argument("--height", type=int, default=160,
                        help="screen height in pixels (paper: 768)")


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for scheduler fan-out "
             "(default: $REPRO_JOBS or 1 = serial; "
             "negative = all CPU cores)",
    )


def _add_resilience_arguments(parser: argparse.ArgumentParser,
                              suite: bool = False) -> None:
    """Fault-tolerance flags (see :mod:`repro.resilience`).

    ``suite`` adds the checkpoint/exit-code flags that only make sense
    for suite sweeps (``figure``, ``report``).
    """
    parser.add_argument(
        "--inject-faults", default="", metavar="SPEC",
        help="deterministic fault injection, e.g. 'crash:0.2,hang:0.1' "
             "(kinds: raise, corrupt, hang, crash; default: $REPRO_FAULTS)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0, metavar="N",
        help="seed decorrelating otherwise-identical fault plans",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="max attempts per job (arms the resilient scheduler; "
             "default 4 once armed)",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock timeout under a process pool "
             "(arms the resilient scheduler)",
    )
    if suite:
        parser.add_argument(
            "--resume", action="store_true",
            help="replay completed (benchmark, mode) cells from the "
                 "checkpoint journal instead of recomputing them",
        )
        parser.add_argument(
            "--strict", action="store_true",
            help="exit non-zero if any suite cell failed permanently "
                 "(default: complete with the cell marked failed)",
        )


def _resilience_from_args(
    args: argparse.Namespace,
) -> tuple:
    """(RetryPolicy, FaultPlan) from the parsed flags, or (None, None)
    when no resilience flag was given (the historical fail-fast path)."""
    spec = getattr(args, "inject_faults", "") or os.environ.get(
        "REPRO_FAULTS", ""
    )
    retries = getattr(args, "retries", None)
    timeout = getattr(args, "job_timeout", None)
    if not spec and retries is None and timeout is None:
        return None, None
    policy = RetryPolicy(
        max_attempts=retries if retries is not None else 4,
        timeout_seconds=timeout,
    )
    # An injected hang must outlast the timeout (so the timeout path
    # actually fires) but must never wedge an untimed run for long.
    hang_seconds = 2.0 * timeout if timeout else 30.0
    plan = FaultPlan.parse(spec, seed=getattr(args, "fault_seed", 0),
                           hang_seconds=hang_seconds)
    return policy, plan


def _report_failures(runner: SuiteRunner, out: Output) -> int:
    """Print any permanently failed cells; the exit code honours
    ``--strict`` (graceful degradation otherwise)."""
    if not runner.failures:
        return 0
    for (benchmark, mode), failure in sorted(
        runner.failures.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
    ):
        out.result(f"FAILED {benchmark}:{mode.value} "
                   f"after {failure.attempts} attempt(s): {failure.message}")
    strict = getattr(runner, "strict", False)
    out.result(f"{len(runner.failures)} suite cell(s) failed permanently"
               + ("" if strict else " (exit 0; use --strict to fail)"))
    return 1 if strict else 0


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default="", metavar="FILE",
        help="write a Chrome/Perfetto trace-event JSON file "
             "(open in chrome://tracing or ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics", default="", metavar="FILE",
        help="export metrics records; .csv writes flattened CSV, "
             "anything else JSON Lines",
    )


def _output_flags_parent() -> argparse.ArgumentParser:
    """Shared ``-v``/``-q`` flags, attached to every subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_mutually_exclusive_group()
    group.add_argument("-v", "--verbose", action="store_true",
                       help="extra diagnostics; repro logger at DEBUG")
    group.add_argument("-q", "--quiet", action="store_true",
                       help="primary output only (tables, reports)")
    return parent


def _make_output(args: argparse.Namespace) -> Output:
    """Configure logging from the parsed flags and return the writer."""
    verbosity = verbosity_from_flags(
        getattr(args, "verbose", False), getattr(args, "quiet", False)
    )
    setup_logging(verbosity)
    return Output(verbosity)


@contextmanager
def _command_tracer(args: argparse.Namespace,
                    out: Output) -> Iterator[Optional[ChromeTracer]]:
    """Install a :class:`ChromeTracer` for the command when ``--trace``
    was given (yields None otherwise); writes the file on clean exit."""
    path = getattr(args, "trace", "")
    if not path:
        yield None
        return
    tracer = ChromeTracer()
    with tracing(tracer):
        yield tracer
    tracer.write(path)
    out.info(f"trace ({len(tracer.events)} events) -> {path}")


def _write_metrics(records: List[Dict[str, Any]], path: str,
                   out: Output) -> None:
    if path.endswith(".csv"):
        write_csv_records(records, path)
    else:
        write_jsonl(records, path)
    out.info(f"metrics ({len(records)} records) -> {path}")


def _command_list(args: argparse.Namespace) -> int:
    out = _make_output(args)
    out.result(table3_suite().render())
    return 0


def _command_run(args: argparse.Namespace) -> int:
    out = _make_output(args)
    config = _config_from_args(args)
    stream = benchmark_stream(args.benchmark, config)
    modes = [PipelineMode(mode) for mode in args.modes]
    rows = []
    records: List[Dict[str, Any]] = []
    baseline_cycles: Optional[float] = None
    global_registry().reset()
    policy, plan = _resilience_from_args(args)
    with _command_tracer(args, out) as tracer:
        profiler = SchedulerProfiler(tracer) if tracer is not None else None
        scheduler = make_scheduler(default_jobs(args.jobs),
                                   profiler=profiler)
        if policy is not None:
            # Tile-level resilience: per-frame tile jobs are retried
            # (and, under a pool, timed out) individually.
            scheduler = ResilientScheduler(scheduler, policy=policy,
                                           fault_plan=plan)
        with scheduler:
            for mode in modes:
                out.detail(f"simulating {args.benchmark}:{mode.value} "
                           f"({config.frames} frames, {scheduler!r})")
                result = GPU(config, mode,
                             scheduler=scheduler).render_stream(stream)
                if args.csv:
                    path = f"{args.csv.rstrip('.csv')}_{mode.value}.csv"
                    write_csv(frame_series(result), path)
                    out.info(f"per-frame series -> {path}")
                if args.metrics:
                    records.extend(
                        frame_record(args.benchmark, mode.value, frame,
                                     result.cost_model, result.energy_model,
                                     result.features)
                        for frame in result.frames
                    )
                    records.append(
                        run_record(args.benchmark, mode.value, result)
                    )
                cycles = result.total_cycles()
                if baseline_cycles is None:
                    baseline_cycles = cycles.total
                rows.append([
                    mode.value,
                    round(cycles.geometry),
                    round(cycles.raster),
                    cycles.total / baseline_cycles,
                    result.total_energy().total * 1e3,
                    result.redundant_tile_rate(),
                    result.shaded_fragments_per_pixel(),
                ])
    if args.metrics:
        records.append({"record": "registry",
                        **global_registry().as_dict()})
        _write_metrics(records, args.metrics, out)
    out.result(format_table(
        ["mode", "geom cyc", "raster cyc", "time vs first",
         "energy (mJ)", "tiles skipped", "frags/px"],
        rows,
        title=f"{args.benchmark} @ {config.screen_width}x"
              f"{config.screen_height}, {config.frames} frames",
    ))
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    out = _make_output(args)
    config = _config_from_args(args)
    global_registry().reset()
    policy, plan = _resilience_from_args(args)
    with _command_tracer(args, out) as tracer:
        profiler = SchedulerProfiler(tracer) if tracer is not None else None
        with SuiteRunner(config, jobs=default_jobs(args.jobs),
                         cache_dir=default_cache_dir(),
                         profiler=profiler,
                         retry_policy=policy, fault_plan=plan,
                         journal_dir=default_cache_dir(),
                         resume=args.resume,
                         strict=args.strict) as runner:
            subset = args.benchmarks or None
            result = _FIGURES[args.figure](runner, subset)
            out.result(result.render())
            out.info(runner.cache_summary())
            if args.metrics:
                records = runner.metrics_records()
                records.append({"record": "registry",
                                **global_registry().as_dict()})
                _write_metrics(records, args.metrics, out)
            status = _report_failures(runner, out)
    return status


def _command_render(args: argparse.Namespace) -> int:
    out = _make_output(args)
    config = _config_from_args(args)
    stream = benchmark_stream(args.benchmark, config)
    mode = PipelineMode(args.mode)
    os.makedirs(args.output, exist_ok=True)
    gpu = GPU(config, mode)
    for frame in stream:
        result = gpu.render_frame(frame)
        path = os.path.join(
            args.output, f"{args.benchmark}_{frame.index:03d}.ppm"
        )
        write_ppm(path, result.image)
        out.info(f"frame {frame.index}: {result.stats.fragments_shaded} "
                 f"fragments, {result.stats.tiles_skipped} tiles skipped "
                 f"-> {path}")
    return 0


def _command_report(args: argparse.Namespace) -> int:
    out = _make_output(args)
    config = _config_from_args(args)
    global_registry().reset()
    policy, plan = _resilience_from_args(args)
    with _command_tracer(args, out) as tracer:
        profiler = SchedulerProfiler(tracer) if tracer is not None else None
        with SuiteRunner(config, jobs=default_jobs(args.jobs),
                         cache_dir=default_cache_dir(),
                         profiler=profiler,
                         retry_policy=policy, fault_plan=plan,
                         journal_dir=default_cache_dir(),
                         resume=args.resume,
                         strict=args.strict) as runner:
            report = render_report(runner)
            summary = runner.cache_summary()
            records = (runner.metrics_records() if args.metrics else [])
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        out.info(f"report written to {args.output}")
    else:
        out.result(report)
    out.info(summary)
    if args.metrics:
        records.append({"record": "registry", **global_registry().as_dict()})
        _write_metrics(records, args.metrics, out)
    return _report_failures(runner, out)


def _command_profile(args: argparse.Namespace) -> int:
    """Render one (benchmark, mode) run under a tracer + profiler and
    print the phase, job and worker-occupancy breakdowns."""
    out = _make_output(args)
    config = _config_from_args(args)
    mode = PipelineMode(args.mode)
    global_registry().reset()
    tracer = ChromeTracer()
    profiler = SchedulerProfiler(tracer)
    with tracing(tracer):
        with make_scheduler(default_jobs(args.jobs),
                            profiler=profiler) as scheduler:
            with tracer.span(f"run {args.benchmark}:{mode.value}",
                             category="harness"):
                stream = benchmark_stream(args.benchmark, config)
                GPU(config, mode, scheduler=scheduler).render_stream(stream)

    phase_rows = [
        [row["span"], row["count"], row["total_ms"], row["mean_ms"]]
        for row in phase_breakdown(tracer)
    ]
    out.result(format_table(
        ["span", "count", "total ms", "mean ms"], phase_rows,
        title=f"phase breakdown: {args.benchmark}:{mode.value} @ "
              f"{config.screen_width}x{config.screen_height}, "
              f"{config.frames} frames",
    ))
    jobs = profiler.job_summary()
    out.result(format_table(
        ["tile jobs", "busy ms", "mean ms", "max ms",
         "mean wait ms", "max wait ms"],
        [[jobs["jobs"], jobs["busy_seconds"] * 1e3,
          jobs["mean_seconds"] * 1e3, jobs["max_seconds"] * 1e3,
          jobs["mean_queue_wait_seconds"] * 1e3,
          jobs["max_queue_wait_seconds"] * 1e3]],
        title="tile jobs",
    ))
    worker_rows = [
        [row["worker"], row["jobs"], row["busy_seconds"] * 1e3,
         row["occupancy"]]
        for row in profiler.worker_summary()
    ]
    out.result(format_table(
        ["worker", "jobs", "busy ms", "occupancy"], worker_rows,
        title="worker occupancy",
    ))
    if args.trace:
        tracer.write(args.trace)
        out.info(f"trace ({len(tracer.events)} events) -> {args.trace}")
    if args.metrics:
        _write_metrics(
            [{"record": "registry", **global_registry().as_dict()}],
            args.metrics, out,
        )
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    out = _make_output(args)
    cache = DiskCache(args.dir or default_cache_dir())
    if args.action == "clear":
        removed = cache.clear()
        out.result(f"removed {removed} cached runs ({cache.directory})")
    else:  # info
        out.result(f"cache directory: {cache.directory}")
        out.result(f"cached runs: {cache.size()}")
    return 0


def _command_validate(args: argparse.Namespace) -> int:
    out = _make_output(args)
    config = _config_from_args(args)
    stream = benchmark_stream(args.benchmark, config)
    report = validate_stream(stream, config)
    out.result(report.render())
    return 0 if report.passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EVR (HPCA 2019) reproduction: TBR GPU simulator, "
                    "benchmarks and figure regeneration.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    output_flags = _output_flags_parent()

    subparsers.add_parser("list", help="show the benchmark suite",
                          parents=[output_flags])

    run_parser = subparsers.add_parser("run", help="simulate one benchmark",
                                       parents=[output_flags])
    run_parser.add_argument("benchmark", choices=sorted(BENCHMARKS))
    run_parser.add_argument(
        "--csv", default="",
        help="also dump a per-frame CSV per mode (prefix path)",
    )
    run_parser.add_argument(
        "--modes", nargs="+",
        default=["baseline", "re", "evr"],
        choices=[mode.value for mode in PipelineMode],
        help="pipeline modes to compare (first is the normalization base)",
    )
    _add_config_arguments(run_parser)
    _add_jobs_argument(run_parser)
    _add_resilience_arguments(run_parser)
    _add_obs_arguments(run_parser)

    figure_parser = subparsers.add_parser(
        "figure", help="regenerate a paper table/figure or an ablation",
        parents=[output_flags],
    )
    figure_parser.add_argument("figure", choices=sorted(_FIGURES))
    figure_parser.add_argument(
        "--benchmarks", nargs="*",
        help="restrict to these benchmark aliases",
    )
    _add_config_arguments(figure_parser)
    _add_jobs_argument(figure_parser)
    _add_resilience_arguments(figure_parser, suite=True)
    _add_obs_arguments(figure_parser)

    render_parser = subparsers.add_parser(
        "render", help="render a benchmark's frames to PPM files",
        parents=[output_flags],
    )
    render_parser.add_argument("benchmark", choices=sorted(BENCHMARKS))
    render_parser.add_argument("--mode", default="evr",
                               choices=[mode.value for mode in PipelineMode])
    render_parser.add_argument("--output", default="out_frames")
    _add_config_arguments(render_parser)

    report_parser = subparsers.add_parser(
        "report", help="paper-vs-measured markdown report (full suite)",
        parents=[output_flags],
    )
    report_parser.add_argument("--output", default="",
                               help="write to a file instead of stdout")
    _add_config_arguments(report_parser)
    _add_jobs_argument(report_parser)
    _add_resilience_arguments(report_parser, suite=True)
    _add_obs_arguments(report_parser)

    profile_parser = subparsers.add_parser(
        "profile",
        help="profile one run: phase/job/worker time breakdown",
        parents=[output_flags],
    )
    profile_parser.add_argument("benchmark", choices=sorted(BENCHMARKS))
    profile_parser.add_argument(
        "--mode", default="evr",
        choices=[mode.value for mode in PipelineMode],
    )
    _add_config_arguments(profile_parser)
    _add_jobs_argument(profile_parser)
    _add_obs_arguments(profile_parser)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear the persistent run cache",
        parents=[output_flags],
    )
    cache_parser.add_argument("action", choices=("info", "clear"))
    cache_parser.add_argument(
        "--dir", default="",
        help="cache directory (default: $REPRO_CACHE_DIR or .repro_cache)",
    )

    validate_parser = subparsers.add_parser(
        "validate",
        help="verify all modes render identical images on a benchmark",
        parents=[output_flags],
    )
    validate_parser.add_argument("benchmark", choices=sorted(BENCHMARKS))
    _add_config_arguments(validate_parser)

    return parser


_COMMANDS = {
    "list": _command_list,
    "run": _command_run,
    "figure": _command_figure,
    "render": _command_render,
    "report": _command_report,
    "profile": _command_profile,
    "validate": _command_validate,
    "cache": _command_cache,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
