"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``list`` — show the benchmark suite (Table III).
* ``run`` — simulate one benchmark under one or more pipeline modes and
  print the headline metrics.
* ``figure`` — regenerate one of the paper's figures/tables.
* ``render`` — render a benchmark's frames to PPM images.
* ``report`` — paper-vs-measured markdown report (EXPERIMENTS.md body).
* ``profile`` — run one benchmark under the profiler and print where the
  wall-clock time went (phases, jobs, worker occupancy).
* ``validate`` — cross-mode pixel-equality and invariant checks.
* ``cache`` — inspect or clear the persistent run cache.
* ``spec`` — show, diff or dump the resolved experiment spec.

Every experiment-running command resolves its parameters through one
declarative :class:`repro.spec.RunSpec`, layered from (later wins):
built-in defaults → ``--preset NAME`` → ``--spec FILE`` (TOML/JSON) →
environment (``REPRO_JOBS``, ``REPRO_FAULTS``) → explicit CLI flags →
dotted-path ``--set key=value`` overrides.  ``repro spec show`` prints
the fully resolved spec with the layer that supplied every field; a run
driven by a spec file is bit-identical to the same run driven by the
equivalent flags, and shares its disk-cache entries (keys derive from
the spec's canonical content hash).

Resilience (see :mod:`repro.resilience`): ``--retries N`` /
``--job-timeout S`` arm the resilient scheduler (bounded retries with
deterministic backoff, per-job timeouts and broken-pool recovery under
``--jobs``), and ``--inject-faults SPEC`` (or ``$REPRO_FAULTS``) with
``--fault-seed`` exercises those paths deterministically.  ``figure``
and ``report`` additionally checkpoint every finished (benchmark, mode)
cell to a journal in the cache directory; ``--resume`` replays it so an
interrupted sweep recomputes only unfinished cells, and ``--strict``
turns permanently failed cells into a non-zero exit (the default is
graceful degradation: the sweep completes with failed cells rendered as
``nan``).

Observability (see :mod:`repro.obs`): every subcommand takes ``-v`` /
``--verbose`` and ``-q`` / ``--quiet`` *after* the subcommand name;
``run``, ``figure``, ``report`` and ``profile`` additionally take
``--trace out.json`` (Chrome/Perfetto trace-event JSON) and ``--metrics
out.jsonl`` (or ``.csv``) to export what was measured.  Neither flag
changes any simulated result; metrics exports lead with a ``spec``
record carrying the resolved spec and its hash for provenance.
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from . import __version__
from .engine import DiskCache, default_cache_dir, make_scheduler
from .engine.diskcache import run_cache_key
from .errors import ConfigError, SpecError
from .harness import (
    ablation_draw_order,
    ablation_history,
    ablation_prediction_point,
    ablation_subtile,
    figure6_energy,
    figure7_time,
    figure8_overshading,
    figure9_redundant_tiles,
    figure10_energy_vs_re,
    figure11_time_vs_re,
    format_table,
    table2_parameters,
    table3_suite,
)
from .harness.alternatives import culling_alternatives
from .harness.balance import pipeline_balance_report
from .harness.timeseries import frame_series, write_csv
from .harness.report import render_report
from .harness.runner import RunMetrics, SuiteRunner, metrics_from_result
from .harness.bench import (
    BENCH_PRESETS,
    check_bench_regression,
    format_bench_summary,
    run_bench,
    write_bench_json,
)
from .imageio import write_ppm
from .kernels import DEFAULT_BACKEND, available_backends
from .obs import (
    ChromeTracer,
    Output,
    SchedulerProfiler,
    global_registry,
    setup_logging,
    tracing,
    write_csv_records,
    write_jsonl,
)
from .obs.log import verbosity_from_flags
from .obs.metrics import frame_record, run_record, spec_record
from .obs.profile import phase_breakdown
from .pipeline import GPU, PipelineMode
from .resilience import ResilientScheduler
from .scenes import BENCHMARKS, benchmark_stream
from .spec import (
    PRESETS,
    ResolvedSpec,
    RunSpec,
    flatten_spec,
    preset_names,
    spec_from_args,
)
from .validate import validate_stream

_FIGURES = {
    "table2": lambda runner, subset: table2_parameters(),
    "table3": lambda runner, subset: table3_suite(),
    "fig6": figure6_energy,
    "fig7": figure7_time,
    "fig8": figure8_overshading,
    "fig9": figure9_redundant_tiles,
    "fig10": figure10_energy_vs_re,
    "fig11": figure11_time_vs_re,
    "ablation-point": lambda runner, subset: ablation_prediction_point(
        runner.config, benchmarks=subset or ("tib", "ata"), jobs=runner.jobs
    ),
    "ablation-history": lambda runner, subset: ablation_history(
        runner.config, benchmarks=subset or ("tib", "ata"), jobs=runner.jobs
    ),
    "ablation-order": lambda runner, subset: ablation_draw_order(
        runner.config, jobs=runner.jobs
    ),
    "ablation-subtile": lambda runner, subset: ablation_subtile(
        runner.config, benchmarks=subset or ("tib", "ata"), jobs=runner.jobs
    ),
    "balance": lambda runner, subset: pipeline_balance_report(
        runner.config, benchmarks=subset or ("cde", "tib", "300")
    ),
    "alternatives": lambda runner, subset: culling_alternatives(
        runner.config, benchmarks=subset or ("tib", "ata")
    ),
}


# ---------------------------------------------------------------------------
# Argument groups
#
# Every default is ``None`` (or False for store_true flags): the parser
# records only what the user actually typed, so spec-file and preset
# values are never masked by untouched flags — `spec_from_args` layers
# the explicit values on top.
# ---------------------------------------------------------------------------

def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--spec", default=None, metavar="FILE",
        help="experiment spec file (TOML, or JSON with .json)",
    )
    parser.add_argument(
        "--preset", default=None, choices=preset_names(),
        help="built-in base configuration the spec/flags layer onto",
    )
    parser.add_argument(
        "--set", dest="set_overrides", action="append", default=[],
        metavar="KEY=VALUE",
        help="dotted-path spec override, e.g. "
             "--set features.evr_reorder=false (repeatable; highest "
             "precedence)",
    )


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--frames", type=int, default=None,
                        help="frames to simulate (default 10; paper: 60)")
    parser.add_argument("--width", type=int, default=None,
                        help="screen width in pixels (paper: 1196)")
    parser.add_argument("--height", type=int, default=None,
                        help="screen height in pixels (paper: 768)")


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for scheduler fan-out "
             "(default: $REPRO_JOBS or 1 = serial; "
             "negative = all CPU cores)",
    )
    parser.add_argument(
        "--backend", default=None, choices=available_backends(),
        help="backend for the fragment hot path and the memory-system "
             "trace replay (default: $REPRO_BACKEND or "
             f"{DEFAULT_BACKEND}; backends are bit-identical, "
             "so results and cache entries are shared)",
    )


def _add_resilience_arguments(parser: argparse.ArgumentParser,
                              suite: bool = False) -> None:
    """Fault-tolerance flags (see :mod:`repro.resilience`).

    ``suite`` adds the checkpoint/exit-code flags that only make sense
    for suite sweeps (``figure``, ``report``).
    """
    parser.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help="deterministic fault injection, e.g. 'crash:0.2,hang:0.1' "
             "(kinds: raise, corrupt, hang, crash; default: $REPRO_FAULTS)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None, metavar="N",
        help="seed decorrelating otherwise-identical fault plans",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="max attempts per job (arms the resilient scheduler; "
             "default 4 once armed)",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock timeout under a process pool "
             "(arms the resilient scheduler)",
    )
    if suite:
        parser.add_argument(
            "--resume", action="store_true",
            help="replay completed (benchmark, mode) cells from the "
                 "checkpoint journal instead of recomputing them",
        )
        parser.add_argument(
            "--strict", action="store_true",
            help="exit non-zero if any suite cell failed permanently "
                 "(default: complete with the cell marked failed)",
        )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a Chrome/Perfetto trace-event JSON file "
             "(open in chrome://tracing or ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="export metrics records; .csv writes flattened CSV, "
             "anything else JSON Lines",
    )


def _output_flags_parent() -> argparse.ArgumentParser:
    """Shared ``-v``/``-q`` flags, attached to every subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_mutually_exclusive_group()
    group.add_argument("-v", "--verbose", action="store_true",
                       help="extra diagnostics; repro logger at DEBUG")
    group.add_argument("-q", "--quiet", action="store_true",
                       help="primary output only (tables, reports)")
    return parent


def _make_output(args: argparse.Namespace) -> Output:
    """Configure logging from the parsed flags and return the writer
    (commands that don't resolve a spec: ``list``, ``cache``)."""
    verbosity = verbosity_from_flags(
        getattr(args, "verbose", False), getattr(args, "quiet", False)
    )
    setup_logging(verbosity)
    return Output(verbosity)


def _resolve(args: argparse.Namespace
             ) -> Tuple[ResolvedSpec, RunSpec, Output]:
    """Resolve the command's spec layers and configure output from it."""
    resolved = spec_from_args(args)
    spec = resolved.spec
    verbosity = spec.obs.verbosity()
    setup_logging(verbosity)
    return resolved, spec, Output(verbosity)


def _report_failures(runner: SuiteRunner, out: Output) -> int:
    """Print any permanently failed cells; the exit code honours
    ``--strict`` (graceful degradation otherwise)."""
    if not runner.failures:
        return 0
    for (benchmark, mode), failure in sorted(
        runner.failures.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
    ):
        out.result(f"FAILED {benchmark}:{mode.value} "
                   f"after {failure.attempts} attempt(s): {failure.message}")
    strict = getattr(runner, "strict", False)
    out.result(f"{len(runner.failures)} suite cell(s) failed permanently"
               + ("" if strict else " (exit 0; use --strict to fail)"))
    return 1 if strict else 0


@contextmanager
def _command_tracer(trace_path: str,
                    out: Output) -> Iterator[Optional[ChromeTracer]]:
    """Install a :class:`ChromeTracer` for the command when ``--trace``
    (or ``obs.trace``) was given (yields None otherwise); writes the
    file on clean exit."""
    if not trace_path:
        yield None
        return
    tracer = ChromeTracer()
    with tracing(tracer):
        yield tracer
    tracer.write(trace_path)
    out.info(f"trace ({len(tracer.events)} events) -> {trace_path}")


def _write_metrics(records: List[Dict[str, Any]], path: str,
                   out: Output) -> None:
    if path.endswith(".csv"):
        write_csv_records(records, path)
    else:
        write_jsonl(records, path)
    out.info(f"metrics ({len(records)} records) -> {path}")


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------

def _command_list(args: argparse.Namespace) -> int:
    out = _make_output(args)
    out.result(table3_suite().render())
    return 0


def _command_run(args: argparse.Namespace) -> int:
    resolved, spec, out = _resolve(args)
    benchmarks = ([args.benchmark] if args.benchmark
                  else list(spec.workload.benchmarks))
    if not benchmarks:
        raise SpecError(
            "repro run needs a benchmark: pass one on the command line "
            "or set workload.benchmarks in the spec"
        )
    modes = spec.workload.pipeline_modes()
    config = spec.gpu
    records: List[Dict[str, Any]] = []
    global_registry().reset()
    policy = spec.resilience.retry_policy()
    plan = spec.resilience.fault_plan()
    # Spec-file-driven runs are declarative and therefore cacheable:
    # distilled metrics are keyed by the spec's content hash, so a second
    # identical invocation skips simulation entirely.  Exports need the
    # full per-frame results, so they always simulate.
    exporting = bool(args.csv or spec.obs.trace or spec.obs.metrics)
    disk = (DiskCache(default_cache_dir())
            if args.spec and not exporting else None)
    cache_hits = 0
    cache_misses = 0
    tables: List[str] = []
    with _command_tracer(spec.obs.trace, out) as tracer:
        profiler = SchedulerProfiler(tracer) if tracer is not None else None
        scheduler = make_scheduler(spec.scheduler.jobs, profiler=profiler)
        if policy is not None:
            # Tile-level resilience: per-frame tile jobs are retried
            # (and, under a pool, timed out) individually.
            scheduler = ResilientScheduler(scheduler, policy=policy,
                                           fault_plan=plan)
        with scheduler:
            for benchmark in benchmarks:
                rows = []
                baseline_cycles: Optional[float] = None
                stream = None
                for mode in modes:
                    metrics: Optional[RunMetrics] = None
                    key = ""
                    if disk is not None:
                        key = run_cache_key(spec, benchmark, mode.value)
                        value = disk.get(key)
                        if isinstance(value, RunMetrics):
                            metrics = value
                            cache_hits += 1
                    if metrics is None:
                        if disk is not None:
                            cache_misses += 1
                        if stream is None:
                            stream = benchmark_stream(benchmark, config)
                        out.detail(f"simulating {benchmark}:{mode.value} "
                                   f"({config.frames} frames, {scheduler!r})")
                        result = GPU.from_spec(
                            spec, mode, scheduler=scheduler
                        ).render_stream(stream)
                        if args.csv:
                            path = (f"{args.csv.rstrip('.csv')}"
                                    f"_{mode.value}.csv")
                            write_csv(frame_series(result), path)
                            out.info(f"per-frame series -> {path}")
                        if spec.obs.metrics:
                            records.extend(
                                frame_record(benchmark, mode.value, frame,
                                             result.cost_model,
                                             result.energy_model,
                                             result.features)
                                for frame in result.frames
                            )
                            records.append(
                                run_record(benchmark, mode.value, result)
                            )
                        metrics = metrics_from_result(benchmark, mode,
                                                      result)
                        if disk is not None:
                            disk.put(key, metrics)
                    if baseline_cycles is None:
                        baseline_cycles = metrics.total_cycles
                    rows.append([
                        mode.value,
                        round(metrics.geometry_cycles),
                        round(metrics.raster_cycles),
                        metrics.total_cycles / baseline_cycles,
                        metrics.energy_joules * 1e3,
                        metrics.redundant_tile_rate,
                        metrics.shaded_fragments_per_pixel,
                    ])
                tables.append(format_table(
                    ["mode", "geom cyc", "raster cyc", "time vs first",
                     "energy (mJ)", "tiles skipped", "frags/px"],
                    rows,
                    title=f"{benchmark} @ {config.screen_width}x"
                          f"{config.screen_height}, {config.frames} frames",
                ))
    if spec.obs.metrics:
        records.insert(0, spec_record(spec))
        records.append({"record": "registry",
                        **global_registry().as_dict()})
        _write_metrics(records, spec.obs.metrics, out)
    if disk is not None:
        out.info(f"run cache: {cache_hits} hits, "
                 f"{cache_misses} misses ({disk.directory})")
    # Tables last, so the primary payload is the tail of the output
    # whatever observability chatter preceded it.
    for table in tables:
        out.result(table)
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    resolved, spec, out = _resolve(args)
    global_registry().reset()
    with _command_tracer(spec.obs.trace, out) as tracer:
        profiler = SchedulerProfiler(tracer) if tracer is not None else None
        with SuiteRunner(spec=spec,
                         cache_dir=default_cache_dir(),
                         profiler=profiler,
                         journal_dir=default_cache_dir()) as runner:
            subset = list(spec.workload.benchmarks) or None
            result = _FIGURES[args.figure](runner, subset)
            out.result(result.render())
            out.info(runner.cache_summary())
            if spec.obs.metrics:
                records = [spec_record(spec)]
                records.extend(runner.metrics_records())
                records.append({"record": "registry",
                                **global_registry().as_dict()})
                _write_metrics(records, spec.obs.metrics, out)
            status = _report_failures(runner, out)
    return status


def _command_render(args: argparse.Namespace) -> int:
    resolved, spec, out = _resolve(args)
    config = spec.gpu
    stream = benchmark_stream(args.benchmark, config)
    mode = PipelineMode(args.mode)
    os.makedirs(args.output, exist_ok=True)
    gpu = GPU.from_spec(spec, mode)
    for frame in stream:
        result = gpu.render_frame(frame)
        path = os.path.join(
            args.output, f"{args.benchmark}_{frame.index:03d}.ppm"
        )
        write_ppm(path, result.image)
        out.info(f"frame {frame.index}: {result.stats.fragments_shaded} "
                 f"fragments, {result.stats.tiles_skipped} tiles skipped "
                 f"-> {path}")
    return 0


def _command_report(args: argparse.Namespace) -> int:
    resolved, spec, out = _resolve(args)
    global_registry().reset()
    with _command_tracer(spec.obs.trace, out) as tracer:
        profiler = SchedulerProfiler(tracer) if tracer is not None else None
        with SuiteRunner(spec=spec,
                         cache_dir=default_cache_dir(),
                         profiler=profiler,
                         journal_dir=default_cache_dir()) as runner:
            report = render_report(runner)
            summary = runner.cache_summary()
            records = (runner.metrics_records() if spec.obs.metrics else [])
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        out.info(f"report written to {args.output}")
    else:
        out.result(report)
    out.info(summary)
    if spec.obs.metrics:
        records.insert(0, spec_record(spec))
        records.append({"record": "registry", **global_registry().as_dict()})
        _write_metrics(records, spec.obs.metrics, out)
    return _report_failures(runner, out)


def _command_profile(args: argparse.Namespace) -> int:
    """Render one (benchmark, mode) run under a tracer + profiler and
    print the phase, job and worker-occupancy breakdowns."""
    resolved, spec, out = _resolve(args)
    config = spec.gpu
    mode = PipelineMode(args.mode)
    global_registry().reset()
    tracer = ChromeTracer()
    profiler = SchedulerProfiler(tracer)
    with tracing(tracer):
        with make_scheduler(spec.scheduler.jobs,
                            profiler=profiler) as scheduler:
            with tracer.span(f"run {args.benchmark}:{mode.value}",
                             category="harness"):
                stream = benchmark_stream(args.benchmark, config)
                GPU.from_spec(spec, mode,
                              scheduler=scheduler).render_stream(stream)

    phase_rows = [
        [row["span"], row["count"], row["total_ms"], row["mean_ms"]]
        for row in phase_breakdown(tracer)
    ]
    out.result(format_table(
        ["span", "count", "total ms", "mean ms"], phase_rows,
        title=f"phase breakdown: {args.benchmark}:{mode.value} @ "
              f"{config.screen_width}x{config.screen_height}, "
              f"{config.frames} frames",
    ))
    jobs = profiler.job_summary()
    out.result(format_table(
        ["tile jobs", "busy ms", "mean ms", "max ms",
         "mean wait ms", "max wait ms"],
        [[jobs["jobs"], jobs["busy_seconds"] * 1e3,
          jobs["mean_seconds"] * 1e3, jobs["max_seconds"] * 1e3,
          jobs["mean_queue_wait_seconds"] * 1e3,
          jobs["max_queue_wait_seconds"] * 1e3]],
        title="tile jobs",
    ))
    worker_rows = [
        [row["worker"], row["jobs"], row["busy_seconds"] * 1e3,
         row["occupancy"]]
        for row in profiler.worker_summary()
    ]
    out.result(format_table(
        ["worker", "jobs", "busy ms", "occupancy"], worker_rows,
        title="worker occupancy",
    ))
    if spec.obs.trace:
        tracer.write(spec.obs.trace)
        out.info(f"trace ({len(tracer.events)} events) -> {spec.obs.trace}")
    if spec.obs.metrics:
        _write_metrics(
            [spec_record(spec),
             {"record": "registry", **global_registry().as_dict()}],
            spec.obs.metrics, out,
        )
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    out = _make_output(args)
    cache = DiskCache(args.dir or default_cache_dir())
    if args.action == "clear":
        removed = cache.clear()
        out.result(f"removed {removed} cached runs ({cache.directory})")
    else:  # info
        out.result(f"cache directory: {cache.directory}")
        out.result(f"cached runs: {cache.size()}")
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    out = _make_output(args)
    record = run_bench(args.preset, backends=args.backends,
                       repeat=args.repeat)
    path = args.output or f"BENCH_{args.preset}.json"
    write_bench_json(record, path)
    out.result(format_bench_summary(record))
    out.result(f"wrote {path}")
    if args.check:
        failures = check_bench_regression(record, args.check,
                                          args.tolerance)
        for failure in failures:
            print(f"repro bench: REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        out.result(f"no regression against {args.check} "
                   f"(tolerance {args.tolerance:.0%})")
    return 0


def _command_validate(args: argparse.Namespace) -> int:
    resolved, spec, out = _resolve(args)
    config = spec.gpu
    stream = benchmark_stream(args.benchmark, config)
    report = validate_stream(stream, config)
    out.result(report.render())
    return 0 if report.passed else 1


def _spec_ref(ref: str) -> RunSpec:
    """A spec from a preset name or a spec-file path (``spec diff``)."""
    if ref in PRESETS:
        return RunSpec.preset(ref)
    if os.path.exists(ref):
        return RunSpec.from_file(ref)
    raise SpecError(
        f"unknown spec reference {ref!r}: not a preset "
        f"({', '.join(preset_names())}) and no such file"
    )


def _format_value(value: Any) -> str:
    if isinstance(value, list):
        return "[" + ", ".join(_format_value(item) for item in value) + "]"
    return repr(value) if isinstance(value, str) else str(value)


def _command_spec(args: argparse.Namespace) -> int:
    resolved, spec, out = _resolve(args)
    if args.action == "show":
        out.result(f"spec_hash: {spec.spec_hash()}")
        out.result(f"layers: {', '.join(resolved.layers)}")
        rows = [
            [path, _format_value(value), resolved.source_of(path)]
            for path, value in flatten_spec(spec)
        ]
        out.result(format_table(["field", "value", "layer"], rows,
                                title="resolved spec"))
        return 0
    if args.action == "dump":
        text = spec.to_toml()
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text)
            out.info(f"spec ({spec.spec_hash()[:12]}) -> {args.output}")
        else:
            out.result(text.rstrip("\n"))
        return 0
    # diff
    if len(args.refs) != 2:
        raise SpecError(
            "repro spec diff needs exactly two references "
            "(presets or spec files), e.g. `repro spec diff paper scaled`"
        )
    left = _spec_ref(args.refs[0])
    right = _spec_ref(args.refs[1])
    differences = left.diff(right)
    if not differences:
        out.result(f"specs are identical (hash {left.spec_hash()[:16]})")
        return 0
    rows = [
        [path, _format_value(a), _format_value(b)]
        for path, a, b in differences
    ]
    out.result(format_table(
        ["field", args.refs[0], args.refs[1]], rows,
        title=f"spec diff ({len(differences)} fields)",
    ))
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EVR (HPCA 2019) reproduction: TBR GPU simulator, "
                    "benchmarks and figure regeneration.",
    )
    parser.add_argument(
        "--version", action="version",
        version=(f"repro {__version__} "
                 f"(kernel backends: {', '.join(available_backends())}; "
                 f"default: {DEFAULT_BACKEND})"),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    output_flags = _output_flags_parent()

    subparsers.add_parser("list", help="show the benchmark suite",
                          parents=[output_flags])

    run_parser = subparsers.add_parser("run", help="simulate one benchmark",
                                       parents=[output_flags])
    run_parser.add_argument("benchmark", nargs="?", default=None,
                            choices=sorted(BENCHMARKS),
                            help="benchmark alias (default: the spec's "
                                 "workload.benchmarks)")
    run_parser.add_argument(
        "--csv", default="",
        help="also dump a per-frame CSV per mode (prefix path)",
    )
    run_parser.add_argument(
        "--modes", nargs="+", default=None,
        choices=[mode.value for mode in PipelineMode],
        help="pipeline modes to compare (first is the normalization base; "
             "default baseline re evr)",
    )
    _add_spec_arguments(run_parser)
    _add_config_arguments(run_parser)
    _add_jobs_argument(run_parser)
    _add_resilience_arguments(run_parser)
    _add_obs_arguments(run_parser)

    figure_parser = subparsers.add_parser(
        "figure", help="regenerate a paper table/figure or an ablation",
        parents=[output_flags],
    )
    figure_parser.add_argument("figure", choices=sorted(_FIGURES))
    figure_parser.add_argument(
        "--benchmarks", nargs="*",
        help="restrict to these benchmark aliases",
    )
    _add_spec_arguments(figure_parser)
    _add_config_arguments(figure_parser)
    _add_jobs_argument(figure_parser)
    _add_resilience_arguments(figure_parser, suite=True)
    _add_obs_arguments(figure_parser)

    render_parser = subparsers.add_parser(
        "render", help="render a benchmark's frames to PPM files",
        parents=[output_flags],
    )
    render_parser.add_argument("benchmark", choices=sorted(BENCHMARKS))
    render_parser.add_argument("--mode", default="evr",
                               choices=[mode.value for mode in PipelineMode])
    render_parser.add_argument("--output", default="out_frames")
    _add_spec_arguments(render_parser)
    _add_config_arguments(render_parser)

    report_parser = subparsers.add_parser(
        "report", help="paper-vs-measured markdown report (full suite)",
        parents=[output_flags],
    )
    report_parser.add_argument("--output", default="",
                               help="write to a file instead of stdout")
    _add_spec_arguments(report_parser)
    _add_config_arguments(report_parser)
    _add_jobs_argument(report_parser)
    _add_resilience_arguments(report_parser, suite=True)
    _add_obs_arguments(report_parser)

    profile_parser = subparsers.add_parser(
        "profile",
        help="profile one run: phase/job/worker time breakdown",
        parents=[output_flags],
    )
    profile_parser.add_argument("benchmark", choices=sorted(BENCHMARKS))
    profile_parser.add_argument(
        "--mode", default="evr",
        choices=[mode.value for mode in PipelineMode],
    )
    _add_spec_arguments(profile_parser)
    _add_config_arguments(profile_parser)
    _add_jobs_argument(profile_parser)
    _add_obs_arguments(profile_parser)

    bench_parser = subparsers.add_parser(
        "bench",
        help="measure backend throughput; emit BENCH_<preset>.json",
        parents=[output_flags],
    )
    bench_parser.add_argument(
        "--preset", default="default", choices=sorted(BENCH_PRESETS),
        help="bench workload (resolution, frames, geometry load)",
    )
    bench_parser.add_argument(
        "--backends", nargs="+", default=None,
        choices=available_backends(), metavar="BACKEND",
        help="backends to measure (default: all available)",
    )
    bench_parser.add_argument(
        "--repeat", type=int, default=3, metavar="N",
        help="kernel-sweep repetitions; best-of-N is reported",
    )
    bench_parser.add_argument(
        "--output", default="", metavar="FILE",
        help="result JSON path (default BENCH_<preset>.json)",
    )
    bench_parser.add_argument(
        "--check", default="", metavar="BASELINE",
        help="committed baseline JSON to gate against (exit 1 when the "
             "numpy/python speedup ratio regresses beyond --tolerance)",
    )
    bench_parser.add_argument(
        "--tolerance", type=float, default=0.2, metavar="FRAC",
        help="allowed fractional speedup regression for --check "
             "(default 0.2)",
    )

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear the persistent run cache",
        parents=[output_flags],
    )
    cache_parser.add_argument("action", choices=("info", "clear"))
    cache_parser.add_argument(
        "--dir", default="",
        help="cache directory (default: $REPRO_CACHE_DIR or .repro_cache)",
    )

    validate_parser = subparsers.add_parser(
        "validate",
        help="verify all modes render identical images on a benchmark",
        parents=[output_flags],
    )
    validate_parser.add_argument("benchmark", choices=sorted(BENCHMARKS))
    _add_spec_arguments(validate_parser)
    _add_config_arguments(validate_parser)

    spec_parser = subparsers.add_parser(
        "spec",
        help="show, diff or dump the resolved experiment spec",
        parents=[output_flags],
    )
    spec_parser.add_argument("action", choices=("show", "diff", "dump"))
    spec_parser.add_argument(
        "refs", nargs="*",
        help="for diff: two preset names or spec-file paths",
    )
    spec_parser.add_argument(
        "--output", default="",
        help="for dump: write the TOML here instead of stdout",
    )
    _add_spec_arguments(spec_parser)
    _add_config_arguments(spec_parser)
    _add_jobs_argument(spec_parser)
    _add_resilience_arguments(spec_parser, suite=True)
    _add_obs_arguments(spec_parser)

    return parser


_COMMANDS = {
    "list": _command_list,
    "run": _command_run,
    "figure": _command_figure,
    "render": _command_render,
    "report": _command_report,
    "profile": _command_profile,
    "validate": _command_validate,
    "bench": _command_bench,
    "cache": _command_cache,
    "spec": _command_spec,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ConfigError as error:
        # SpecError included: a bad spec/flag combination is a usage
        # error, reported cleanly instead of as a traceback.
        print(f"repro: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
