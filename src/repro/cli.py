"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``list`` — show the benchmark suite (Table III).
* ``run`` — simulate one benchmark under one or more pipeline modes and
  print the headline metrics.
* ``figure`` — regenerate one of the paper's figures/tables.
* ``render`` — render a benchmark's frames to PPM images.
* ``report`` — paper-vs-measured markdown report (EXPERIMENTS.md body).
* ``validate`` — cross-mode pixel-equality and invariant checks.
* ``cache`` — inspect or clear the persistent run cache.

``run``, ``figure`` and ``report`` accept ``--jobs N`` (or the
``REPRO_JOBS`` environment variable) to fan independent simulations out
over worker processes; results are bit-identical to serial runs.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .config import GPUConfig, default_jobs
from .engine import DiskCache, default_cache_dir, make_scheduler
from .harness import (
    ablation_draw_order,
    ablation_history,
    ablation_prediction_point,
    ablation_subtile,
    figure6_energy,
    figure7_time,
    figure8_overshading,
    figure9_redundant_tiles,
    figure10_energy_vs_re,
    figure11_time_vs_re,
    format_table,
    table2_parameters,
    table3_suite,
)
from .harness.alternatives import culling_alternatives
from .harness.balance import pipeline_balance_report
from .harness.timeseries import frame_series, write_csv
from .harness.report import render_report
from .harness.runner import SuiteRunner
from .imageio import write_ppm
from .pipeline import GPU, PipelineMode
from .scenes import BENCHMARKS, benchmark_stream
from .validate import validate_stream

_FIGURES = {
    "table2": lambda runner, subset: table2_parameters(),
    "table3": lambda runner, subset: table3_suite(),
    "fig6": figure6_energy,
    "fig7": figure7_time,
    "fig8": figure8_overshading,
    "fig9": figure9_redundant_tiles,
    "fig10": figure10_energy_vs_re,
    "fig11": figure11_time_vs_re,
    "ablation-point": lambda runner, subset: ablation_prediction_point(
        runner.config, benchmarks=subset or ("tib", "ata"), jobs=runner.jobs
    ),
    "ablation-history": lambda runner, subset: ablation_history(
        runner.config, benchmarks=subset or ("tib", "ata"), jobs=runner.jobs
    ),
    "ablation-order": lambda runner, subset: ablation_draw_order(
        runner.config, jobs=runner.jobs
    ),
    "ablation-subtile": lambda runner, subset: ablation_subtile(
        runner.config, benchmarks=subset or ("tib", "ata"), jobs=runner.jobs
    ),
    "balance": lambda runner, subset: pipeline_balance_report(
        runner.config, benchmarks=subset or ("cde", "tib", "300")
    ),
    "alternatives": lambda runner, subset: culling_alternatives(
        runner.config, benchmarks=subset or ("tib", "ata")
    ),
}


def _config_from_args(args: argparse.Namespace) -> GPUConfig:
    return GPUConfig(
        screen_width=args.width,
        screen_height=args.height,
        frames=args.frames,
    )


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--frames", type=int, default=10,
                        help="frames to simulate (default 10; paper: 60)")
    parser.add_argument("--width", type=int, default=192,
                        help="screen width in pixels (paper: 1196)")
    parser.add_argument("--height", type=int, default=160,
                        help="screen height in pixels (paper: 768)")


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for scheduler fan-out "
             "(default: $REPRO_JOBS or 1 = serial; "
             "negative = all CPU cores)",
    )


def _command_list(args: argparse.Namespace) -> int:
    print(table3_suite().render())
    return 0


def _command_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    stream = benchmark_stream(args.benchmark, config)
    modes = [PipelineMode(mode) for mode in args.modes]
    rows = []
    baseline_cycles: Optional[float] = None
    scheduler = make_scheduler(default_jobs(args.jobs))
    try:
        for mode in modes:
            result = GPU(config, mode,
                         scheduler=scheduler).render_stream(stream)
            if args.csv:
                path = f"{args.csv.rstrip('.csv')}_{mode.value}.csv"
                write_csv(frame_series(result), path)
                print(f"per-frame series -> {path}")
            cycles = result.total_cycles()
            if baseline_cycles is None:
                baseline_cycles = cycles.total
            rows.append([
                mode.value,
                round(cycles.geometry),
                round(cycles.raster),
                cycles.total / baseline_cycles,
                result.total_energy().total * 1e3,
                result.redundant_tile_rate(),
                result.shaded_fragments_per_pixel(),
            ])
    finally:
        scheduler.close()
    print(format_table(
        ["mode", "geom cyc", "raster cyc", "time vs first",
         "energy (mJ)", "tiles skipped", "frags/px"],
        rows,
        title=f"{args.benchmark} @ {config.screen_width}x"
              f"{config.screen_height}, {config.frames} frames",
    ))
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    with SuiteRunner(config, jobs=default_jobs(args.jobs),
                     cache_dir=default_cache_dir()) as runner:
        subset = args.benchmarks or None
        result = _FIGURES[args.figure](runner, subset)
        print(result.render())
        print(runner.cache_summary())
    return 0


def _command_render(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    stream = benchmark_stream(args.benchmark, config)
    mode = PipelineMode(args.mode)
    os.makedirs(args.output, exist_ok=True)
    gpu = GPU(config, mode)
    for frame in stream:
        result = gpu.render_frame(frame)
        path = os.path.join(
            args.output, f"{args.benchmark}_{frame.index:03d}.ppm"
        )
        write_ppm(path, result.image)
        print(f"frame {frame.index}: {result.stats.fragments_shaded} "
              f"fragments, {result.stats.tiles_skipped} tiles skipped "
              f"-> {path}")
    return 0


def _command_report(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    with SuiteRunner(config, jobs=default_jobs(args.jobs),
                     cache_dir=default_cache_dir()) as runner:
        report = render_report(runner)
        summary = runner.cache_summary()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"report written to {args.output}")
    else:
        print(report)
    print(summary)
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    cache = DiskCache(args.dir or default_cache_dir())
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached runs ({cache.directory})")
    else:  # info
        print(f"cache directory: {cache.directory}")
        print(f"cached runs: {cache.size()}")
    return 0


def _command_validate(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    stream = benchmark_stream(args.benchmark, config)
    report = validate_stream(stream, config)
    print(report.render())
    return 0 if report.passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EVR (HPCA 2019) reproduction: TBR GPU simulator, "
                    "benchmarks and figure regeneration.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="show the benchmark suite")

    run_parser = subparsers.add_parser("run", help="simulate one benchmark")
    run_parser.add_argument("benchmark", choices=sorted(BENCHMARKS))
    run_parser.add_argument(
        "--csv", default="",
        help="also dump a per-frame CSV per mode (prefix path)",
    )
    run_parser.add_argument(
        "--modes", nargs="+",
        default=["baseline", "re", "evr"],
        choices=[mode.value for mode in PipelineMode],
        help="pipeline modes to compare (first is the normalization base)",
    )
    _add_config_arguments(run_parser)
    _add_jobs_argument(run_parser)

    figure_parser = subparsers.add_parser(
        "figure", help="regenerate a paper table/figure or an ablation"
    )
    figure_parser.add_argument("figure", choices=sorted(_FIGURES))
    figure_parser.add_argument(
        "--benchmarks", nargs="*",
        help="restrict to these benchmark aliases",
    )
    _add_config_arguments(figure_parser)
    _add_jobs_argument(figure_parser)

    render_parser = subparsers.add_parser(
        "render", help="render a benchmark's frames to PPM files"
    )
    render_parser.add_argument("benchmark", choices=sorted(BENCHMARKS))
    render_parser.add_argument("--mode", default="evr",
                               choices=[mode.value for mode in PipelineMode])
    render_parser.add_argument("--output", default="out_frames")
    _add_config_arguments(render_parser)

    report_parser = subparsers.add_parser(
        "report", help="paper-vs-measured markdown report (full suite)"
    )
    report_parser.add_argument("--output", default="",
                               help="write to a file instead of stdout")
    _add_config_arguments(report_parser)
    _add_jobs_argument(report_parser)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear the persistent run cache"
    )
    cache_parser.add_argument("action", choices=("info", "clear"))
    cache_parser.add_argument(
        "--dir", default="",
        help="cache directory (default: $REPRO_CACHE_DIR or .repro_cache)",
    )

    validate_parser = subparsers.add_parser(
        "validate",
        help="verify all modes render identical images on a benchmark",
    )
    validate_parser.add_argument("benchmark", choices=sorted(BENCHMARKS))
    _add_config_arguments(validate_parser)

    return parser


_COMMANDS = {
    "list": _command_list,
    "run": _command_run,
    "figure": _command_figure,
    "render": _command_render,
    "report": _command_report,
    "validate": _command_validate,
    "cache": _command_cache,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
