"""Stateless per-tile raster work: the execution engine's unit of labor.

A :class:`TileJob` carries everything needed to render one tile of one
frame — the tile's drained display list, the configuration and feature
flags — and nothing else: no GPU, no memory system, no shared buffers.
Executing it (:func:`execute_tile_job`) is a pure function of the job, so
jobs can run in any order, in any process, and still produce bit-identical
results.

Tile-order-dependent side effects are *recorded*, not performed: memory
traffic is appended to a :class:`MemoryTrace` that the engine replays into
the real :class:`~repro.memsys.MemorySystem` in tile order, and the
end-of-tile FVP state (Layer/Z buffers) travels back in the
:class:`TileResult` for the parent-side predictor.  This is what makes the
parallel and serial schedulers equal by construction: the compute
parallelizes, the stateful reduction stays deterministic.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..commands.state import BlendMode
from ..config import GPUConfig
from ..hw.buffers import ColorBuffer, LayerBuffer, ZBuffer
from ..hw.parameter_buffer import POINTER_BYTES, DisplayListEntry
from ..pipeline.features import PipelineFeatures
from ..pipeline.rasterizer import rasterize_in_tile
from ..timing.stats import FrameStats

_ALPHA_OPAQUE = 1.0 - 1e-9

# Memory-trace opcodes (tuples pickle cheaply and replay trivially).
_OP_PB_READ = "pb_read"
_OP_TEXTURE = "texture"
_OP_FLUSH = "flush"


class MemoryTrace:
    """Records the tile-facing :class:`~repro.memsys.MemorySystem` calls.

    Duck-typed stand-in for the memory system inside a tile job: cache
    and DRAM state are order-dependent across tiles, so jobs log their
    accesses and the engine replays them in tile order.
    """

    def __init__(self) -> None:
        self.ops: List[Tuple] = []

    def parameter_buffer_read(self, offset: int, size: int) -> None:
        self.ops.append((_OP_PB_READ, offset, size))

    def texture_batch(self, texture_id: int, texture_size: int,
                      u: np.ndarray, v: np.ndarray,
                      samples_per_fragment: int = 1) -> None:
        self.ops.append(
            (_OP_TEXTURE, texture_id, texture_size, u, v, samples_per_fragment)
        )

    def framebuffer_flush(self, num_bytes: int) -> None:
        self.ops.append((_OP_FLUSH, num_bytes))


def replay_memory_trace(ops: Sequence[Tuple], memory) -> None:
    """Replay a job's recorded accesses into the real memory system.

    Called by the engine in tile order, preserving the access sequence the
    historical inline loop produced — cache hit/miss behaviour and DRAM
    cycle totals are therefore identical whichever scheduler ran the job.
    """
    for op in ops:
        kind = op[0]
        if kind == _OP_PB_READ:
            memory.parameter_buffer_read(op[1], op[2])
        elif kind == _OP_TEXTURE:
            memory.texture_batch(op[1], op[2], op[3], op[4], op[5])
        elif kind == _OP_FLUSH:
            memory.framebuffer_flush(op[1])
        else:  # pragma: no cover - trace is produced in-house
            raise ValueError(f"unknown memory-trace op {kind!r}")


@dataclass
class TileContext:
    """The per-tile working buffers a job renders into.

    One context per worker is enough: jobs clear the buffers on entry, so
    contexts are reusable across tiles and frames (exactly how the
    hardware's on-chip tile memory behaves).
    """

    z_buffer: ZBuffer
    color_buffer: ColorBuffer
    layer_buffer: LayerBuffer

    @classmethod
    def for_config(cls, config: GPUConfig) -> "TileContext":
        return cls(
            z_buffer=ZBuffer(config.tile_width, config.tile_height,
                             config.clear_depth),
            color_buffer=ColorBuffer(config.tile_width, config.tile_height,
                                     config.clear_color),
            layer_buffer=LayerBuffer(config.tile_width, config.tile_height),
        )


@dataclass
class TileResult:
    """Everything a tile job produced, ready for deterministic reduction.

    Attributes:
        tile: linear tile index.
        color: the tile's rendered colors (full tile-sized buffer; edge
            tiles are cropped by the consumer).
        stats: tile-local counter deltas (merged into the frame's stats).
        memory_ops: recorded memory accesses, replayed in tile order.
        tainted: True when a predicted-occluded primitive survived the
            depth test somewhere in the tile without being exactly
            overwritten afterwards (triggers the signature poison).
        layer_buffer / z_buffer: end-of-tile FVP inputs (present only
            when the EVR structures are enabled).
    """

    tile: int
    color: np.ndarray
    stats: FrameStats
    memory_ops: List[Tuple] = field(default_factory=list)
    tainted: bool = False
    layer_buffer: Optional[LayerBuffer] = None
    z_buffer: Optional[ZBuffer] = None


@dataclass
class TileJob:
    """A stateless, picklable description of one tile's rendering.

    Attributes:
        tile: linear tile index.
        tile_x / tile_y: tile grid coordinates.
        config: the GPU configuration (immutable, shared).
        features: the pipeline feature flags (immutable, shared).
        entries: the tile's display list, already drained into render
            order (first list then second — Algorithm 1's order).
        attribute_bytes: Parameter Buffer bytes per primitive record
            (models the pointer-dereference traffic).
    """

    tile: int
    tile_x: int
    tile_y: int
    config: GPUConfig
    features: PipelineFeatures
    entries: List[DisplayListEntry]
    attribute_bytes: int

    # -- geometry helpers ---------------------------------------------------

    def _valid_mask(self) -> np.ndarray:
        """True for tile pixels that are actually on screen (edge tiles
        of non-divisible resolutions are partial)."""
        config = self.config
        x0 = self.tile_x * config.tile_width
        y0 = self.tile_y * config.tile_height
        mask = np.ones((config.tile_height, config.tile_width), dtype=bool)
        overflow_x = x0 + config.tile_width - config.screen_width
        overflow_y = y0 + config.tile_height - config.screen_height
        if overflow_x > 0:
            mask[:, config.tile_width - overflow_x:] = False
        if overflow_y > 0:
            mask[config.tile_height - overflow_y:, :] = False
        return mask

    # -- execution ----------------------------------------------------------

    def run(self, context: Optional[TileContext] = None) -> TileResult:
        """Render the tile and return its result.

        ``context`` supplies reusable working buffers; omitted, a fresh
        one is created (convenient in tests).
        """
        config = self.config
        features = self.features
        if context is None:
            context = TileContext.for_config(config)
        memory = MemoryTrace()
        stats = FrameStats()
        stats.tiles_rendered += 1

        context.z_buffer.clear()
        context.color_buffer.clear()
        if features.uses_layers:
            context.layer_buffer.clear()

        x0 = self.tile_x * config.tile_width
        y0 = self.tile_y * config.tile_height
        valid = self._valid_mask()

        if features.oracle_z:
            self._oracle_depth_prepass(context, x0, y0, valid)
        elif features.z_prepass:
            self._charged_depth_prepass(context, x0, y0, valid, stats)

        # Per-pixel count of shaded contributions not yet made useless by
        # an opaque overwrite; feeds the overshading metric of Figure 8.
        pending = np.zeros((config.tile_height, config.tile_width),
                           dtype=np.int32)
        # Per-pixel misprediction taint: set when a *predicted-occluded*
        # primitive survives the depth test at the pixel, cleared only
        # by an exact (opaque) overwrite.  Any taint at end of tile poisons the
        # signature (see DESIGN.md, "Correctness repair").
        taint = np.zeros((config.tile_height, config.tile_width), dtype=bool)

        for entry in self.entries:
            contributed = self._render_primitive(
                context, memory, entry, x0, y0, valid, pending, taint, stats
            )
            if features.evr_hardware:
                # Validate the FVP prediction for this (primitive, tile)
                # pair: the confusion-matrix counters behind the
                # poison-rate breakdown (repro.obs.metrics).
                if entry.predicted_occluded:
                    if contributed:
                        stats.mispredicted_visible += 1
                    else:
                        stats.predicted_occluded_correct += 1
                elif contributed:
                    stats.predicted_visible_correct += 1
                else:
                    stats.predicted_visible_hidden += 1

        flush_bytes = context.color_buffer.byte_size
        memory.framebuffer_flush(flush_bytes)
        stats.color_flush_bytes += flush_bytes

        # The context is reused by the next job, so FVP inputs must be
        # copied out (16x16 arrays — cheap) rather than aliased.
        layer_buffer = z_buffer = None
        if features.uses_layers:
            stats.fvp_updates += 1
            layer_buffer = copy.deepcopy(context.layer_buffer)
            z_buffer = copy.deepcopy(context.z_buffer)

        return TileResult(
            tile=self.tile,
            color=context.color_buffer.snapshot(),
            stats=stats,
            memory_ops=memory.ops,
            tainted=bool(taint.any()),
            layer_buffer=layer_buffer,
            z_buffer=z_buffer,
        )

    def _render_primitive(
        self,
        context: TileContext,
        memory: MemoryTrace,
        entry: DisplayListEntry,
        x0: int,
        y0: int,
        valid: np.ndarray,
        pending: np.ndarray,
        taint: np.ndarray,
        stats: FrameStats,
    ) -> bool:
        """Render one display-list entry; True if it contributed color."""
        config = self.config
        features = self.features
        primitive = entry.primitive
        state = primitive.state
        z_buffer = context.z_buffer
        color_buffer = context.color_buffer

        memory.parameter_buffer_read(entry.pointer_offset, POINTER_BYTES)
        memory.parameter_buffer_read(entry.offset, self.attribute_bytes)
        stats.display_list_reads += 1

        if (
            features.hierarchical_z
            and state.depth_test
            and primitive.z_near > z_buffer.z_far
        ):
            # Top-of-the-Z-pyramid rejection (Section VIII): the whole
            # primitive is farther than every stored depth, so no
            # fragment can pass; skip rasterization entirely.  Safe
            # because unwritten pixels hold the far clear depth.
            stats.hiz_tests += 1
            stats.hiz_culled += 1
            return False
        if features.hierarchical_z and state.depth_test:
            stats.hiz_tests += 1

        stats.primitives_rasterized += 1
        stats.raster_attributes += primitive.attribute_count

        batch = rasterize_in_tile(
            primitive, x0, y0, config.tile_width, config.tile_height
        )
        if batch is None:
            return False
        mask = batch.mask & valid
        count = int(np.count_nonzero(mask))
        if count == 0:
            return False
        stats.fragments_generated += count

        resolved_z = features.oracle_z or features.z_prepass
        if state.depth_test:
            passing = z_buffer.test(mask, batch.depth, less_equal=resolved_z)
            if features.early_z:
                # Early Depth Test: occluded fragments never reach the
                # fragment processors.
                stats.early_z_tests += count
                stats.early_z_kills += count - int(np.count_nonzero(passing))
                shaded_mask = passing
            else:
                # Late depth test only: everything is shaded, but the
                # color/depth writes still respect visibility.
                shaded_mask = mask
        else:
            passing = mask
            shaded_mask = mask

        shaded = int(np.count_nonzero(shaded_mask))
        if shaded == 0:
            return False

        if primitive.writes_z:
            stats.depth_writes += z_buffer.write(passing, batch.depth)

        # Fragment shading (cost model + texture traffic).
        stats.fragments_shaded += shaded
        shader = state.shader
        stats.fragment_instructions += shaded * shader.fragment_instructions
        if shader.texture_fetches:
            stats.texture_samples += shaded * shader.texture_fetches
            memory.texture_batch(
                shader.texture_id,
                shader.texture_size,
                batch.u[shaded_mask],
                batch.v[shaded_mask],
                shader.texture_fetches,
            )

        # Blending and overshading accounting (writes gated by the depth
        # test outcome even when shading was not).
        if not passing.any():
            return False
        blend_mode = state.blend
        if blend_mode is BlendMode.OPAQUE:
            opaque_mask = passing
            color_buffer.write(passing, batch.rgba)
        else:
            opaque_mask = passing & (batch.rgba[:, :, 3] >= _ALPHA_OPAQUE)
            color_buffer.blend(passing, batch.rgba)
        stats.blend_operations += int(np.count_nonzero(passing))

        stats.overdrawn_fragments += int(pending[opaque_mask].sum())
        pending[opaque_mask] = 1
        translucent_mask = passing & ~opaque_mask
        pending[translucent_mask] += 1

        # Misprediction taint.  An *exact* overwrite (the OPAQUE path's
        # buffer write) erases the previous color bit-for-bit, so it may
        # replace the pixel's taint with its own prediction bit — that
        # clearing is what keeps hidden motion under an opaque HUD
        # skippable.  Blended writes must only ever ADD taint, even at
        # alpha >= the opaque threshold: blend arithmetic keeps a
        # (1 - alpha) * dst term that leaks the hidden color at ulp
        # scale whenever interpolated alpha is not exactly 1.
        if blend_mode is BlendMode.OPAQUE:
            taint[opaque_mask] = entry.predicted_occluded
        elif entry.predicted_occluded:
            taint[passing] = True

        if features.uses_layers and opaque_mask.any():
            written = context.layer_buffer.write(
                opaque_mask, entry.layer, primitive.writes_z
            )
            stats.layer_buffer_writes += written
        return True

    # -- charged Z pre-pass -------------------------------------------------

    def _charged_depth_prepass(self, context: TileContext, x0: int, y0: int,
                               valid: np.ndarray, stats: FrameStats) -> None:
        """Depth-only first pass over the tile's WOZ geometry, with the
        real costs the paper attributes to software Z-prepass (Section
        IV-A): every primitive is rasterized again, every fragment is
        depth-tested again and the Z-buffer is written — only fragment
        *shading* is saved for the second pass.
        """
        for entry in self.entries:
            primitive = entry.primitive
            if not (primitive.writes_z and primitive.state.depth_test):
                continue
            stats.prepass_primitives += 1
            batch = rasterize_in_tile(
                primitive, x0, y0,
                self.config.tile_width, self.config.tile_height,
            )
            if batch is None:
                continue
            mask = batch.mask & valid
            count = int(np.count_nonzero(mask))
            if count == 0:
                continue
            stats.prepass_fragments += count
            closer = context.z_buffer.test(mask, batch.depth)
            stats.prepass_depth_writes += context.z_buffer.write(
                closer, batch.depth
            )

    # -- oracle Z pre-pass --------------------------------------------------

    def _oracle_depth_prepass(self, context: TileContext, x0: int, y0: int,
                              valid: np.ndarray) -> None:
        """Fill the Z-buffer with the tile's final depths, for free.

        Models Figure 8's oracle: perfect visibility information in the
        Z-buffer before the tile executes.  Only WOZ primitives determine
        final depths.
        """
        for entry in self.entries:
            primitive = entry.primitive
            if not primitive.writes_z:
                continue
            batch = rasterize_in_tile(
                primitive, x0, y0,
                self.config.tile_width, self.config.tile_height,
            )
            if batch is None:
                continue
            mask = batch.mask & valid
            if not mask.any():
                continue
            closer = context.z_buffer.test(mask, batch.depth)
            context.z_buffer.write(closer, batch.depth)


# Worker-side context cache: one set of tile buffers per (geometry, clear)
# signature per process, mirroring the hardware's reusable on-chip memory.
_CONTEXT_CACHE: dict = {}


def execute_tile_job(job: TileJob) -> TileResult:
    """Module-level job entry point (picklable for process pools)."""
    key = (job.config.tile_width, job.config.tile_height,
           job.config.clear_depth, job.config.clear_color)
    context = _CONTEXT_CACHE.get(key)
    if context is None:
        context = TileContext.for_config(job.config)
        _CONTEXT_CACHE[key] = context
    return job.run(context)
