"""Stateless per-tile raster work: the execution engine's unit of labor.

A :class:`TileJob` carries everything needed to render one tile of one
frame — the tile's drained display list, the configuration and feature
flags — and nothing else: no GPU, no memory system, no shared buffers.
Executing it (:func:`execute_tile_job`) is a pure function of the job, so
jobs can run in any order, in any process, and still produce bit-identical
results.

Tile-order-dependent side effects are *recorded*, not performed: memory
traffic is appended to a :class:`MemoryTrace` that the engine replays into
the real :class:`~repro.memsys.MemorySystem` in tile order, and the
end-of-tile FVP state (Layer/Z buffers) travels back in the
:class:`TileResult` for the parent-side predictor.  This is what makes the
parallel and serial schedulers equal by construction: the compute
parallelizes, the stateful reduction stays deterministic.

The per-fragment arithmetic itself is dispatched through the kernel
backend seam (:mod:`repro.kernels`): ``TileJob.backend`` names the
implementation (scalar reference or batched numpy) and the job calls only
the backend's pure array kernels — backends are bit-identical by
contract, so the choice is execution policy, not part of the result.
"""

from __future__ import annotations

import copy
import os
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..commands.state import BlendMode
from ..config import GPUConfig
from ..hw.buffers import ColorBuffer, LayerBuffer, ZBuffer
from ..hw.parameter_buffer import POINTER_BYTES, DisplayListEntry
from ..kernels import DEFAULT_BACKEND, resolve_backend
from ..kernels.tile_geometry import tile_origin, valid_mask
from ..obs.events import TileJobFinished, get_bus
from ..pipeline.features import PipelineFeatures
from ..timing.stats import FrameStats

_ALPHA_OPAQUE = 1.0 - 1e-9

# The memory-trace op types moved to repro.memsys.ops (so the batched
# memory system can consume traces without an engine<->memsys layering
# cycle); re-exported here because they are part of this module's
# historical public surface.
from ..memsys.ops import (  # noqa: E402  (re-export)
    OP_FLUSH,
    OP_PB_READ,
    OP_TEXTURE,
    FlushOp,
    MemOp,
    MemOps,
    PBReadOp,
    TextureOp,
    _pack_memory_ops,
    _unpack_memory_ops,
    replay_memory_trace,
)


class MemoryTrace:
    """Records the tile-facing :class:`~repro.memsys.MemorySystem` calls.

    Duck-typed stand-in for the memory system inside a tile job: cache
    and DRAM state are order-dependent across tiles, so jobs log their
    accesses and the engine replays them in tile order.
    """

    def __init__(self) -> None:
        self.ops: MemOps = MemOps()

    def parameter_buffer_read(self, offset: int, size: int) -> None:
        self.ops.append(PBReadOp(offset, size))

    def texture_batch(self, texture_id: int, texture_size: int,
                      u: np.ndarray, v: np.ndarray,
                      samples_per_fragment: int = 1) -> None:
        self.ops.append(
            TextureOp(texture_id, texture_size, u, v, samples_per_fragment)
        )

    def framebuffer_flush(self, num_bytes: int) -> None:
        self.ops.append(FlushOp(num_bytes))


@dataclass
class TileContext:
    """The per-tile working buffers a job renders into.

    One context per worker is enough: jobs clear the buffers on entry, so
    contexts are reusable across tiles and frames (exactly how the
    hardware's on-chip tile memory behaves).
    """

    z_buffer: ZBuffer
    color_buffer: ColorBuffer
    layer_buffer: LayerBuffer

    @classmethod
    def for_config(cls, config: GPUConfig) -> "TileContext":
        return cls(
            z_buffer=ZBuffer(config.tile_width, config.tile_height,
                             config.clear_depth),
            color_buffer=ColorBuffer(config.tile_width, config.tile_height,
                                     config.clear_color),
            layer_buffer=LayerBuffer(config.tile_width, config.tile_height),
        )


@dataclass
class TileResult:
    """Everything a tile job produced, ready for deterministic reduction.

    Attributes:
        tile: linear tile index.
        color: the tile's rendered colors (full tile-sized buffer; edge
            tiles are cropped by the consumer).
        stats: tile-local counter deltas (merged into the frame's stats).
        memory_ops: recorded memory accesses, replayed in tile order.
        tainted: True when a predicted-occluded primitive survived the
            depth test somewhere in the tile without being exactly
            overwritten afterwards (triggers the signature poison).
        layer_buffer / z_buffer: end-of-tile FVP inputs (present only
            when the EVR structures are enabled).
    """

    tile: int
    color: np.ndarray
    stats: FrameStats
    memory_ops: List[MemOp] = field(default_factory=MemOps)
    tainted: bool = False
    layer_buffer: Optional[LayerBuffer] = None
    z_buffer: Optional[ZBuffer] = None


@dataclass
class TileJob:
    """A stateless, picklable description of one tile's rendering.

    Attributes:
        tile: linear tile index.
        tile_x / tile_y: tile grid coordinates.
        config: the GPU configuration (immutable, shared).
        features: the pipeline feature flags (immutable, shared).
        entries: the tile's display list, already drained into render
            order (first list then second — Algorithm 1's order).
        attribute_bytes: Parameter Buffer bytes per primitive record
            (models the pointer-dereference traffic).
        backend: kernel backend name (``repro.kernels``); execution
            policy — every backend produces bit-identical results.
        dsr_rate: Dynamic-Sampling-Rate fraction for this tile (1.0,
            0.5 or 0.25), resolved parent-side at schedule time so every
            scheduler renders identically.
        history: previous frame's framebuffer contents for this tile
            (full tile-sized, clear-padded), present only under the
            ``fhv`` feature; the reconstruction source.
    """

    tile: int
    tile_x: int
    tile_y: int
    config: GPUConfig
    features: PipelineFeatures
    entries: List[DisplayListEntry]
    attribute_bytes: int
    backend: str = DEFAULT_BACKEND
    dsr_rate: float = 1.0
    history: Optional[np.ndarray] = None

    # -- geometry helpers ---------------------------------------------------

    def _valid_mask(self) -> np.ndarray:
        """True for tile pixels that are actually on screen (edge tiles
        of non-divisible resolutions are partial)."""
        config = self.config
        return valid_mask(self.tile_x, self.tile_y,
                          config.tile_width, config.tile_height,
                          config.screen_width, config.screen_height)

    # -- execution ----------------------------------------------------------

    def run(self, context: Optional[TileContext] = None) -> TileResult:
        """Render the tile and return its result.

        ``context`` supplies reusable working buffers; omitted, a fresh
        one is created (convenient in tests).
        """
        config = self.config
        features = self.features
        kernels = resolve_backend(self.backend)
        if context is None:
            context = TileContext.for_config(config)
        memory = MemoryTrace()
        stats = FrameStats()
        stats.tiles_rendered += 1

        context.z_buffer.clear()
        context.color_buffer.clear()
        if features.uses_layers:
            context.layer_buffer.clear()

        x0, y0 = tile_origin(self.tile_x, self.tile_y,
                             config.tile_width, config.tile_height)
        valid = self._valid_mask()
        batch = kernels.prepare_tile(
            self.entries, x0, y0, config.tile_width, config.tile_height,
            valid,
        )

        if features.oracle_z:
            self._oracle_depth_prepass(context, kernels, batch)
        elif features.z_prepass:
            self._charged_depth_prepass(context, kernels, batch, stats)

        # Per-pixel count of shaded contributions not yet made useless by
        # an opaque overwrite; feeds the overshading metric of Figure 8.
        pending = np.zeros((config.tile_height, config.tile_width),
                           dtype=np.int32)
        # Per-pixel misprediction taint: set when a *predicted-occluded*
        # primitive survives the depth test at the pixel, cleared only
        # by an exact (opaque) overwrite.  Any taint at end of tile poisons the
        # signature (see DESIGN.md, "Correctness repair").
        taint = np.zeros((config.tile_height, config.tile_width), dtype=bool)

        for index, entry in enumerate(self.entries):
            contributed = self._render_primitive(
                context, memory, kernels, batch, index, entry,
                pending, taint, stats,
            )
            if features.evr_hardware:
                # Validate the FVP prediction for this (primitive, tile)
                # pair: the confusion-matrix counters behind the
                # poison-rate breakdown (repro.obs.metrics).
                if entry.predicted_occluded:
                    if contributed:
                        stats.mispredicted_visible += 1
                    else:
                        stats.predicted_occluded_correct += 1
                elif contributed:
                    stats.predicted_visible_correct += 1
                else:
                    stats.predicted_visible_hidden += 1

        flush_bytes = context.color_buffer.byte_size
        memory.framebuffer_flush(flush_bytes)
        stats.color_flush_bytes += flush_bytes

        # The context is reused by the next job, so FVP inputs must be
        # copied out (16x16 arrays — cheap) rather than aliased.
        layer_buffer = z_buffer = None
        if features.uses_layers:
            stats.fvp_updates += 1
            layer_buffer = copy.deepcopy(context.layer_buffer)
            z_buffer = copy.deepcopy(context.z_buffer)

        return TileResult(
            tile=self.tile,
            color=context.color_buffer.snapshot(),
            stats=stats,
            memory_ops=memory.ops,
            tainted=bool(taint.any()),
            layer_buffer=layer_buffer,
            z_buffer=z_buffer,
        )

    def _render_primitive(
        self,
        context: TileContext,
        memory: MemoryTrace,
        kernels,
        batch,
        index: int,
        entry: DisplayListEntry,
        pending: np.ndarray,
        taint: np.ndarray,
        stats: FrameStats,
    ) -> bool:
        """Render one display-list entry; True if it contributed color."""
        features = self.features
        primitive = entry.primitive
        state = primitive.state
        z_buffer = context.z_buffer
        color_buffer = context.color_buffer

        memory.parameter_buffer_read(entry.pointer_offset, POINTER_BYTES)
        memory.parameter_buffer_read(entry.offset, self.attribute_bytes)
        stats.display_list_reads += 1

        if (
            features.hierarchical_z
            and state.depth_test
            and primitive.z_near > z_buffer.z_far
        ):
            # Top-of-the-Z-pyramid rejection (Section VIII): the whole
            # primitive is farther than every stored depth, so no
            # fragment can pass; skip rasterization entirely.  Safe
            # because unwritten pixels hold the far clear depth.
            stats.hiz_tests += 1
            stats.hiz_culled += 1
            return False
        if features.hierarchical_z and state.depth_test:
            stats.hiz_tests += 1

        stats.primitives_rasterized += 1
        stats.raster_attributes += primitive.attribute_count

        frag = batch.fragments(index)
        if frag is None or frag.count == 0:
            return False
        mask = frag.mask
        count = frag.count
        stats.fragments_generated += count

        resolved_z = features.oracle_z or features.z_prepass
        if state.depth_test:
            passing = kernels.depth_test(z_buffer.depth, mask, frag.depth,
                                         less_equal=resolved_z)
            if features.early_z:
                # Early Depth Test: occluded fragments never reach the
                # fragment processors.
                stats.early_z_tests += count
                stats.early_z_kills += count - int(np.count_nonzero(passing))
                shaded_mask = passing
            else:
                # Late depth test only: everything is shaded, but the
                # color/depth writes still respect visibility.
                shaded_mask = mask
        else:
            passing = mask
            shaded_mask = mask

        blend_mode = state.blend
        vr_kill = None
        if features.vrpipe_early_termination:
            # VR-Pipe-style early termination: a fragment whose merge
            # cannot move the pixel by more than the threshold in any
            # channel is killed before shading and its write suppressed.
            # Opaque writes replace (delta = |src - dst|); blends move
            # rgb by a*(src-dst) and alpha by max(src_a - dst_a, 0).
            # Depth writes are NOT suppressed — visibility stays exact.
            destination = color_buffer.color
            threshold = features.vrpipe_threshold
            if blend_mode is BlendMode.OPAQUE:
                delta = np.abs(frag.rgba - destination).max(axis=2)
                vr_kill = passing & (delta <= threshold)
            else:
                src_alpha = frag.rgba[:, :, 3]
                rgb_delta = np.abs(
                    frag.rgba[:, :, :3] - destination[:, :, :3]
                ).max(axis=2)
                alpha_gain = np.maximum(
                    src_alpha - destination[:, :, 3], 0.0
                )
                vr_kill = passing & (
                    (src_alpha * rgb_delta <= threshold)
                    & (alpha_gain <= threshold)
                )
            killed = int(np.count_nonzero(vr_kill))
            if killed:
                stats.vrpipe_killed += killed
                shaded_mask = shaded_mask & ~vr_kill
            else:
                vr_kill = None

        shaded = int(np.count_nonzero(shaded_mask))
        if shaded == 0 and not passing.any():
            return False

        rgba = frag.rgba
        if shaded and features.dsr and self.dsr_rate < 1.0:
            # Dynamic Sampling Rate: shade only each block's anchor and
            # replicate its color to the block's other fragments.  A
            # fragment is reused only when its anchor is also shaded by
            # this primitive; uncovered-anchor fragments shade normally.
            block_h = 2 if self.dsr_rate <= 0.25 else 1
            rows = np.arange(shaded_mask.shape[0])[:, None]
            cols = np.arange(shaded_mask.shape[1])[None, :]
            anchor_rows = rows - rows % block_h
            anchor_cols = cols - cols % 2
            is_anchor = (rows == anchor_rows) & (cols == anchor_cols)
            reused = (shaded_mask
                      & shaded_mask[anchor_rows, anchor_cols]
                      & ~is_anchor)
            reused_count = int(np.count_nonzero(reused))
            if reused_count:
                stats.dsr_reused_fragments += reused_count
                rgba = np.where(reused[:, :, None],
                                rgba[anchor_rows, anchor_cols], rgba)
                shaded_mask = shaded_mask & ~reused
                shaded = int(np.count_nonzero(shaded_mask))

        if primitive.writes_z:
            stats.depth_writes += kernels.depth_write(
                z_buffer.depth, passing, frag.depth
            )

        reconstruct = (
            shaded
            and features.fhv
            and entry.predicted_occluded
            and self.history is not None
            and blend_mode is BlendMode.OPAQUE
        )
        if reconstruct:
            # Fragment-History-Volume-style reconstruction: the FVP says
            # these fragments will end up occluded, so instead of shading
            # them, replay last frame's framebuffer colors (they carry
            # whatever covered the pixel then).  Depth still resolves
            # normally; only shading work is saved.
            stats.fhv_reconstructed += shaded
            stats.fhv_reconstruction_error += float(
                np.abs(rgba[shaded_mask] - self.history[shaded_mask]).sum()
            )
            rgba = self.history
        elif shaded:
            # Fragment shading (cost model + texture traffic).
            stats.fragments_shaded += shaded
            shader = state.shader
            stats.fragment_instructions += (
                shaded * shader.fragment_instructions
            )
            if shader.texture_fetches:
                stats.texture_samples += shaded * shader.texture_fetches
                memory.texture_batch(
                    shader.texture_id,
                    shader.texture_size,
                    frag.u[shaded_mask],
                    frag.v[shaded_mask],
                    shader.texture_fetches,
                )

        # Blending and overshading accounting (writes gated by the depth
        # test outcome even when shading was not).  VR-Pipe-killed
        # fragments keep their depth effect but never reach the blender.
        if not passing.any():
            return False
        write_mask = passing if vr_kill is None else passing & ~vr_kill
        if blend_mode is BlendMode.OPAQUE:
            opaque_mask = passing
            kernels.color_write(color_buffer.color, write_mask, rgba)
        else:
            opaque_mask = passing & (rgba[:, :, 3] >= _ALPHA_OPAQUE)
            kernels.color_blend(color_buffer.color, write_mask, rgba)
        stats.blend_operations += int(np.count_nonzero(write_mask))

        translucent_mask = passing & ~opaque_mask
        stats.overdrawn_fragments += kernels.overdraw_update(
            pending, opaque_mask, translucent_mask
        )

        # Misprediction taint.  An *exact* overwrite (the OPAQUE path's
        # buffer write) erases the previous color bit-for-bit, so it may
        # replace the pixel's taint with its own prediction bit — that
        # clearing is what keeps hidden motion under an opaque HUD
        # skippable.  Blended writes must only ever ADD taint, even at
        # alpha >= the opaque threshold: blend arithmetic keeps a
        # (1 - alpha) * dst term that leaks the hidden color at ulp
        # scale whenever interpolated alpha is not exactly 1.
        if blend_mode is BlendMode.OPAQUE:
            kernels.taint_set(taint, opaque_mask, entry.predicted_occluded)
        elif entry.predicted_occluded:
            kernels.taint_or(taint, passing)

        if features.uses_layers and opaque_mask.any():
            layer_buffer = context.layer_buffer
            written = kernels.layer_write(
                layer_buffer.layers, opaque_mask, entry.layer
            )
            if primitive.writes_z and written:
                layer_buffer.zr_register = entry.layer
            stats.layer_buffer_writes += written
        return True

    # -- charged Z pre-pass -------------------------------------------------

    def _charged_depth_prepass(self, context: TileContext, kernels, batch,
                               stats: FrameStats) -> None:
        """Depth-only first pass over the tile's WOZ geometry, with the
        real costs the paper attributes to software Z-prepass (Section
        IV-A): every primitive is rasterized again, every fragment is
        depth-tested again and the Z-buffer is written — only fragment
        *shading* is saved for the second pass.
        """
        depth_buffer = context.z_buffer.depth
        for index, entry in enumerate(self.entries):
            primitive = entry.primitive
            if not (primitive.writes_z and primitive.state.depth_test):
                continue
            stats.prepass_primitives += 1
            frag = batch.fragments(index)
            if frag is None or frag.count == 0:
                continue
            stats.prepass_fragments += frag.count
            closer = kernels.depth_test(depth_buffer, frag.mask, frag.depth)
            stats.prepass_depth_writes += kernels.depth_write(
                depth_buffer, closer, frag.depth
            )

    # -- oracle Z pre-pass --------------------------------------------------

    def _oracle_depth_prepass(self, context: TileContext, kernels,
                              batch) -> None:
        """Fill the Z-buffer with the tile's final depths, for free.

        Models Figure 8's oracle: perfect visibility information in the
        Z-buffer before the tile executes.  Only WOZ primitives determine
        final depths.
        """
        depth_buffer = context.z_buffer.depth
        for index, entry in enumerate(self.entries):
            primitive = entry.primitive
            if not primitive.writes_z:
                continue
            frag = batch.fragments(index)
            if frag is None or frag.count == 0:
                continue
            closer = kernels.depth_test(depth_buffer, frag.mask, frag.depth)
            kernels.depth_write(depth_buffer, closer, frag.depth)


# Worker-side context cache: one set of tile buffers per (geometry, clear)
# signature per process, mirroring the hardware's reusable on-chip memory.
_CONTEXT_CACHE: dict = {}


def execute_tile_job(job: TileJob) -> TileResult:
    """Module-level job entry point (picklable for process pools).

    When an event bus is installed in the executing process — the live
    bus in-process, a forwarding buffer in a pool worker — each job
    emits a :class:`~repro.obs.events.TileJobFinished` with its own
    measured wall time and pid: the dashboard's worker-occupancy data.
    """
    key = (job.config.tile_width, job.config.tile_height,
           job.config.clear_depth, job.config.clear_color)
    context = _CONTEXT_CACHE.get(key)
    if context is None:
        context = TileContext.for_config(job.config)
        _CONTEXT_CACHE[key] = context
    bus = get_bus()
    if not bus.enabled:
        return job.run(context)
    start = time.perf_counter()
    result = job.run(context)
    bus.emit(TileJobFinished(
        tile=job.tile,
        fragments=result.stats.fragments_shaded,
        worker=os.getpid(),
        start=start,
        end=time.perf_counter(),
    ))
    return result
