"""The execution engine: stateless tile jobs, pluggable schedulers and a
unified instrumentation bus.

Every outer loop of the simulator goes through this layer:

* :mod:`repro.engine.tile_job` — the unit of raster work.  A
  :class:`TileJob` is a stateless, picklable description of one tile's
  rendering (display list, config, features); executing it yields a
  :class:`TileResult` (color patch, counter deltas, end-of-tile FVP
  state, memory trace).  A :class:`TileContext` owns the per-tile
  Z/Color/Layer buffers and is reused across jobs within one worker.
* :mod:`repro.engine.scheduler` — the :class:`Scheduler` protocol with
  :class:`SerialScheduler` (default; bit-identical to the historical
  inline loop) and :class:`ProcessPoolScheduler` implementations.  The
  same protocol drives per-frame tile fan-out and suite-level
  (benchmark, mode) fan-out.
* :mod:`repro.engine.instrumentation` — the mergeable
  :class:`Instrumentation` record that tile jobs and pipeline phases
  return and the engine reduces, so serial and parallel executions
  produce identical metrics by construction.
* :mod:`repro.engine.diskcache` — the on-disk run cache under
  ``.repro_cache/`` keyed by (benchmark, mode, config, frames,
  code-version).
"""

from .instrumentation import Instrumentation, merge_unit_counters
from .scheduler import (
    ProcessPoolScheduler,
    Scheduler,
    SerialScheduler,
    make_scheduler,
)
from .diskcache import DiskCache, default_cache_dir
from .tile_job import TileContext, TileJob, TileResult, execute_tile_job

__all__ = [
    "Instrumentation",
    "merge_unit_counters",
    "Scheduler",
    "SerialScheduler",
    "ProcessPoolScheduler",
    "make_scheduler",
    "TileContext",
    "TileJob",
    "TileResult",
    "execute_tile_job",
    "DiskCache",
    "default_cache_dir",
]
