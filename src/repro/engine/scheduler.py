"""Pluggable schedulers: how the engine fans work out.

A :class:`Scheduler` maps a picklable function over picklable items and
returns the results *in submission order* — that ordering contract is what
lets the engine reduce results deterministically regardless of execution
order.  Two implementations:

* :class:`SerialScheduler` — in-process, in-order; the default, and
  bit-identical to the historical inline loops.
* :class:`ProcessPoolScheduler` — a persistent
  :class:`concurrent.futures.ProcessPoolExecutor`; used for per-frame
  tile fan-out and for suite-level (benchmark, mode) fan-out.

Both are used through :func:`make_scheduler`, which turns a ``--jobs N``
style request into the right implementation.

Either scheduler accepts an optional
:class:`~repro.obs.profile.SchedulerProfiler` (the ``profiler``
attribute, or the ``profiler`` argument of :func:`make_scheduler`).  When
attached, every mapped call is wrapped so the executing process measures
its own wall time; the profiler unwraps the results on the way back.  The
wrapper passes results through untouched — profiled and unprofiled runs
are bit-identical, only observability output differs.

The pool scheduler applies the same pattern to the structured event bus
(:mod:`repro.obs.events`): when a bus is installed, mapped calls are
wrapped in :class:`~repro.obs.events.EventForwardingCall` so events a
job emits inside a worker ride the result channel home and are re-emitted
on the parent's bus, in submission order, before results are returned.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import (
    TYPE_CHECKING,
    Callable,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    TypeVar,
)

from ..obs.events import EventForwardingCall, get_bus, replay_forwarded

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.profile import SchedulerProfiler

T = TypeVar("T")
R = TypeVar("R")


class Scheduler(Protocol):
    """The engine's execution strategy.

    Implementations must return results in submission order and may
    assume ``fn`` and every item are picklable (the serial scheduler
    does not need that property, but callers must not rely on it).
    """

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item; results in submission order."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release any held workers (idempotent)."""
        ...  # pragma: no cover - protocol


class SerialScheduler:
    """Run everything inline, in order — the default execution strategy."""

    jobs = 1

    def __init__(self, profiler: Optional["SchedulerProfiler"] = None):
        self.profiler = profiler

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        profiler = self.profiler
        if profiler is None:
            return [fn(item) for item in items]
        submit = time.perf_counter()
        timed_fn = profiler.wrap(fn)
        return profiler.collect(submit, items,
                                [timed_fn(item) for item in items])

    def close(self) -> None:
        pass

    def __enter__(self) -> "SerialScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return "SerialScheduler()"


class ProcessPoolScheduler:
    """Fan work out to a persistent pool of worker processes.

    The executor is created lazily (constructing a scheduler is free) and
    kept alive across :meth:`map` calls so per-frame tile fan-out does not
    pay process start-up for every frame.  ``fork`` is preferred where
    available: workers inherit the parent's imports, which matters when a
    frame's tile jobs are small.
    """

    def __init__(self, jobs: int, mp_context: Optional[str] = None,
                 profiler: Optional["SchedulerProfiler"] = None):
        if jobs < 2:
            raise ValueError("ProcessPoolScheduler needs jobs >= 2; "
                             "use SerialScheduler for jobs=1")
        self.jobs = jobs
        self.profiler = profiler
        self._mp_context = mp_context
        self._executor: Optional[ProcessPoolExecutor] = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            import multiprocessing

            if self._mp_context is not None:
                context = multiprocessing.get_context(self._mp_context)
            elif "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            else:  # pragma: no cover - Windows/macOS spawn fallback
                context = multiprocessing.get_context()
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=context
            )
        return self._executor

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        if not items:
            return []
        profiler = self.profiler
        if profiler is not None:
            submit = time.perf_counter()
            timed = self._map(profiler.wrap(fn), items)
            return profiler.collect(submit, items, timed)
        return self._map(fn, items)

    def _map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        if len(items) == 1:
            # One item gains nothing from a round-trip through the pool.
            return [fn(items[0])]
        executor = self._ensure_executor()
        chunksize = max(1, len(items) // (self.jobs * 4))
        bus = get_bus()
        if bus.enabled:
            forwarding = EventForwardingCall(fn)
            results = executor.map(forwarding, items, chunksize=chunksize)
            return [replay_forwarded(value, bus) for value in results]
        return list(executor.map(fn, items, chunksize=chunksize))

    def close(self) -> None:
        """Shut the executor down gracefully (idempotent).

        The executor reference is dropped *before* shutdown so a failure
        mid-shutdown (or a re-entrant call) can neither leak the old
        executor nor double-close it.  ``getattr`` guards the case where
        ``__init__`` raised before ``_executor`` was ever assigned.
        """
        executor = getattr(self, "_executor", None)
        self._executor = None
        if executor is not None:
            executor.shutdown()

    def terminate(self) -> None:
        """Forcibly kill the pool, hung workers included (idempotent).

        Unlike :meth:`close`, this never waits on workers: a worker
        stuck in an endless job would block ``shutdown()`` forever, so
        the resilience layer uses this to reclaim the pool before
        rebuilding it.  Reaches into the executor's ``_processes`` —
        stdlib ``ProcessPoolExecutor`` offers no public kill switch —
        and degrades to a plain shutdown if that internal ever moves.
        """
        executor = getattr(self, "_executor", None)
        self._executor = None
        if executor is None:
            return
        processes = list((getattr(executor, "_processes", None) or {})
                         .values())
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        for process in processes:
            try:
                process.kill()
            except Exception:
                pass
        for process in processes:
            try:
                process.join(timeout=1.0)
            except Exception:
                pass

    def __enter__(self) -> "ProcessPoolScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return f"ProcessPoolScheduler(jobs={self.jobs})"


def make_scheduler(
    jobs: Optional[int],
    profiler: Optional["SchedulerProfiler"] = None,
) -> "Scheduler":
    """Turn a ``--jobs N`` request into a scheduler.

    ``None``, 0 and 1 mean serial; ``N >= 2`` means a process pool with N
    workers; negative N means one worker per CPU.  ``profiler``
    optionally attaches a :class:`~repro.obs.profile.SchedulerProfiler`.
    """
    if jobs is not None and jobs < 0:
        jobs = os.cpu_count() or 1
    if not jobs or jobs == 1:
        return SerialScheduler(profiler=profiler)
    return ProcessPoolScheduler(jobs, profiler=profiler)
