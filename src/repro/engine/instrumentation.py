"""The unified instrumentation record reduced by the execution engine.

Historically every pipeline phase returned a bare ``Dict[str, Dict[str,
int]]`` memory snapshot plus a loose ``dram_cycles`` float, and the
merging logic was duplicated wherever counters met (per-frame, per-run,
per-energy-model).  :class:`Instrumentation` packages the two together
and owns the single merge implementation, so serial and parallel
executions — which reduce per-tile/per-run records in a fixed order —
produce identical totals by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

CounterMap = Dict[str, Dict[str, int]]


def merge_unit_counters(
    into: CounterMap, source: Mapping[str, Mapping[str, int]]
) -> CounterMap:
    """Accumulate ``source``'s per-unit counters into ``into`` (in place).

    The one shared reducer for ``unit -> counter -> value`` maps: frame
    results, run totals and the energy model all merge through here.
    Returns ``into`` for chaining.
    """
    for unit, counters in source.items():
        unit_totals = into.setdefault(unit, {})
        for key, value in counters.items():
            unit_totals[key] = unit_totals.get(key, 0) + value
    return into


@dataclass
class Instrumentation:
    """Mergeable measurement record for one pipeline phase or tile.

    Attributes:
        units: per-unit event counters (``"l2" -> {"hits": ...}`` —
            the memory-system snapshot shape).
        dram_cycles: DRAM roofline cycles attributable to the phase.
    """

    units: CounterMap = field(default_factory=dict)
    dram_cycles: float = 0.0

    @classmethod
    def capture(cls, memory) -> "Instrumentation":
        """Snapshot a :class:`~repro.memsys.MemorySystem`'s counters."""
        return cls(units=memory.snapshot(), dram_cycles=memory.dram.cycles())

    def merge(self, other: "Instrumentation") -> "Instrumentation":
        """Accumulate ``other`` into this record (in place)."""
        merge_unit_counters(self.units, other.units)
        self.dram_cycles += other.dram_cycles
        return self

    @classmethod
    def reduce(cls, records: Iterable["Instrumentation"]) -> "Instrumentation":
        """Merge ``records`` (in iteration order) into a fresh record."""
        total = cls()
        for record in records:
            total.merge(record)
        return total
