"""On-disk run cache under ``.repro_cache/``.

Figure and ablation scripts share many underlying (benchmark, mode) runs
— Figures 6, 7, 10 and 11 all need the BASELINE/RE/EVR suite — but until
now the memo lived only inside one :class:`SuiteRunner` instance, so every
*invocation* re-rendered everything.  :class:`DiskCache` persists the
distilled metrics, keyed by a digest of everything that can change them:
benchmark, mode, configuration, frame count and the simulator's own source
code (so a code change can never serve stale numbers).

Entries are self-verifying: the pickle payload is followed by a
CRC32 + length + magic trailer (see :func:`_encode_entry`), so ``get``
can distinguish a healthy entry from a truncated write, flipped bits or
a foreign/pre-trailer file.  The cache stays deliberately forgiving — a
bad entry is treated as a miss and recomputed, never an error — but a
bad entry is no longer silently unlinked: it is moved into a
``quarantine/`` subdirectory for post-mortem and a warning naming the
key is logged through :mod:`repro.obs.log`.

Cache traffic is observable: ``get``/``put`` increment the
``cache.hits`` / ``cache.misses`` / ``cache.evictions`` / ``cache.puts``
/ ``cache.quarantined`` counters in the process-wide metrics registry
and emit spans into the process-wide tracer (no-ops unless
``--trace``/``--metrics`` enabled them).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import tempfile
import zlib
from typing import Any, Optional, Tuple

from ..errors import CacheCorruptionError
from ..obs.log import get_logger
from ..obs.metrics import global_registry
from ..obs.trace import get_tracer

logger = get_logger("engine.diskcache")

_ENV_CACHE_DIR = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIRNAME = ".repro_cache"
QUARANTINE_DIRNAME = "quarantine"

#: Newest quarantined files kept by default.  Quarantine exists for
#: post-mortem, not as an archive: corrupt cache entries and corpus
#: violation repros are only interesting while someone might still look
#: at them, and before this cap the directory grew without bound.
DEFAULT_QUARANTINE_KEEP = 64

#: Entry trailer: CRC32 and byte length of the pickle payload, then a
#: magic tag naming the on-disk format version.  Bumping the magic
#: quarantines (rather than misreads) every older entry.
_TRAILER = struct.Struct("<IQ")
_MAGIC = b"RPROCAC1"
_TRAILER_BYTES = _TRAILER.size + len(_MAGIC)

_code_version_digest: Optional[str] = None


def default_cache_dir() -> str:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``./.repro_cache``."""
    return os.environ.get(_ENV_CACHE_DIR) or DEFAULT_CACHE_DIRNAME


#: Cache-key schema version.  Bumped when the key derivation changes so
#: stale entries from an older derivation can never alias new ones.
#: ``runspec-v1``: keys derive from ``RunSpec.spec_hash()`` (the
#: canonical hash of the result-affecting spec sections) instead of the
#: older hand-rolled ``repr`` tuple.
KEY_SCHEMA = "runspec-v1"


def run_cache_key(spec, benchmark: str, mode: str,
                  code: Optional[str] = None) -> str:
    """The disk-cache key for one (spec, benchmark, mode) cell.

    ``spec`` is duck-typed (anything with a ``spec_hash()``) so this
    module stays importable without :mod:`repro.spec`.  Scheduler,
    resilience and observability settings are excluded by the spec hash
    itself — they never change a result, so they must never split the
    cache.  ``code`` defaults to the current :func:`code_version`.
    """
    return DiskCache.make_key(
        KEY_SCHEMA, spec.spec_hash(), benchmark, mode,
        code if code is not None else code_version(),
    )


def code_version() -> str:
    """Digest of the ``repro`` package's source files.

    Any edit to the simulator invalidates every cached run — the coarse
    but safe notion of "code version" for a research codebase.  Computed
    once per process (~150 small files, milliseconds).
    """
    global _code_version_digest
    if _code_version_digest is None:
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(package_root)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, package_root).encode())
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _code_version_digest = digest.hexdigest()
    return _code_version_digest


def _encode_entry(payload: bytes) -> bytes:
    """Frame a pickle payload with its integrity trailer."""
    return payload + _TRAILER.pack(
        zlib.crc32(payload) & 0xFFFFFFFF, len(payload)
    ) + _MAGIC


def _decode_entry(blob: bytes) -> bytes:
    """The verified pickle payload of ``blob``.

    Raises:
        CacheCorruptionError: missing/foreign trailer, truncated
            payload, or checksum mismatch.
    """
    if len(blob) < _TRAILER_BYTES or not blob.endswith(_MAGIC):
        raise CacheCorruptionError(
            "missing integrity trailer (foreign or pre-trailer entry)"
        )
    payload = blob[:-_TRAILER_BYTES]
    crc, length = _TRAILER.unpack(blob[-_TRAILER_BYTES:-len(_MAGIC)])
    if len(payload) != length:
        raise CacheCorruptionError(
            f"truncated payload ({len(payload)} bytes, expected {length})"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise CacheCorruptionError("payload checksum mismatch")
    return payload


class DiskCache:
    """A tiny content-addressed pickle store with verified entries.

    Entries are written atomically (temp file + rename) so a crashed or
    parallel writer can only ever leave a complete entry or none; reads
    verify the integrity trailer before unpickling.
    """

    def __init__(self, directory: str):
        self.directory = directory

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def make_key(*parts: object) -> str:
        """Digest arbitrary (repr-stable) parts into a cache key."""
        digest = hashlib.sha256()
        for part in parts:
            digest.update(repr(part).encode())
            digest.update(b"\x00")
        return digest.hexdigest()

    def path_for(self, key: str) -> str:
        """Filesystem path of ``key``'s entry (present or not)."""
        return os.path.join(self.directory, f"{key}.pkl")

    def quarantine_dir(self) -> str:
        """Where unreadable entries are moved for post-mortem."""
        return os.path.join(self.directory, QUARANTINE_DIRNAME)

    # -- operations ---------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """The stored value, or None on miss *or* unreadable entry."""
        path = self.path_for(key)
        counters = global_registry()
        with get_tracer().span("cache.get", category="cache", key=key[:12]):
            try:
                with open(path, "rb") as handle:
                    blob = handle.read()
            except FileNotFoundError:
                counters.counter("cache.misses").inc()
                return None
            except OSError as error:
                counters.counter("cache.misses").inc()
                logger.warning("cache entry %s unreadable: %r", key[:12],
                               error)
                return None
            try:
                value = pickle.loads(_decode_entry(blob))
            except CacheCorruptionError as error:
                self._quarantine(key, path, str(error))
                counters.counter("cache.misses").inc()
                return None
            except Exception as error:
                # The trailer verified but the pickle itself would not
                # load (e.g. written by an incompatible class layout).
                self._quarantine(key, path, f"unpicklable payload: {error!r}")
                counters.counter("cache.misses").inc()
                return None
            counters.counter("cache.hits").inc()
            return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically."""
        os.makedirs(self.directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp_", suffix=".pkl"
        )
        with get_tracer().span("cache.put", category="cache", key=key[:12]):
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(_encode_entry(
                        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
                    ))
                os.replace(tmp_path, self.path_for(key))
            except BaseException:
                try:
                    os.remove(tmp_path)
                except OSError:
                    pass
                raise
        global_registry().counter("cache.puts").inc()

    def _quarantine(self, key: str, path: str, reason: str) -> None:
        """Move a bad entry aside (never silently unlink it)."""
        registry = global_registry()
        registry.counter("cache.evictions").inc()
        quarantine = self.quarantine_dir()
        destination = os.path.join(quarantine, os.path.basename(path))
        try:
            os.makedirs(quarantine, exist_ok=True)
            os.replace(path, destination)
        except OSError:
            # Quarantine itself failed (permissions, cross-device...):
            # fall back to unlinking so the bad entry cannot wedge us.
            destination = "<removed>"
            try:
                os.remove(path)
            except OSError:
                pass
        registry.counter("cache.quarantined").inc()
        get_tracer().instant("cache.quarantine", category="cache",
                             key=key[:12], reason=reason)
        logger.warning("cache entry %s corrupt (%s); quarantined to %s",
                       key[:12], reason, destination)
        # Keep quarantine bounded: every new arrival re-applies the cap
        # so a pathological run cannot fill the disk with post-mortems.
        self.gc_quarantine()

    def gc_quarantine(self, keep: int = DEFAULT_QUARANTINE_KEEP) -> Tuple[int, int]:
        """Prune ``quarantine/`` down to the ``keep`` newest files.

        Walks the whole quarantine tree — corrupt ``.pkl`` entries at
        the top level *and* the corpus gate's minimized traces and
        violation reports under ``quarantine/corpus/`` — and removes
        the oldest files beyond the cap (newest by mtime survive, path
        breaks ties so the order is stable).  Emptied subdirectories
        are removed too.

        Returns:
            ``(kept, removed)`` file counts.
        """
        if keep < 0:
            raise ValueError("keep must be >= 0")
        quarantine = self.quarantine_dir()
        files = []
        for dirpath, _dirnames, filenames in os.walk(quarantine):
            for name in filenames:
                path = os.path.join(dirpath, name)
                try:
                    mtime = os.path.getmtime(path)
                except OSError:
                    continue
                files.append((mtime, path))
        files.sort(reverse=True)  # newest first; path breaks mtime ties
        removed = 0
        for _mtime, path in files[keep:]:
            try:
                os.remove(path)
                removed += 1
            except OSError:
                pass
        if removed:
            # Drop directories the prune emptied (bottom-up).
            for dirpath, dirnames, filenames in os.walk(quarantine,
                                                        topdown=False):
                if dirpath != quarantine and not dirnames and not filenames:
                    try:
                        os.rmdir(dirpath)
                    except OSError:
                        pass
            global_registry().counter("cache.gc_removed").inc(removed)
            logger.info("quarantine gc: kept %d, removed %d",
                        len(files) - removed, removed)
        return len(files) - removed, removed

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed.

        Quarantined entries are kept — they exist for post-mortem and
        are only removed by deleting ``quarantine/`` explicitly.
        """
        removed = 0
        try:
            entries = os.listdir(self.directory)
        except FileNotFoundError:
            return 0
        for name in entries:
            if name.endswith(".pkl"):
                try:
                    os.remove(os.path.join(self.directory, name))
                    removed += 1
                except OSError:
                    pass
        return removed

    def size(self) -> int:
        """Number of stored entries."""
        try:
            return sum(
                1 for name in os.listdir(self.directory)
                if name.endswith(".pkl") and not name.startswith(".tmp_")
            )
        except FileNotFoundError:
            return 0

    def quarantined(self) -> int:
        """Number of quarantined (corrupt) entries awaiting post-mortem."""
        try:
            return sum(
                1 for name in os.listdir(self.quarantine_dir())
                if name.endswith(".pkl")
            )
        except FileNotFoundError:
            return 0
