"""On-disk run cache under ``.repro_cache/``.

Figure and ablation scripts share many underlying (benchmark, mode) runs
— Figures 6, 7, 10 and 11 all need the BASELINE/RE/EVR suite — but until
now the memo lived only inside one :class:`SuiteRunner` instance, so every
*invocation* re-rendered everything.  :class:`DiskCache` persists the
distilled metrics, keyed by a digest of everything that can change them:
benchmark, mode, configuration, frame count and the simulator's own source
code (so a code change can never serve stale numbers).

The cache is deliberately forgiving: a truncated, corrupt or
version-skewed entry is treated as a miss and recomputed, never an error.

Cache traffic is observable: every ``get``/``put`` increments the
``cache.hits`` / ``cache.misses`` / ``cache.evictions`` / ``cache.puts``
counters in the process-wide metrics registry and emits a span into the
process-wide tracer (no-ops unless ``--trace``/``--metrics`` enabled
them).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Any, Optional

from ..obs.metrics import global_registry
from ..obs.trace import get_tracer

_ENV_CACHE_DIR = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIRNAME = ".repro_cache"

_code_version_digest: Optional[str] = None


def default_cache_dir() -> str:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``./.repro_cache``."""
    return os.environ.get(_ENV_CACHE_DIR) or DEFAULT_CACHE_DIRNAME


def code_version() -> str:
    """Digest of the ``repro`` package's source files.

    Any edit to the simulator invalidates every cached run — the coarse
    but safe notion of "code version" for a research codebase.  Computed
    once per process (~150 small files, milliseconds).
    """
    global _code_version_digest
    if _code_version_digest is None:
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(package_root)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, package_root).encode())
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _code_version_digest = digest.hexdigest()
    return _code_version_digest


class DiskCache:
    """A tiny content-addressed pickle store.

    Entries are written atomically (temp file + rename) so a crashed or
    parallel writer can only ever leave a complete entry or none.
    """

    def __init__(self, directory: str):
        self.directory = directory

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def make_key(*parts: object) -> str:
        """Digest arbitrary (repr-stable) parts into a cache key."""
        digest = hashlib.sha256()
        for part in parts:
            digest.update(repr(part).encode())
            digest.update(b"\x00")
        return digest.hexdigest()

    def path_for(self, key: str) -> str:
        """Filesystem path of ``key``'s entry (present or not)."""
        return os.path.join(self.directory, f"{key}.pkl")

    # -- operations ---------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """The stored value, or None on miss *or* unreadable entry."""
        path = self.path_for(key)
        counters = global_registry()
        with get_tracer().span("cache.get", category="cache", key=key[:12]):
            try:
                with open(path, "rb") as handle:
                    value = pickle.load(handle)
            except FileNotFoundError:
                counters.counter("cache.misses").inc()
                return None
            except Exception:
                # Truncated/corrupt entry: drop it and recompute.
                counters.counter("cache.misses").inc()
                counters.counter("cache.evictions").inc()
                try:
                    os.remove(path)
                except OSError:
                    pass
                return None
            counters.counter("cache.hits").inc()
            return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically."""
        os.makedirs(self.directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp_", suffix=".pkl"
        )
        with get_tracer().span("cache.put", category="cache", key=key[:12]):
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_path, self.path_for(key))
            except BaseException:
                try:
                    os.remove(tmp_path)
                except OSError:
                    pass
                raise
        global_registry().counter("cache.puts").inc()

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        try:
            entries = os.listdir(self.directory)
        except FileNotFoundError:
            return 0
        for name in entries:
            if name.endswith(".pkl"):
                try:
                    os.remove(os.path.join(self.directory, name))
                    removed += 1
                except OSError:
                    pass
        return removed

    def size(self) -> int:
        """Number of stored entries."""
        try:
            return sum(
                1 for name in os.listdir(self.directory)
                if name.endswith(".pkl") and not name.startswith(".tmp_")
            )
        except FileNotFoundError:
            return 0
