"""The built-in technique catalog.

Three tiers, mirroring how the repo grew:

* **paper** — the four configurations the HPCA 2019 paper evaluates
  (plus the Figure 8/9 oracle), previously the ``PipelineMode`` enum.
* **alternative** — the culling mechanisms the paper *discusses* as
  rivals (software Z-prepass, Hierarchical-Z, and EVR composed with
  Hi-Z), previously the ad-hoc ``_CONFIGURATIONS`` table in
  ``harness/alternatives.py``.
* **rival** — functional models of successor techniques from the
  lineage (PAPERS.md): Dynamic Sampling Rate, Fragment-History Volumes
  and VR-Pipe-style early termination.  These are *approximate*: they
  trade bounded image error for shading work, so their validation
  contract is an error bound plus a shaded-fragments budget rather than
  pixel identity.

Importing this module (via ``repro.techniques``) populates the registry;
paper-mode feature constructions live here now — ``PipelineMode`` in
``repro.pipeline.features`` is a thin compatibility shim delegating to
this catalog.
"""

from __future__ import annotations

from typing import Dict

from ..pipeline.features import PipelineFeatures
from .registry import Technique, register, register_metric_extractor

__all__ = [
    "BASELINE",
    "RE",
    "EVR",
    "EVR_REORDER_ONLY",
    "ORACLE",
    "HIZ",
    "Z_PREPASS",
    "EVR_HIZ",
    "DSR",
    "FHV",
    "VRPIPE_ET",
]

_PAPER = "Anglada et al., 'Early Visibility Resolution' (HPCA 2019)"

# ---------------------------------------------------------------------------
# Paper reference set (the former PipelineMode enum, same names/features).
# ---------------------------------------------------------------------------

BASELINE = register(Technique(
    name="baseline",
    summary="plain TBR GPU with Early Depth Test",
    feature_set=PipelineFeatures(),
    kind="paper",
    citation=_PAPER,
))

RE = register(Technique(
    name="re",
    summary="Rendering Elimination: skip signature-identical tiles",
    feature_set=PipelineFeatures(rendering_elimination=True),
    kind="paper",
    citation=_PAPER,
))

EVR = register(Technique(
    name="evr",
    summary="RE + EVR reordering and signature filtering",
    feature_set=PipelineFeatures(
        rendering_elimination=True,
        evr_hardware=True,
        evr_reorder=True,
        evr_signature_filter=True,
    ),
    kind="paper",
    citation=_PAPER,
))

EVR_REORDER_ONLY = register(Technique(
    name="evr-reorder-only",
    summary="EVR hardware + Algorithm 1 reordering, no signature filter",
    feature_set=PipelineFeatures(evr_hardware=True, evr_reorder=True),
    aliases=("evr-reorder",),
    kind="paper",
    citation=_PAPER,
))

ORACLE = register(Technique(
    name="oracle",
    summary="perfect-visibility references for Figures 8/9",
    feature_set=PipelineFeatures(oracle_z=True, oracle_redundancy=True),
    kind="paper",
    citation=_PAPER,
))

# ---------------------------------------------------------------------------
# Alternative culling mechanisms the paper discusses (Sections IV-A, VIII).
# ---------------------------------------------------------------------------

HIZ = register(Technique(
    name="hiz",
    summary="Hierarchical-Z primitive rejection (intra-frame)",
    feature_set=PipelineFeatures(hierarchical_z=True),
    aliases=("hierarchical-z",),
    kind="alternative",
    citation="Greene et al., 'Hierarchical Z-buffer visibility' (1993)",
))

Z_PREPASS = register(Technique(
    name="z-prepass",
    summary="charged software depth-only pre-pass per tile",
    feature_set=PipelineFeatures(z_prepass=True),
    aliases=("prepass",),
    kind="alternative",
    citation=_PAPER + ", Section IV-A",
))

EVR_HIZ = register(Technique(
    name="evr-hiz",
    summary="EVR reordering composed with Hierarchical-Z rejection",
    feature_set=PipelineFeatures(
        evr_hardware=True, evr_reorder=True, hierarchical_z=True,
    ),
    aliases=("evr+hiz",),
    kind="alternative",
    citation=_PAPER + ", Section VIII",
))

# ---------------------------------------------------------------------------
# Rival techniques from the lineage (PAPERS.md) — approximate by design.
# ---------------------------------------------------------------------------

DSR = register(Technique(
    name="dsr",
    summary="per-tile fractional shading rate from signature stability",
    feature_set=PipelineFeatures(dsr=True),
    aliases=("dynamic-sampling-rate",),
    kind="rival",
    pixel_exact=False,
    error_tolerance=0.125,
    citation="Anglada et al., 'Dynamic Sampling Rate' (arXiv:2202.10533)",
))

FHV = register(Technique(
    name="fhv",
    summary="reuse prior-frame framebuffer for predicted-occluded draws",
    # No evr_reorder: reconstruction *replaces* reordering as the
    # overshading defense.  Predicted-occluded primitives stay in
    # submission order, pass the depth test before their occluders
    # arrive, and get last frame's colors instead of shading.
    feature_set=PipelineFeatures(evr_hardware=True, fhv=True),
    aliases=("fragment-history",),
    kind="rival",
    pixel_exact=False,
    error_tolerance=0.125,
    citation="'Fragment-History Volumes' (arXiv:2211.15460)",
))

VRPIPE_ET = register(Technique(
    name="vrpipe-et",
    summary="opacity-threshold early termination for blended stacks",
    feature_set=PipelineFeatures(vrpipe_early_termination=True),
    aliases=("vrpipe", "vr-pipe"),
    kind="rival",
    pixel_exact=False,
    error_tolerance=0.02,
    citation="'VR-Pipe' (arXiv:2502.17078)",
))

# ---------------------------------------------------------------------------
# Distilled-metric extractors: per-technique columns for RunMetrics.extra,
# the rivals figure and the dashboard.  Keyed by name (not stored on the
# descriptor) so techniques stay picklable.
# ---------------------------------------------------------------------------


def _stats_extractor(*fields: str):
    def extract(result) -> Dict[str, float]:
        stats = result.total_stats()
        return {name: float(getattr(stats, name)) for name in fields}
    return extract


register_metric_extractor("hiz", _stats_extractor("hiz_culled"))
register_metric_extractor("z-prepass", _stats_extractor("prepass_fragments"))
register_metric_extractor(
    "evr-hiz", _stats_extractor("hiz_culled"))
register_metric_extractor("dsr", _stats_extractor("dsr_reused_fragments"))
register_metric_extractor(
    "fhv", _stats_extractor("fhv_reconstructed", "fhv_reconstruction_error"))
register_metric_extractor("vrpipe-et", _stats_extractor("vrpipe_killed"))
