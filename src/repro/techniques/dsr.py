"""Dynamic Sampling Rate (DSR): per-tile fractional shading rates.

A functional model of Anglada et al.'s follow-up technique: instead of
skipping *whole* redundant tiles (Rendering Elimination), DSR lowers the
fragment-shading rate of tiles whose content has been *stable* across
recent frames, shading one fragment per 1x2 or 2x2 block and replicating
its color to the block's other fragments.

The model reuses the paper's signature machinery (:class:`SignatureBuffer`)
but feeds it a *coarse* signature — window positions quantized to whole
pixels, depths and attributes to small steps — so slow sub-pixel motion
still reads as "stable" and gets downsampled.  That is the essential
difference from RE: RE's exact signature must never false-match (a skip
is all-or-nothing), while DSR's coarse signature is allowed to match
across visually-similar frames because the cost of being wrong is bounded
blur, not a wrong tile.

Per frame, each tile's stability streak selects a rate:

=========  ====  ==================================
streak     rate  meaning
=========  ====  ==================================
0          1.0   full shading (content changing)
>= 1       0.5   1x2 blocks: one shaded, one reused
>= 3       0.25  2x2 blocks: one shaded, three reused
=========  ====  ==================================

The rate is resolved parent-side when tile jobs are scheduled (never
inside workers), so process-pool and serial schedulers stay
bit-identical.
"""

from __future__ import annotations

import struct
import zlib
from typing import List

from ..hw.signature_buffer import SignatureBuffer

__all__ = ["dsr_signature", "DSRController", "DSR_RATES"]

#: Quantization steps for the coarse stability signature.
_QUANT_XY = 1.0        # window-space pixels
_QUANT_Z = 1.0 / 128.0
_QUANT_ATTR = 1.0 / 256.0

#: The discrete sampling rates the controller can select.
DSR_RATES = (1.0, 0.5, 0.25)


def _quantize(value: float, step: float) -> int:
    return int(round(value / step))


def dsr_signature(triangle) -> int:
    """Coarse CRC32 of a :class:`ScreenTriangle` for stability tracking.

    Unlike ``RenderingElimination.primitive_crc`` (full f64 positions —
    must never false-match), this quantizes positions to whole pixels,
    depths to 1/128 and attributes to 1/256 so near-identical frames
    produce equal signatures.
    """
    parts: List[bytes] = [triangle.state.pack()]
    for position, depth, attrs in zip(
        triangle.xy, triangle.z, triangle.attributes
    ):
        parts.append(struct.pack(
            "<3i",
            _quantize(position.x, _QUANT_XY),
            _quantize(position.y, _QUANT_XY),
            _quantize(depth, _QUANT_Z),
        ))
        parts.append(struct.pack(
            "<9i",
            _quantize(attrs.color.x, _QUANT_ATTR),
            _quantize(attrs.color.y, _QUANT_ATTR),
            _quantize(attrs.color.z, _QUANT_ATTR),
            _quantize(attrs.color.w, _QUANT_ATTR),
            _quantize(attrs.uv.x, _QUANT_ATTR),
            _quantize(attrs.uv.y, _QUANT_ATTR),
            _quantize(attrs.normal.x, _QUANT_ATTR),
            _quantize(attrs.normal.y, _QUANT_ATTR),
            _quantize(attrs.normal.z, _QUANT_ATTR),
        ))
    return zlib.crc32(b"".join(parts))


class DSRController:
    """Tracks per-tile coarse-signature stability and selects rates.

    Lives on the GPU (parent process) next to ``RenderingElimination``:
    the geometry pipeline feeds it one coarse CRC per (primitive, tile)
    during binning, the raster pipeline asks :meth:`rate_for_tile` when
    building each :class:`TileJob`, and the GPU calls :meth:`end_frame`
    after every frame.
    """

    HALF_RATE_STREAK = 1
    QUARTER_RATE_STREAK = 3

    def __init__(self, num_tiles: int) -> None:
        self.num_tiles = num_tiles
        self.signatures = SignatureBuffer(num_tiles)
        #: consecutive frames each tile's coarse signature has matched.
        self.stability: List[int] = [0] * num_tiles

    def on_primitive_binned(self, tile: int, coarse_crc: int) -> None:
        """Fold one primitive's coarse signature into the tile."""
        self.signatures.update(tile, coarse_crc)

    def rate_for_tile(self, tile: int) -> float:
        """The sampling rate for this tile *this* frame (from streaks
        established by previous frames' :meth:`end_frame`)."""
        streak = self.stability[tile]
        if streak >= self.QUARTER_RATE_STREAK:
            return 0.25
        if streak >= self.HALF_RATE_STREAK:
            return 0.5
        return 1.0

    def end_frame(self) -> None:
        """Advance stability streaks and rotate the signature buffer."""
        for tile in range(self.num_tiles):
            if self.signatures.matches_previous(tile):
                self.stability[tile] += 1
            else:
                self.stability[tile] = 0
        self.signatures.rotate_frame()
