"""``repro.techniques`` — the pluggable pipeline-technique registry.

The mode axis of the whole repo: ``workload.modes`` validation, the
``repro validate`` / corpus-gate matrices, harness caching and the CLI
all resolve technique names here.  Importing the package registers the
built-in catalog (paper modes, alternative culling mechanisms, and the
DSR / FHV / VR-Pipe rival models); downstream code registers more with
:func:`register` and they flow through every gate automatically.

Adding a technique is ~50 lines: build a :class:`PipelineFeatures`
combination (adding flags + the fragment-path hook if the mechanism is
new), ``register(Technique(...))`` with a validation contract
(``pixel_exact`` or an ``error_tolerance``), and optionally attach a
:func:`register_metric_extractor` for its distilled metrics.  See
``docs/architecture.md`` §14.
"""

from .registry import (
    Technique,
    all_techniques,
    default_modes,
    get_technique,
    metric_extras,
    register,
    register_metric_extractor,
    resolve_features,
    resolve_technique,
    technique_names,
    unknown_mode_message,
)
from .catalog import (  # noqa: F401  (importing populates the registry)
    BASELINE,
    DSR,
    EVR,
    EVR_HIZ,
    EVR_REORDER_ONLY,
    FHV,
    HIZ,
    ORACLE,
    RE,
    VRPIPE_ET,
    Z_PREPASS,
)
from .dsr import DSRController, dsr_signature

__all__ = [
    "Technique",
    "register",
    "register_metric_extractor",
    "get_technique",
    "resolve_technique",
    "resolve_features",
    "default_modes",
    "all_techniques",
    "technique_names",
    "unknown_mode_message",
    "metric_extras",
    "DSRController",
    "dsr_signature",
    "BASELINE",
    "RE",
    "EVR",
    "EVR_REORDER_ONLY",
    "ORACLE",
    "HIZ",
    "Z_PREPASS",
    "EVR_HIZ",
    "DSR",
    "FHV",
    "VRPIPE_ET",
]
