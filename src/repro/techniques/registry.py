"""The technique registry: the open axis that replaces ``PipelineMode``.

Historically the mode axis was a closed five-member enum hardcoded in
nine modules; every rival technique required forking the spec layer, the
validator, the corpus gate, the harness and the CLI.  This module turns
the axis into data: a :class:`Technique` is a frozen descriptor (name,
aliases, feature construction, validation contract, distilled-metric
contributions) and every former ``PipelineMode`` call site resolves
names through the registry instead.

Design constraints the descriptor honors:

* **Duck-compatible with the old enum.**  ``technique.value`` and
  ``technique.features()`` mirror ``PipelineMode.value`` /
  ``PipelineMode.features()``, so cache keys, run-ledger entries, journal
  rows and check labels are byte-identical for the paper modes and the
  refactor invalidates nothing.
* **Picklable.**  Descriptors ride inside scheduler payloads
  (``SuiteRunner`` fan-out) and must cross process boundaries; they
  therefore carry no callables.  Per-technique metric extractors live in
  a module-level table keyed by name (:func:`register_metric_extractor`)
  and are looked up parent-side only.
* **Hashable.**  ``(benchmark, technique)`` is a memo/cache key in the
  harness, so the descriptor (and its ``PipelineFeatures``) stays a
  frozen dataclass.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigError
from ..pipeline.features import PipelineFeatures

__all__ = [
    "Technique",
    "register",
    "register_metric_extractor",
    "get_technique",
    "resolve_technique",
    "resolve_features",
    "default_modes",
    "all_techniques",
    "technique_names",
    "metric_extras",
]


@dataclass(frozen=True)
class Technique:
    """One registered pipeline technique.

    Attributes:
        name: canonical registry name — the string that appears in
            ``workload.modes``, cache keys, ledger entries and check
            labels.
        summary: one-line description for ``repro modes``.
        feature_set: the :class:`PipelineFeatures` combination the
            technique stands for.
        aliases: alternative names accepted anywhere a mode name is
            (CLI, specs); resolution is case-insensitive.
        kind: ``"paper"`` (the reference set), ``"alternative"``
            (Section IV-A/VIII culling mechanisms) or ``"rival"``
            (successor techniques from the lineage).
        pixel_exact: validation contract — ``True`` means the technique
            must reproduce baseline images bit-exactly; ``False`` means
            it is an approximation bounded by ``error_tolerance``.
        error_tolerance: for approximate techniques, the maximum
            per-frame mean absolute color error (per channel, in the
            0..1 float color scale) ``repro validate`` accepts against
            baseline.
        citation: where the technique comes from.
    """

    name: str
    summary: str
    feature_set: PipelineFeatures
    aliases: Tuple[str, ...] = ()
    kind: str = "paper"
    pixel_exact: bool = True
    error_tolerance: float = 0.0
    citation: str = ""

    def __post_init__(self) -> None:
        if not self.name or self.name != self.name.strip().lower():
            raise ConfigError(
                f"technique name must be non-empty lowercase: {self.name!r}"
            )
        if self.kind not in ("paper", "alternative", "rival"):
            raise ConfigError(f"unknown technique kind {self.kind!r}")
        if self.pixel_exact and self.error_tolerance:
            raise ConfigError(
                f"{self.name}: pixel-exact techniques take no error tolerance"
            )
        if not self.pixel_exact and self.error_tolerance <= 0.0:
            raise ConfigError(
                f"{self.name}: approximate techniques need error_tolerance > 0"
            )

    # -- PipelineMode duck compatibility ---------------------------------
    @property
    def value(self) -> str:
        """The mode string (``PipelineMode.value`` compatibility)."""
        return self.name

    def features(self) -> PipelineFeatures:
        """The feature-flag combination this technique stands for."""
        return self.feature_set

    @property
    def paper(self) -> bool:
        return self.kind == "paper"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: Registration order defines the default validation/corpus matrix order.
_REGISTRY: Dict[str, Technique] = {}
_ALIASES: Dict[str, str] = {}
#: name -> RunResult -> {metric: value}; kept out of Technique for pickling.
_EXTRACTORS: Dict[str, Callable[[object], Dict[str, float]]] = {}


def register(technique: Technique) -> Technique:
    """Add a technique to the registry; duplicate names/aliases reject."""
    claimed = (technique.name,) + tuple(a.lower() for a in technique.aliases)
    for name in claimed:
        if name in _REGISTRY or name in _ALIASES:
            raise ConfigError(
                f"technique name {name!r} is already registered"
            )
    if len(set(claimed)) != len(claimed):
        raise ConfigError(
            f"technique {technique.name!r} repeats a name in its aliases"
        )
    _REGISTRY[technique.name] = technique
    for alias in technique.aliases:
        _ALIASES[alias.lower()] = technique.name
    return technique


def register_metric_extractor(
    name: str, extractor: Callable[[object], Dict[str, float]]
) -> None:
    """Attach a distilled-metric extractor (``RunResult -> dict``) to a
    registered technique.  Extractors feed ``RunMetrics.extra``."""
    get_technique(name)  # must exist
    _EXTRACTORS[get_technique(name).name] = extractor


def metric_extras(name: str, result: object) -> Dict[str, float]:
    """Distilled per-technique metrics for one run (empty if none)."""
    extractor = _EXTRACTORS.get(name)
    return dict(extractor(result)) if extractor is not None else {}


def get_technique(name: str) -> Technique:
    """Resolve a mode name or alias; unknown names raise with the
    registered names and the closest match."""
    key = str(name).strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ConfigError(unknown_mode_message(name)) from None


def unknown_mode_message(name: str) -> str:
    """The diagnostic for an unregistered mode name (shared with
    ``repro.spec`` so CLI and spec errors read identically)."""
    known = sorted(_REGISTRY) + sorted(_ALIASES)
    close = difflib.get_close_matches(str(name).strip().lower(), known, n=1)
    hint = f"; did you mean {close[0]!r}?" if close else ""
    return (
        f"unknown mode {name!r} (registered: "
        f"{', '.join(sorted(_REGISTRY))}){hint}"
    )


def resolve_technique(mode: object) -> Technique:
    """Coerce a Technique / ``PipelineMode`` / name string to a
    registered :class:`Technique`."""
    if isinstance(mode, Technique):
        return mode
    value = getattr(mode, "value", mode)
    if isinstance(value, str):
        return get_technique(value)
    raise ConfigError(f"cannot resolve {mode!r} to a registered technique")


def resolve_features(mode: object) -> PipelineFeatures:
    """Coerce any mode designator (or a raw :class:`PipelineFeatures`)
    to the feature flags to run."""
    if isinstance(mode, PipelineFeatures):
        return mode
    return resolve_technique(mode).features()


def default_modes() -> Tuple[Technique, ...]:
    """Every registered technique, in registration order — the default
    modes × backends matrix for ``repro validate`` and the corpus gate."""
    return tuple(_REGISTRY.values())


def all_techniques() -> Tuple[Technique, ...]:
    return default_modes()


def technique_names(include_aliases: bool = False) -> Tuple[str, ...]:
    """Registered canonical names (optionally plus aliases)."""
    names: List[str] = list(_REGISTRY)
    if include_aliases:
        names.extend(sorted(_ALIASES))
    return tuple(names)
