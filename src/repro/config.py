"""GPU configuration mirroring Table II of the EVR paper.

The defaults model an ARM Mali-450-class tile-based-rendering GPU: 400 MHz,
16x16-pixel tiles, one vertex processor, four fragment processors, small
on-chip caches and a dual-channel LPDDR3-like memory interface.

The paper simulates a 1196x768 screen for 60 frames.  A pure-Python
functional simulation at that resolution is possible but slow, so
:func:`GPUConfig.paper` returns the faithful configuration while
:func:`GPUConfig.default` returns a scaled configuration (192x160, same tile
size) used by the test-suite and the benchmark harness.  Per-tile behaviour
is resolution independent, so the scaled configuration preserves the shape
of every result.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from .errors import ConfigError


def default_jobs(cli_value: Optional[int] = None) -> int:
    """Resolve the worker-process count for scheduler fan-out.

    Precedence: an explicit CLI ``--jobs`` value, then the ``REPRO_JOBS``
    environment variable, then 1 (serial — the historical behaviour).
    A malformed ``REPRO_JOBS`` is ignored rather than fatal, but is
    named in a one-shot warning so the fallback never passes silently.
    """
    if cli_value is not None:
        return cli_value
    env = os.environ.get("REPRO_JOBS", "")
    try:
        return int(env) if env else 1
    except ValueError:
        from .obs.log import warn_once

        warn_once(
            "config", f"REPRO_JOBS={env}",
            f"ignoring malformed REPRO_JOBS={env!r} "
            f"(expected an integer); running serial",
        )
        return 1


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one set-associative cache (Table II, "Caches")."""

    name: str
    size_bytes: int
    line_bytes: int = 64
    associativity: int = 2
    banks: int = 1
    latency_cycles: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise ConfigError(f"cache {self.name}: sizes must be positive")
        if self.size_bytes % self.line_bytes:
            raise ConfigError(
                f"cache {self.name}: size {self.size_bytes} is not a "
                f"multiple of the line size {self.line_bytes}"
            )
        num_lines = self.size_bytes // self.line_bytes
        if self.associativity <= 0 or num_lines % self.associativity:
            raise ConfigError(
                f"cache {self.name}: {num_lines} lines cannot form "
                f"{self.associativity}-way sets"
            )

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity


@dataclass(frozen=True)
class QueueConfig:
    """Geometry of one inter-stage queue (Table II, "Queues")."""

    name: str
    entries: int
    entry_bytes: int

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.entry_bytes <= 0:
            raise ConfigError(f"queue {self.name}: sizes must be positive")


@dataclass(frozen=True)
class GPUConfig:
    """Full simulation configuration (Table II of the paper).

    Instances are immutable; use :meth:`scaled` or ``dataclasses.replace``
    to derive variants.
    """

    # Tech specs
    frequency_mhz: int = 400
    voltage_v: float = 1.0
    technology_nm: int = 32

    # Screen geometry
    screen_width: int = 1196
    screen_height: int = 768
    tile_width: int = 16
    tile_height: int = 16

    # Main memory
    dram_latency_min_cycles: int = 50
    dram_latency_max_cycles: int = 100
    dram_bandwidth_bytes_per_cycle: int = 4
    dram_channels: int = 2
    dram_size_bytes: int = 1 << 30

    # Queues
    queues: Tuple[QueueConfig, ...] = (
        QueueConfig("vertex0", 16, 136),
        QueueConfig("vertex1", 16, 136),
        QueueConfig("triangle", 16, 388),
        QueueConfig("tile", 16, 388),
        QueueConfig("fragment", 64, 233),
    )

    # Caches
    caches: Tuple[CacheConfig, ...] = (
        CacheConfig("vertex", 4 * 1024, 64, 2, 1, 1),
        CacheConfig("texture0", 8 * 1024, 64, 2, 1, 1),
        CacheConfig("texture1", 8 * 1024, 64, 2, 1, 1),
        CacheConfig("texture2", 8 * 1024, 64, 2, 1, 1),
        CacheConfig("texture3", 8 * 1024, 64, 2, 1, 1),
        CacheConfig("tile", 128 * 1024, 64, 8, 8, 1),
        CacheConfig("l2", 256 * 1024, 64, 8, 8, 2),
        CacheConfig("color_buffer", 1024, 64, 1, 1, 1),
        CacheConfig("depth_buffer", 1024, 64, 1, 1, 1),
    )

    # Non-programmable stage throughputs
    triangles_per_cycle: int = 1
    raster_attributes_per_cycle: int = 16
    early_z_inflight_quads: int = 32

    # Programmable stages
    vertex_processors: int = 1
    fragment_processors: int = 4

    # Additional EVR hardware (Table II, "Additional hardware")
    lgt_entry_bytes: int = 3
    fvp_entry_bytes: int = 4
    layer_buffer_bytes: int = 1024

    # Simulation controls (not in Table II)
    frames: int = 60
    clear_depth: float = 1.0
    clear_color: Tuple[float, float, float, float] = (0.0, 0.0, 0.0, 1.0)

    def __post_init__(self) -> None:
        if self.screen_width <= 0 or self.screen_height <= 0:
            raise ConfigError("screen dimensions must be positive")
        if self.tile_width <= 0 or self.tile_height <= 0:
            raise ConfigError("tile dimensions must be positive")
        if self.frequency_mhz <= 0:
            raise ConfigError("frequency must be positive")
        if self.frames <= 0:
            raise ConfigError("frame count must be positive")
        if self.fragment_processors <= 0 or self.vertex_processors <= 0:
            raise ConfigError("processor counts must be positive")
        if self.dram_latency_min_cycles > self.dram_latency_max_cycles:
            raise ConfigError("dram latency range is inverted")

    # -- derived geometry -------------------------------------------------

    @property
    def tiles_x(self) -> int:
        """Number of tile columns (partial right-edge tiles count)."""
        return -(-self.screen_width // self.tile_width)

    @property
    def tiles_y(self) -> int:
        """Number of tile rows (partial bottom-edge tiles count)."""
        return -(-self.screen_height // self.tile_height)

    @property
    def num_tiles(self) -> int:
        return self.tiles_x * self.tiles_y

    @property
    def pixels_per_tile(self) -> int:
        return self.tile_width * self.tile_height

    @property
    def num_pixels(self) -> int:
        return self.screen_width * self.screen_height

    def cache(self, name: str) -> CacheConfig:
        """Return the configuration for the cache called ``name``."""
        for cache in self.caches:
            if cache.name == name:
                return cache
        raise ConfigError(f"unknown cache {name!r}")

    def queue(self, name: str) -> QueueConfig:
        """Return the configuration for the queue called ``name``."""
        for queue in self.queues:
            if queue.name == name:
                return queue
        raise ConfigError(f"unknown queue {name!r}")

    # -- factories ---------------------------------------------------------

    @classmethod
    def paper(cls) -> "GPUConfig":
        """The exact Table II configuration (1196x768, 60 frames)."""
        return cls()

    @classmethod
    def default(cls, frames: int = 16) -> "GPUConfig":
        """Scaled configuration used by tests and the default harness.

        Keeps the 16x16 tile size (per-tile behaviour is what matters) but
        shrinks the screen to 192x160 -> 12x10 = 120 tiles, and simulates
        fewer frames.
        """
        return cls(screen_width=192, screen_height=160, frames=frames)

    @classmethod
    def tiny(cls, frames: int = 4) -> "GPUConfig":
        """Minimal configuration for fast unit tests (4x3 = 12 tiles)."""
        return cls(screen_width=64, screen_height=48, frames=frames)

    def scaled(self, **overrides: object) -> "GPUConfig":
        """Return a copy with ``overrides`` applied."""
        return replace(self, **overrides)  # type: ignore[arg-type]

    def describe(self) -> Dict[str, object]:
        """A flat summary used by the Table II bench target."""
        return {
            "frequency": f"{self.frequency_mhz} MHz",
            "voltage": f"{self.voltage_v} V",
            "technology": f"{self.technology_nm} nm",
            "screen": f"{self.screen_width}x{self.screen_height}",
            "tile": f"{self.tile_width}x{self.tile_height}",
            "tiles": f"{self.tiles_x}x{self.tiles_y} = {self.num_tiles}",
            "dram_latency": (
                f"{self.dram_latency_min_cycles}-"
                f"{self.dram_latency_max_cycles} cycles"
            ),
            "dram_bandwidth": f"{self.dram_bandwidth_bytes_per_cycle} B/cycle",
            "vertex_processors": self.vertex_processors,
            "fragment_processors": self.fragment_processors,
            "frames": self.frames,
        }
