"""repro — a reproduction of *Early Visibility Resolution for Removing
Ineffectual Computations in the Graphics Pipeline* (HPCA 2019).

The package implements a tile-based-rendering mobile GPU simulator
(functional + event-cost model), the Rendering Elimination technique, and
the paper's EVR mechanism (FVP-based visibility prediction, Algorithm-1
display-list reordering, and signature filtering), together with synthetic
benchmark scenes and a harness regenerating every figure of the paper.

Quickstart::

    from repro import GPU, GPUConfig, PipelineMode
    from repro.scenes import benchmark_stream

    config = GPUConfig.default(frames=8)
    stream = benchmark_stream("cde", config)
    result = GPU(config, PipelineMode.EVR).render_stream(stream)
    print(result.total_cycles().total, result.redundant_tile_rate())
"""

from .config import CacheConfig, GPUConfig, QueueConfig
from .errors import (
    CommandError,
    ConfigError,
    MemoryModelError,
    PipelineError,
    ReproError,
    SceneError,
    SpecError,
)
from .commands import (
    BlendMode,
    DrawCommand,
    Frame,
    FrameStream,
    RenderState,
    ShaderProfile,
)
from .pipeline import (
    GPU,
    FrameResult,
    PipelineFeatures,
    PipelineMode,
    RunResult,
)
from .spec import (
    FeatureOverrides,
    ObsSpec,
    ResilienceSpec,
    ResolvedSpec,
    RunSpec,
    SchedulerSpec,
    WorkloadSpec,
    resolve_spec,
)
from .validate import ValidationReport, validate_stream

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "GPUConfig",
    "CacheConfig",
    "QueueConfig",
    "ReproError",
    "ConfigError",
    "PipelineError",
    "CommandError",
    "SceneError",
    "MemoryModelError",
    "ShaderProfile",
    "BlendMode",
    "RenderState",
    "DrawCommand",
    "Frame",
    "FrameStream",
    "GPU",
    "PipelineFeatures",
    "PipelineMode",
    "FrameResult",
    "RunResult",
    "SpecError",
    "RunSpec",
    "ResolvedSpec",
    "WorkloadSpec",
    "FeatureOverrides",
    "SchedulerSpec",
    "ResilienceSpec",
    "ObsSpec",
    "resolve_spec",
    "validate_stream",
    "ValidationReport",
]
