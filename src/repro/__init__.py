"""repro — a reproduction of *Early Visibility Resolution for Removing
Ineffectual Computations in the Graphics Pipeline* (HPCA 2019).

The package implements a tile-based-rendering mobile GPU simulator
(functional + event-cost model), the Rendering Elimination technique, and
the paper's EVR mechanism (FVP-based visibility prediction, Algorithm-1
display-list reordering, and signature filtering), together with synthetic
benchmark scenes and a harness regenerating every figure of the paper.
Pipeline techniques — the paper modes plus alternative and rival
mechanisms (Hi-Z, Z-prepass, DSR, FHV, VR-Pipe-style early termination)
— live in a pluggable registry (:mod:`repro.techniques`); any call that
takes a mode accepts a registered technique name.

Quickstart::

    from repro import GPU, GPUConfig
    from repro.scenes import benchmark_stream

    config = GPUConfig.default(frames=8)
    stream = benchmark_stream("cde", config)
    result = GPU(config, "evr").render_stream(stream)
    print(result.total_cycles().total, result.redundant_tile_rate())

``repro modes`` on the command line lists every registered technique.
"""

from .config import CacheConfig, GPUConfig, QueueConfig
from .errors import (
    CommandError,
    ConfigError,
    MemoryModelError,
    PipelineError,
    ReproError,
    SceneError,
    SpecError,
)
from .commands import (
    BlendMode,
    DrawCommand,
    Frame,
    FrameStream,
    RenderState,
    ShaderProfile,
)
from .pipeline import (
    GPU,
    FrameResult,
    PipelineFeatures,
    PipelineMode,
    RunResult,
)
from .spec import (
    FeatureOverrides,
    ObsSpec,
    ResilienceSpec,
    ResolvedSpec,
    RunSpec,
    SchedulerSpec,
    WorkloadSpec,
    resolve_spec,
)
from .techniques import (
    Technique,
    default_modes,
    get_technique,
    register,
    technique_names,
)
from .validate import ValidationReport, validate_stream

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "GPUConfig",
    "CacheConfig",
    "QueueConfig",
    "ReproError",
    "ConfigError",
    "PipelineError",
    "CommandError",
    "SceneError",
    "MemoryModelError",
    "ShaderProfile",
    "BlendMode",
    "RenderState",
    "DrawCommand",
    "Frame",
    "FrameStream",
    "GPU",
    "PipelineFeatures",
    "PipelineMode",
    "FrameResult",
    "RunResult",
    "SpecError",
    "RunSpec",
    "ResolvedSpec",
    "WorkloadSpec",
    "FeatureOverrides",
    "SchedulerSpec",
    "ResilienceSpec",
    "ObsSpec",
    "resolve_spec",
    "Technique",
    "register",
    "get_technique",
    "technique_names",
    "default_modes",
    "validate_stream",
    "ValidationReport",
]
