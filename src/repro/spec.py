"""The unified experiment spec: one declarative, hashable ``RunSpec``.

The paper's evaluation is a grid of (benchmark x configuration) cells —
Table II hardware parameters crossed with the BASELINE/RE/EVR/ORACLE
feature sets.  Historically each layer of this repository assembled its
cell parameters ad hoc: argparse namespaces in the CLI, env vars
(``REPRO_JOBS``, ``REPRO_FAULTS``), per-subsystem helper functions, and
a hand-rolled cache-key tuple that could silently drift from what
actually varied.  This module replaces all of that with a single frozen,
serializable dataclass tree:

``RunSpec``
    ├── ``gpu``         — :class:`repro.config.GPUConfig` (Table II)
    ├── ``workload``    — benchmarks + pipeline modes to run
    ├── ``features``    — per-field overrides on each mode's feature set
    ├── ``cost``        — :class:`repro.timing.CostParameters`
    ├── ``energy``      — :class:`repro.energy.EnergyParameters`
    ├── ``scheduler``   — worker fan-out (``--jobs``)
    ├── ``resilience``  — retries, timeouts, fault plan, resume/strict
    └── ``obs``         — trace/metrics/events paths, live progress,
                          ledger directory, verbosity

Three properties make it the backbone every layer shares:

* **Layered resolution** (:func:`resolve_spec`): built-in presets →
  spec file (TOML/JSON) → environment → CLI flags → dotted-path
  ``--set key=value`` overrides, with per-field provenance recording
  which layer supplied every value (``repro spec show``).
* **Round-trip serialization**: :meth:`RunSpec.to_file` /
  :meth:`RunSpec.from_file` preserve equality, so a resolved spec can be
  dumped, versioned, and replayed bit-identically.
* **Canonical hashing**: :meth:`RunSpec.spec_hash` digests the
  *result-affecting* sections (``gpu``, ``features``, ``cost``,
  ``energy``) over a normalized JSON form.  Execution policy —
  scheduler fan-out, retries, fault injection, observability — is
  deliberately excluded: the engine guarantees those never change a
  result, so they must never split the cache.  The disk cache and the
  crash journal key entries by this hash plus the code version.

Validation is eager: unknown keys, type mismatches and inconsistent
values raise :class:`repro.errors.SpecError` at resolution time, before
any simulation starts.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import typing
from dataclasses import dataclass, field, fields, replace
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from . import kernels as _kernels
from .config import GPUConfig
from .energy import EnergyParameters
from .errors import ConfigError, SpecError
from .obs.log import verbosity_from_flags, warn_once
from .pipeline.features import PipelineFeatures
from .resilience.faults import FaultPlan
from .resilience.policy import RetryPolicy
from .techniques import (
    Technique,
    get_technique,
    resolve_features,
    unknown_mode_message,
)
from .timing import CostParameters

#: Environment variables folded into the spec's ``env`` layer, mapped to
#: the dotted spec path they set.
ENV_VARS: Dict[str, str] = {
    "REPRO_JOBS": "scheduler.jobs",
    "REPRO_BACKEND": "scheduler.backend",
    "REPRO_FAULTS": "resilience.inject_faults",
}


# ---------------------------------------------------------------------------
# Sections
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkloadSpec:
    """Which (benchmark, mode) cells a run covers.

    ``benchmarks`` empty means "the command's default" — the full suite
    for figures/reports; an error for ``run``, which needs at least one.
    Benchmark aliases are validated lazily against the scene registry by
    the consumer (the registry is a heavyweight import); mode values are
    validated eagerly here against the technique registry
    (:mod:`repro.techniques`) and canonicalized, so an alias
    (``vrpipe``) and its canonical name (``vrpipe-et``) hash — and
    cache — identically.
    """

    benchmarks: Tuple[str, ...] = ()
    modes: Tuple[str, ...] = ("baseline", "re", "evr")

    def __post_init__(self) -> None:
        canonical: List[str] = []
        for mode in self.modes:
            try:
                canonical.append(get_technique(mode).value)
            except ConfigError:
                raise SpecError(
                    f"workload.modes: {unknown_mode_message(mode)}"
                ) from None
        object.__setattr__(self, "modes", tuple(canonical))
        if not self.modes:
            raise SpecError("workload.modes must name at least one mode")
        for benchmark in self.benchmarks:
            if not benchmark or not isinstance(benchmark, str):
                raise SpecError(
                    f"workload.benchmarks: invalid alias {benchmark!r}"
                )

    def pipeline_modes(self) -> Tuple[Technique, ...]:
        return tuple(get_technique(mode) for mode in self.modes)


@dataclass(frozen=True)
class FeatureOverrides:
    """Optional per-field overrides applied on top of each pipeline
    mode's feature set (``None`` = inherit the mode's value).

    ``--set features.evr_reorder=false`` turns Algorithm-1 reordering
    off in every mode that had it on; cross-flag consistency (e.g.
    ``evr_signature_filter`` requiring ``rendering_elimination``) is
    enforced by :class:`~repro.pipeline.PipelineFeatures` when the
    overrides are applied to a concrete mode.
    """

    early_z: Optional[bool] = None
    rendering_elimination: Optional[bool] = None
    evr_hardware: Optional[bool] = None
    evr_reorder: Optional[bool] = None
    evr_signature_filter: Optional[bool] = None
    oracle_z: Optional[bool] = None
    oracle_redundancy: Optional[bool] = None
    fvp_history: Optional[int] = None
    prediction_point: Optional[str] = None
    subtile_fvp: Optional[bool] = None
    z_prepass: Optional[bool] = None
    hierarchical_z: Optional[bool] = None
    dsr: Optional[bool] = None
    fhv: Optional[bool] = None
    vrpipe_early_termination: Optional[bool] = None
    vrpipe_threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if self.fvp_history is not None and self.fvp_history < 1:
            raise SpecError("features.fvp_history must be >= 1")
        if self.vrpipe_threshold is not None and self.vrpipe_threshold < 0.0:
            raise SpecError("features.vrpipe_threshold must be >= 0")
        if self.prediction_point is not None and self.prediction_point not in (
            "near", "centroid", "far"
        ):
            raise SpecError(
                f"features.prediction_point: unknown point "
                f"{self.prediction_point!r} (near, centroid or far)"
            )

    @property
    def overrides(self) -> Dict[str, object]:
        """The non-``None`` fields as a plain dict."""
        return {
            spec_field.name: getattr(self, spec_field.name)
            for spec_field in fields(self)
            if getattr(self, spec_field.name) is not None
        }

    def apply(self, features: PipelineFeatures) -> PipelineFeatures:
        """``features`` with every set override substituted in."""
        overrides = self.overrides
        if not overrides:
            return features
        return replace(features, **overrides)


@dataclass(frozen=True)
class SchedulerSpec:
    """Execution policy: ``--jobs`` / ``REPRO_JOBS`` and ``--backend`` /
    ``REPRO_BACKEND``.

    ``jobs``: 1 (the default) is serial, N >= 2 a process pool of N
    workers, negative one worker per CPU core —
    :func:`repro.engine.make_scheduler` semantics.

    ``backend`` selects the kernel implementation for the fragment hot
    path (:mod:`repro.kernels`) and the memory-system implementation
    used to replay recorded traces (:mod:`repro.memsys` — "numpy" gets
    the batched model, everything else the scalar reference).  Backends
    are bit-identical by contract, which is why this section sits
    outside the spec hash: results computed with either backend share
    cache entries.
    """

    jobs: int = 1
    backend: str = _kernels.DEFAULT_BACKEND

    def __post_init__(self) -> None:
        try:
            normalized = _kernels.normalize_backend(self.backend)
        except ValueError as error:
            raise SpecError(str(error)) from None
        if normalized != self.backend:
            object.__setattr__(self, "backend", normalized)


@dataclass(frozen=True)
class ResilienceSpec:
    """The fault-tolerance bundle (see :mod:`repro.resilience`).

    ``retries``/``job_timeout`` as ``None`` with an empty
    ``inject_faults`` leaves the historical fail-fast path armed —
    exactly the disarmed default the resilient scheduler wraps.
    """

    retries: Optional[int] = None
    job_timeout: Optional[float] = None
    inject_faults: str = ""
    fault_seed: int = 0
    resume: bool = False
    strict: bool = False

    def __post_init__(self) -> None:
        if self.retries is not None and self.retries < 1:
            raise SpecError("resilience.retries must be >= 1")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise SpecError("resilience.job_timeout must be positive")
        if self.inject_faults:
            try:
                FaultPlan.parse(self.inject_faults)
            except ValueError as error:
                raise SpecError(
                    f"resilience.inject_faults: {error}"
                ) from error

    @property
    def armed(self) -> bool:
        """Whether any resilience mechanism was requested."""
        return (bool(self.inject_faults) or self.retries is not None
                or self.job_timeout is not None)

    def retry_policy(self) -> Optional[RetryPolicy]:
        """The scheduler policy, or ``None`` when disarmed (fail-fast)."""
        if not self.armed:
            return None
        return RetryPolicy(
            max_attempts=self.retries if self.retries is not None else 4,
            timeout_seconds=self.job_timeout,
        )

    def fault_plan(self) -> Optional[FaultPlan]:
        """The deterministic fault plan, or ``None`` when none was set."""
        if not self.inject_faults:
            return None
        # An injected hang must outlast the timeout (so the timeout path
        # actually fires) but must never wedge an untimed run for long.
        hang_seconds = 2.0 * self.job_timeout if self.job_timeout else 30.0
        return FaultPlan.parse(self.inject_faults, seed=self.fault_seed,
                               hang_seconds=hang_seconds)


@dataclass(frozen=True)
class ObsSpec:
    """Observability options — never result-affecting by contract.

    ``events`` streams the structured event bus to a JSONL file and
    ``live`` renders it as terminal progress (both install an
    :class:`~repro.obs.events.EventBus` for the invocation).  ``ledger``
    overrides the run-ledger directory (default ``.repro_ledger/`` /
    ``REPRO_LEDGER_DIR``); ``"off"`` disables ledger recording.
    """

    trace: str = ""
    metrics: str = ""
    events: str = ""
    live: bool = False
    ledger: str = ""
    verbose: bool = False
    quiet: bool = False

    def __post_init__(self) -> None:
        if self.verbose and self.quiet:
            raise SpecError("obs.verbose and obs.quiet are exclusive")

    def verbosity(self) -> int:
        return verbosity_from_flags(self.verbose, self.quiet)

    def wants_bus(self) -> bool:
        """Whether this invocation should install a live event bus."""
        return bool(self.events or self.live)


def _default_gpu() -> GPUConfig:
    """The CLI's historical default: scaled screen, 10 frames."""
    return GPUConfig(screen_width=192, screen_height=160, frames=10)


@dataclass(frozen=True)
class RunSpec:
    """Everything that defines one experiment invocation."""

    gpu: GPUConfig = field(default_factory=_default_gpu)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    features: FeatureOverrides = field(default_factory=FeatureOverrides)
    cost: CostParameters = field(default_factory=CostParameters)
    energy: EnergyParameters = field(default_factory=EnergyParameters)
    scheduler: SchedulerSpec = field(default_factory=SchedulerSpec)
    resilience: ResilienceSpec = field(default_factory=ResilienceSpec)
    obs: ObsSpec = field(default_factory=ObsSpec)

    #: Sections whose values can change a simulated result.  Scheduler,
    #: resilience and obs are execution policy: the engine guarantees
    #: bit-identical results under any of them, so they are excluded
    #: from the identity hash (and hence from cache keys) by design.
    RESULT_SECTIONS = ("gpu", "features", "cost", "energy")

    # -- construction -------------------------------------------------------

    @classmethod
    def preset(cls, name: str) -> "RunSpec":
        """One of the built-in presets (``default``, ``paper``,
        ``scaled``, ``tiny``), fully resolved."""
        return resolve_spec(preset=name, env={}).spec

    @classmethod
    def from_file(cls, path: str) -> "RunSpec":
        """Load a spec from a TOML (default) or JSON file."""
        return spec_from_dict(_load_spec_file(path))

    @classmethod
    def from_config(cls, config: GPUConfig, **sections: Any) -> "RunSpec":
        """A spec wrapping an already-built :class:`GPUConfig` (the
        bridge for callers that predate the spec layer)."""
        return cls(gpu=config, **sections)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The spec as a nested plain dict (``None`` fields omitted)."""
        return _plain(self)

    def to_file(self, path: str) -> str:
        """Write the spec to ``path`` (TOML, or JSON for ``.json``);
        returns ``path`` so ``RunSpec.from_file(spec.to_file(p))``
        round-trips in one expression."""
        data = self.to_dict()
        if path.endswith(".json"):
            text = json.dumps(data, indent=2, sort_keys=True) + "\n"
        else:
            text = dumps_toml(data)
        with open(path, "w") as handle:
            handle.write(text)
        return path

    def to_toml(self) -> str:
        return dumps_toml(self.to_dict())

    # -- identity -----------------------------------------------------------

    def identity(self) -> Dict[str, Any]:
        """The result-affecting subset, as a normalized plain dict."""
        data = self.to_dict()
        return {section: data[section] for section in self.RESULT_SECTIONS}

    def spec_hash(self) -> str:
        """Canonical content hash of the result-affecting sections.

        Computed over sorted-key compact JSON of :meth:`identity`, so it
        is stable across processes, platforms and field ordering — the
        key the disk cache and crash journal build on.
        """
        canonical = json.dumps(self.identity(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    # -- derived ------------------------------------------------------------

    def features_for(self, mode: Union[Technique, PipelineFeatures, str]
                     ) -> PipelineFeatures:
        """The concrete feature set for ``mode`` (any technique
        designator the registry resolves, or a raw feature set) under
        this spec's overrides."""
        return self.features.apply(resolve_features(mode))

    def diff(self, other: "RunSpec") -> List[Tuple[str, Any, Any]]:
        """Field-wise differences: ``(dotted_path, self_value,
        other_value)`` rows, sorted by path."""
        mine = dict(flatten_spec(self))
        theirs = dict(flatten_spec(other))
        rows = []
        for path in sorted(set(mine) | set(theirs)):
            a = mine.get(path, None)
            b = theirs.get(path, None)
            if a != b:
                rows.append((path, a, b))
        return rows


# ---------------------------------------------------------------------------
# Plain-dict conversion (dataclass tree <-> nested dicts)
# ---------------------------------------------------------------------------

def _plain(value: Any) -> Any:
    """Dataclass tree -> nested plain dict/list (``None`` leaves omitted,
    so the result is TOML-representable)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            spec_field.name: _plain(getattr(value, spec_field.name))
            for spec_field in fields(value)
            if getattr(value, spec_field.name) is not None
        }
    if isinstance(value, (tuple, list)):
        return [_plain(item) for item in value]
    return value


def _type_name(annotation: Any) -> str:
    return getattr(annotation, "__name__", str(annotation))


def _coerce(value: Any, annotation: Any, path: str) -> Any:
    """Coerce a parsed TOML/JSON/CLI value to ``annotation``.

    Normalization matters for hashing: ``job_timeout = 30`` in a file
    must equal ``30.0`` from the CLI, so float fields always coerce.
    Bools are *not* accepted where ints are expected (TOML and Python
    agree they are distinct; ``True`` silently meaning 1 hides typos).
    """
    origin = typing.get_origin(annotation)
    if origin is Union:
        args = [a for a in typing.get_args(annotation) if a is not type(None)]
        if value is None:
            return None
        return _coerce(value, args[0], path)
    if origin in (tuple, Tuple):
        args = typing.get_args(annotation)
        if isinstance(value, str) and args and args[0] is str:
            value = [part.strip() for part in value.split(",") if part.strip()]
        if not isinstance(value, (list, tuple)):
            raise SpecError(f"{path}: expected a list, got {value!r}")
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(_coerce(item, args[0], f"{path}[{i}]")
                         for i, item in enumerate(value))
        if len(args) != len(value):
            raise SpecError(
                f"{path}: expected {len(args)} elements, got {len(value)}"
            )
        return tuple(_coerce(item, arg, f"{path}[{i}]")
                     for i, (item, arg) in enumerate(zip(value, args)))
    if dataclasses.is_dataclass(annotation):
        if not isinstance(value, Mapping):
            raise SpecError(f"{path}: expected a table, got {value!r}")
        return _dataclass_from_dict(annotation, value, path)
    if annotation is bool:
        if not isinstance(value, bool):
            raise SpecError(f"{path}: expected a boolean, got {value!r}")
        return value
    if annotation is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise SpecError(f"{path}: expected an integer, got {value!r}")
        return value
    if annotation is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpecError(f"{path}: expected a number, got {value!r}")
        return float(value)
    if annotation is str:
        if not isinstance(value, str):
            raise SpecError(f"{path}: expected a string, got {value!r}")
        return value
    raise SpecError(
        f"{path}: unsupported spec field type {_type_name(annotation)}"
    )  # pragma: no cover - every field annotation above is handled


def _dataclass_from_dict(cls: type, data: Mapping[str, Any],
                         path: str = "") -> Any:
    """Build dataclass ``cls`` from ``data`` with eager validation."""
    hints = typing.get_type_hints(cls)
    known = {spec_field.name for spec_field in fields(cls)}
    kwargs: Dict[str, Any] = {}
    for key, value in data.items():
        dotted = f"{path}.{key}" if path else key
        if key not in known:
            raise SpecError(
                f"unknown spec key {dotted!r} "
                f"(known: {', '.join(sorted(known))})"
            )
        kwargs[key] = _coerce(value, hints[key], dotted)
    try:
        return cls(**kwargs)
    except ConfigError:
        raise
    except (TypeError, ValueError) as error:
        raise SpecError(f"{path or cls.__name__}: {error}") from error


def spec_from_dict(data: Mapping[str, Any]) -> RunSpec:
    """A validated :class:`RunSpec` from a nested plain dict."""
    if not isinstance(data, Mapping):
        raise SpecError(f"spec root must be a table, got {data!r}")
    return _dataclass_from_dict(RunSpec, data)


def flatten_spec(spec: RunSpec) -> List[Tuple[str, Any]]:
    """Every leaf of the spec as ``(dotted_path, value)`` rows, in
    declaration order — what ``repro spec show`` prints."""
    rows: List[Tuple[str, Any]] = []

    def _walk(value: Any, path: str) -> None:
        if isinstance(value, Mapping):
            for key, item in value.items():
                _walk(item, f"{path}.{key}" if path else key)
        elif (isinstance(value, list) and value
              and isinstance(value[0], Mapping)):
            for index, item in enumerate(value):
                _walk(item, f"{path}[{index}]")
        else:
            rows.append((path, value))

    _walk(spec.to_dict(), "")
    return rows


# ---------------------------------------------------------------------------
# TOML (emit only; parsing uses the stdlib tomllib)
# ---------------------------------------------------------------------------

def _toml_scalar(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        text = repr(value)
        # TOML floats need a decimal point or exponent.
        if "." not in text and "e" not in text and "inf" not in text:
            text += ".0"
        return text
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, list):
        return "[" + ", ".join(_toml_scalar(item) for item in value) + "]"
    raise SpecError(f"cannot serialize {value!r} to TOML")


def _dumps_table(data: Mapping[str, Any], path: str,
                 lines: List[str]) -> None:
    scalars = {k: v for k, v in data.items()
               if not isinstance(v, Mapping)
               and not (isinstance(v, list) and v
                        and isinstance(v[0], Mapping))}
    tables = {k: v for k, v in data.items() if isinstance(v, Mapping)}
    array_tables = {k: v for k, v in data.items()
                    if isinstance(v, list) and v
                    and isinstance(v[0], Mapping)}
    if path and (scalars or not (tables or array_tables)):
        lines.append(f"[{path}]")
    for key, value in scalars.items():
        lines.append(f"{key} = {_toml_scalar(value)}")
    if scalars and (tables or array_tables):
        lines.append("")
    for key, value in array_tables.items():
        dotted = f"{path}.{key}" if path else key
        for item in value:
            lines.append(f"[[{dotted}]]")
            for item_key, item_value in item.items():
                lines.append(f"{item_key} = {_toml_scalar(item_value)}")
            lines.append("")
    for key, value in tables.items():
        dotted = f"{path}.{key}" if path else key
        _dumps_table(value, dotted, lines)
        lines.append("")


def dumps_toml(data: Mapping[str, Any]) -> str:
    """Serialize a nested plain dict as TOML (round-trips through the
    stdlib ``tomllib`` parser)."""
    lines: List[str] = []
    _dumps_table(data, "", lines)
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines) + "\n"


def _load_spec_file(path: str) -> Dict[str, Any]:
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as error:
        raise SpecError(f"cannot read spec file {path!r}: {error}") from error
    if path.endswith(".json"):
        try:
            data = json.loads(blob)
        except ValueError as error:
            raise SpecError(f"{path}: invalid JSON: {error}") from error
    else:
        import tomllib

        try:
            data = tomllib.loads(blob.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise SpecError(f"{path}: invalid TOML: {error}") from error
    if not isinstance(data, dict):
        raise SpecError(f"{path}: spec root must be a table")
    return data


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------

#: Built-in presets: overlay dicts applied on top of the defaults.
#: ``paper`` is the faithful Table II run; ``scaled`` matches
#: ``GPUConfig.default()`` (the harness/test configuration); ``tiny``
#: matches ``GPUConfig.tiny()`` (fast smoke runs).
PRESETS: Dict[str, Dict[str, Any]] = {
    "default": {},
    "paper": {"gpu": {"screen_width": 1196, "screen_height": 768,
                      "frames": 60}},
    "scaled": {"gpu": {"screen_width": 192, "screen_height": 160,
                       "frames": 16}},
    "tiny": {"gpu": {"screen_width": 64, "screen_height": 48, "frames": 4}},
}


def preset_names() -> Tuple[str, ...]:
    return tuple(sorted(PRESETS))


# ---------------------------------------------------------------------------
# Layered resolution with provenance
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ResolvedSpec:
    """A resolved spec plus where every field came from."""

    spec: RunSpec
    provenance: Dict[str, str]
    layers: Tuple[str, ...]

    def source_of(self, path: str) -> str:
        """The layer that supplied ``path`` (longest-prefix match;
        ``default`` when no layer touched it)."""
        probe = path
        while probe:
            if probe in self.provenance:
                return self.provenance[probe]
            # Strip one trailing component ("gpu.caches[0].name" ->
            # "gpu.caches[0]" -> "gpu.caches" -> "gpu").
            for separator in (".", "["):
                index = probe.rfind(separator)
                if index >= 0:
                    probe = probe[:index]
                    break
            else:
                break
        return "default"


def _mark(provenance: Dict[str, str], path: str, value: Any,
          source: str) -> None:
    """Record ``source`` for every leaf under ``path``."""
    if isinstance(value, Mapping):
        if not value:
            provenance[path] = source
        for key, item in value.items():
            _mark(provenance, f"{path}.{key}" if path else key, item, source)
    elif isinstance(value, (list, tuple)) and value and isinstance(
            value[0], Mapping):
        for index, item in enumerate(value):
            _mark(provenance, f"{path}[{index}]", item, source)
    else:
        provenance[path] = source


def _overlay(base: Dict[str, Any], layer: Mapping[str, Any],
             provenance: Dict[str, str], source: str,
             path: str = "") -> None:
    for key, value in layer.items():
        dotted = f"{path}.{key}" if path else key
        if isinstance(value, Mapping) and isinstance(base.get(key), Mapping):
            _overlay(base[key], value, provenance, source, dotted)
        else:
            base[key] = json.loads(json.dumps(value)) if isinstance(
                value, (Mapping, list)) else value
            _mark(provenance, dotted, value, source)


def _set_path(base: Dict[str, Any], path: str, value: Any,
              provenance: Dict[str, str], source: str) -> None:
    parts = path.split(".")
    node = base
    for part in parts[:-1]:
        child = node.get(part)
        if child is None:
            child = node[part] = {}
        if not isinstance(child, Mapping):
            raise SpecError(
                f"--set {path}: {part!r} is a value, not a table"
            )
        node = child
    node[parts[-1]] = value
    _mark(provenance, path, value, source)


def parse_set_value(text: str) -> Any:
    """Parse the value half of a ``--set key=value`` expression.

    ``true``/``false`` -> bool, then int, then float, then a (possibly
    quoted) string; a comma turns the value into a list of scalars
    (``--set workload.modes=baseline,evr``).
    """
    text = text.strip()
    if "," in text:
        return [parse_set_value(part) for part in text.split(",")
                if part.strip()]
    if text in ("true", "false"):
        return text == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1]
    return text


def parse_set(expression: str) -> Tuple[str, Any]:
    """Split a ``--set key=value`` expression into (dotted path, value)."""
    key, separator, text = expression.partition("=")
    key = key.strip()
    if not separator or not key:
        raise SpecError(
            f"malformed --set {expression!r} (expected key.path=value)"
        )
    return key, parse_set_value(text)


def _env_layers(env: Mapping[str, str]
                ) -> List[Tuple[str, Dict[str, Any]]]:
    """(source, overlay) pairs for the recognized environment variables,
    with one-shot warnings (never errors) for malformed values."""
    layers: List[Tuple[str, Dict[str, Any]]] = []
    jobs_text = env.get("REPRO_JOBS", "")
    if jobs_text:
        try:
            jobs = int(jobs_text)
        except ValueError:
            warn_once(
                "spec", f"REPRO_JOBS={jobs_text}",
                f"ignoring malformed REPRO_JOBS={jobs_text!r} "
                f"(expected an integer); running serial",
            )
        else:
            layers.append(("env:REPRO_JOBS",
                           {"scheduler": {"jobs": jobs}}))
    backend_text = env.get("REPRO_BACKEND", "")
    if backend_text:
        try:
            backend = _kernels.normalize_backend(backend_text)
        except ValueError as error:
            warn_once(
                "spec", f"REPRO_BACKEND={backend_text}",
                f"ignoring malformed REPRO_BACKEND={backend_text!r} "
                f"({error}); using the default backend",
            )
        else:
            layers.append(("env:REPRO_BACKEND",
                           {"scheduler": {"backend": backend}}))
    faults_text = env.get("REPRO_FAULTS", "")
    if faults_text:
        try:
            FaultPlan.parse(faults_text)
        except ValueError as error:
            warn_once(
                "spec", f"REPRO_FAULTS={faults_text}",
                f"ignoring malformed REPRO_FAULTS={faults_text!r} "
                f"({error}); no faults injected",
            )
        else:
            layers.append(("env:REPRO_FAULTS",
                           {"resilience": {"inject_faults": faults_text}}))
    return layers


def resolve_spec(
    preset: Optional[str] = None,
    file: Optional[str] = None,
    cli: Optional[Mapping[str, Any]] = None,
    sets: Sequence[str] = (),
    env: Optional[Mapping[str, str]] = None,
) -> ResolvedSpec:
    """Resolve the spec layers into one validated :class:`RunSpec`.

    Precedence (later wins): built-in defaults -> ``preset`` -> spec
    ``file`` -> environment (``REPRO_JOBS``, ``REPRO_BACKEND``,
    ``REPRO_FAULTS``) -> ``cli``
    overlay -> dotted-path ``sets`` overrides.  Every leaf remembers the
    layer that supplied it (:meth:`ResolvedSpec.source_of`).
    """
    environment = os.environ if env is None else env
    data = _plain(RunSpec())
    provenance: Dict[str, str] = {}
    layers: List[str] = ["default"]
    if preset is not None:
        if preset not in PRESETS:
            raise SpecError(
                f"unknown preset {preset!r} "
                f"(available: {', '.join(preset_names())})"
            )
        _overlay(data, PRESETS[preset], provenance, f"preset:{preset}")
        layers.append(f"preset:{preset}")
    if file:
        _overlay(data, _load_spec_file(file), provenance, f"file:{file}")
        layers.append(f"file:{file}")
    for source, overlay in _env_layers(environment):
        _overlay(data, overlay, provenance, source)
        layers.append(source)
    if cli:
        _overlay(data, cli, provenance, "cli")
        layers.append("cli")
    for expression in sets:
        path, value = parse_set(expression)
        _set_path(data, path, value, provenance, "cli:--set")
        if "cli:--set" not in layers:
            layers.append("cli:--set")
    return ResolvedSpec(spec=spec_from_dict(data), provenance=provenance,
                        layers=tuple(layers))


# ---------------------------------------------------------------------------
# CLI bridge
# ---------------------------------------------------------------------------

def cli_layer_from_args(args: Any) -> Dict[str, Any]:
    """The CLI overlay dict from a parsed argparse namespace.

    Only values the user explicitly supplied are included (argparse
    defaults are ``None``/``False``), so spec-file and preset values are
    never masked by untouched flags.
    """
    layer: Dict[str, Any] = {}

    def put(section: str, key: str, value: Any) -> None:
        if value is not None:
            layer.setdefault(section, {})[key] = value

    put("gpu", "frames", getattr(args, "frames", None))
    put("gpu", "screen_width", getattr(args, "width", None))
    put("gpu", "screen_height", getattr(args, "height", None))

    benchmark = getattr(args, "benchmark", None)
    benchmarks = getattr(args, "benchmarks", None)
    if benchmark is not None:
        put("workload", "benchmarks", [benchmark])
    elif benchmarks:
        put("workload", "benchmarks", list(benchmarks))
    put("workload", "modes", getattr(args, "modes", None))

    put("scheduler", "jobs", getattr(args, "jobs", None))
    put("scheduler", "backend", getattr(args, "backend", None))

    put("resilience", "retries", getattr(args, "retries", None))
    put("resilience", "job_timeout", getattr(args, "job_timeout", None))
    put("resilience", "inject_faults", getattr(args, "inject_faults", None))
    put("resilience", "fault_seed", getattr(args, "fault_seed", None))
    if getattr(args, "resume", False):
        put("resilience", "resume", True)
    if getattr(args, "strict", False):
        put("resilience", "strict", True)

    put("obs", "trace", getattr(args, "trace", None))
    put("obs", "metrics", getattr(args, "metrics", None))
    put("obs", "events", getattr(args, "events", None))
    put("obs", "ledger", getattr(args, "ledger", None))
    if getattr(args, "live", False):
        put("obs", "live", True)
    if getattr(args, "verbose", False):
        put("obs", "verbose", True)
    if getattr(args, "quiet", False):
        put("obs", "quiet", True)
    return layer


def spec_from_args(args: Any) -> ResolvedSpec:
    """Resolve the full layer stack for one CLI invocation."""
    return resolve_spec(
        preset=getattr(args, "preset", None),
        file=getattr(args, "spec", None),
        cli=cli_layer_from_args(args),
        sets=getattr(args, "set_overrides", None) or (),
    )
