"""The command-stream API: what an application submits to the GPU.

This plays the role of the intercepted OpenGL ES command trace in the
paper's methodology: per frame, an ordered list of draw commands, each
carrying geometry, a model transform and a :class:`RenderState` (depth
write/test, blending, shader cost profile).
"""

from .state import BlendMode, RenderState, ShaderProfile
from .draw import DrawCommand
from .stream import Frame, FrameStream
from .trace import load_trace, save_trace

__all__ = [
    "ShaderProfile",
    "BlendMode",
    "RenderState",
    "DrawCommand",
    "Frame",
    "FrameStream",
    "save_trace",
    "load_trace",
]
