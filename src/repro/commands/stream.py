"""Frames and frame streams: the unit of work the GPU consumes.

A :class:`Frame` is everything the application submits between two screen
refreshes: camera matrices plus an ordered list of draw commands.  A
:class:`FrameStream` is a finite sequence of frames — the equivalent of the
paper's 60-frame application traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Sequence

from ..errors import CommandError
from ..math3d import Mat4
from .draw import DrawCommand


@dataclass
class Frame:
    """One frame's worth of GPU input.

    Attributes:
        commands: draw commands in submission order.  Order matters: it
            defines painter's-algorithm visibility for NWOZ geometry and
            layer-identifier assignment.
        view: world-to-camera transform.
        projection: camera-to-clip transform.
        index: frame number within the stream.
    """

    commands: List[DrawCommand]
    view: Mat4 = field(default_factory=Mat4.identity)
    projection: Mat4 = field(default_factory=Mat4.identity)
    index: int = 0

    def __post_init__(self) -> None:
        if not self.commands:
            raise CommandError(f"frame {self.index} has no draw commands")

    @property
    def triangle_count(self) -> int:
        return sum(cmd.triangle_count for cmd in self.commands)

    @property
    def vertex_count(self) -> int:
        return sum(cmd.vertex_count for cmd in self.commands)


class FrameStream:
    """A finite sequence of frames, lazily generated.

    Scenes provide a ``builder(frame_index) -> Frame`` callable; the stream
    memoizes nothing so that replaying it yields identical frames (scene
    builders are required to be deterministic functions of the index).
    """

    def __init__(self, builder: Callable[[int], Frame], num_frames: int):
        if num_frames <= 0:
            raise CommandError("a frame stream needs at least one frame")
        self._builder = builder
        self._num_frames = num_frames

    def __len__(self) -> int:
        return self._num_frames

    def __iter__(self) -> Iterator[Frame]:
        for index in range(self._num_frames):
            yield self.frame(index)

    def frame(self, index: int) -> Frame:
        """Build frame ``index`` (0-based)."""
        if not 0 <= index < self._num_frames:
            raise CommandError(
                f"frame index {index} out of range [0, {self._num_frames})"
            )
        frame = self._builder(index)
        if frame.index != index:
            raise CommandError(
                f"scene builder returned frame index {frame.index}, "
                f"expected {index}"
            )
        return frame

    @classmethod
    def from_frames(cls, frames: Sequence[Frame]) -> "FrameStream":
        """Wrap an already-materialized list of frames."""
        frame_list = list(frames)
        return cls(lambda index: frame_list[index], len(frame_list))
