"""Draw commands: one batch of triangles sharing a render state."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from ..errors import CommandError
from ..geom import Mesh, Triangle
from ..math3d import Mat4
from .state import RenderState


@dataclass
class DrawCommand:
    """One draw call: a mesh, a model transform and a render state.

    In the paper's terminology a draw command is what increments the
    per-tile layer identifier — all primitives of the same command that
    land in a tile share a layer.

    Attributes:
        triangles: object-space triangles, in submission order.
        model: object-to-world transform applied by the vertex shader.
        state: fixed-function state and shader cost profile.
        label: human-readable identity for traces and debugging.
        view: per-command view override (None: use the frame's).  Real
            applications rebind matrices between draws — e.g. a HUD
            rendered with an orthographic screen-space projection after
            the 3D scene used a perspective one.
        projection: per-command projection override (None: use the
            frame's).
    """

    triangles: List[Triangle]
    model: Mat4 = field(default_factory=Mat4.identity)
    state: RenderState = field(default_factory=RenderState)
    label: str = ""
    view: Optional[Mat4] = None
    projection: Optional[Mat4] = None

    def __post_init__(self) -> None:
        if not self.triangles:
            raise CommandError(f"draw command {self.label!r} has no geometry")

    @classmethod
    def from_mesh(
        cls,
        mesh: Mesh,
        model: Mat4 = Mat4.identity(),
        state: RenderState = RenderState(),
        label: str = "",
        view: Optional[Mat4] = None,
        projection: Optional[Mat4] = None,
    ) -> "DrawCommand":
        return cls(
            list(mesh.triangles),
            model=model,
            state=state,
            label=label,
            view=view,
            projection=projection,
        )

    @property
    def triangle_count(self) -> int:
        return len(self.triangles)

    @property
    def vertex_count(self) -> int:
        return 3 * len(self.triangles)

    def iter_triangles(self) -> Iterable[Triangle]:
        return iter(self.triangles)
