"""Render state attached to draw commands.

The state determines the two classifications that drive everything in the
paper:

* **WOZ vs NWOZ** — a primitive "writes on Z" when depth writing is
  enabled; 2D painter's-algorithm sprites and translucent geometry do not.
* **opaque vs translucent** — an opaque fragment fully occludes what is
  behind it, so it may update the Layer Buffer; a blended fragment may not.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from ..errors import CommandError


class BlendMode(enum.Enum):
    """How a shaded fragment combines with the Color Buffer."""

    OPAQUE = "opaque"            # src replaces dst
    ALPHA = "alpha"              # src*a + dst*(1-a), order dependent


@dataclass(frozen=True)
class ShaderProfile:
    """Cost profile of the programmable shaders bound to a command.

    The functional simulator does not execute shader ISA; instead each
    command declares how expensive its shaders are, which the timing and
    energy models convert into cycles and joules.  This mirrors how the
    paper's traces carry shader instruction counts into the Teapot timing
    model.

    Attributes:
        vertex_instructions: ALU instructions per vertex.
        fragment_instructions: ALU instructions per shaded fragment.
        texture_fetches: texture samples per shaded fragment (each one
            becomes a texture-cache access in the memory model).
        texture_id: which texture is sampled; fragments of the same
            texture hit the same cache lines.
        texture_size: square texture dimension in texels, used to spread
            texture accesses over a realistic address range.
    """

    vertex_instructions: int = 8
    fragment_instructions: int = 12
    texture_fetches: int = 1
    texture_id: int = 0
    texture_size: int = 256

    def __post_init__(self) -> None:
        if self.vertex_instructions < 0 or self.fragment_instructions < 0:
            raise CommandError("shader instruction counts cannot be negative")
        if self.texture_fetches < 0:
            raise CommandError("texture fetch count cannot be negative")
        if self.texture_size <= 0:
            raise CommandError("texture size must be positive")

    def pack(self) -> bytes:
        """Byte encoding included in RE signatures (shader identity is an
        input to the rendered colors, so it must affect the CRC)."""
        return struct.pack(
            "<5i",
            self.vertex_instructions,
            self.fragment_instructions,
            self.texture_fetches,
            self.texture_id,
            self.texture_size,
        )


@dataclass(frozen=True)
class RenderState:
    """Fixed-function state for one draw command.

    Attributes:
        depth_test: whether fragments are depth-tested against the
            Z-buffer.
        depth_write: whether passing fragments update the Z-buffer.
            ``depth_write=True`` makes the command's primitives WOZ.
        blend: how fragments merge into the Color Buffer.
        shader: cost profile of the bound shaders.
        cull_backface: discard back-facing triangles in Primitive
            Assembly.  Front-facing means counter-clockwise in NDC (the
            GL default), i.e. *negative* signed area in this pipeline's
            y-down window coordinates.  2D sprite batches leave it off,
            as real 2D engines do.
    """

    depth_test: bool = True
    depth_write: bool = True
    blend: BlendMode = BlendMode.OPAQUE
    shader: ShaderProfile = ShaderProfile()
    cull_backface: bool = False

    def __post_init__(self) -> None:
        if self.depth_write and not self.depth_test:
            raise CommandError(
                "depth_write without depth_test is not a meaningful GLES "
                "state for this pipeline model"
            )

    @property
    def writes_z(self) -> bool:
        """True when this state produces WOZ primitives."""
        return self.depth_write

    @property
    def opaque(self) -> bool:
        """True when fragments fully replace the destination color.

        Alpha-blended fragments with vertex alpha == 1 are also treated
        as opaque at the Layer Buffer (the paper checks the final blend
        factor); that refinement is applied per fragment in the blend
        stage — this property reflects the *state-level* classification.
        """
        return self.blend is BlendMode.OPAQUE

    # -- canonical states ---------------------------------------------------

    @classmethod
    def opaque_3d(cls, shader: ShaderProfile = ShaderProfile(),
                  cull_backface: bool = True) -> "RenderState":
        """Depth-tested, depth-writing opaque geometry (WOZ)."""
        return cls(depth_test=True, depth_write=True,
                   blend=BlendMode.OPAQUE, shader=shader,
                   cull_backface=cull_backface)

    @classmethod
    def translucent_3d(cls, shader: ShaderProfile = ShaderProfile()) -> "RenderState":
        """Depth-tested but non-writing blended geometry (NWOZ)."""
        return cls(depth_test=True, depth_write=False,
                   blend=BlendMode.ALPHA, shader=shader)

    @classmethod
    def sprite_2d(cls, shader: ShaderProfile = ShaderProfile(),
                  blend: BlendMode = BlendMode.OPAQUE) -> "RenderState":
        """Painter's-algorithm 2D sprite: no depth test, no depth write."""
        return cls(depth_test=False, depth_write=False, blend=blend,
                   shader=shader)

    def pack(self) -> bytes:
        """Byte encoding included in RE signatures."""
        flags = (
            (1 if self.depth_test else 0)
            | (2 if self.depth_write else 0)
            | (4 if self.blend is BlendMode.ALPHA else 0)
            | (8 if self.cull_backface else 0)
        )
        return bytes([flags]) + self.shader.pack()
