"""Frame-stream serialization: capture and replay command traces.

The paper's methodology intercepts an application's GLES commands and
stores them in a trace file that later feeds the simulator.  This module
provides the equivalent for this reproduction: any :class:`FrameStream`
can be captured to a self-contained JSON trace and replayed later (or on
another machine) bit-exactly, decoupling scene generation from
simulation.

The format is versioned JSON: human-inspectable, diff-able, and free of
pickle's code-execution hazards.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Union

from ..errors import CommandError
from ..geom import Triangle, Vertex, VertexAttributes
from ..math3d import Mat4, Vec2, Vec3, Vec4
from .draw import DrawCommand
from .state import BlendMode, RenderState, ShaderProfile
from .stream import Frame, FrameStream

TRACE_FORMAT_VERSION = 1


# -- encoding ---------------------------------------------------------------

def _encode_matrix(matrix: Mat4) -> List[float]:
    return list(matrix.m)


def _encode_state(state: RenderState) -> Dict[str, Any]:
    return {
        "depth_test": state.depth_test,
        "depth_write": state.depth_write,
        "blend": state.blend.value,
        "cull_backface": state.cull_backface,
        "shader": {
            "vertex_instructions": state.shader.vertex_instructions,
            "fragment_instructions": state.shader.fragment_instructions,
            "texture_fetches": state.shader.texture_fetches,
            "texture_id": state.shader.texture_id,
            "texture_size": state.shader.texture_size,
        },
    }


def _encode_vertex(vertex: Vertex) -> List[float]:
    attrs = vertex.attributes
    return [
        vertex.position.x, vertex.position.y, vertex.position.z,
        attrs.color.x, attrs.color.y, attrs.color.z, attrs.color.w,
        attrs.uv.x, attrs.uv.y,
        attrs.normal.x, attrs.normal.y, attrs.normal.z,
    ]


def _encode_command(command: DrawCommand) -> Dict[str, Any]:
    encoded: Dict[str, Any] = {
        "label": command.label,
        "model": _encode_matrix(command.model),
        "state": _encode_state(command.state),
        "triangles": [
            [_encode_vertex(v) for v in triangle.vertices]
            for triangle in command.triangles
        ],
    }
    if command.view is not None:
        encoded["view"] = _encode_matrix(command.view)
    if command.projection is not None:
        encoded["projection"] = _encode_matrix(command.projection)
    return encoded


def _encode_frame(frame: Frame) -> Dict[str, Any]:
    return {
        "index": frame.index,
        "view": _encode_matrix(frame.view),
        "projection": _encode_matrix(frame.projection),
        "commands": [_encode_command(c) for c in frame.commands],
    }


def save_trace(stream: FrameStream, file: Union[str, IO[str]]) -> None:
    """Capture every frame of ``stream`` into a JSON trace.

    Args:
        stream: the frame stream to capture (fully materialized).
        file: output path or writable text file object.
    """
    document = {
        "format": "repro-trace",
        "version": TRACE_FORMAT_VERSION,
        "frames": [_encode_frame(frame) for frame in stream],
    }
    if isinstance(file, str):
        with open(file, "w") as handle:
            json.dump(document, handle)
    else:
        json.dump(document, file)


# -- decoding ----------------------------------------------------------------

def _decode_matrix(values: List[float]) -> Mat4:
    return Mat4(tuple(float(v) for v in values))


def _decode_state(data: Dict[str, Any]) -> RenderState:
    shader = data["shader"]
    return RenderState(
        depth_test=data["depth_test"],
        depth_write=data["depth_write"],
        blend=BlendMode(data["blend"]),
        cull_backface=data["cull_backface"],
        shader=ShaderProfile(
            vertex_instructions=shader["vertex_instructions"],
            fragment_instructions=shader["fragment_instructions"],
            texture_fetches=shader["texture_fetches"],
            texture_id=shader["texture_id"],
            texture_size=shader["texture_size"],
        ),
    )


def _decode_vertex(values: List[float]) -> Vertex:
    (px, py, pz, cr, cg, cb, ca, u, v, nx, ny, nz) = values
    return Vertex(
        Vec3(px, py, pz),
        VertexAttributes(
            color=Vec4(cr, cg, cb, ca),
            uv=Vec2(u, v),
            normal=Vec3(nx, ny, nz),
        ),
    )


def _decode_command(data: Dict[str, Any]) -> DrawCommand:
    triangles = [
        Triangle(*(_decode_vertex(v) for v in triangle))
        for triangle in data["triangles"]
    ]
    return DrawCommand(
        triangles,
        model=_decode_matrix(data["model"]),
        state=_decode_state(data["state"]),
        label=data.get("label", ""),
        view=_decode_matrix(data["view"]) if "view" in data else None,
        projection=(
            _decode_matrix(data["projection"])
            if "projection" in data
            else None
        ),
    )


def _decode_frame(data: Dict[str, Any]) -> Frame:
    return Frame(
        [_decode_command(c) for c in data["commands"]],
        view=_decode_matrix(data["view"]),
        projection=_decode_matrix(data["projection"]),
        index=data["index"],
    )


def load_trace(file: Union[str, IO[str]]) -> FrameStream:
    """Load a trace captured with :func:`save_trace`.

    Raises:
        CommandError: on malformed or incompatible trace files.
    """
    if isinstance(file, str):
        with open(file) as handle:
            document = json.load(handle)
    else:
        document = json.load(file)
    if document.get("format") != "repro-trace":
        raise CommandError("not a repro trace file")
    if document.get("version") != TRACE_FORMAT_VERSION:
        raise CommandError(
            f"unsupported trace version {document.get('version')!r}; "
            f"this build reads version {TRACE_FORMAT_VERSION}"
        )
    frames = [_decode_frame(f) for f in document["frames"]]
    if not frames:
        raise CommandError("trace contains no frames")
    return FrameStream.from_frames(frames)
