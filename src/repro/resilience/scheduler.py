"""The resilient scheduler: retries, timeouts, pool recovery, degradation.

:class:`ResilientScheduler` wraps any :class:`~repro.engine.Scheduler`
(Serial or ProcessPool) and upgrades its ``map`` from "all jobs succeed
or the whole batch dies" to a supervised execution loop:

* every job gets up to ``policy.max_attempts`` executions, with
  exponential backoff and deterministic jitter between attempts;
* under a process pool, every job gets a per-job wall-clock timeout
  (measured from the moment it occupies a worker, not from submission);
* a broken pool (worker crash) or an expired job is recovered by
  force-terminating and rebuilding the pool; every in-flight job is
  charged one attempt and requeued;
* after ``policy.max_pool_rebuilds`` rebuilds the scheduler *degrades*:
  remaining jobs run serially in-process, where injected crashes are
  converted to ordinary exceptions, so a run always terminates;
* an armed :class:`~repro.resilience.FaultPlan` injects faults into
  every execution path above, deterministically.

Results are returned in submission order, exactly like the wrapped
scheduler.  :meth:`map` raises :class:`~repro.errors.JobRetryExhaustedError`
if any job ultimately fails; :meth:`map_resilient` instead returns a
:class:`JobFailure` in that job's slot (graceful degradation — the suite
runner uses it to complete a sweep with failed cells marked as such).
Both accept an ``on_result`` callback invoked as each job settles, which
is what makes incremental checkpointing possible.

Everything observable goes through :mod:`repro.obs`: retry/timeout/
crash/rebuild counters in the process-wide metrics registry, ``retry``
spans and fault instants in the process-wide tracer, warnings via the
package logger.  With neither a fault plan nor a timeout armed, a pool
batch takes an optimistic unsupervised pass through the bare scheduler
(chunked, zero overhead) and is only re-run supervised if that pass
fails; results are bit-identical to the bare scheduler's either way.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..engine.scheduler import ProcessPoolScheduler, Scheduler
from ..errors import (
    InjectedFaultError,
    JobRetryExhaustedError,
    JobTimeoutError,
    ResilienceError,
    WorkerCrashError,
)
from ..obs.events import (
    EventForwardingCall,
    FaultInjected,
    ForwardedResult,
    get_bus,
)
from ..obs.log import get_logger
from ..obs.metrics import global_registry
from ..obs.trace import get_tracer
from .faults import CorruptedResult, FaultPlan, FaultyCall
from .policy import RetryPolicy, backoff_delay

logger = get_logger("resilience")

#: Event-loop tick while jobs are in flight and timeouts are armed.
_TICK_SECONDS = 0.05

#: Result-slot marker for jobs that have not settled yet.
_UNSET = object()


@dataclass(frozen=True)
class JobFailure:
    """Terminal failure of one job after every permitted attempt.

    Occupies the job's result slot in :meth:`ResilientScheduler.map_resilient`
    so callers can mark the cell failed and keep going.
    """

    index: int
    key: str
    kind: str  # "error" | "timeout" | "crash" | "corrupt"
    message: str
    attempts: int

    def to_error(self) -> ResilienceError:
        """The typed exception for this failure (typed by the *last*
        attempt's failure mode)."""
        if self.kind == "timeout":
            return JobTimeoutError(
                f"job {self.key} timed out on all {self.attempts} "
                f"attempt(s): {self.message}"
            )
        if self.kind == "crash":
            return WorkerCrashError(
                f"job {self.key} lost its worker on all {self.attempts} "
                f"attempt(s): {self.message}"
            )
        return JobRetryExhaustedError(self.key, self.attempts, self.message)


@dataclass
class _InFlight:
    """Bookkeeping for one submitted pool attempt."""

    index: int
    key: str
    attempt: int
    submitted: float
    deadline: Optional[float]


class ResilientScheduler:
    """Fault-tolerant wrapper around a Serial/ProcessPool scheduler."""

    def __init__(self, inner: Scheduler,
                 policy: Optional[RetryPolicy] = None,
                 fault_plan: Optional[FaultPlan] = None):
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.fault_plan = fault_plan
        self._parent_pid = os.getpid()
        self._batch = 0
        self._rebuilds = 0
        self._degraded = False
        # Monkeypatch point for tests: sleeping between retries.
        self._sleep = time.sleep

    # -- scheduler protocol --------------------------------------------------

    @property
    def jobs(self) -> int:
        return getattr(self.inner, "jobs", 1)

    @property
    def profiler(self):
        return getattr(self.inner, "profiler", None)

    def close(self) -> None:
        self.inner.close()

    def __enter__(self) -> "ResilientScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ResilientScheduler({self.inner!r}, "
                f"attempts={self.policy.max_attempts}, "
                f"timeout={self.policy.timeout_seconds}, "
                f"faults={self.fault_plan.describe() if self.fault_plan else None!r})")

    # -- mapping -------------------------------------------------------------

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Strict map: all jobs succeed, or the first exhausted job's
        :class:`~repro.errors.JobRetryExhaustedError` is raised."""
        results = self.map_resilient(fn, items)
        for value in results:
            if isinstance(value, JobFailure):
                raise value.to_error()
        return results

    def map_resilient(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> List[Any]:
        """Map with graceful degradation: each slot holds the job's
        result or its :class:`JobFailure`.  ``on_result(index, value)``
        fires as each job settles (in completion order)."""
        items = list(items)
        if not items:
            return []
        self._batch += 1
        batch = self._batch
        results: List[Any] = [_UNSET] * len(items)
        attempts = [0] * len(items)

        pool = self._pool()
        if (pool is not None and self.fault_plan is None
                and self.policy.timeout_seconds is None):
            # Nothing to inject and nothing to time: one chunked pass
            # through the bare pool is bit-identical and pays zero
            # supervision overhead.  Supervision kicks in only if the
            # optimistic pass fails.
            if self._map_pool_optimistic(pool, fn, items, attempts,
                                         results, on_result):
                return results
            pool = self._pool()  # the failure may have degraded us
        if pool is not None:
            remaining = self._map_pool(pool, fn, items, batch, attempts,
                                       results, on_result)
        else:
            remaining = [index for index, value in enumerate(results)
                         if value is _UNSET]
        for index in remaining:
            self._run_item_serial(fn, items, index, batch, attempts,
                                  results, on_result)
        return results

    # -- shared helpers ------------------------------------------------------

    def _pool(self) -> Optional[ProcessPoolScheduler]:
        if self._degraded:
            return None
        inner = self.inner
        if isinstance(inner, ProcessPoolScheduler) and inner.jobs >= 2:
            return inner
        return None

    def _key(self, batch: int, index: int) -> str:
        return f"{batch}:{index}"

    def _call(self, fn: Callable[[Any], Any], key: str,
              attempt: int) -> Callable[[Any], Any]:
        call: Callable[[Any], Any] = FaultyCall(
            fn, self.fault_plan, key, attempt, self._parent_pid
        )
        profiler = self.profiler
        if profiler is not None:
            call = profiler.wrap(call)
        if get_bus().enabled:
            # Outermost, so buffer install/teardown is outside the
            # profiler's measured window.
            call = EventForwardingCall(call, self._parent_pid)
        return call

    def _unwrap(self, item: Any, submitted: float, value: Any) -> Any:
        """Undo :meth:`_call` wrapping for one settled job: replay the
        worker's forwarded events and feed the profiler its timing."""
        events: Sequence[Any] = ()
        if isinstance(value, ForwardedResult):
            events = value.events
            value = value.result
        profiler = self.profiler
        if profiler is not None:
            [value] = profiler.collect(submitted, [item], [value])
        if events and not isinstance(value, CorruptedResult):
            # A corrupted attempt is retried; dropping its events keeps
            # the stream free of duplicate per-attempt telemetry.
            bus = get_bus()
            if bus.enabled:
                for event in events:
                    bus.emit(event)
        return value

    def _settle(self, index: int, value: Any, results: List[Any],
                on_result: Optional[Callable[[int, Any], None]]) -> None:
        results[index] = value
        if on_result is not None:
            on_result(index, value)

    def _note_retryable(self, key: str, attempt: int, kind: str,
                        message: str) -> None:
        global_registry().counter(f"resilience.{kind}").inc()
        get_tracer().instant(f"fault:{kind}", category="resilience",
                             key=key, attempt=attempt)
        get_bus().emit(FaultInjected(key=key, attempt=attempt, fault=kind))
        logger.warning("job %s attempt %d failed (%s): %s",
                       key, attempt, kind, message)

    def _give_up(self, index: int, key: str, attempts: int, kind: str,
                 message: str, results: List[Any],
                 on_result: Optional[Callable[[int, Any], None]]) -> None:
        global_registry().counter("resilience.jobs_failed").inc()
        logger.warning("job %s failed permanently after %d attempt(s): %s",
                       key, attempts, message)
        self._settle(index, JobFailure(index, key, kind, message, attempts),
                     results, on_result)

    def _retry_span(self, key: str, attempt: int, start: float) -> None:
        """Record the winning retry as a trace span + counter."""
        if attempt > 1:
            get_tracer().complete(f"retry {key}", "resilience", start,
                                  time.perf_counter(),
                                  args={"attempt": attempt})

    def _backoff(self, key: str, attempt: int) -> float:
        delay = backoff_delay(self.policy, attempt, key)
        global_registry().counter("resilience.retries").inc()
        global_registry().histogram(
            "resilience.backoff_seconds").observe(delay)
        return delay

    # -- serial path ---------------------------------------------------------

    def _run_item_serial(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        index: int,
        batch: int,
        attempts: List[int],
        results: List[Any],
        on_result: Optional[Callable[[int, Any], None]],
    ) -> None:
        """Run one job to settlement, in-process.

        Used for the serial inner scheduler and as the degraded fallback
        once the pool has been given up on.  Per-job timeouts are not
        enforced here — an in-process call cannot be preempted — so an
        injected hang merely delays; it cannot wedge the run.
        """
        key = self._key(batch, index)
        first_start = None
        while True:
            attempt = attempts[index] + 1
            attempts[index] = attempt
            start = time.perf_counter()
            if first_start is None:
                first_start = start
            try:
                value = self._unwrap(
                    items[index], start,
                    self._call(fn, key, attempt)(items[index]),
                )
            except Exception as exc:  # noqa: BLE001 - retry boundary
                kind = ("injected_faults"
                        if isinstance(exc, InjectedFaultError) else "errors")
                self._note_retryable(key, attempt, kind, repr(exc))
                failure_kind, message = "error", repr(exc)
            else:
                if isinstance(value, CorruptedResult):
                    self._note_retryable(key, attempt, "corrupt_results",
                                         repr(value))
                    failure_kind, message = "corrupt", repr(value)
                else:
                    self._retry_span(key, attempt, first_start)
                    self._settle(index, value, results, on_result)
                    return
            if attempt >= self.policy.max_attempts:
                self._give_up(index, key, attempt, failure_kind, message,
                              results, on_result)
                return
            self._sleep(self._backoff(key, attempt))

    # -- pool path -----------------------------------------------------------

    def _map_pool_optimistic(
        self,
        pool: ProcessPoolScheduler,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        attempts: List[int],
        results: List[Any],
        on_result: Optional[Callable[[int, Any], None]],
    ) -> bool:
        """One unsupervised, chunked pass through the bare pool.

        This is the fast path when neither a fault plan nor a timeout is
        armed: ``pool.map`` batches jobs into chunks exactly as an
        unwrapped scheduler would, so arming ``--retries`` alone costs
        nothing until something actually fails.  Returns True when every
        job settled; on any failure the whole batch is charged one
        attempt and handed to the supervised machinery (jobs are pure,
        so re-running already-succeeded ones changes nothing).
        """
        try:
            values = pool.map(fn, items)
        except BrokenProcessPool as exc:
            failure_kind, message = "crash", repr(exc)
            global_registry().counter("resilience.crashes").inc()
            self._rebuild(pool)
        except Exception as exc:  # noqa: BLE001 - retry boundary
            failure_kind, message = "error", repr(exc)
            global_registry().counter("resilience.errors").inc()
        else:
            for index, value in enumerate(values):
                attempts[index] = 1
                self._settle(index, value, results, on_result)
            return True
        logger.warning("optimistic pool pass failed (%s); re-running "
                       "batch supervised", message)
        for index in range(len(items)):
            attempts[index] = 1
            if self.policy.max_attempts <= 1:
                self._give_up(index, self._key(self._batch, index), 1,
                              failure_kind, message, results, on_result)
        return False

    def _map_pool(
        self,
        pool: ProcessPoolScheduler,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        batch: int,
        attempts: List[int],
        results: List[Any],
        on_result: Optional[Callable[[int, Any], None]],
    ) -> List[int]:
        """Supervised pool execution; returns indices left for the
        serial fallback (empty unless the scheduler degraded)."""
        policy = self.policy
        # (index, not-before timestamp) — backoff without blocking
        # peers.  Only unsettled jobs run: a failed optimistic pass
        # hands its unfinished indices here.
        pending: Deque[Tuple[int, float]] = deque(
            (index, 0.0) for index in range(len(items))
            if results[index] is _UNSET
        )
        inflight: Dict[Future, _InFlight] = {}
        first_start: Dict[int, float] = {}

        def submit_ready() -> None:
            now = time.perf_counter()
            for _ in range(len(pending)):
                if len(inflight) >= pool.jobs:
                    return
                index, ready_at = pending[0]
                if ready_at > now:
                    pending.rotate(-1)
                    continue
                pending.popleft()
                attempt = attempts[index] + 1
                attempts[index] = attempt
                key = self._key(batch, index)
                submitted = time.perf_counter()
                first_start.setdefault(index, submitted)
                deadline = (submitted + policy.timeout_seconds
                            if policy.timeout_seconds else None)
                future = pool._ensure_executor().submit(
                    self._call(fn, key, attempt), items[index]
                )
                inflight[future] = _InFlight(index, key, attempt,
                                             submitted, deadline)

        def after_failure(meta: _InFlight, kind: str, message: str) -> None:
            if meta.attempt >= policy.max_attempts:
                self._give_up(meta.index, meta.key, meta.attempt, kind,
                              message, results, on_result)
            else:
                ready_at = (time.perf_counter()
                            + self._backoff(meta.key, meta.attempt))
                pending.append((meta.index, ready_at))

        def abort_inflight(expired: Sequence[Future]) -> None:
            """Rebuild the pool; charge and requeue every in-flight job."""
            for future, meta in list(inflight.items()):
                if future in expired:
                    message = (f"job {meta.key} exceeded its "
                               f"{policy.timeout_seconds}s timeout")
                    self._note_retryable(meta.key, meta.attempt, "timeouts",
                                         message)
                    after_failure(meta, "timeout", message)
                else:
                    message = f"pool rebuilt while {meta.key} was in flight"
                    self._note_retryable(meta.key, meta.attempt, "crashes",
                                         message)
                    after_failure(meta, "crash", message)
            inflight.clear()
            self._rebuild(pool)

        while pending or inflight:
            if self._degraded:
                break
            try:
                submit_ready()
            except Exception as exc:  # pool already broken at submit time
                logger.warning("submit failed (%r); rebuilding pool", exc)
                abort_inflight(())
                continue
            if not inflight:
                # Everything pending is backing off; sleep to the
                # earliest ready-at.
                wake = min(ready for _, ready in pending)
                self._sleep(max(0.0, wake - time.perf_counter()))
                continue
            timeout = (_TICK_SECONDS if policy.timeout_seconds or pending
                       else None)
            done, _ = wait(set(inflight), timeout=timeout,
                           return_when=FIRST_COMPLETED)
            now = time.perf_counter()
            broken = False
            for future in done:
                meta = inflight.pop(future)
                try:
                    value = future.result()
                except BrokenProcessPool as exc:
                    broken = True
                    self._note_retryable(meta.key, meta.attempt, "crashes",
                                         repr(exc))
                    after_failure(meta, "crash",
                                  f"worker died while running {meta.key}")
                except Exception as exc:  # noqa: BLE001 - retry boundary
                    kind = ("injected_faults"
                            if isinstance(exc, InjectedFaultError)
                            else "errors")
                    self._note_retryable(meta.key, meta.attempt, kind,
                                         repr(exc))
                    after_failure(meta, "error", repr(exc))
                else:
                    value = self._unwrap(items[meta.index], meta.submitted,
                                         value)
                    if isinstance(value, CorruptedResult):
                        self._note_retryable(meta.key, meta.attempt,
                                             "corrupt_results", repr(value))
                        after_failure(meta, "corrupt", repr(value))
                    else:
                        self._retry_span(meta.key, meta.attempt,
                                         first_start[meta.index])
                        self._settle(meta.index, value, results, on_result)
            if broken:
                abort_inflight(())
                continue
            expired = [future for future, meta in inflight.items()
                       if meta.deadline is not None and now >= meta.deadline]
            if expired:
                abort_inflight(expired)
        return [index for index, value in enumerate(results)
                if value is _UNSET]

    def _rebuild(self, pool: ProcessPoolScheduler) -> None:
        self._rebuilds += 1
        global_registry().counter("resilience.pool_rebuilds").inc()
        get_tracer().instant("pool-rebuild", category="resilience",
                             rebuilds=self._rebuilds)
        pool.terminate()
        if self._rebuilds > self.policy.max_pool_rebuilds:
            self._degraded = True
            global_registry().counter("resilience.serial_fallbacks").inc()
            get_tracer().instant("serial-fallback", category="resilience")
            logger.warning(
                "pool rebuilt %d times (limit %d); degrading to serial "
                "in-process execution", self._rebuilds,
                self.policy.max_pool_rebuilds,
            )
        else:
            logger.warning("process pool rebuilt (%d of %d allowed)",
                           self._rebuilds, self.policy.max_pool_rebuilds)
