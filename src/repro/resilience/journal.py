"""Checkpoint journal for suite runs: crash-durable, resumable.

A :class:`RunJournal` is an append-only JSON-Lines file recording every
(benchmark, mode) cell a suite run settles — successful cells with their
full metrics, failed cells with their error.  Each record is flushed and
fsynced as it is written, so a run killed at any instant (worker crash,
OOM, Ctrl-C, SIGKILL) leaves a journal describing exactly the work that
finished.  ``repro figure/report --resume`` replays those records
instead of recomputing them; JSON floats round-trip exactly in Python,
so a resumed run's final metrics are bit-identical to an uninterrupted
one's.

The first line is a header carrying a *suite key* — a digest of the
configuration, frame count and simulator code version.  A journal whose
header does not match the current suite key is ignored on load and
overwritten on open: stale checkpoints can never leak stale numbers,
the same contract the disk cache makes.  Records that fail to parse
(e.g. a torn final line from a crash mid-write) are skipped, not fatal.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, IO, Optional, Tuple

from ..obs.log import get_logger

logger = get_logger("resilience.journal")

JOURNAL_VERSION = 1


class RunJournal:
    """Append-only (benchmark, mode) checkpoint file for one suite key."""

    def __init__(self, path: str, suite_key: str):
        self.path = path
        self.suite_key = suite_key
        self._handle: Optional[IO[str]] = None

    @classmethod
    def for_spec(cls, directory: str, spec,
                 code: Optional[str] = None) -> "RunJournal":
        """A journal keyed by ``spec.spec_hash()`` + code version.

        The same derivation the disk cache uses
        (:func:`repro.engine.diskcache.run_cache_key`), so a journal and
        the cache agree on what counts as "the same suite".  ``spec`` is
        duck-typed (anything with a ``spec_hash()``) to keep this module
        import-light.
        """
        from ..engine.diskcache import DiskCache, KEY_SCHEMA, code_version

        suite_key = DiskCache.make_key(
            KEY_SCHEMA, "suite-journal", spec.spec_hash(),
            code if code is not None else code_version(),
        )
        # The key lands in the filename too, so journals of different
        # suites coexist instead of overwriting each other's checkpoints.
        return cls(os.path.join(directory,
                                f"journal-{suite_key[:16]}.jsonl"),
                   suite_key)

    # -- reading -------------------------------------------------------------

    def _header_matches(self) -> bool:
        try:
            with open(self.path, "r") as handle:
                first = handle.readline()
        except OSError:
            return False
        try:
            header = json.loads(first)
        except ValueError:
            return False
        return (
            isinstance(header, dict)
            and header.get("record") == "journal-header"
            and header.get("suite") == self.suite_key
            and header.get("version") == JOURNAL_VERSION
        )

    def load(self) -> Dict[Tuple[str, str], Dict[str, Any]]:
        """Completed cells keyed by ``(benchmark, mode-value)``.

        Returns ``{}`` when the journal is absent or belongs to a
        different suite key.  Later records win, so a cell that failed
        on one pass and succeeded on a resume reads as succeeded.
        """
        if not self._header_matches():
            return {}
        entries: Dict[Tuple[str, str], Dict[str, Any]] = {}
        skipped = 0
        with open(self.path, "r") as handle:
            for line in handle:
                try:
                    record = json.loads(line)
                except ValueError:
                    skipped += 1
                    continue
                if not isinstance(record, dict):
                    skipped += 1
                    continue
                if record.get("record") != "result":
                    continue
                benchmark = record.get("benchmark")
                mode = record.get("mode")
                if not isinstance(benchmark, str) or not isinstance(mode, str):
                    skipped += 1
                    continue
                entries[(benchmark, mode)] = record
        if skipped:
            logger.warning("journal %s: skipped %d unreadable record(s)",
                           self.path, skipped)
        return entries

    # -- writing -------------------------------------------------------------

    def open(self, fresh: bool = False) -> None:
        """Open for appending; (re)writes the header when ``fresh``,
        when no journal exists, or when the existing one belongs to a
        different suite key."""
        if self._handle is not None:
            return
        if fresh or not self._header_matches():
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "w")
            self._write({
                "record": "journal-header",
                "suite": self.suite_key,
                "version": JOURNAL_VERSION,
            })
        else:
            self._handle = open(self.path, "a")

    def record_ok(self, benchmark: str, mode: str,
                  metrics: Dict[str, Any]) -> None:
        """Checkpoint one successfully completed cell."""
        self._record(benchmark, mode, status="ok", metrics=metrics)

    def record_failed(self, benchmark: str, mode: str, error: str) -> None:
        """Checkpoint one permanently failed cell (retried on resume)."""
        self._record(benchmark, mode, status="failed", error=error)

    def _record(self, benchmark: str, mode: str, status: str,
                metrics: Optional[Dict[str, Any]] = None,
                error: str = "") -> None:
        if self._handle is None:
            self.open()
        record: Dict[str, Any] = {
            "record": "result",
            "benchmark": benchmark,
            "mode": mode,
            "status": status,
        }
        if metrics is not None:
            record["metrics"] = metrics
        if error:
            record["error"] = error
        self._write(record)

    def _write(self, record: Dict[str, Any]) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(record, sort_keys=True))
        self._handle.write("\n")
        # Durability is the whole point: a SIGKILL the instant after a
        # cell completes must not lose that cell.
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        self.open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"RunJournal({self.path!r}, suite={self.suite_key[:12]})"
