"""Deterministic, seedable fault injection for the execution engine.

A :class:`FaultPlan` decides, for every (job, attempt) pair, whether that
execution should misbehave and how.  Decisions are pure functions of
``(seed, kind, key, attempt)`` — the same plan on the same run produces
the same faults every time, which is what lets CI exercise every failure
path reproducibly and lets a killed-and-resumed run be compared against
an uninterrupted one.

Five fault kinds, mirroring how real suite runs die:

========  ==============================================================
raise     the job raises :class:`~repro.errors.InjectedFaultError`
corrupt   the job completes but returns a :class:`CorruptedResult`
          sentinel in place of its real output
hang      the job sleeps for ``hang_seconds`` before completing
          normally (long enough to trip a per-job timeout when one is
          armed; merely slow otherwise — an injected hang can never
          wedge a run forever)
crash     the job kills its worker process with ``os._exit`` (the pool
          breaks); in-process execution converts this to a ``raise``
          so the parent can never kill itself
pixel     a rendered image acquires a deterministic single-pixel diff
          (:func:`corrupt_pixel`).  Render-level corruption recognized
          only by the corpus differential gate; job-level execution
          (:class:`FaultyCall`) ignores it, because the retry machinery
          has no pixels to damage
========  ==============================================================

Plans are parsed from ``--inject-faults``/``REPRO_FAULTS`` specs such as
``"crash:0.2,hang:0.1"`` (kind:rate pairs, rates in [0, 1]).  The retry
machinery re-draws per attempt, so a job that crashed on attempt 1 will
usually succeed on attempt 2 — exactly the transient-fault model the
resilient scheduler is built to absorb.
"""

from __future__ import annotations

import hashlib
import os
import time
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..errors import InjectedFaultError

#: Recognized fault kinds, in the (fixed) order they are drawn.
#: ``pixel`` is appended so pre-existing plans keep their draw order.
FAULT_KINDS = ("raise", "corrupt", "hang", "crash", "pixel")

#: Worker exit code used by injected crashes (BSD's EX_SOFTWARE).
CRASH_EXIT_CODE = 70


def stable_unit(text: str) -> float:
    """A deterministic pseudo-random float in ``[0, 1)`` drawn from
    ``text`` — the same text yields the same draw on every platform,
    process and Python version (unlike ``hash``)."""
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


def corrupt_pixel(image, key: str, seed: int = 0):
    """A copy of ``image`` with one deterministically chosen pixel
    nudged off its rendered value.

    The pixel coordinate derives from :func:`stable_unit` over
    ``(seed, key)``, so the same (plan, family, mode, backend) always
    damages the same pixel — which is what lets a quarantined repro
    trace reproduce the violation standalone, and lets the shrinker's
    predicate stay deterministic while frames are cut away.
    """
    height, width = image.shape[:2]
    y = min(height - 1, int(stable_unit(f"{seed}|pixel-y|{key}") * height))
    x = min(width - 1, int(stable_unit(f"{seed}|pixel-x|{key}") * width))
    corrupted = image.copy()
    # An additive nudge can never be a no-op (flipping 0.5 would be).
    corrupted[y, x, 0] += 0.125
    return corrupted


class CorruptedResult:
    """Sentinel standing in for a job result mangled by a corrupt fault.

    The resilient scheduler recognizes instances and treats them as a
    failed attempt; anything else receiving one would crash loudly
    rather than silently propagate garbage.
    """

    __slots__ = ("key", "attempt")

    def __init__(self, key: str, attempt: int):
        self.key = key
        self.attempt = attempt

    def __repr__(self) -> str:
        return f"CorruptedResult(key={self.key!r}, attempt={self.attempt})"


class FaultPlan:
    """Deterministic fault schedule: kind -> injection rate.

    Args:
        rates: mapping of fault kind (see :data:`FAULT_KINDS`) to the
            per-attempt injection probability in ``[0, 1]``.
        seed: decorrelates otherwise-identical plans.
        hang_seconds: how long an injected hang sleeps.
    """

    def __init__(self, rates: Mapping[str, float], seed: int = 0,
                 hang_seconds: float = 30.0):
        for kind, rate in rates.items():
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} "
                    f"(expected one of {', '.join(FAULT_KINDS)})"
                )
            if not 0.0 <= float(rate) <= 1.0:
                raise ValueError(
                    f"fault rate for {kind!r} must be in [0, 1], "
                    f"got {rate!r}"
                )
        if hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")
        self.rates: Dict[str, float] = {
            kind: float(rates[kind]) for kind in FAULT_KINDS if kind in rates
        }
        self.seed = seed
        self.hang_seconds = float(hang_seconds)

    # -- construction -------------------------------------------------------

    @classmethod
    def parse(cls, spec: str, seed: int = 0,
              hang_seconds: float = 30.0) -> Optional["FaultPlan"]:
        """Parse a ``"crash:0.2,hang:0.1"`` style spec; ``""`` -> None."""
        spec = (spec or "").strip()
        if not spec:
            return None
        rates: Dict[str, float] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            kind, colon, rate_text = part.partition(":")
            if not colon:
                raise ValueError(
                    f"malformed fault spec {part!r} (expected kind:rate)"
                )
            try:
                rates[kind.strip()] = float(rate_text)
            except ValueError:
                raise ValueError(
                    f"malformed fault rate in {part!r}"
                ) from None
        return cls(rates, seed=seed, hang_seconds=hang_seconds)

    def describe(self) -> str:
        """The plan as a round-trippable spec string."""
        return ",".join(f"{kind}:{rate:g}"
                        for kind, rate in self.rates.items())

    # -- decisions -----------------------------------------------------------

    def decide(self, key: str, attempt: int) -> Optional[str]:
        """The fault kind to inject for this (job, attempt), or None.

        Kinds are drawn independently in :data:`FAULT_KINDS` order; the
        first hit wins, so rates compose like independent hazards.
        """
        for kind, rate in self.rates.items():
            if rate <= 0.0:
                continue
            draw = stable_unit(f"{self.seed}|{kind}|{key}|{attempt}")
            if draw < rate:
                return kind
        return None

    def __repr__(self) -> str:
        return (f"FaultPlan({self.describe()!r}, seed={self.seed}, "
                f"hang_seconds={self.hang_seconds})")


class ScriptedFaultPlan(FaultPlan):
    """A plan whose decisions are an explicit ``(key, attempt) -> kind``
    table — the deterministic building block the fault-path tests use to
    stage exact failure sequences."""

    def __init__(self, script: Mapping[Tuple[str, int], str],
                 hang_seconds: float = 30.0):
        super().__init__({}, seed=0, hang_seconds=hang_seconds)
        for kind in script.values():
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        self.script = dict(script)

    def decide(self, key: str, attempt: int) -> Optional[str]:
        return self.script.get((key, attempt))

    def __repr__(self) -> str:
        return f"ScriptedFaultPlan({len(self.script)} entries)"


class FaultyCall:
    """Picklable wrapper applying one attempt's fault decision around
    ``fn(item)`` *in the process that executes it* — injected crashes
    must kill the worker, not the scheduler."""

    def __init__(self, fn: Callable[[Any], Any], plan: Optional[FaultPlan],
                 key: str, attempt: int, parent_pid: int):
        self.fn = fn
        self.plan = plan
        self.key = key
        self.attempt = attempt
        self.parent_pid = parent_pid

    def __call__(self, item: Any) -> Any:
        kind = (self.plan.decide(self.key, self.attempt)
                if self.plan is not None else None)
        if kind == "crash":
            if os.getpid() != self.parent_pid:
                os._exit(CRASH_EXIT_CODE)
            # In-process execution (serial scheduler or degraded
            # fallback): killing the parent would defeat the harness.
            raise InjectedFaultError(
                f"injected crash for {self.key} "
                f"(attempt {self.attempt}, converted in-process)"
            )
        if kind == "raise":
            raise InjectedFaultError(
                f"injected failure for {self.key} (attempt {self.attempt})"
            )
        if kind == "hang":
            time.sleep(self.plan.hang_seconds)
        result = self.fn(item)
        if kind == "corrupt":
            return CorruptedResult(self.key, self.attempt)
        return result
