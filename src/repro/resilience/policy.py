"""Retry, timeout and backoff policy for the resilient scheduler.

The policy is a plain value object; the arithmetic lives in free
functions so the unit tests can pin it exactly.  Backoff jitter is
*deterministic* — a stable hash of (key, attempt) — because the whole
resilience layer promises that re-running the same command reproduces
the same schedule, faults included.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .faults import stable_unit


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the resilient scheduler tries before giving up on a job.

    Attributes:
        max_attempts: total executions allowed per job (1 = no retry).
        timeout_seconds: per-job wall-clock timeout, enforced only under
            a process pool (an in-process job cannot be preempted);
            ``None`` disables timeouts.
        backoff_base: delay before the first retry, in seconds.
        backoff_factor: multiplier applied per further retry.
        backoff_max: ceiling on any single delay.
        jitter: fraction of the delay shaved off deterministically
            (0 = none, 0.25 = delays land in [0.75d, d]).
        max_pool_rebuilds: broken-pool/timeout rebuilds tolerated per
            ``map`` call before degrading to serial in-process execution.
    """

    max_attempts: int = 4
    timeout_seconds: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25
    max_pool_rebuilds: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive or None")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")


def backoff_delay(policy: RetryPolicy, attempt: int, key: str) -> float:
    """Seconds to wait after failed attempt number ``attempt`` (1-based).

    Exponential in the attempt number, capped at ``backoff_max``, with a
    deterministic jitter drawn from ``(key, attempt)`` so concurrent
    retries de-synchronize without sacrificing reproducibility.
    """
    if attempt < 1:
        raise ValueError("attempt is 1-based")
    raw = policy.backoff_base * policy.backoff_factor ** (attempt - 1)
    raw = min(policy.backoff_max, raw)
    if policy.jitter:
        raw *= 1.0 - policy.jitter * stable_unit(f"backoff|{key}|{attempt}")
    return raw
