"""Fault-tolerant execution: fault injection, retries, checkpoint/resume.

This package layers recovery on top of :mod:`repro.engine` without
changing any simulated result:

* :mod:`repro.resilience.faults` — a deterministic, seedable
  fault-injection harness (:class:`FaultPlan`) able to make any job
  raise, hang, corrupt its output or kill its worker, driven by
  ``--inject-faults`` / ``REPRO_FAULTS`` so CI can exercise every
  failure path reproducibly.
* :mod:`repro.resilience.policy` — :class:`RetryPolicy` and the
  deterministic backoff/jitter arithmetic.
* :mod:`repro.resilience.scheduler` — :class:`ResilientScheduler`, a
  wrapper adding per-job timeouts, bounded retries, broken-pool
  rebuilds and serial-fallback degradation to any scheduler.
* :mod:`repro.resilience.journal` — :class:`RunJournal`, the
  crash-durable checkpoint file behind ``--resume``.

The typed failure taxonomy lives in :mod:`repro.errors`
(:class:`~repro.errors.ResilienceError` and friends); counters and trace
events go through :mod:`repro.obs`.
"""

from .faults import (
    CRASH_EXIT_CODE,
    CorruptedResult,
    FAULT_KINDS,
    FaultPlan,
    FaultyCall,
    ScriptedFaultPlan,
    corrupt_pixel,
    stable_unit,
)
from .journal import RunJournal
from .policy import RetryPolicy, backoff_delay
from .scheduler import JobFailure, ResilientScheduler

__all__ = [
    "CRASH_EXIT_CODE",
    "CorruptedResult",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultyCall",
    "JobFailure",
    "ResilientScheduler",
    "RetryPolicy",
    "RunJournal",
    "ScriptedFaultPlan",
    "backoff_delay",
    "corrupt_pixel",
    "stable_unit",
]
