"""Logging configuration and the CLI's leveled output helper.

Two audiences share this module: library code logs through
:func:`get_logger` (standard :mod:`logging`, silent unless configured),
and the CLI prints through an :class:`Output`, whose levels map onto the
``-q/--quiet`` and ``-v/--verbose`` flags:

* ``result`` — the command's primary payload (tables, reports).  Always
  printed; piping ``repro ... -q`` into a file yields exactly the data.
* ``info`` — operational chatter (cache summaries, "written to" notes).
  Suppressed by ``--quiet``.
* ``detail`` — extra diagnostics, printed only with ``--verbose``.

``--verbose`` also raises the ``repro`` logger to DEBUG so library-side
log lines surface on stderr.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional

QUIET = -1
NORMAL = 0
VERBOSE = 1

_PACKAGE_LOGGER = "repro"


def get_logger(name: str = "") -> logging.Logger:
    """The package logger, or a child of it (``get_logger("engine")``)."""
    if name:
        return logging.getLogger(f"{_PACKAGE_LOGGER}.{name}")
    return logging.getLogger(_PACKAGE_LOGGER)


_warned_once: set = set()


def warn_once(name: str, key: str, message: str) -> None:
    """Emit ``message`` on the ``repro.<name>`` logger at WARNING level,
    at most once per process for a given ``key``.

    Used for conditions that would otherwise spam on every resolution —
    e.g. a malformed ``REPRO_JOBS`` value read by every subcommand.
    """
    if key in _warned_once:
        return
    _warned_once.add(key)
    get_logger(name).warning("%s", message)


def reset_warn_once() -> None:
    """Forget which one-shot warnings fired (test isolation hook)."""
    _warned_once.clear()


def setup_logging(verbosity: int = NORMAL,
                  stream: Optional[IO[str]] = None) -> None:
    """Configure the ``repro`` logger for CLI use.

    Quiet keeps only errors; normal shows warnings; verbose shows
    everything.  Handlers are replaced, not stacked, so repeated calls
    (tests, REPL) stay idempotent.
    """
    logger = get_logger()
    level = (logging.ERROR if verbosity <= QUIET
             else logging.WARNING if verbosity == NORMAL
             else logging.DEBUG)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
    logger.handlers[:] = [handler]
    logger.setLevel(level)
    logger.propagate = False


class Output:
    """Leveled stdout writer for CLI commands."""

    def __init__(self, verbosity: int = NORMAL,
                 stream: Optional[IO[str]] = None):
        self.verbosity = verbosity
        self.stream = stream

    def _write(self, message: str) -> None:
        print(message, file=self.stream or sys.stdout)

    def result(self, message: str = "") -> None:
        """The command's primary output — printed at every verbosity."""
        self._write(message)

    def info(self, message: str) -> None:
        """Operational notes — suppressed by ``--quiet``."""
        if self.verbosity >= NORMAL:
            self._write(message)

    def detail(self, message: str) -> None:
        """Diagnostics — printed only with ``--verbose``."""
        if self.verbosity >= VERBOSE:
            self._write(message)


def verbosity_from_flags(verbose: bool, quiet: bool) -> int:
    """Fold the two CLI flags into one level (quiet wins on conflict)."""
    if quiet:
        return QUIET
    if verbose:
        return VERBOSE
    return NORMAL
