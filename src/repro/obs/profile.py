"""Scheduler profiling: where wall-clock time and worker capacity go.

A :class:`SchedulerProfiler` attaches to any scheduler (see
``repro.engine.scheduler``) and measures every mapped job *in the process
that executes it*: per-job wall time, queue wait (submission to start)
and which worker ran it.  From those it derives worker occupancy — the
fraction of the fan-out window each worker spent busy — for both the
Serial and ProcessPool schedulers.

The measurement path is deliberately one-way: the wrapper times the call
and passes the job's return value through untouched, so profiled and
unprofiled executions produce bit-identical simulated results; only
observability output differs.  Job timings also feed the process-wide
metrics registry (``scheduler.*`` histograms) and, when a
:class:`~repro.obs.trace.ChromeTracer` is attached, become per-tile trace
spans — on the ``main`` track when the job ran in-process (serial
scheduler), on a ``worker-<pid>`` track when a pool worker ran it.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from .metrics import global_registry
from .trace import MAIN_TRACK, Tracer


@dataclass(frozen=True)
class JobTiming:
    """One mapped job's observed execution."""

    label: str
    batch: int
    start: float
    end: float
    worker: int
    queue_wait: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class BatchTiming:
    """One ``Scheduler.map`` call's envelope."""

    submit: float
    end: float
    jobs: int

    @property
    def wall(self) -> float:
        return self.end - self.submit


@dataclass
class _Timed:
    """Wire record a wrapped call sends back from the executing process."""

    result: Any
    start: float
    end: float
    worker: int


class _TimedCall:
    """Picklable wrapper timing ``fn(item)`` where it runs."""

    def __init__(self, fn: Callable[[Any], Any]):
        self.fn = fn

    def __call__(self, item: Any) -> _Timed:
        start = time.perf_counter()
        result = self.fn(item)
        return _Timed(result, start, time.perf_counter(), os.getpid())


def _label_for(item: Any, index: int) -> str:
    """A human label for one work item (tile jobs and suite pairs get
    recognizable names; anything else falls back to its index)."""
    tile = getattr(item, "tile", None)
    if tile is not None:
        return f"tile {tile}"
    if isinstance(item, tuple) and len(item) >= 2:
        mode = getattr(item[1], "value", item[1])
        return f"{item[0]}:{mode}"
    return f"job {index}"


class SchedulerProfiler:
    """Accumulates job and batch timings across ``Scheduler.map`` calls."""

    def __init__(self, tracer: Optional[Tracer] = None):
        self.tracer = tracer
        self.timings: List[JobTiming] = []
        self.batches: List[BatchTiming] = []
        self._parent_pid = os.getpid()

    # -- scheduler-facing API ------------------------------------------------

    def wrap(self, fn: Callable[[Any], Any]) -> _TimedCall:
        """The timed, picklable stand-in schedulers map instead of ``fn``."""
        return _TimedCall(fn)

    def collect(self, submit: float, items: Sequence[Any],
                timed: Sequence[_Timed]) -> List[Any]:
        """Record one batch's timings; returns the unwrapped results."""
        batch = len(self.batches)
        registry = global_registry()
        job_hist = registry.histogram("scheduler.job_seconds")
        wait_hist = registry.histogram("scheduler.queue_wait_seconds")
        results: List[Any] = []
        batch_end = submit
        for index, (item, record) in enumerate(zip(items, timed)):
            timing = JobTiming(
                label=_label_for(item, index),
                batch=batch,
                start=record.start,
                end=record.end,
                worker=record.worker,
                queue_wait=max(0.0, record.start - submit),
            )
            self.timings.append(timing)
            job_hist.observe(timing.duration)
            wait_hist.observe(timing.queue_wait)
            if record.end > batch_end:
                batch_end = record.end
            if self.tracer is not None and self.tracer.enabled:
                track = (MAIN_TRACK if record.worker == self._parent_pid
                         else f"worker-{record.worker}")
                self.tracer.complete(
                    timing.label, "tile", record.start, record.end,
                    track=track,
                    args={"queue_wait_ms": timing.queue_wait * 1e3,
                          "batch": batch},
                )
            results.append(record.result)
        self.batches.append(BatchTiming(submit, batch_end, len(timed)))
        registry.counter("scheduler.jobs").inc(len(timed))
        registry.counter("scheduler.batches").inc()
        return results

    # -- summaries -----------------------------------------------------------

    @property
    def total_wall(self) -> float:
        """Sum of all fan-out windows (submission to last completion)."""
        return sum(batch.wall for batch in self.batches)

    def job_summary(self) -> Dict[str, float]:
        """Aggregate job statistics across every batch."""
        if not self.timings:
            return {"jobs": 0, "busy_seconds": 0.0, "mean_seconds": 0.0,
                    "max_seconds": 0.0, "mean_queue_wait_seconds": 0.0,
                    "max_queue_wait_seconds": 0.0}
        durations = [t.duration for t in self.timings]
        waits = [t.queue_wait for t in self.timings]
        return {
            "jobs": len(self.timings),
            "busy_seconds": sum(durations),
            "mean_seconds": sum(durations) / len(durations),
            "max_seconds": max(durations),
            "mean_queue_wait_seconds": sum(waits) / len(waits),
            "max_queue_wait_seconds": max(waits),
        }

    def worker_summary(self) -> List[Dict[str, float]]:
        """Per-worker rows: jobs run, busy time, occupancy.

        Occupancy is the worker's busy time over the total fan-out wall
        (the only window during which it *could* have been busy).
        """
        wall = self.total_wall
        by_worker: Dict[int, List[JobTiming]] = {}
        for timing in self.timings:
            by_worker.setdefault(timing.worker, []).append(timing)
        rows = []
        for worker in sorted(by_worker):
            timings = by_worker[worker]
            busy = sum(t.duration for t in timings)
            rows.append({
                "worker": ("main" if worker == self._parent_pid
                           else f"worker-{worker}"),
                "jobs": len(timings),
                "busy_seconds": busy,
                "occupancy": busy / wall if wall else 0.0,
            })
        return rows


def phase_breakdown(tracer) -> List[Dict[str, float]]:
    """Wall-time totals per span name for ``frame``/``phase``/``harness``
    category spans of a :class:`~repro.obs.trace.ChromeTracer`."""
    totals: Dict[str, Dict[str, float]] = {}
    for event in tracer.spans():
        if event.get("cat") not in ("frame", "phase", "harness"):
            continue
        entry = totals.setdefault(
            event["name"], {"count": 0, "total_ms": 0.0}
        )
        entry["count"] += 1
        entry["total_ms"] += event["dur"] / 1e3
    return [
        {"span": name, "count": entry["count"],
         "total_ms": entry["total_ms"],
         "mean_ms": entry["total_ms"] / entry["count"]}
        for name, entry in sorted(totals.items(),
                                  key=lambda kv: -kv[1]["total_ms"])
    ]
