"""The metrics registry: counters, gauges and histograms, plus exporters.

This is the one sink where the simulator's measurement records meet:
:class:`~repro.timing.FrameStats` counters and
:class:`~repro.engine.Instrumentation` memory-unit counters can both be
ingested into a :class:`MetricsRegistry`, and runtime components (the
disk cache, the scheduler profiler) count directly into the process-wide
:func:`global_registry`.  On top of the raw counters this module derives
the EVR telemetry the paper's figures argue from:

* :func:`fvp_confusion_matrix` — predicted-occluded vs actually-visible
  per (primitive, tile) pair, i.e. the poison-rate breakdown;
* :func:`re_ratios` — Rendering Elimination skip/check/filter ratios;
* disk-cache hit/miss/evict counters (``cache.*`` in the global
  registry, incremented by :class:`~repro.engine.DiskCache`).

Records are plain dicts; :func:`write_jsonl` and
:func:`write_csv_records` export them per frame and per run.  Everything
here is observability-only: registries are never read back by the
simulation.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterable, List, Mapping, Optional, Union


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount


@dataclass
class Gauge:
    """A last-value-wins measurement."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Streaming summary of an observed distribution (count/sum/min/max)."""

    count: int = 0
    total: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {"count": self.count, "sum": self.total,
                "min": self.minimum, "max": self.maximum,
                "mean": self.mean}


class MetricsRegistry:
    """Named counters, gauges and histograms with get-or-create access."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        try:
            return self.counters[name]
        except KeyError:
            instrument = self.counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        try:
            return self.gauges[name]
        except KeyError:
            instrument = self.gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        try:
            return self.histograms[name]
        except KeyError:
            instrument = self.histograms[name] = Histogram()
            return instrument

    def reset(self) -> None:
        """Drop every instrument (scopes counters to one CLI invocation)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    # -- ingestion ----------------------------------------------------------

    def ingest_stats(self, stats, prefix: str = "stats") -> None:
        """Accumulate a :class:`~repro.timing.FrameStats` (duck-typed via
        ``as_dict``) into ``<prefix>.<counter>`` counters."""
        for name, value in stats.as_dict().items():
            self.counter(f"{prefix}.{name}").inc(value)

    def ingest_instrumentation(self, instrumentation,
                               prefix: str = "memory") -> None:
        """Accumulate an :class:`~repro.engine.Instrumentation` record's
        unit counters and DRAM cycles."""
        for unit, counters in instrumentation.units.items():
            for name, value in counters.items():
                self.counter(f"{prefix}.{unit}.{name}").inc(value)
        self.counter(f"{prefix}.dram_cycles").inc(
            instrumentation.dram_cycles
        )

    # -- export -------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value for name, g in sorted(self.gauges.items())},
            "histograms": {name: h.summary()
                           for name, h in sorted(self.histograms.items())},
        }


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry runtime components count into."""
    return _GLOBAL


# -- derived EVR telemetry ---------------------------------------------------


def fvp_confusion_matrix(stats) -> Dict[str, float]:
    """The FVP prediction confusion matrix over validated predictions.

    A prediction is *validated* when its (primitive, tile) pair actually
    reached the rasterizer — its outcome ("did any fragment survive the
    depth test and contribute color?") is then observable.  Pairs binned
    into tiles later skipped by RE are never validated.  The poison rate
    — the fraction of predicted-occluded pairs that were actually
    visible, each of which taints its tile's signature — is the paper's
    misprediction cost.
    """
    occluded_visible = stats.mispredicted_visible
    occluded_occluded = stats.predicted_occluded_correct
    visible_occluded = stats.predicted_visible_hidden
    visible_visible = stats.predicted_visible_correct
    predicted_occluded = occluded_visible + occluded_occluded
    validated = predicted_occluded + visible_occluded + visible_visible
    return {
        "predicted_occluded_actually_occluded": occluded_occluded,
        "predicted_occluded_actually_visible": occluded_visible,
        "predicted_visible_actually_occluded": visible_occluded,
        "predicted_visible_actually_visible": visible_visible,
        "validated": validated,
        "poison_rate": (occluded_visible / predicted_occluded
                        if predicted_occluded else 0.0),
        "accuracy": ((occluded_occluded + visible_visible) / validated
                     if validated else 0.0),
    }


def re_ratios(stats) -> Dict[str, float]:
    """Rendering Elimination effectiveness ratios for one stats record."""
    updates = stats.signature_updates + stats.signature_skips
    return {
        "tiles_total": stats.tiles_total,
        "tiles_skipped": stats.tiles_skipped,
        "signature_checks": stats.signature_checks,
        "signature_poisons": stats.signature_poisons,
        "skip_rate": (stats.tiles_skipped / stats.tiles_total
                      if stats.tiles_total else 0.0),
        "check_rate": (stats.signature_checks / stats.tiles_total
                       if stats.tiles_total else 0.0),
        "signature_filter_rate": (stats.signature_skips / updates
                                  if updates else 0.0),
    }


def frame_record(benchmark: str, mode: str, frame_result, cost_model,
                 energy_model, features) -> Dict[str, Any]:
    """One frame's metrics record (JSONL row) from a ``FrameResult``.

    Duck-typed against :class:`~repro.pipeline.FrameResult` and the two
    cost models so this module stays import-independent of the pipeline.
    """
    stats = frame_result.stats
    geometry = cost_model.geometry_cycles(stats,
                                          frame_result.geometry.dram_cycles)
    raster = cost_model.raster_cycles(stats, frame_result.raster.dram_cycles)
    energy = energy_model.compute(
        stats, frame_result.merged_snapshot(), geometry + raster,
        evr_enabled=features.evr_hardware,
        re_enabled=features.rendering_elimination,
    )
    return {
        "record": "frame",
        "benchmark": benchmark,
        "mode": mode,
        "frame": frame_result.index,
        "geometry_cycles": geometry,
        "raster_cycles": raster,
        "total_cycles": geometry + raster,
        "energy_joules": energy.total,
        "fvp_confusion": fvp_confusion_matrix(stats),
        "re": re_ratios(stats),
        "stats": stats.as_dict(),
    }


def run_record(benchmark: str, mode: str, result,
               registry: Optional[MetricsRegistry] = None) -> Dict[str, Any]:
    """One run's aggregate record from a ``RunResult`` (steady-state)."""
    stats = result.total_stats()
    cycles = result.total_cycles()
    energy = result.total_energy()
    record: Dict[str, Any] = {
        "record": "run",
        "benchmark": benchmark,
        "mode": mode,
        "frames": len(result.frames),
        "geometry_cycles": cycles.geometry,
        "raster_cycles": cycles.raster,
        "total_cycles": cycles.total,
        "energy_joules": energy.total,
        "fvp_confusion": fvp_confusion_matrix(stats),
        "re": re_ratios(stats),
        "stats": stats.as_dict(),
    }
    if registry is not None:
        record["registry"] = registry.as_dict()
    return record


def spec_record(spec) -> Dict[str, Any]:
    """The provenance header record for a metrics export: the fully
    resolved spec plus its canonical hash, so any exported numbers can
    be traced back to (and replayed from) the exact configuration that
    produced them.  Duck-typed against :class:`repro.spec.RunSpec`."""
    return {
        "record": "spec",
        "spec_hash": spec.spec_hash(),
        "spec": spec.to_dict(),
    }


# -- record exporters --------------------------------------------------------


def flatten_record(record: Mapping[str, Any],
                   prefix: str = "") -> Dict[str, Any]:
    """Flatten nested dicts into dotted keys (for CSV export)."""
    flat: Dict[str, Any] = {}
    for key, value in record.items():
        name = f"{prefix}{key}"
        if isinstance(value, Mapping):
            flat.update(flatten_record(value, prefix=f"{name}."))
        else:
            flat[name] = value
    return flat


def write_jsonl(records: Iterable[Mapping[str, Any]],
                file: Union[str, IO[str]]) -> None:
    """Write records as JSON Lines (one compact object per line)."""

    def _write(handle: IO[str]) -> None:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")

    if isinstance(file, str):
        with open(file, "w") as handle:
            _write(handle)
    else:
        _write(file)


def write_csv_records(records: Iterable[Mapping[str, Any]],
                      file: Union[str, IO[str]]) -> None:
    """Write records as CSV, flattening nested dicts into dotted columns.

    The header is the union of all records' keys, in first-seen order,
    so heterogeneous record kinds (frame rows + run rows) coexist.
    """
    flat_records = [flatten_record(record) for record in records]
    columns: List[str] = []
    for record in flat_records:
        for key in record:
            if key not in columns:
                columns.append(key)

    def _write(handle: IO[str]) -> None:
        writer = csv.DictWriter(handle, fieldnames=columns, restval="")
        writer.writeheader()
        writer.writerows(flat_records)

    if isinstance(file, str):
        with open(file, "w", newline="") as handle:
            _write(handle)
    else:
        _write(file)
