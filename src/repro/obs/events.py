"""The structured event bus: typed, ordered, one-way run telemetry.

Where :mod:`repro.obs.trace` records *intervals* for post-hoc viewing,
this module broadcasts *events* while a run executes: run/phase/tile
progress, metric samples and injected faults, published to any number of
subscribers (a live terminal renderer, a JSONL event log, the tracer and
metrics registry as consumers — see :mod:`repro.obs.live` and the
subscriber classes below).  The bus follows the tracer's process-wide
singleton pattern:

* :data:`NULL_BUS` (the default) swallows everything; ``emit()`` on it
  is one attribute check at every instrumented call site, so a run
  without subscribers pays nothing.
* :class:`EventBus` stamps every event with a monotonically increasing
  sequence number and fans it out to subscribers synchronously, in
  subscription order.

**Schema.** Events are frozen dataclasses; the wire form is one JSON
object per line carrying ``v`` (:data:`EVENT_SCHEMA_VERSION`), ``kind``,
``seq``, ``ts`` (wall-clock seconds) and the event's own fields.  The
version bumps whenever a field is removed or changes meaning; adding
fields is backward-compatible and does not bump it.  ``event_from_wire``
ignores unknown fields for exactly that reason.

**Worker forwarding.**  Pipeline events fire inside whichever process
executes the work.  Under a :class:`~repro.engine.ProcessPoolScheduler`
that is a worker without access to the parent's subscribers, so the
schedulers wrap mapped calls in :class:`EventForwardingCall`: the worker
buffers its events next to the job's result (the same wire the profiler
uses), and the parent re-emits them — re-stamped, so the merged stream
stays monotonically ordered — when it unwraps the result.

**One-way by construction.**  Nothing here is read back by the
simulation, and a subscriber that raises is disconnected with a warning
rather than allowed to fail the run: a run with subscribers attached is
bit-identical to a bare run.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from .log import get_logger

logger = get_logger("obs.events")

#: Bumped when an existing wire field is removed or changes meaning.
#: New fields may be added without a bump (readers ignore unknowns).
EVENT_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Event types (the versioned schema)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RunStarted:
    """One (benchmark, mode) simulation is about to render."""

    benchmark: str
    mode: str
    frames: int = 0
    seq: int = 0
    ts: float = 0.0

    kind = "run-started"


@dataclass(frozen=True)
class PhaseCompleted:
    """One pipeline phase of one frame finished.

    ``fragments``/``cache_ops`` are the phase's contribution (shaded
    fragments so far for raster, simulated cache-unit accesses for the
    phase's instrumentation) — the live renderer derives its
    fragments/s and cache-ops/s from these.
    """

    phase: str
    frame: int
    seconds: float
    fragments: int = 0
    cache_ops: int = 0
    seq: int = 0
    ts: float = 0.0

    kind = "phase-completed"


@dataclass(frozen=True)
class TileJobFinished:
    """One tile job finished executing (in whichever process ran it).

    ``start``/``end`` are ``time.perf_counter`` endpoints measured in
    the executing process (system-wide monotonic, so comparable across
    workers); ``worker`` is that process's pid — together they are the
    dashboard's worker-occupancy lane data.
    """

    tile: int
    fragments: int
    worker: int = 0
    start: float = 0.0
    end: float = 0.0
    seq: int = 0
    ts: float = 0.0

    kind = "tile-job-finished"


@dataclass(frozen=True)
class MetricSample:
    """A named scalar sampled mid-run (suite progress, bench rates)."""

    name: str
    value: float
    seq: int = 0
    ts: float = 0.0

    kind = "metric-sample"


@dataclass(frozen=True)
class FaultInjected:
    """The resilience layer observed a retryable failure."""

    key: str
    attempt: int
    fault: str
    seq: int = 0
    ts: float = 0.0

    kind = "fault-injected"


@dataclass(frozen=True)
class RunFinished:
    """One (benchmark, mode) simulation completed."""

    benchmark: str
    mode: str
    seconds: float
    frames: int = 0
    fragments: int = 0
    seq: int = 0
    ts: float = 0.0

    kind = "run-finished"


@dataclass(frozen=True)
class CorpusFamilyChecked:
    """The corpus gate finished differentially validating one stress
    family (additive schema: new kind, no version bump).

    ``failures`` counts violated checks; ``shrink_evals`` is non-zero
    only when a violation triggered the delta-debugging shrinker.
    """

    family: str
    frames: int
    seconds: float
    passed: bool
    checks: int = 0
    failures: int = 0
    shrink_evals: int = 0
    seq: int = 0
    ts: float = 0.0

    kind = "corpus-family-checked"


Event = Union[RunStarted, PhaseCompleted, TileJobFinished, MetricSample,
              FaultInjected, RunFinished, CorpusFamilyChecked]

EVENT_TYPES: Tuple[Type, ...] = (
    RunStarted, PhaseCompleted, TileJobFinished, MetricSample,
    FaultInjected, RunFinished, CorpusFamilyChecked,
)

_KIND_TO_TYPE: Dict[str, Type] = {cls.kind: cls for cls in EVENT_TYPES}


def to_wire(event: Event) -> Dict[str, Any]:
    """The event's JSONL wire object (``v`` + ``kind`` + fields)."""
    record: Dict[str, Any] = {"v": EVENT_SCHEMA_VERSION, "kind": event.kind}
    record.update(dataclasses.asdict(event))
    return record


def event_from_wire(record: Dict[str, Any]) -> Optional[Event]:
    """Rebuild an event from its wire object.

    Returns ``None`` for unknown kinds or unsupported schema versions
    (readers of event logs skip rather than crash); unknown *fields* of
    a known kind are ignored (additive schema evolution).
    """
    if record.get("v") != EVENT_SCHEMA_VERSION:
        return None
    cls = _KIND_TO_TYPE.get(record.get("kind", ""))
    if cls is None:
        return None
    known = {field.name for field in dataclasses.fields(cls)}
    try:
        return cls(**{key: value for key, value in record.items()
                      if key in known})
    except (TypeError, ValueError):
        return None


# ---------------------------------------------------------------------------
# The bus
# ---------------------------------------------------------------------------

Subscriber = Callable[[Event], None]


class NullBus:
    """Events disabled: every operation is a no-op."""

    enabled = False

    def emit(self, event: Event) -> None:
        return None

    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        raise RuntimeError(
            "cannot subscribe to the null bus; install an EventBus first "
            "(see repro.obs.events.publishing)"
        )


NULL_BUS = NullBus()


class EventBus:
    """Fans typed events out to subscribers, stamping monotonic ``seq``.

    Emission is synchronous and in subscription order.  A subscriber
    that raises is disconnected (with a warning) instead of failing the
    run — observability must never change a result, and a run whose
    event log dies mid-way is still a correct run.
    """

    enabled = True

    def __init__(self) -> None:
        self._subscribers: List[Subscriber] = []
        self._seq = 0
        self.emitted = 0

    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        """Attach ``subscriber``; returns it (decorator-friendly)."""
        self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        if subscriber in self._subscribers:
            self._subscribers.remove(subscriber)

    def emit(self, event: Event) -> None:
        """Stamp ``seq``/``ts`` and deliver to every subscriber."""
        self._seq += 1
        event = dataclasses.replace(
            event, seq=self._seq,
            ts=event.ts if event.ts else time.time(),
        )
        self.emitted += 1
        for subscriber in list(self._subscribers):
            try:
                subscriber(event)
            except Exception as error:  # noqa: BLE001 - one-way contract
                self.unsubscribe(subscriber)
                logger.warning(
                    "event subscriber %r failed (%r); disconnected",
                    subscriber, error,
                )


Bus = Union[NullBus, EventBus]

_CURRENT: Bus = NULL_BUS


def get_bus() -> Bus:
    """The process-wide bus instrumented call sites emit into."""
    return _CURRENT


def set_bus(bus: Bus) -> Bus:
    """Install ``bus`` process-wide; returns the previous one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = bus
    return previous


@contextmanager
def publishing(bus: Bus) -> Iterator[Bus]:
    """Scoped :func:`set_bus`: restores the previous bus on exit."""
    previous = set_bus(bus)
    try:
        yield bus
    finally:
        set_bus(previous)


# ---------------------------------------------------------------------------
# Worker-side forwarding (the result-channel wire)
# ---------------------------------------------------------------------------

class _BufferBus(EventBus):
    """The bus installed inside a worker: buffers instead of delivering."""

    def __init__(self) -> None:
        super().__init__()
        self.events: List[Event] = []
        self.subscribe(self.events.append)


@dataclass
class ForwardedResult:
    """Wire record pairing a job's result with its buffered events."""

    result: Any
    events: List[Event]


class EventForwardingCall:
    """Picklable wrapper buffering a mapped call's events where it runs.

    In the parent process (serial scheduler, or a pool's single-item
    shortcut) events already reach the live bus, so the call passes
    through and forwards nothing.  In a worker — including one forked
    with the parent's bus object inherited — a fresh buffering bus is
    installed for the call's duration, and the buffered events ride home
    next to the result for the parent to re-emit in submission order.
    """

    def __init__(self, fn: Callable[[Any], Any],
                 parent_pid: Optional[int] = None):
        self.fn = fn
        self.parent_pid = os.getpid() if parent_pid is None else parent_pid

    def __call__(self, item: Any) -> ForwardedResult:
        if os.getpid() == self.parent_pid:
            return ForwardedResult(self.fn(item), [])
        buffer = _BufferBus()
        with publishing(buffer):
            result = self.fn(item)
        return ForwardedResult(result, buffer.events)


def replay_forwarded(value: Any, bus: Optional[Bus] = None) -> Any:
    """Parent-side unwrap: re-emit a job's buffered events, return its
    result.  Passes non-forwarded values through untouched, so unwrap
    sites need not know whether forwarding was armed."""
    if not isinstance(value, ForwardedResult):
        return value
    target = get_bus() if bus is None else bus
    if target.enabled:
        for event in value.events:
            target.emit(event)
    return value.result


# ---------------------------------------------------------------------------
# Subscribers: event log, tracer and metrics consumers
# ---------------------------------------------------------------------------

class JsonlEventWriter:
    """Streams events to a JSONL file, crash-durably.

    Every event is written and flushed as it arrives, so a faulted or
    killed run leaves a valid prefix of the stream on disk; ``close()``
    is idempotent and registered with ``atexit`` by the CLI as the
    flush-on-crash backstop.
    """

    def __init__(self, path: str):
        self.path = path
        self.written = 0
        self._handle: Optional[IO[str]] = open(path, "w")

    def __call__(self, event: Event) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(to_wire(event), sort_keys=True))
        self._handle.write("\n")
        self._handle.flush()
        self.written += 1

    def close(self) -> None:
        handle = self._handle
        self._handle = None
        if handle is not None:
            handle.close()


def read_event_log(path: str) -> List[Event]:
    """Parse a JSONL event log back into typed events (unknown kinds
    and foreign schema versions are skipped)."""
    events: List[Event] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            event = event_from_wire(record)
            if event is not None:
                events.append(event)
    return events


class TracerSubscriber:
    """Feeds bus events into a tracer as instants on an ``events`` lane
    — the ChromeTracer consuming the bus, so a ``--trace`` file carries
    the event stream alongside its spans."""

    def __init__(self, tracer) -> None:
        self.tracer = tracer

    def __call__(self, event: Event) -> None:
        if not self.tracer.enabled:
            return
        args = {key: value
                for key, value in dataclasses.asdict(event).items()
                if not isinstance(value, (list, dict))}
        self.tracer.instant(event.kind, category="event", **args)


class MetricsSubscriber:
    """Counts bus events into a metrics registry (``events.*``): per-kind
    counters, phase-seconds histograms and metric-sample gauges — the
    MetricsRegistry consuming the bus."""

    def __init__(self, registry) -> None:
        self.registry = registry

    def __call__(self, event: Event) -> None:
        registry = self.registry
        registry.counter(f"events.{event.kind}").inc()
        if isinstance(event, PhaseCompleted):
            registry.histogram(
                f"events.phase_seconds.{event.phase}"
            ).observe(event.seconds)
        elif isinstance(event, MetricSample):
            registry.gauge(f"events.sample.{event.name}").set(event.value)


def cache_ops_of(instrumentation) -> int:
    """Simulated cache-unit accesses in one instrumentation record (the
    ``cache_ops`` payload of :class:`PhaseCompleted`)."""
    return sum(counters.get("accesses", 0)
               for counters in instrumentation.units.values())
