"""The persistent run ledger: every invocation leaves a durable record.

``.repro_cache/`` remembers *results* (keyed by spec hash, so a repeated
run is free); this module remembers *history*.  Every ``repro
run/figure/bench`` invocation appends one JSONL entry per simulated cell
(or bench record) to ``.repro_ledger/ledger.jsonl``, keyed by
``(spec_hash, benchmark, mode, code_version, git_sha, machine)`` and
carrying the distilled metrics, phase timings and bench speedup ratios.
The ledger is what makes trajectories first-class:

* ``repro ledger list|show|diff|gc`` inspect and prune it;
* ``repro ledger check`` is the drift gate — it exits non-zero when the
  newest entry's EVR effectiveness rates or bench speedup ratios drift
  more than a tolerance away from the ledger median for the same key
  (subsuming the hand-rolled ``check_bench_regression`` JSON-file path:
  the ledger *is* the baseline, and it deepens with every run);
* ``repro dashboard`` (:mod:`repro.obs.dashboard`) renders it.

The file is append-only (``gc`` is the only rewriter) and entries are
self-describing (``v``/``kind``), so old ledgers survive schema growth
the same way event logs do: unknown fields are carried along, unknown
kinds are skipped.

The directory resolves, in order: an explicit argument (the
``obs.ledger`` spec knob / ``--ledger``), the ``REPRO_LEDGER_DIR``
environment variable, then ``.repro_ledger/`` under the current
directory.  ``off`` (or ``none``) disables recording entirely.
"""

from __future__ import annotations

import dataclasses
import json
import os
import statistics
import subprocess
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .events import Event, PhaseCompleted, RunStarted
from .log import get_logger

logger = get_logger("obs.ledger")

LEDGER_VERSION = 1
DEFAULT_LEDGER_DIR = ".repro_ledger"
ENV_LEDGER_DIR = "REPRO_LEDGER_DIR"
LEDGER_FILENAME = "ledger.jsonl"

#: ``--ledger off`` / ``obs.ledger = "off"`` values that disable it.
DISABLED_VALUES = ("off", "none", "disabled")

#: Absolute drift tolerance for effectiveness rates (redundant-tile /
#: predicted-occluded fractions live in [0, 1]).
DEFAULT_RATE_TOLERANCE = 0.05
#: Relative drift tolerance for bench speedup ratios (matches the
#: historical ``check_bench_regression`` gate).
DEFAULT_RATIO_TOLERANCE = 0.2

#: RunMetrics fields checked for drift (absolute, rate-valued).
RATE_METRICS = ("redundant_tile_rate", "predicted_occluded_rate")

_git_sha: Optional[str] = None


def git_sha() -> str:
    """The current commit sha, or ``""`` outside a git checkout (cached
    per process — the ledger stamps many entries per invocation)."""
    global _git_sha
    if _git_sha is None:
        try:
            _git_sha = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True, text=True, timeout=10, check=True,
            ).stdout.strip()
        except Exception:  # noqa: BLE001 - no git / not a repo / timeout
            _git_sha = ""
    return _git_sha


def resolve_ledger_dir(directory: Optional[str] = None) -> str:
    """Apply the argument → env → default resolution order; ``""``
    means disabled."""
    if directory is None or directory == "":
        directory = os.environ.get(ENV_LEDGER_DIR, DEFAULT_LEDGER_DIR)
    if directory.lower() in DISABLED_VALUES:
        return ""
    return directory


def run_key(entry: Dict[str, Any]) -> Tuple:
    """The drift-detection grouping key of one ledger entry.

    Run entries group by (spec_hash, benchmark, mode) — entries for the
    same experiment cell across commits; bench entries by preset.
    Code version / git sha / machine stay *recorded* per entry but do
    not split groups: drift across commits is exactly what ``check``
    exists to see.
    """
    if entry.get("kind") == "bench":
        return ("bench", entry.get("preset", ""))
    return ("run", entry.get("spec_hash", ""), entry.get("benchmark", ""),
            entry.get("mode", ""))


class RunLedger:
    """Append-only JSONL store of run/bench history.

    Constructed with ``directory=""`` (after resolution) the ledger is
    disabled: every recording method is a silent no-op and reads return
    empty, so call sites need no conditionals.
    """

    def __init__(self, directory: Optional[str] = None):
        self.directory = resolve_ledger_dir(directory)

    @property
    def enabled(self) -> bool:
        return bool(self.directory)

    @property
    def path(self) -> str:
        return os.path.join(self.directory, LEDGER_FILENAME)

    # -- writing ------------------------------------------------------------

    def _stamp(self, entry: Dict[str, Any]) -> Dict[str, Any]:
        from ..engine.diskcache import code_version
        from ..harness.bench import machine_info

        stamped = {
            "v": LEDGER_VERSION,
            "ts": time.time(),
            "git_sha": git_sha(),
            "code_version": code_version(),
            "machine": machine_info(),
        }
        stamped.update(entry)
        return stamped

    def append(self, entry: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Stamp ``entry`` with version/time/sha/machine and append it;
        returns the stamped entry (None when disabled)."""
        if not self.enabled:
            return None
        stamped = self._stamp(entry)
        try:
            os.makedirs(self.directory, exist_ok=True)
            with open(self.path, "a") as handle:
                handle.write(json.dumps(stamped, sort_keys=True) + "\n")
        except OSError as error:
            # The ledger is observability: a read-only checkout must not
            # fail the run it records.
            logger.warning("ledger append to %s failed: %s",
                           self.path, error)
            return None
        return stamped

    def record_run(self, spec_hash: str, metrics,
                   phases: Optional[Dict[str, float]] = None,
                   source: str = "run") -> Optional[Dict[str, Any]]:
        """Append one (benchmark, mode) cell's distilled metrics.

        ``metrics`` is a :class:`~repro.harness.runner.RunMetrics`;
        failed (NaN) cells are skipped — a half-dead run must not drag
        the drift median.  ``phases`` carries measured per-phase wall
        seconds when an event bus was active (empty for cached cells,
        which never simulated).
        """
        if getattr(metrics, "failed", False):
            return None
        fields = dataclasses.asdict(metrics)
        fields.pop("error", None)
        return self.append({
            "kind": "run",
            "source": source,
            "spec_hash": spec_hash,
            "benchmark": fields.pop("benchmark"),
            "mode": fields.pop("mode"),
            "metrics": fields,
            "phases": dict(phases or {}),
        })

    def record_bench(self, record: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Append one ``repro bench`` result: the machine-independent
        speedup ratios plus each backend's headline rates."""
        backends = {}
        for backend, measurement in record.get("backends", {}).items():
            sweep = measurement.get("memsys_sweep") or {}
            backends[backend] = {
                "wall_seconds": measurement.get("wall_seconds"),
                "frames_per_second": measurement.get("frames_per_second"),
                "cache_ops_per_second": sweep.get("cache_ops_per_second"),
                "raster_phase_ms": measurement.get("raster_phase_ms", {}),
            }
        return self.append({
            "kind": "bench",
            "preset": record.get("preset", ""),
            "speedup": dict(record.get("speedup", {})),
            "backends": backends,
        })

    # -- reading ------------------------------------------------------------

    def entries(self) -> List[Dict[str, Any]]:
        """Every parseable entry, in append (chronological) order."""
        if not self.enabled or not os.path.exists(self.path):
            return []
        out: List[Dict[str, Any]] = []
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # torn tail of a killed writer
                if isinstance(entry, dict) and "kind" in entry:
                    out.append(entry)
        return out

    def groups(self) -> Dict[Tuple, List[Dict[str, Any]]]:
        """Entries bucketed by :func:`run_key`, chronological within."""
        grouped: Dict[Tuple, List[Dict[str, Any]]] = {}
        for entry in self.entries():
            grouped.setdefault(run_key(entry), []).append(entry)
        return grouped

    # -- maintenance --------------------------------------------------------

    def gc(self, keep: int) -> Tuple[int, int]:
        """Keep only the newest ``keep`` entries per group; returns
        (kept, dropped).  The single place the ledger file is rewritten."""
        if keep < 1:
            raise ValueError("gc keep must be >= 1")
        entries = self.entries()
        grouped: Dict[Tuple, List[Dict[str, Any]]] = {}
        for entry in entries:
            grouped.setdefault(run_key(entry), []).append(entry)
        survivors = set()
        for group in grouped.values():
            for entry in group[-keep:]:
                survivors.add(id(entry))
        kept = [entry for entry in entries if id(entry) in survivors]
        if self.enabled:
            os.makedirs(self.directory, exist_ok=True)
            with open(self.path, "w") as handle:
                for entry in kept:
                    handle.write(json.dumps(entry, sort_keys=True) + "\n")
        return len(kept), len(entries) - len(kept)

    # -- drift detection ----------------------------------------------------

    def check(self, rate_tolerance: float = DEFAULT_RATE_TOLERANCE,
              ratio_tolerance: float = DEFAULT_RATIO_TOLERANCE,
              ) -> List[str]:
        """Compare each group's newest entry against the median of its
        predecessors; returns a list of human-readable drift findings
        (empty = healthy).

        Run groups gate the EVR effectiveness rates (absolute drift
        beyond ``rate_tolerance``); bench groups gate every speedup
        ratio (relative *drop* beyond ``ratio_tolerance`` — a faster
        run is never drift).  Groups with fewer than two entries have
        no history to drift from and pass.
        """
        findings: List[str] = []
        for key, group in sorted(self.groups().items()):
            if len(group) < 2:
                continue
            latest, priors = group[-1], group[:-1]
            if key[0] == "run":
                label = f"{key[2]}:{key[3]}"
                for metric in RATE_METRICS:
                    values = [e["metrics"][metric] for e in priors
                              if metric in e.get("metrics", {})]
                    current = latest.get("metrics", {}).get(metric)
                    if current is None or not values:
                        continue
                    median = statistics.median(values)
                    if abs(current - median) > rate_tolerance:
                        findings.append(
                            f"run {label}: {metric} {current:.4f} drifted "
                            f"from ledger median {median:.4f} "
                            f"(|Δ| {abs(current - median):.4f} > "
                            f"{rate_tolerance})"
                        )
            else:
                label = f"bench preset={key[1]}"
                ratios = latest.get("speedup", {})
                for name, current in sorted(ratios.items()):
                    values = [e["speedup"][name] for e in priors
                              if name in e.get("speedup", {})]
                    if not values or not current:
                        continue
                    median = statistics.median(values)
                    if median > 0 and current < median * (1 - ratio_tolerance):
                        findings.append(
                            f"{label}: speedup {name} {current:.2f}x fell "
                            f">{ratio_tolerance:.0%} below ledger median "
                            f"{median:.2f}x"
                        )
        return findings


class PhaseAccumulator:
    """Bus subscriber folding :class:`PhaseCompleted` seconds into
    per-cell totals — the ledger's ``phases`` field.

    Attribution relies on each run's events being contiguous on the
    parent bus, which the forwarding protocol guarantees: a worker
    job's buffered stream (``RunStarted … PhaseCompleted … RunFinished``)
    is replayed atomically when its result is unwrapped.
    """

    def __init__(self) -> None:
        self.phases: Dict[Tuple[str, str], Dict[str, float]] = {}
        self._current: Optional[Tuple[str, str]] = None

    def __call__(self, event: Event) -> None:
        if isinstance(event, RunStarted):
            self._current = (event.benchmark, event.mode)
        elif isinstance(event, PhaseCompleted) and self._current is not None:
            cell = self.phases.setdefault(self._current, {})
            cell[event.phase] = cell.get(event.phase, 0.0) + event.seconds

    def for_cell(self, benchmark: str, mode: str) -> Dict[str, float]:
        return self.phases.get((benchmark, mode), {})


# ---------------------------------------------------------------------------
# CLI formatting helpers
# ---------------------------------------------------------------------------

def _when(entry: Dict[str, Any]) -> str:
    ts = entry.get("ts")
    if not ts:
        return "-"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(ts))


def entry_label(entry: Dict[str, Any]) -> str:
    if entry.get("kind") == "bench":
        return f"bench:{entry.get('preset', '?')}"
    return f"{entry.get('benchmark', '?')}:{entry.get('mode', '?')}"


def entry_headline(entry: Dict[str, Any]) -> str:
    """The one number worth a column in ``ledger list``."""
    if entry.get("kind") == "bench":
        ratios = entry.get("speedup", {})
        fps = ratios.get("frames_per_second")
        cache = ratios.get("cache_ops_per_second")
        parts = []
        if fps:
            parts.append(f"frames/s x{fps:.2f}")
        if cache:
            parts.append(f"cache-ops/s x{cache:.2f}")
        return "  ".join(parts) or "-"
    rate = entry.get("metrics", {}).get("redundant_tile_rate")
    return f"redundant tiles {rate:.4f}" if rate is not None else "-"


def format_ledger_rows(entries: Sequence[Dict[str, Any]]) -> List[str]:
    """``ledger list`` lines: index, time, sha, key, headline metric."""
    lines = []
    for index, entry in enumerate(entries):
        sha = (entry.get("git_sha") or "-")[:9]
        lines.append(f"{index:>4}  {_when(entry)}  {sha:<9}  "
                     f"{entry_label(entry):<24}  {entry_headline(entry)}")
    return lines


def _numeric_leaves(entry: Dict[str, Any], section: str) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for name, value in entry.get(section, {}).items():
        if isinstance(value, (int, float)):
            out[name] = float(value)
    return out


def diff_entries(old: Dict[str, Any], new: Dict[str, Any]) -> List[str]:
    """Numeric field-by-field delta between two entries of one group."""
    section = "speedup" if new.get("kind") == "bench" else "metrics"
    before = _numeric_leaves(old, section)
    after = _numeric_leaves(new, section)
    lines = []
    for name in sorted(before.keys() | after.keys()):
        a, b = before.get(name), after.get(name)
        if a is None or b is None:
            lines.append(f"  {name}: {a} -> {b}")
        elif a != b:
            delta = b - a
            rel = f" ({delta / a:+.2%})" if a else ""
            lines.append(f"  {name}: {a:.6g} -> {b:.6g}{rel}")
    return lines or ["  (no numeric change)"]
