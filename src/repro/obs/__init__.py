"""Observability: tracing, metrics and profiling over the execution engine.

The paper's argument is quantitative — per-tile prediction accuracy,
poison rates, cycles and energy removed — and this package is where those
quantities become first-class, without perturbing what they measure:

* :mod:`repro.obs.trace` — a span-based tracer.  The default
  :data:`~repro.obs.trace.NULL_TRACER` is a no-op (near-zero overhead);
  :class:`~repro.obs.trace.ChromeTracer` records frame → phase → tile
  spans and exports Chrome ``chrome://tracing`` / Perfetto trace-event
  JSON (``repro run <bench> --trace out.json``).
* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  histograms unifying :class:`~repro.timing.FrameStats` and
  :class:`~repro.engine.Instrumentation` emission, plus the derived EVR
  telemetry (FVP prediction confusion matrix, RE skip/check ratios,
  disk-cache hit/miss/evict counters).  Exports JSONL or CSV.
* :mod:`repro.obs.profile` — a scheduler profiler recording per-tile-job
  wall time, queue wait and worker occupancy for both Serial and
  ProcessPool schedulers.  Timings are observability-only: they never
  feed the simulated cycle or energy models.
* :mod:`repro.obs.log` — logging configuration and the CLI output
  helper honoring ``-v/--verbose`` and ``-q/--quiet``.
* :mod:`repro.obs.events` — the structured event bus: typed run/phase/
  tile/metric/fault events with monotonic sequence numbers and a JSONL
  wire form, forwarded from pool workers over the result channel.
  Subscribers (``--live`` terminal progress, ``--events`` JSONL log,
  tracer/metrics consumers) are one-way by construction.
* :mod:`repro.obs.ledger` — the persistent run ledger under
  ``.repro_ledger/``: append-only history of every run/figure/bench
  invocation, with drift detection (``repro ledger check``).
* :mod:`repro.obs.dashboard` — renders the ledger (plus optional event
  and metrics logs) into one self-contained HTML page
  (``repro dashboard``).
* :mod:`repro.obs.live` — the live terminal renderer behind ``--live``.

Nothing in here is imported on the simulator's per-fragment hot path;
span emission happens at frame / phase / command / tile granularity.
"""

from .events import (
    EVENT_SCHEMA_VERSION,
    EventBus,
    EventForwardingCall,
    FaultInjected,
    JsonlEventWriter,
    MetricSample,
    MetricsSubscriber,
    NULL_BUS,
    NullBus,
    PhaseCompleted,
    RunFinished,
    RunStarted,
    TileJobFinished,
    TracerSubscriber,
    event_from_wire,
    get_bus,
    publishing,
    read_event_log,
    replay_forwarded,
    set_bus,
    to_wire,
)
from .ledger import PhaseAccumulator, RunLedger, resolve_ledger_dir
from .live import LiveRenderer
from .log import Output, get_logger, setup_logging, verbosity_from_flags
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    frame_record,
    fvp_confusion_matrix,
    global_registry,
    re_ratios,
    run_record,
    write_csv_records,
    write_jsonl,
)
from .profile import SchedulerProfiler, phase_breakdown
from .trace import (
    NULL_TRACER,
    ChromeTracer,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "Output",
    "get_logger",
    "setup_logging",
    "verbosity_from_flags",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "fvp_confusion_matrix",
    "re_ratios",
    "frame_record",
    "run_record",
    "write_jsonl",
    "write_csv_records",
    "SchedulerProfiler",
    "phase_breakdown",
    "Tracer",
    "NullTracer",
    "ChromeTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "EVENT_SCHEMA_VERSION",
    "EventBus",
    "EventForwardingCall",
    "FaultInjected",
    "JsonlEventWriter",
    "MetricSample",
    "MetricsSubscriber",
    "NULL_BUS",
    "NullBus",
    "PhaseCompleted",
    "RunFinished",
    "RunStarted",
    "TileJobFinished",
    "TracerSubscriber",
    "event_from_wire",
    "get_bus",
    "publishing",
    "read_event_log",
    "replay_forwarded",
    "set_bus",
    "to_wire",
    "PhaseAccumulator",
    "RunLedger",
    "resolve_ledger_dir",
    "LiveRenderer",
]
