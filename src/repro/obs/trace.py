"""Span-based tracing, exportable as Chrome/Perfetto trace-event JSON.

The simulator emits *spans* — named, nested time intervals — from the
frame loop, both pipeline phases, the schedulers and the disk cache.
Where they go is decided once per process:

* :data:`NULL_TRACER` (the default) swallows everything.  ``span()``
  returns a shared no-op context manager, so an instrumented call site
  costs one method call when tracing is off.
* :class:`ChromeTracer` buffers `trace-event format`__ "complete"
  events and writes a JSON file loadable in ``chrome://tracing`` or
  https://ui.perfetto.dev.  Spans carry a *track*: parent-side spans
  (frame, phase, command, cache) live on the ``main`` track; per-tile
  spans recorded by the scheduler profiler live on the track of the
  worker that ran them, so pool executions render as a lane per worker.

__ https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

Timestamps come from :func:`time.perf_counter`, which on the platforms
we support is a system-wide monotonic clock, so worker-side interval
endpoints are directly comparable with parent-side ones.  Tracing is
observability-only by construction: nothing here is read back by the
simulation, so enabling it cannot change any simulated result.
"""

from __future__ import annotations

import atexit
import json
import time
from typing import IO, Any, Dict, Iterator, List, Optional, Union
from contextlib import contextmanager

MAIN_TRACK = "main"


class _NullSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every operation is a no-op."""

    enabled = False

    def span(self, name: str, category: str = "sim",
             track: str = MAIN_TRACK, **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def complete(self, name: str, category: str, start: float, end: float,
                 track: str = MAIN_TRACK,
                 args: Optional[Dict[str, Any]] = None) -> None:
        return None

    def instant(self, name: str, category: str = "sim",
                track: str = MAIN_TRACK, **args: Any) -> None:
        return None


NULL_TRACER = NullTracer()


class _Span:
    """An open span; records a complete event when the ``with`` exits."""

    __slots__ = ("_tracer", "name", "category", "track", "args", "_start")

    def __init__(self, tracer: "ChromeTracer", name: str, category: str,
                 track: str, args: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.category = category
        self.track = track
        self.args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._tracer.complete(
            self.name, self.category, self._start, time.perf_counter(),
            track=self.track, args=self.args or None,
        )


class ChromeTracer:
    """Buffers trace events and serializes them as trace-event JSON.

    All events share one virtual process (pid 1); tracks map to thread
    ids, named through ``thread_name`` metadata events so viewers show
    ``main``, ``worker-<pid>``, … as labelled lanes.
    """

    enabled = True

    _PID = 1

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []
        self._epoch = time.perf_counter()
        self._tracks: Dict[str, int] = {}
        self._flush_path: Optional[str] = None
        self._atexit_armed = False

    # -- tracks and time ----------------------------------------------------

    def track_id(self, label: str) -> int:
        """Thread id of ``label``'s track, allocating it on first use."""
        tid = self._tracks.get(label)
        if tid is None:
            tid = len(self._tracks) + 1
            self._tracks[label] = tid
            self.events.append({
                "name": "thread_name", "ph": "M", "pid": self._PID,
                "tid": tid, "args": {"name": label},
            })
        return tid

    def _to_us(self, t: float) -> float:
        return (t - self._epoch) * 1e6

    # -- event emission -----------------------------------------------------

    def span(self, name: str, category: str = "sim",
             track: str = MAIN_TRACK, **args: Any) -> _Span:
        """A context manager recording one complete event on exit."""
        return _Span(self, name, category, track, args)

    def complete(self, name: str, category: str, start: float, end: float,
                 track: str = MAIN_TRACK,
                 args: Optional[Dict[str, Any]] = None) -> None:
        """Record a finished interval from raw ``perf_counter`` endpoints."""
        event: Dict[str, Any] = {
            "name": name, "cat": category, "ph": "X",
            "ts": self._to_us(start),
            "dur": max(0.0, (end - start) * 1e6),
            "pid": self._PID, "tid": self.track_id(track),
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(self, name: str, category: str = "sim",
                track: str = MAIN_TRACK, **args: Any) -> None:
        """Record a zero-duration marker."""
        event: Dict[str, Any] = {
            "name": name, "cat": category, "ph": "i",
            "ts": self._to_us(time.perf_counter()), "s": "t",
            "pid": self._PID, "tid": self.track_id(track),
        }
        if args:
            event["args"] = args
        self.events.append(event)

    # -- export -------------------------------------------------------------

    def export(self) -> Dict[str, Any]:
        """The trace as a JSON-serializable object (JSON Object Format)."""
        return {"traceEvents": self.events, "displayTimeUnit": "ms"}

    def write(self, file: Union[str, IO[str]]) -> None:
        """Serialize the trace to ``file`` (path or text handle)."""
        if isinstance(file, str):
            with open(file, "w") as handle:
                json.dump(self.export(), handle)
        else:
            json.dump(self.export(), file)

    # -- crash durability ----------------------------------------------------

    def arm_flush(self, path: str) -> None:
        """Make the buffered trace crash-durable: if the process exits —
        cleanly, on an unhandled exception, or on any signal that still
        runs ``atexit`` — before :meth:`disarm_flush`, whatever spans
        have accumulated are written to ``path``.  The buffer always
        holds only *finished* events, so a partial trace is still valid
        trace-event JSON."""
        self._flush_path = path
        if not self._atexit_armed:
            self._atexit_armed = True
            atexit.register(self._flush_at_exit)

    def disarm_flush(self) -> None:
        """The trace was written normally; the exit hook becomes a no-op."""
        self._flush_path = None

    def _flush_at_exit(self) -> None:
        path = self._flush_path
        self._flush_path = None
        if path is None:
            return
        try:
            self.write(path)
        except Exception:  # noqa: BLE001 - last-gasp flush, never raise
            pass

    # -- analysis (used by ``repro profile``) --------------------------------

    def spans(self, category: Optional[str] = None) -> List[Dict[str, Any]]:
        """Complete events, optionally filtered by category."""
        return [
            event for event in self.events
            if event.get("ph") == "X"
            and (category is None or event.get("cat") == category)
        ]


Tracer = Union[NullTracer, ChromeTracer]

_CURRENT: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-wide tracer instrumented call sites emit into."""
    return _CURRENT


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` process-wide; returns the previous one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = tracer
    return previous


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Scoped :func:`set_tracer`: restores the previous tracer on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
