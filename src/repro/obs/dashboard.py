"""`repro dashboard`: render the run ledger as one self-contained HTML file.

The dashboard is the visual end of the telemetry pipeline: the event bus
streams a run, the ledger (:mod:`repro.obs.ledger`) persists its
distilled history, and this module turns that history into a static
page — inline CSS and inline SVG only, no scripts, no network — that CI
publishes as an artifact on every push.  Five panels:

* **Effectiveness** — per-benchmark redundant-tile rate by mode, the
  paper's EVR-vs-RE-vs-ORACLE comparison as grouped bars (latest ledger
  entry per cell).
* **Perf trajectory** — bench speedup ratios (frames/s, cache-ops/s,
  fragments/s) over successive ledger entries, labelled by commit.
* **Phase breakdown** — measured geometry/raster wall seconds per run
  entry as a stacked area (filled when runs executed with an event bus
  attached; cached cells carry no phase timings).
* **Worker occupancy** — one lane per worker pid showing tile-job
  intervals, read from an ``--events`` JSONL log's
  :class:`~repro.obs.events.TileJobFinished` records.
* **Memsys** — the batched memory-system counters (drain batch sizes,
  same-tag run-collapse ratio, scalar-tail lane fraction) from a
  ``--metrics`` export's registry record.

Panels without data render as an explicit "no data" note rather than
vanishing, so a thin ledger still produces a self-describing page.
"""

from __future__ import annotations

import html
import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .events import TileJobFinished, read_event_log
from .ledger import RunLedger

# One shared palette (mode / series / lane colors cycle through it).
PALETTE = ("#4878cf", "#e24a33", "#6acc65", "#956cb4",
           "#d5bb67", "#82c6e2", "#8c613c", "#ccb974")

_PAGE_CSS = """
body { font-family: -apple-system, 'Segoe UI', Helvetica, Arial, sans-serif;
       margin: 2rem auto; max-width: 1080px; color: #222; }
h1 { font-size: 1.5rem; }  h2 { font-size: 1.1rem; margin-top: 2.2rem; }
.meta { color: #666; font-size: 0.85rem; }
.panel { border: 1px solid #ddd; border-radius: 6px; padding: 1rem;
         margin-top: 0.6rem; }
.empty { color: #888; font-style: italic; }
.legend span { display: inline-block; margin-right: 1.2rem;
               font-size: 0.8rem; }
.swatch { display: inline-block; width: 0.7rem; height: 0.7rem;
          border-radius: 2px; margin-right: 0.3rem;
          vertical-align: baseline; }
svg text { font-family: inherit; }
"""


def _esc(text: Any) -> str:
    return html.escape(str(text), quote=True)


# ---------------------------------------------------------------------------
# Tiny SVG toolkit (static, tooltip via <title>)
# ---------------------------------------------------------------------------

def _svg(width: int, height: int, body: List[str]) -> str:
    return (f'<svg viewBox="0 0 {width} {height}" width="{width}" '
            f'height="{height}" role="img">' + "".join(body) + "</svg>")


def _rect(x: float, y: float, w: float, h: float, fill: str,
          title: str = "") -> str:
    tip = f"<title>{_esc(title)}</title>" if title else ""
    return (f'<rect x="{x:.1f}" y="{y:.1f}" width="{max(w, 0.5):.1f}" '
            f'height="{max(h, 0.0):.1f}" fill="{fill}">{tip}</rect>')


def _text(x: float, y: float, content: str, size: int = 11,
          anchor: str = "start", color: str = "#444") -> str:
    return (f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'text-anchor="{anchor}" fill="{color}">{_esc(content)}</text>')


def _polyline(points: Sequence[Tuple[float, float]], color: str) -> str:
    path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
    return (f'<polyline points="{path}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>')


def _polygon(points: Sequence[Tuple[float, float]], fill: str,
             title: str = "") -> str:
    path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
    tip = f"<title>{_esc(title)}</title>" if title else ""
    return f'<polygon points="{path}" fill="{fill}" opacity="0.8">{tip}</polygon>'


def _axis_line(x1: float, y1: float, x2: float, y2: float) -> str:
    return (f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
            f'y2="{y2:.1f}" stroke="#999" stroke-width="1"/>')


def _legend(labels: Sequence[str]) -> str:
    spans = "".join(
        f'<span><span class="swatch" style="background:'
        f'{PALETTE[i % len(PALETTE)]}"></span>{_esc(label)}</span>'
        for i, label in enumerate(labels)
    )
    return f'<div class="legend">{spans}</div>'


def _empty(note: str) -> str:
    return f'<p class="empty">{_esc(note)}</p>'


# ---------------------------------------------------------------------------
# Panels
# ---------------------------------------------------------------------------

def _latest_cells(entries: List[Dict[str, Any]]
                  ) -> Dict[Tuple[str, str], Dict[str, Any]]:
    """Newest run entry per (benchmark, mode)."""
    cells: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for entry in entries:
        if entry.get("kind") == "run":
            cells[(entry.get("benchmark", "?"),
                   entry.get("mode", "?"))] = entry
    return cells


def effectiveness_panel(entries: List[Dict[str, Any]]) -> str:
    """Grouped bars: redundant-tile rate per benchmark, one bar per mode."""
    cells = _latest_cells(entries)
    if not cells:
        return _empty("no run entries in the ledger yet — "
                      "`repro run`/`repro figure` populate it")
    benchmarks = sorted({bench for bench, _ in cells})
    modes = sorted({mode for _, mode in cells})
    top = max((e.get("metrics", {}).get("redundant_tile_rate") or 0.0
               for e in cells.values()), default=0.0) or 1.0
    width, height, pad_l, pad_b = 980, 240, 46, 34
    plot_w, plot_h = width - pad_l - 10, height - pad_b - 12
    group_w = plot_w / max(len(benchmarks), 1)
    bar_w = min(22.0, (group_w - 8) / max(len(modes), 1))
    body = [_axis_line(pad_l, 12, pad_l, 12 + plot_h),
            _axis_line(pad_l, 12 + plot_h, width - 10, 12 + plot_h),
            _text(6, 18, f"{top:.2f}", size=10),
            _text(6, 12 + plot_h, "0", size=10)]
    for b_index, benchmark in enumerate(benchmarks):
        gx = pad_l + b_index * group_w
        body.append(_text(gx + group_w / 2, height - 16, benchmark,
                          size=10, anchor="middle"))
        for m_index, mode in enumerate(modes):
            entry = cells.get((benchmark, mode))
            if entry is None:
                continue
            rate = entry.get("metrics", {}).get("redundant_tile_rate")
            if rate is None:
                continue
            h = plot_h * max(rate, 0.0) / top
            body.append(_rect(
                gx + 4 + m_index * bar_w, 12 + plot_h - h, bar_w - 2, h,
                PALETTE[m_index % len(PALETTE)],
                title=f"{benchmark}:{mode} redundant_tile_rate={rate:.4f}",
            ))
    return _legend(modes) + _svg(width, height, body)


def trajectory_panel(entries: List[Dict[str, Any]]) -> str:
    """Bench speedup ratios over successive ledger entries."""
    benches = [e for e in entries if e.get("kind") == "bench"
               and e.get("speedup")]
    if not benches:
        return _empty("no bench entries yet — `repro bench` appends the "
                      "speedup trajectory here")
    series_names = sorted({name for e in benches for name in e["speedup"]})
    top = max(v for e in benches for v in e["speedup"].values()) or 1.0
    width, height, pad_l, pad_b = 980, 220, 46, 30
    plot_w, plot_h = width - pad_l - 10, height - pad_b - 12
    step = plot_w / max(len(benches) - 1, 1)
    body = [_axis_line(pad_l, 12, pad_l, 12 + plot_h),
            _axis_line(pad_l, 12 + plot_h, width - 10, 12 + plot_h),
            _text(6, 18, f"{top:.1f}x", size=10),
            _text(6, 12 + plot_h, "0x", size=10)]
    for index, entry in enumerate(benches):
        sha = (entry.get("git_sha") or "")[:7] or f"#{index}"
        preset = entry.get("preset", "")
        body.append(_text(pad_l + index * step, height - 12,
                          f"{sha} {preset}".strip(), size=9,
                          anchor="middle"))
    for s_index, name in enumerate(series_names):
        color = PALETTE[s_index % len(PALETTE)]
        points = [
            (pad_l + index * step,
             12 + plot_h * (1 - entry["speedup"][name] / top))
            for index, entry in enumerate(benches)
            if name in entry["speedup"]
        ]
        if len(points) == 1:
            x, y = points[0]
            body.append(_rect(x - 2, y - 2, 4, 4, color, title=name))
        elif points:
            body.append(_polyline(points, color))
    return _legend(series_names) + _svg(width, height, body)


def phase_panel(entries: List[Dict[str, Any]]) -> str:
    """Stacked area of measured per-phase seconds across run entries."""
    timed = [e for e in entries if e.get("kind") == "run"
             and e.get("phases")]
    if not timed:
        return _empty("no phase timings yet — runs executed with --live/"
                      "--events record measured phase seconds")
    phases = sorted({phase for e in timed for phase in e["phases"]})
    totals = [sum(e["phases"].values()) for e in timed]
    top = max(totals) or 1.0
    width, height, pad_l, pad_b = 980, 200, 46, 30
    plot_w, plot_h = width - pad_l - 10, height - pad_b - 12
    step = plot_w / max(len(timed) - 1, 1)
    body = [_axis_line(pad_l, 12, pad_l, 12 + plot_h),
            _axis_line(pad_l, 12 + plot_h, width - 10, 12 + plot_h),
            _text(6, 18, f"{top:.2f}s", size=10),
            _text(6, 12 + plot_h, "0", size=10)]
    if len(timed) == 1:
        # A single sample stacks as adjacent bars instead of a zero-width
        # area.
        entry = timed[0]
        y = 12.0 + plot_h
        for p_index, phase in enumerate(phases):
            seconds = entry["phases"].get(phase, 0.0)
            h = plot_h * seconds / top
            y -= h
            body.append(_rect(pad_l + 8, y, 60, h,
                              PALETTE[p_index % len(PALETTE)],
                              title=f"{phase}: {seconds:.3f}s"))
    else:
        baseline = [0.0] * len(timed)
        for p_index, phase in enumerate(phases):
            upper = [baseline[i] + timed[i]["phases"].get(phase, 0.0)
                     for i in range(len(timed))]
            points = [(pad_l + i * step, 12 + plot_h * (1 - upper[i] / top))
                      for i in range(len(timed))]
            points += [(pad_l + i * step,
                        12 + plot_h * (1 - baseline[i] / top))
                       for i in reversed(range(len(timed)))]
            body.append(_polygon(points, PALETTE[p_index % len(PALETTE)],
                                 title=phase))
            baseline = upper
    for index, entry in enumerate(timed):
        label = f"{entry.get('benchmark', '?')}:{entry.get('mode', '?')}"
        body.append(_text(pad_l + index * step, height - 12, label,
                          size=9, anchor="middle"))
    return _legend(phases) + _svg(width, height, body)


def occupancy_panel(events_path: Optional[str]) -> str:
    """Worker lanes: one row per pid, a rect per tile-job interval."""
    if not events_path or not os.path.exists(events_path):
        return _empty("no event log supplied — pass --events with a JSONL "
                      "file captured via `repro ... --events out.jsonl`")
    jobs = [event for event in read_event_log(events_path)
            if isinstance(event, TileJobFinished) and event.end > event.start]
    if not jobs:
        return _empty("event log has no tile-job events")
    workers = sorted({job.worker for job in jobs})
    t0 = min(job.start for job in jobs)
    t1 = max(job.end for job in jobs)
    span = (t1 - t0) or 1.0
    lane_h, width, pad_l = 18, 980, 86
    height = 24 + lane_h * len(workers) + 22
    plot_w = width - pad_l - 10
    body = [_text(pad_l, 14, f"{len(jobs)} tile jobs over {span:.3f}s",
                  size=10)]
    for index, worker in enumerate(workers):
        y = 22 + index * lane_h
        body.append(_text(4, y + lane_h - 6, f"pid {worker}", size=10))
        body.append(_axis_line(pad_l, y + lane_h - 2, width - 10,
                               y + lane_h - 2))
    for job in jobs:
        index = workers.index(job.worker)
        x = pad_l + plot_w * (job.start - t0) / span
        w = plot_w * (job.end - job.start) / span
        body.append(_rect(
            x, 22 + index * lane_h + 2, w, lane_h - 6,
            PALETTE[index % len(PALETTE)],
            title=(f"tile {job.tile} on pid {job.worker}: "
                   f"{(job.end - job.start) * 1e3:.2f}ms, "
                   f"{job.fragments} fragments"),
        ))
    return _svg(width, height, body)


def memsys_panel(metrics_path: Optional[str]) -> str:
    """Batched memory-system telemetry from a ``--metrics`` export."""
    registry = _load_registry_record(metrics_path)
    if registry is None:
        return _empty("no metrics export supplied — pass --metrics with a "
                      "JSONL file captured via `repro ... --metrics m.jsonl`")
    counters = {name: value
                for name, value in registry.get("counters", {}).items()
                if name.startswith("memsys.")}
    histograms = {name: value
                  for name, value in registry.get("histograms", {}).items()
                  if name.startswith("memsys.")}
    if not counters and not histograms:
        return _empty("metrics export has no memsys.* series — batched "
                      "memsys counters record under the numpy backend")
    rows = []
    accesses = counters.get("memsys.line_accesses", 0)
    collapsed = counters.get("memsys.collapsed_runs", 0)
    tail = counters.get("memsys.scalar_tail_lanes", 0)
    lanes = counters.get("memsys.batch_lanes", 0)
    if accesses:
        rows.append(("same-tag run-collapse ratio",
                     f"{collapsed / accesses:.2%}",
                     f"{collapsed:,.0f} of {accesses:,.0f} line accesses "
                     "collapsed into a predecessor's run"))
    if lanes:
        rows.append(("scalar-tail lane fraction",
                     f"{tail / lanes:.2%}",
                     f"{tail:,.0f} of {lanes:,.0f} batched lanes fell to "
                     "the exact scalar tail"))
    drain = histograms.get("memsys.drain_batch_ops")
    if drain:
        rows.append(("drain batch size",
                     f"{drain.get('mean', 0):,.0f} ops mean",
                     f"{drain.get('count', 0):,.0f} drains, max "
                     f"{drain.get('max', 0):,.0f} ops"))
    for name in sorted(counters):
        if name not in ("memsys.line_accesses", "memsys.collapsed_runs",
                        "memsys.scalar_tail_lanes", "memsys.batch_lanes"):
            rows.append((name, f"{counters[name]:,.0f}", ""))
    cells = "".join(
        f"<tr><td>{_esc(label)}</td><td><b>{_esc(value)}</b></td>"
        f"<td class='meta'>{_esc(detail)}</td></tr>"
        for label, value, detail in rows
    )
    return (f'<table>{cells}</table>' if rows
            else _empty("memsys series present but empty"))


def _load_registry_record(metrics_path: Optional[str]
                          ) -> Optional[Dict[str, Any]]:
    if not metrics_path or not os.path.exists(metrics_path):
        return None
    registry = None
    with open(metrics_path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if record.get("record") == "registry":
                registry = record  # last one wins (freshest snapshot)
    return registry


# ---------------------------------------------------------------------------
# Page assembly
# ---------------------------------------------------------------------------

def build_dashboard(ledger: RunLedger,
                    events_path: Optional[str] = None,
                    metrics_path: Optional[str] = None) -> str:
    """The complete dashboard page as an HTML string."""
    entries = ledger.entries()
    runs = sum(1 for e in entries if e.get("kind") == "run")
    benches = sum(1 for e in entries if e.get("kind") == "bench")
    source = ledger.path if ledger.enabled else "(ledger disabled)"
    panels = [
        ("EVR / RE / ORACLE effectiveness",
         "redundant-tile rate per benchmark, latest entry per cell",
         effectiveness_panel(entries)),
        ("Performance trajectory",
         "bench speedup ratios over ledger entries (labelled by commit)",
         trajectory_panel(entries)),
        ("Phase breakdown",
         "measured wall seconds per pipeline phase, stacked per run",
         phase_panel(entries)),
        ("Worker occupancy",
         "tile-job intervals per worker process, from the event log",
         occupancy_panel(events_path)),
        ("Batched memory system",
         "drain batching and lane-collapse telemetry, from the metrics "
         "export", memsys_panel(metrics_path)),
    ]
    sections = "".join(
        f"<h2>{_esc(title)}</h2><p class='meta'>{_esc(subtitle)}</p>"
        f"<div class='panel'>{content}</div>"
        for title, subtitle, content in panels
    )
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        "<title>repro dashboard</title>"
        f"<style>{_PAGE_CSS}</style></head><body>"
        "<h1>repro — run-history dashboard</h1>"
        f"<p class='meta'>ledger: {_esc(source)} · {runs} run entries · "
        f"{benches} bench entries</p>"
        f"{sections}</body></html>"
    )


def write_dashboard(path: str, ledger: RunLedger,
                    events_path: Optional[str] = None,
                    metrics_path: Optional[str] = None) -> str:
    """Render and write the dashboard; returns ``path``."""
    page = build_dashboard(ledger, events_path=events_path,
                           metrics_path=metrics_path)
    with open(path, "w") as handle:
        handle.write(page)
    return path
