"""Live terminal progress: an event-bus subscriber that renders runs
as they execute.

:class:`LiveRenderer` subscribes to the structured event bus
(:mod:`repro.obs.events`) and keeps one status line per in-flight
simulation updated in place — benchmark:mode, frame progress, and
throughput (fragments/s and cache-ops/s derived from the phase events'
own measured seconds, so the numbers describe simulation work, not
renderer overhead).  When stderr is not a TTY (CI logs, pipes) it
degrades to plain one-line-per-run output, so ``--live`` is always safe
to leave on.

Like every subscriber it is one-way: it never touches simulation state,
and the bus disconnects it if it ever raises.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, IO, Optional, Tuple

from .events import (
    Event,
    FaultInjected,
    MetricSample,
    PhaseCompleted,
    RunFinished,
    RunStarted,
    TileJobFinished,
)


def _rate(amount: float, seconds: float) -> str:
    if seconds <= 0:
        return "-"
    return f"{amount / seconds:,.0f}"


@dataclass
class _RunProgress:
    """Accumulated state for one in-flight (benchmark, mode) run."""

    benchmark: str
    mode: str
    frames: int = 0
    frames_done: int = 0
    phase: str = ""
    seconds: float = 0.0
    fragments: int = 0
    cache_ops: int = 0
    tiles: int = 0
    phase_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.benchmark, self.mode)

    def status(self) -> str:
        parts = [f"{self.benchmark}:{self.mode}"]
        if self.frames:
            parts.append(f"frame {self.frames_done}/{self.frames}")
        if self.phase:
            parts.append(self.phase)
        if self.tiles:
            parts.append(f"{self.tiles} tiles")
        parts.append(f"{_rate(self.fragments, self.seconds)} frag/s")
        parts.append(f"{_rate(self.cache_ops, self.seconds)} cache-ops/s")
        return "  ".join(parts)


class LiveRenderer:
    """Renders bus events as live terminal progress on ``stream``.

    In TTY mode the current run's status line is redrawn in place
    (carriage return, no scrollback spam) and finalized on
    :class:`RunFinished`; in plain mode only run-level lines are
    printed.  ``interactive`` forces the mode for tests.
    """

    def __init__(self, stream: Optional[IO[str]] = None,
                 interactive: Optional[bool] = None):
        self.stream = stream if stream is not None else sys.stderr
        if interactive is None:
            interactive = bool(getattr(self.stream, "isatty", lambda: False)())
        self.interactive = interactive
        self._runs: Dict[Tuple[str, str], _RunProgress] = {}
        self._line_open = False
        self._line_width = 0

    # -- line plumbing ----------------------------------------------------

    def _rewrite(self, text: str) -> None:
        pad = max(0, self._line_width - len(text))
        self.stream.write("\r" + text + " " * pad)
        self.stream.flush()
        self._line_open = True
        self._line_width = len(text)

    def _println(self, text: str) -> None:
        if self._line_open:
            self.stream.write("\r" + " " * self._line_width + "\r")
            self._line_open = False
            self._line_width = 0
        self.stream.write(text + "\n")
        self.stream.flush()

    def close(self) -> None:
        """Finish any open status line (leaves it visible)."""
        if self._line_open:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False
            self._line_width = 0

    # -- event handling ---------------------------------------------------

    def __call__(self, event: Event) -> None:
        if isinstance(event, RunStarted):
            progress = _RunProgress(event.benchmark, event.mode,
                                    frames=event.frames)
            self._runs[progress.key] = progress
            if self.interactive:
                self._rewrite(progress.status())
            else:
                self._println(f"start  {event.benchmark}:{event.mode}"
                              + (f"  {event.frames} frames"
                                 if event.frames else ""))
        elif isinstance(event, PhaseCompleted):
            progress = self._current()
            if progress is None:
                return
            progress.phase = event.phase
            progress.seconds += event.seconds
            progress.fragments += event.fragments
            progress.cache_ops += event.cache_ops
            count = progress.phase_counts.get(event.phase, 0) + 1
            progress.phase_counts[event.phase] = count
            progress.frames_done = max(progress.frames_done,
                                       min(count, event.frame + 1))
            if self.interactive:
                self._rewrite(progress.status())
        elif isinstance(event, TileJobFinished):
            progress = self._current()
            if progress is not None:
                progress.tiles += 1
        elif isinstance(event, RunFinished):
            progress = self._runs.pop((event.benchmark, event.mode), None)
            fragments = event.fragments or (
                progress.fragments if progress else 0)
            line = (f"done   {event.benchmark}:{event.mode}"
                    f"  {event.seconds:.2f}s"
                    f"  {_rate(fragments, event.seconds)} frag/s")
            if progress and progress.cache_ops:
                line += (f"  {_rate(progress.cache_ops, progress.seconds)}"
                         " cache-ops/s")
            self._println(line)
        elif isinstance(event, FaultInjected):
            self._println(f"fault  {event.key}"
                          f"  attempt {event.attempt}  {event.fault}")
        elif isinstance(event, MetricSample):
            if self.interactive:
                progress = self._current()
                if progress is not None:
                    self._rewrite(progress.status()
                                  + f"  [{event.name}={event.value:g}]")

    def _current(self) -> Optional[_RunProgress]:
        """The most recently started still-running simulation."""
        if not self._runs:
            return None
        return next(reversed(self._runs.values()))
