"""Cross-mode validation: prove the optimizations change nothing visible.

Runs a frame stream under every pipeline mode and checks the library's
correctness contracts:

1. BASELINE, RE, EVR, EVR-reorder-only and ORACLE render pixel-identical
   frames.
2. Shaded-fragment ordering: Oracle <= EVR-reordered <= Baseline.
3. EVR never skips more tiles than are pixel-identical (oracle bound).

Exposed as :func:`validate_stream` for library users and as
``python -m repro validate <benchmark>`` on the command line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .commands import FrameStream
from .config import GPUConfig
from .pipeline import GPU, PipelineMode, RunResult


@dataclass
class ValidationReport:
    """Outcome of one cross-mode validation run."""

    frames: int
    checks: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def record(self, description: str, ok: bool) -> None:
        self.checks.append(description)
        if not ok:
            self.failures.append(description)

    def render(self) -> str:
        lines = [
            f"validation over {self.frames} frames: "
            f"{len(self.checks) - len(self.failures)}/{len(self.checks)} "
            "checks passed"
        ]
        for check in self.checks:
            marker = "FAIL" if check in self.failures else "ok"
            lines.append(f"  [{marker}] {check}")
        return "\n".join(lines)


_MODES = (
    PipelineMode.BASELINE,
    PipelineMode.RE,
    PipelineMode.EVR,
    PipelineMode.EVR_REORDER_ONLY,
    PipelineMode.ORACLE,
)


def validate_stream(
    stream: FrameStream,
    config: Optional[GPUConfig] = None,
    modes: tuple = _MODES,
) -> ValidationReport:
    """Run ``stream`` under every mode and check the contracts."""
    config = config or GPUConfig.default()
    report = ValidationReport(frames=len(stream))

    results: Dict[PipelineMode, RunResult] = {}
    for mode in modes:
        results[mode] = GPU(config, mode).render_stream(stream)

    baseline = results[PipelineMode.BASELINE]
    for mode, result in results.items():
        if mode is PipelineMode.BASELINE:
            continue
        identical = all(
            np.array_equal(expected.image, actual.image)
            for expected, actual in zip(baseline.frames, result.frames)
        )
        report.record(
            f"{mode.value}: images pixel-identical to baseline", identical
        )

    if (PipelineMode.EVR_REORDER_ONLY in results
            and PipelineMode.ORACLE in results):
        base_shaded = baseline.total_stats(warmup=0).fragments_shaded
        reorder_shaded = results[
            PipelineMode.EVR_REORDER_ONLY
        ].total_stats(warmup=0).fragments_shaded
        oracle_shaded = results[PipelineMode.ORACLE].total_stats(
            warmup=0
        ).fragments_shaded
        report.record(
            "shaded fragments: oracle <= evr-reordered <= baseline",
            oracle_shaded <= reorder_shaded <= base_shaded,
        )

    if PipelineMode.EVR in results and PipelineMode.ORACLE in results:
        evr_skipped = results[PipelineMode.EVR].total_stats(
            warmup=0
        ).tiles_skipped
        oracle_equal = results[PipelineMode.ORACLE].comparator.tiles_equal
        report.record(
            "EVR tile skips within the pixel-exact oracle bound",
            evr_skipped <= oracle_equal,
        )

    return report
