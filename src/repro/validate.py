"""Cross-mode validation: prove the optimizations change nothing visible.

Runs a frame stream under every pipeline mode and checks the library's
correctness contracts:

1. BASELINE, RE, EVR, EVR-reorder-only and ORACLE render pixel-identical
   frames.
2. Shaded-fragment ordering: Oracle <= EVR-reordered <= Baseline.
3. EVR never skips more tiles than are pixel-identical (oracle bound).

Passing more than one kernel backend makes the run *differential*: the
same modes are rendered under each backend and every (mode, backend)
image is compared against the first backend's baseline, which folds the
backend bit-identity contract (scalar reference vs batched numpy — see
:mod:`repro.kernels`) into the same report.  The ``corruptor`` hook lets
the corpus gate (:mod:`repro.corpus.gate`) damage rendered results
deterministically to prove the comparison actually detects diffs.

Exposed as :func:`validate_stream` for library users and as
``python -m repro validate <benchmark>`` on the command line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .commands import FrameStream
from .config import GPUConfig
from .kernels import DEFAULT_BACKEND, normalize_backend
from .pipeline import GPU, PipelineMode, RunResult

#: Hook applied to every rendered result before comparison:
#: ``(mode_value, backend, result) -> result``.
Corruptor = Callable[[str, str, RunResult], RunResult]


@dataclass
class ValidationReport:
    """Outcome of one cross-mode validation run."""

    frames: int
    checks: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def record(self, description: str, ok: bool) -> None:
        self.checks.append(description)
        if not ok:
            self.failures.append(description)

    def render(self) -> str:
        lines = [
            f"validation over {self.frames} frames: "
            f"{len(self.checks) - len(self.failures)}/{len(self.checks)} "
            "checks passed"
        ]
        for check in self.checks:
            marker = "FAIL" if check in self.failures else "ok"
            lines.append(f"  [{marker}] {check}")
        return "\n".join(lines)


_MODES = (
    PipelineMode.BASELINE,
    PipelineMode.RE,
    PipelineMode.EVR,
    PipelineMode.EVR_REORDER_ONLY,
    PipelineMode.ORACLE,
)


def _images_equal(expected: RunResult, actual: RunResult) -> bool:
    return all(
        np.array_equal(a.image, b.image)
        for a, b in zip(expected.frames, actual.frames)
    )


def validate_stream(
    stream: FrameStream,
    config: Optional[GPUConfig] = None,
    modes: tuple = _MODES,
    backends: Optional[Sequence[str]] = None,
    corruptor: Optional[Corruptor] = None,
) -> ValidationReport:
    """Run ``stream`` under every (mode, backend) and check contracts.

    Args:
        stream: the frames to validate.
        config: GPU configuration (default :meth:`GPUConfig.default`).
        modes: pipeline modes to cross-compare.
        backends: kernel backends to render under.  ``None`` keeps the
            single default backend and the report's historical check
            labels; two or more makes the run differential.
        corruptor: optional hook mangling results post-render (fault
            injection for the corpus gate); never used by normal
            validation.
    """
    config = config or GPUConfig.default()
    if backends is None:
        resolved_backends: Tuple[str, ...] = (DEFAULT_BACKEND,)
    else:
        resolved_backends = tuple(
            normalize_backend(backend) for backend in backends)
    differential = len(resolved_backends) > 1
    report = ValidationReport(frames=len(stream))

    results: Dict[Tuple[PipelineMode, str], RunResult] = {}
    for backend in resolved_backends:
        for mode in modes:
            result = GPU(config, mode, backend=backend).render_stream(stream)
            if corruptor is not None:
                result = corruptor(mode.value, backend, result)
            results[(mode, backend)] = result

    reference_backend = resolved_backends[0]
    baseline = results.get((PipelineMode.BASELINE, reference_backend))
    if baseline is not None:
        for (mode, backend), result in results.items():
            if (mode is PipelineMode.BASELINE
                    and backend == reference_backend):
                continue
            if differential:
                label = (f"{mode.value}[{backend}]: pixel-identical to "
                         f"baseline[{reference_backend}]")
            else:
                label = f"{mode.value}: images pixel-identical to baseline"
            report.record(label, _images_equal(baseline, result))

    for backend in resolved_backends:
        suffix = f" [{backend}]" if differential else ""
        if (PipelineMode.EVR_REORDER_ONLY, backend) in results and (
                PipelineMode.ORACLE, backend) in results:
            base_shaded = results[
                (PipelineMode.BASELINE, backend)
            ].total_stats(warmup=0).fragments_shaded
            reorder_shaded = results[
                (PipelineMode.EVR_REORDER_ONLY, backend)
            ].total_stats(warmup=0).fragments_shaded
            oracle_shaded = results[
                (PipelineMode.ORACLE, backend)
            ].total_stats(warmup=0).fragments_shaded
            report.record(
                "shaded fragments: oracle <= evr-reordered <= baseline"
                + suffix,
                oracle_shaded <= reorder_shaded <= base_shaded,
            )

        if (PipelineMode.EVR, backend) in results and (
                PipelineMode.ORACLE, backend) in results:
            evr_skipped = results[(PipelineMode.EVR, backend)].total_stats(
                warmup=0
            ).tiles_skipped
            oracle_equal = results[
                (PipelineMode.ORACLE, backend)
            ].comparator.tiles_equal
            report.record(
                "EVR tile skips within the pixel-exact oracle bound"
                + suffix,
                evr_skipped <= oracle_equal,
            )

    return report
