"""Cross-technique validation: prove each technique honors its contract.

Runs a frame stream under every registered technique
(:mod:`repro.techniques`) and checks the library's correctness
contracts:

1. **Pixel-exact techniques** (the paper modes, Z-prepass, Hi-Z, ...)
   render frames bit-identical to the baseline.
2. **Approximate techniques** (DSR, FHV, VR-Pipe-style early
   termination) stay within their registered per-frame mean color-error
   tolerance against baseline *and* never shade more fragments than the
   baseline — an approximation that saves nothing is a bug.
3. Shaded-fragment ordering: Oracle <= EVR-reordered <= Baseline.
4. EVR never skips more tiles than are pixel-identical (oracle bound).

Passing more than one kernel backend makes the run *differential*: the
same techniques are rendered under each backend.  Exact techniques are
compared against the first backend's baseline; approximate techniques
are compared against *their own* rendering under the first backend —
approximation is a modelling choice, backend divergence is a bug, so the
cross-backend contract stays bit-identity for every technique.  The
``corruptor`` hook lets the corpus gate (:mod:`repro.corpus.gate`)
damage rendered results deterministically to prove the comparison
actually detects diffs.

Exposed as :func:`validate_stream` for library users and as
``python -m repro validate <benchmark>`` on the command line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .commands import FrameStream
from .config import GPUConfig
from .kernels import DEFAULT_BACKEND, normalize_backend
from .pipeline import GPU, RunResult
from .techniques import Technique, default_modes, resolve_technique

#: Hook applied to every rendered result before comparison:
#: ``(mode_value, backend, result) -> result``.
Corruptor = Callable[[str, str, RunResult], RunResult]


@dataclass
class ValidationReport:
    """Outcome of one cross-technique validation run."""

    frames: int
    checks: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def record(self, description: str, ok: bool) -> None:
        self.checks.append(description)
        if not ok:
            self.failures.append(description)

    def render(self) -> str:
        lines = [
            f"validation over {self.frames} frames: "
            f"{len(self.checks) - len(self.failures)}/{len(self.checks)} "
            "checks passed"
        ]
        for check in self.checks:
            marker = "FAIL" if check in self.failures else "ok"
            lines.append(f"  [{marker}] {check}")
        return "\n".join(lines)


def _images_equal(expected: RunResult, actual: RunResult) -> bool:
    return all(
        np.array_equal(a.image, b.image)
        for a, b in zip(expected.frames, actual.frames)
    )


def _max_frame_error(expected: RunResult, actual: RunResult) -> float:
    """Worst per-frame mean absolute color error (per channel, 0..1)."""
    return max(
        (float(np.abs(a.image - b.image).mean())
         for a, b in zip(expected.frames, actual.frames)),
        default=0.0,
    )


def validate_stream(
    stream: FrameStream,
    config: Optional[GPUConfig] = None,
    modes: Optional[Sequence[object]] = None,
    backends: Optional[Sequence[str]] = None,
    corruptor: Optional[Corruptor] = None,
) -> ValidationReport:
    """Run ``stream`` under every (technique, backend), check contracts.

    Args:
        stream: the frames to validate.
        config: GPU configuration (default :meth:`GPUConfig.default`).
        modes: technique designators (names, Techniques or legacy
            ``PipelineMode`` members) to cross-compare; ``None`` takes
            every registered technique, so the matrix grows as
            techniques are registered.
        backends: kernel backends to render under.  ``None`` keeps the
            single default backend and the report's historical check
            labels; two or more makes the run differential.
        corruptor: optional hook mangling results post-render (fault
            injection for the corpus gate); never used by normal
            validation.
    """
    config = config or GPUConfig.default()
    techniques: Tuple[Technique, ...] = (
        default_modes() if modes is None
        else tuple(resolve_technique(mode) for mode in modes)
    )
    if backends is None:
        resolved_backends: Tuple[str, ...] = (DEFAULT_BACKEND,)
    else:
        resolved_backends = tuple(
            normalize_backend(backend) for backend in backends)
    differential = len(resolved_backends) > 1
    report = ValidationReport(frames=len(stream))

    results: Dict[Tuple[str, str], RunResult] = {}
    for backend in resolved_backends:
        for technique in techniques:
            result = GPU(
                config, technique, backend=backend
            ).render_stream(stream)
            if corruptor is not None:
                result = corruptor(technique.value, backend, result)
            results[(technique.value, backend)] = result

    reference_backend = resolved_backends[0]
    baseline = results.get(("baseline", reference_backend))
    for (name, backend), result in results.items():
        technique = next(t for t in techniques if t.value == name)
        at_reference = backend == reference_backend
        if technique.pixel_exact:
            if baseline is None or (name == "baseline" and at_reference):
                continue
            if differential:
                label = (f"{name}[{backend}]: pixel-identical to "
                         f"baseline[{reference_backend}]")
            else:
                label = f"{name}: images pixel-identical to baseline"
            report.record(label, _images_equal(baseline, result))
        elif at_reference:
            if baseline is None:
                continue
            tolerance = technique.error_tolerance
            suffix = f"[{backend}]" if differential else ""
            error = _max_frame_error(baseline, result)
            report.record(
                f"{name}{suffix}: mean color error {error:.5f} <= "
                f"{tolerance:g} vs baseline",
                error <= tolerance,
            )
            base_shaded = baseline.total_stats(warmup=0).fragments_shaded
            shaded = result.total_stats(warmup=0).fragments_shaded
            report.record(
                f"{name}{suffix}: shaded fragments <= baseline",
                shaded <= base_shaded,
            )
        else:
            # Approximation is a modelling choice; backend divergence is
            # a bug.  Cross-backend stays a bit-identity contract.
            report.record(
                f"{name}[{backend}]: pixel-identical to "
                f"{name}[{reference_backend}]",
                _images_equal(results[(name, reference_backend)], result),
            )

    for backend in resolved_backends:
        suffix = f" [{backend}]" if differential else ""
        if (
            ("baseline", backend) in results
            and ("evr-reorder-only", backend) in results
            and ("oracle", backend) in results
        ):
            base_shaded = results[
                ("baseline", backend)
            ].total_stats(warmup=0).fragments_shaded
            reorder_shaded = results[
                ("evr-reorder-only", backend)
            ].total_stats(warmup=0).fragments_shaded
            oracle_shaded = results[
                ("oracle", backend)
            ].total_stats(warmup=0).fragments_shaded
            report.record(
                "shaded fragments: oracle <= evr-reordered <= baseline"
                + suffix,
                oracle_shaded <= reorder_shaded <= base_shaded,
            )

        if ("evr", backend) in results and ("oracle", backend) in results:
            evr_skipped = results[("evr", backend)].total_stats(
                warmup=0
            ).tiles_skipped
            oracle_equal = results[
                ("oracle", backend)
            ].comparator.tiles_equal
            report.record(
                "EVR tile skips within the pixel-exact oracle bound"
                + suffix,
                evr_skipped <= oracle_equal,
            )

    return report
