"""The array contracts shared by every kernel backend.

A backend is a module exposing the following attributes (see
``docs/architecture.md`` §10 for the prose version):

``NAME``
    The canonical backend name (``"python"``, ``"numpy"``).

``prepare_tile(entries, x0, y0, tile_width, tile_height, valid)``
    Build a tile batch for one display list.  Returns an object with a
    single method ``fragments(index) -> Optional[Fragments]`` yielding
    the rasterization of ``entries[index]`` against the tile — ``None``
    when the entry covers no on-screen pixel center (bounding-box
    binning is conservative, so this is common).  ``fragments`` must be
    side-effect free and stable: calling it twice returns the same
    values (the prepasses and the main loop share one batch).

Per-fragment array ops (all pure, array-in/array-out; ``mask`` is always
a tile-shaped bool array and the op touches only masked lanes):

``depth_test(depth, mask, fragment_depth, less_equal=False) -> passing``
``depth_write(depth, mask, fragment_depth) -> int``
``color_write(color, mask, rgba) -> int``
``color_blend(color, mask, rgba) -> int``
``layer_write(layers, mask, layer) -> int``
``overdraw_update(pending, opaque_mask, translucent_mask) -> int``
``taint_set(taint, mask, value) -> None``
``taint_or(taint, mask) -> None``

Backends must be **bit-identical**: for every op the masked output
values must equal the scalar reference exactly (same IEEE-754 ops in the
same association order), and the returned counts must match.  The
property suite in ``tests/test_kernels.py`` enforces this on fuzzed
scenes; it is what lets the disk cache share entries across backends.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np


class Fragments(NamedTuple):
    """One display-list entry rasterized against one tile.

    Arrays are tile-shaped ``(tile_height, tile_width)``; ``mask`` is the
    coverage restricted to on-screen pixels and the interpolated arrays
    are only meaningful where it is set.
    """

    mask: np.ndarray    # bool     — coverage ∧ on-screen validity
    count: int          # number of set pixels in ``mask``
    depth: np.ndarray   # float64  — interpolated window-space depth
    rgba: np.ndarray    # float64  — (h, w, 4) interpolated color
    u: np.ndarray       # float64  — texture coordinate
    v: np.ndarray       # float64  — texture coordinate
