"""Kernel backends: interchangeable implementations of the fragment hot
path.

The raster pipeline's per-tile inner loops — coverage/edge tests,
barycentric interpolation, Early-Z, blending and the overshading/taint
bookkeeping — are expressed as pure array-in/array-out kernel functions
behind this seam.  Two backends implement the contract declared in
:mod:`repro.kernels.api`:

``python``
    The scalar reference (:mod:`repro.kernels.reference`): the
    historical per-entry loop, moved verbatim.  Defines the bit-exact
    semantics.

``numpy``
    The batched backend (:mod:`repro.kernels.batched`): rasterizes and
    interpolates a tile's whole display list as ``(N, h, w)`` array
    expressions.  Bit-identical to the reference by construction and by
    test, an order of magnitude faster — the default.

Because backends are proven bit-identical, the selected backend is
execution policy: it lives in ``RunSpec.scheduler`` (excluded from
``spec_hash()``), so disk-cache entries are shared across backends.

Selection: ``--backend`` on the CLI, ``REPRO_BACKEND`` in the
environment, or ``scheduler.backend`` in a spec file.  Aliases
``scalar``/``reference`` mean ``python``; ``batched`` means ``numpy``.
"""

from __future__ import annotations

from types import ModuleType
from typing import Optional, Tuple

from . import batched, reference
from .api import Fragments

#: The backend used when nothing selects one explicitly.  Safe to default
#: to the fast path: bit-identity with the reference is enforced by the
#: cross-backend property suite.
DEFAULT_BACKEND = "numpy"

_BACKENDS = {
    reference.NAME: reference,
    batched.NAME: batched,
}

_ALIASES = {
    "scalar": reference.NAME,
    "reference": reference.NAME,
    "batched": batched.NAME,
}


def available_backends() -> Tuple[str, ...]:
    """Canonical backend names, sorted (for ``repro --version`` etc.)."""
    return tuple(sorted(_BACKENDS))


def normalize_backend(name: Optional[str]) -> str:
    """Resolve ``name`` (or None for the default) to a canonical backend
    name; raises ``ValueError`` for unknown names.  Case-insensitive, so
    ``REPRO_BACKEND=NumPy`` does what it looks like."""
    if not name:
        return DEFAULT_BACKEND
    folded = name.lower()
    canonical = _ALIASES.get(folded, folded)
    if canonical not in _BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r} "
            f"(available: {', '.join(available_backends())})"
        )
    return canonical


def resolve_backend(name: Optional[str]) -> ModuleType:
    """The backend module for ``name`` (aliases and None accepted)."""
    return _BACKENDS[normalize_backend(name)]


__all__ = [
    "DEFAULT_BACKEND",
    "Fragments",
    "available_backends",
    "batched",
    "normalize_backend",
    "reference",
    "resolve_backend",
]
