"""The batched numpy backend (``backend="numpy"``).

Rasterizes a tile's *entire* display list in one shot: vertex data is
gathered into structure-of-arrays form (one Python pass over the
entries), then coverage, edge functions and barycentric interpolation
run as ``(N, tile_h, tile_w)`` array expressions — no per-fragment or
per-entry Python arithmetic.  The per-fragment buffer ops replace the
reference backend's fancy-indexed gather/scatter with whole-tile
arithmetic plus masked ``np.copyto``, which is both faster on 16x16
tiles and exactly equivalent.

Bit-identity with :mod:`repro.kernels.reference` is a hard contract
(cache entries are shared across backends): every expression below
performs the same IEEE-754 float64 operations in the same association
order as the scalar reference — e.g. interpolation stays the
left-associated ``b0*v0 + b1*v1 + b2*v2``, and the winding swap happens
in the Python gather exactly as ``rasterize_in_tile`` does it.  The
property suite in ``tests/test_kernels.py`` enforces this on fuzzed
scenes.

The batch is computed eagerly for all entries, including ones the main
loop may later skip via hierarchical-Z (rasterization has no side
effects, so results are unaffected); the z-prepasses and the main loop
then share the one batch instead of rasterizing twice.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .api import Fragments
from .tile_geometry import pixel_centers

NAME = "numpy"


class BatchedTileBatch:
    """All entries of one tile, rasterized and interpolated up front.

    Interpolated attributes are stored only for *live* entries (nonzero
    coverage after the valid mask); ``_slot`` maps entry index to its
    row in those arrays.  Bounding-box binning is conservative, so dead
    entries are common and skipping their interpolation is a real win.
    All seven attribute channels (z, rgba, u, v) live in one stacked
    ``(live, h, w, 7)`` tensor so the whole tile interpolates in five
    array operations; ``fragments`` hands out channel views.
    """

    __slots__ = ("_counts", "_slot", "_mask", "_depth", "_rgba", "_u", "_v",
                 "_built")

    def __init__(self, counts: List[int], slot: Optional[np.ndarray],
                 mask: np.ndarray, interp: np.ndarray) -> None:
        # ``interp`` is channels-first (live, 7, h, w); hand out
        # channel views with the shapes the pipeline expects.  ``slot``
        # is None when every entry is live (identity mapping).
        self._counts = counts
        self._slot = slot
        self._mask = mask
        self._depth = interp[:, 0]
        self._rgba = interp[:, 1:5].transpose(0, 2, 3, 1)
        self._u = interp[:, 5]
        self._v = interp[:, 6]
        self._built: List[Optional[Fragments]] = [None] * len(counts)

    def fragments(self, index: int) -> Optional[Fragments]:
        # Memoized: under the depth-prepass variants TileJob.run asks
        # for each entry's fragments twice (depth pass + shading pass),
        # and the views are immutable, so the second request is a list
        # lookup.
        frag = self._built[index]
        if frag is not None:
            return frag
        count = self._counts[index]
        if count == 0:
            return None
        slot = self._slot
        k = index if slot is None else slot[index]
        frag = Fragments(
            mask=self._mask[index],
            count=count,
            depth=self._depth[k],
            rgba=self._rgba[k],
            u=self._u[k],
            v=self._v[k],
        )
        self._built[index] = frag
        return frag


# Row layout for the gather below: one flat (34,) float64 array per
# entry, concatenated into a single (n, 34) matrix in one shot.  Vertex
# coordinates are stored per *edge* — edges (v1,v2), (v2,v0), (v0,v1)
# in the reference order, winding already normalized — so the edge
# setup below is plain column slicing, no fancy-index copies.
#   0:3    edge start x   (v1.x, v2.x, v0.x)
#   3:6    edge end   x   (v2.x, v0.x, v1.x)
#   6:9    edge start y
#   9:12   edge end   y
#   12:19  vertex-0 attributes (z, r, g, b, a, u, v)
#   19:26  vertex-1 attributes
#   26:33  vertex-2 attributes
#   33     1/area
_DEGENERATE_ROW = np.array((0.0,) * 33 + (1.0,))

# The row is a pure function of the (immutable) triangle, so it is
# cached on the triangle itself: binning puts the same primitive in
# every tile its bounding box overlaps, and the serial scheduler keeps
# those entry objects shared, so each triangle gathers once per frame
# instead of once per tile.  ``object.__setattr__`` is needed because
# ScreenTriangle is a frozen dataclass; the attribute is set only
# inside worker processes / after pickling, so job payloads never
# carry it.
_ROW_ATTR = "_batched_row"


def _gather_row(triangle) -> np.ndarray:
    area = triangle.signed_area()
    if area == 0.0:
        return _DEGENERATE_ROW
    v0, v1, v2 = triangle.xy
    z0, z1, z2 = triangle.z
    a0, a1, a2 = triangle.attributes
    if area < 0.0:
        # Normalize winding so all edge functions are positive inside;
        # attributes follow the swapped vertex order.
        v1, v2 = v2, v1
        z1, z2 = z2, z1
        a1, a2 = a2, a1
        area = -area
    c0, c1, c2 = a0.color, a1.color, a2.color
    t0, t1, t2 = a0.uv, a1.uv, a2.uv
    return np.array((
        v1.x, v2.x, v0.x,
        v2.x, v0.x, v1.x,
        v1.y, v2.y, v0.y,
        v2.y, v0.y, v1.y,
        z0, c0.x, c0.y, c0.z, c0.w, t0.x, t0.y,
        z1, c1.x, c1.y, c1.z, c1.w, t1.x, t1.y,
        z2, c2.x, c2.y, c2.z, c2.w, t2.x, t2.y,
        1.0 / area,
    ))


def prepare_tile(entries: Sequence, x0: int, y0: int,
                 tile_width: int, tile_height: int,
                 valid: np.ndarray) -> BatchedTileBatch:
    """Gather + rasterize + interpolate the whole display list at once."""
    n = len(entries)
    if n == 0:
        return BatchedTileBatch([], np.empty(0, dtype=np.intp),
                                np.empty((0, tile_height, tile_width),
                                         dtype=bool),
                                np.empty((0, 7, tile_height, tile_width)))

    # -- gather: one flat row per entry, vertex data already in the
    #    reference backend's (possibly swapped) winding order -----------
    rows = []
    degenerate: List[int] = []
    for i, entry in enumerate(entries):
        triangle = entry.primitive
        row = getattr(triangle, _ROW_ATTR, None)
        if row is None:
            row = _gather_row(triangle)
            object.__setattr__(triangle, _ROW_ATTR, row)
        if row is _DEGENERATE_ROW:
            degenerate.append(i)
        rows.append(row)
    # Concatenating the cached (34,) rows is several times faster than
    # np.array over tuples; ``g`` is a fresh copy, so the cached rows
    # stay untouched by the in-place math below.
    g = np.concatenate(rows).reshape(n, 34)

    edge_ax = g[:, 0:3]
    edge_bx = g[:, 3:6]
    edge_ay = g[:, 6:9]
    edge_by = g[:, 9:12]

    # -- coverage: three edge functions over the pixel-center grid ------
    px, py = pixel_centers(x0, y0, tile_width, tile_height)
    grid_x = px[None, None, None, :]                      # (1, 1, 1, w)
    grid_y = py[None, None, :, None]                      # (1, 1, h, 1)
    # Edge function cross(b - a, p - a), identical term order to the
    # reference ``_edge``.
    w = ((edge_bx - edge_ax)[:, :, None, None]
         * (grid_y - edge_ay[:, :, None, None])
         - (edge_by - edge_ay)[:, :, None, None]
         * (grid_x - edge_ax[:, :, None, None]))

    # Top-left fill rule, vectorized over (n, 3) edges: inclusive (>=)
    # on top-left edges only.  ``w > 0 or (top_left and w == 0)`` is the
    # same boolean function as the reference's ``w >= 0 if top-left else
    # w > 0``, but avoids np.where's full select pass.
    top_left = ((edge_ay == edge_by) & (edge_bx < edge_ax)) \
        | (edge_by < edge_ay)
    cover = (w > 0.0) | (top_left[:, :, None, None] & (w == 0.0))
    mask = cover.all(axis=1)
    mask &= valid[None, :, :]
    if degenerate:
        mask[degenerate] = False
    counts_arr = np.count_nonzero(mask, axis=(1, 2))
    counts = counts_arr.tolist()

    # -- barycentric interpolation (left-associated, like the reference),
    #    for live entries only — per-element math is unchanged, so the
    #    subsetting cannot perturb bit-identity ------------------------
    live = np.flatnonzero(counts_arr)
    if live.size == n:
        slot = None                       # identity mapping
        wl = w
        gl = g
    else:
        slot = np.full(n, -1, dtype=np.intp)
        slot[live] = np.arange(live.size)
        wl = w[live]
        gl = g[live]
    wl *= gl[:, 33, None, None, None]
    # All seven channels in one einsum: the k-contraction runs in index
    # order with a running scalar sum, i.e. the same left-associated
    # ``b0*a0 + b1*a1 + b2*a2`` as the reference (einsum's C loop does
    # not use FMA, so the rounding matches; the cross-backend property
    # suite pins this down).
    attrs = gl[:, 12:33].reshape(-1, 3, 7)
    interp = np.einsum("lkhw,lkc->lchw", wl, attrs)

    return BatchedTileBatch(counts, slot, mask, interp)


# ---------------------------------------------------------------------------
# Per-fragment buffer ops: whole-tile arithmetic + masked copyto
# ---------------------------------------------------------------------------

def depth_test(depth: np.ndarray, mask: np.ndarray,
               fragment_depth: np.ndarray,
               less_equal: bool = False) -> np.ndarray:
    """Sub-mask of fragments passing the depth comparison."""
    if less_equal:
        return mask & (fragment_depth <= depth)
    return mask & (fragment_depth < depth)


def depth_write(depth: np.ndarray, mask: np.ndarray,
                fragment_depth: np.ndarray) -> int:
    """Store depths for the masked fragments; returns the write count."""
    np.copyto(depth, fragment_depth, where=mask)
    return int(np.count_nonzero(mask))


def color_write(color: np.ndarray, mask: np.ndarray,
                rgba: np.ndarray) -> int:
    """Opaque write: replace destination color under ``mask``."""
    np.copyto(color, rgba, where=mask[:, :, None])
    return int(np.count_nonzero(mask))


def color_blend(color: np.ndarray, mask: np.ndarray,
                rgba: np.ndarray) -> int:
    """Standard alpha blending: ``src*a + dst*(1-a)`` under ``mask``."""
    alpha = rgba[:, :, 3:4]
    blended = rgba * alpha + color * (1.0 - alpha)
    blended[:, :, 3] = np.maximum(color[:, :, 3], rgba[:, :, 3])
    np.copyto(color, blended, where=mask[:, :, None])
    return int(np.count_nonzero(mask))


def layer_write(layers: np.ndarray, mask: np.ndarray, layer: int) -> int:
    """Record ``layer`` for the masked (visible, opaque) fragments."""
    np.copyto(layers, np.int32(layer), where=mask)
    return int(np.count_nonzero(mask))


def overdraw_update(pending: np.ndarray, opaque_mask: np.ndarray,
                    translucent_mask: np.ndarray) -> int:
    """Advance the per-pixel overshading counters for one blend."""
    overdrawn = int((pending * opaque_mask).sum())
    np.copyto(pending, np.int32(1), where=opaque_mask)
    pending += translucent_mask
    return overdrawn


def taint_set(taint: np.ndarray, mask: np.ndarray, value: bool) -> None:
    """Exact overwrite: replace the masked pixels' taint with ``value``."""
    np.copyto(taint, bool(value), where=mask)


def taint_or(taint: np.ndarray, mask: np.ndarray) -> None:
    """Blended write: add taint on the masked pixels, never clear it."""
    taint |= mask
