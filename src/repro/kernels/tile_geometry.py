"""The single definition of tile geometry shared by every backend.

Tile-shaped index math used to be duplicated across the pipeline: the
raster reduction computed screen index arrays in
``RasterPipeline._tile_region``, tile jobs rebuilt the on-screen validity
mask in ``TileJob._valid_mask``, and the rasterizer derived pixel-center
grids on its own.  All three now come from here, so the scalar and
batched kernel backends (and the framebuffer reduction) agree on tile
bounds by construction.

Every helper is a pure function of the tile coordinates and the
configured tile/screen sizes; results are memoized and returned as
read-only arrays, so callers may hold them across frames but must copy
before mutating.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np


def tile_origin(tile_x: int, tile_y: int,
                tile_width: int, tile_height: int) -> Tuple[int, int]:
    """Top-left screen pixel ``(x0, y0)`` of the tile."""
    return tile_x * tile_width, tile_y * tile_height


def tile_bounds(tile_x: int, tile_y: int, tile_width: int, tile_height: int,
                screen_width: int, screen_height: int
                ) -> Tuple[int, int, int, int]:
    """On-screen pixel bounds ``(x0, y0, x1, y1)`` of the tile (exclusive
    end; edge tiles of non-divisible resolutions are clipped)."""
    x0, y0 = tile_origin(tile_x, tile_y, tile_width, tile_height)
    x1 = min(x0 + tile_width, screen_width)
    y1 = min(y0 + tile_height, screen_height)
    return x0, y0, x1, y1


@lru_cache(maxsize=None)
def tile_region(tile_x: int, tile_y: int, tile_width: int, tile_height: int,
                screen_width: int, screen_height: int
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Broadcastable ``(rows, cols)`` index arrays selecting the tile's
    on-screen pixels in a full-screen image."""
    x0, y0, x1, y1 = tile_bounds(tile_x, tile_y, tile_width, tile_height,
                                 screen_width, screen_height)
    rows = np.arange(y0, y1)[:, None]
    cols = np.arange(x0, x1)[None, :]
    rows.setflags(write=False)
    cols.setflags(write=False)
    return rows, cols


@lru_cache(maxsize=None)
def valid_mask(tile_x: int, tile_y: int, tile_width: int, tile_height: int,
               screen_width: int, screen_height: int) -> np.ndarray:
    """Tile-shaped boolean mask of pixels that are actually on screen."""
    x0, y0 = tile_origin(tile_x, tile_y, tile_width, tile_height)
    mask = np.ones((tile_height, tile_width), dtype=bool)
    overflow_x = x0 + tile_width - screen_width
    overflow_y = y0 + tile_height - screen_height
    if overflow_x > 0:
        mask[:, tile_width - overflow_x:] = False
    if overflow_y > 0:
        mask[tile_height - overflow_y:, :] = False
    mask.setflags(write=False)
    return mask


@lru_cache(maxsize=None)
def pixel_centers(x0: int, y0: int, tile_width: int, tile_height: int
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """1-D pixel-center coordinate vectors ``(px, py)`` for the tile.

    Centers sit at ``+ 0.5`` — the sampling points of the edge functions
    and of barycentric interpolation in both backends.
    """
    px = x0 + np.arange(tile_width, dtype=np.float64) + 0.5
    py = y0 + np.arange(tile_height, dtype=np.float64) + 0.5
    px.setflags(write=False)
    py.setflags(write=False)
    return px, py
