"""The scalar reference backend (``backend="python"``).

This is the historical per-entry hot path, moved here verbatim from
``repro.pipeline.rasterizer`` and the ``repro.hw.buffers`` method bodies
when the kernel seam was introduced — it defines the bit-exact semantics
every other backend must reproduce.  ``repro.pipeline.rasterizer`` and
the buffer classes now delegate to these functions, so there is exactly
one copy of each rule.

Everything here is a pure function: arrays in, arrays (or counts) out.
The only state is the caller's buffers, mutated in place exactly where
the mask selects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..geom import ScreenTriangle
from .api import Fragments
from .tile_geometry import pixel_centers

NAME = "python"


# ---------------------------------------------------------------------------
# Rasterization (edge functions + barycentric interpolation)
# ---------------------------------------------------------------------------

@dataclass
class FragmentBatch:
    """All fragments a triangle produced inside one tile.

    Arrays are tile-shaped ``(tile_height, tile_width)``; ``mask`` selects
    the covered pixels and the other arrays are only meaningful there.
    """

    mask: np.ndarray        # bool     — coverage
    depth: np.ndarray       # float64  — interpolated window-space depth
    rgba: np.ndarray        # float64  — (h, w, 4) interpolated color
    u: np.ndarray           # float64  — texture coordinate
    v: np.ndarray           # float64  — texture coordinate

    @property
    def fragment_count(self) -> int:
        return int(np.count_nonzero(self.mask))


def _edge(ax: float, ay: float, bx: float, by: float,
          px: np.ndarray, py: np.ndarray) -> np.ndarray:
    """Edge function cross(b - a, p - a): positive on the interior side
    for a triangle with positive signed area and edges taken in order."""
    return (bx - ax) * (py - ay) - (by - ay) * (px - ax)


def _is_top_left(ax: float, ay: float, bx: float, by: float) -> bool:
    """Top-left fill rule for edge a->b of a clockwise (y-down) triangle."""
    return (ay == by and bx < ax) or (by < ay)


def rasterize_in_tile(
    triangle: ScreenTriangle,
    tile_x0: int,
    tile_y0: int,
    tile_width: int,
    tile_height: int,
) -> Optional[FragmentBatch]:
    """Rasterize ``triangle`` restricted to one tile.

    Args:
        triangle: screen-space triangle.
        tile_x0: left pixel column of the tile.
        tile_y0: top pixel row of the tile.
        tile_width: tile width in pixels.
        tile_height: tile height in pixels.

    Returns:
        A :class:`FragmentBatch`, or None when no pixel center is covered
        (bounding-box binning is conservative, so this is common).
    """
    (v0, v1, v2) = triangle.xy
    area = triangle.signed_area()
    if area == 0.0:
        return None
    if area < 0.0:
        # Normalize winding so all edge functions are positive inside.
        v1, v2 = v2, v1
        area = -area

    px, py = pixel_centers(tile_x0, tile_y0, tile_width, tile_height)
    grid_x, grid_y = np.meshgrid(px, py)

    w0 = _edge(v1.x, v1.y, v2.x, v2.y, grid_x, grid_y)
    w1 = _edge(v2.x, v2.y, v0.x, v0.y, grid_x, grid_y)
    w2 = _edge(v0.x, v0.y, v1.x, v1.y, grid_x, grid_y)

    mask = np.ones((tile_height, tile_width), dtype=bool)
    for weights, (ax, ay, bx, by) in (
        (w0, (v1.x, v1.y, v2.x, v2.y)),
        (w1, (v2.x, v2.y, v0.x, v0.y)),
        (w2, (v0.x, v0.y, v1.x, v1.y)),
    ):
        if _is_top_left(ax, ay, bx, by):
            mask &= weights >= 0.0
        else:
            mask &= weights > 0.0

    if not mask.any():
        return None

    inv_area = 1.0 / area
    b0 = w0 * inv_area
    b1 = w1 * inv_area
    b2 = w2 * inv_area

    # Attribute order must follow the (possibly swapped) vertex order.
    if triangle.signed_area() < 0.0:
        z0, z1, z2 = triangle.z[0], triangle.z[2], triangle.z[1]
        a0, a1, a2 = (
            triangle.attributes[0],
            triangle.attributes[2],
            triangle.attributes[1],
        )
    else:
        z0, z1, z2 = triangle.z
        a0, a1, a2 = triangle.attributes

    depth = b0 * z0 + b1 * z1 + b2 * z2

    rgba = np.empty((tile_height, tile_width, 4), dtype=np.float64)
    for channel, getter in enumerate(("x", "y", "z", "w")):
        rgba[:, :, channel] = (
            b0 * getattr(a0.color, getter)
            + b1 * getattr(a1.color, getter)
            + b2 * getattr(a2.color, getter)
        )

    u = b0 * a0.uv.x + b1 * a1.uv.x + b2 * a2.uv.x
    v = b0 * a0.uv.y + b1 * a1.uv.y + b2 * a2.uv.y

    return FragmentBatch(mask=mask, depth=depth, rgba=rgba, u=u, v=v)


class ReferenceTileBatch:
    """Lazy per-entry rasterization — one :func:`rasterize_in_tile` call
    per ``fragments`` request, exactly like the historical inline loop
    (the prepass and main loop each rasterize their own copy)."""

    def __init__(self, entries: Sequence, x0: int, y0: int,
                 tile_width: int, tile_height: int,
                 valid: np.ndarray) -> None:
        self._entries = entries
        self._x0 = x0
        self._y0 = y0
        self._tile_width = tile_width
        self._tile_height = tile_height
        self._valid = valid

    def fragments(self, index: int) -> Optional[Fragments]:
        entry = self._entries[index]
        batch = rasterize_in_tile(
            entry.primitive, self._x0, self._y0,
            self._tile_width, self._tile_height,
        )
        if batch is None:
            return None
        mask = batch.mask & self._valid
        count = int(np.count_nonzero(mask))
        return Fragments(mask=mask, count=count, depth=batch.depth,
                         rgba=batch.rgba, u=batch.u, v=batch.v)


def prepare_tile(entries: Sequence, x0: int, y0: int,
                 tile_width: int, tile_height: int,
                 valid: np.ndarray) -> ReferenceTileBatch:
    """Build the scalar tile batch (no up-front work; see the class)."""
    return ReferenceTileBatch(entries, x0, y0, tile_width, tile_height, valid)


# ---------------------------------------------------------------------------
# Per-fragment buffer ops (the moved ``repro.hw.buffers`` method bodies)
# ---------------------------------------------------------------------------

def depth_test(depth: np.ndarray, mask: np.ndarray,
               fragment_depth: np.ndarray,
               less_equal: bool = False) -> np.ndarray:
    """Sub-mask of fragments passing the depth comparison.

    The default comparison is strict ``less`` (GL_LESS).  The oracle
    Z-prepass pre-fills the buffer with *final* depths, so it tests with
    ``less_equal=True`` to let the visible fragment itself pass.
    """
    passing = mask.copy()
    if less_equal:
        passing[mask] = fragment_depth[mask] <= depth[mask]
    else:
        passing[mask] = fragment_depth[mask] < depth[mask]
    return passing


def depth_write(depth: np.ndarray, mask: np.ndarray,
                fragment_depth: np.ndarray) -> int:
    """Store depths for the masked fragments; returns the write count."""
    depth[mask] = fragment_depth[mask]
    return int(np.count_nonzero(mask))


def color_write(color: np.ndarray, mask: np.ndarray,
                rgba: np.ndarray) -> int:
    """Opaque write: replace destination color under ``mask``."""
    color[mask] = rgba[mask]
    return int(np.count_nonzero(mask))


def color_blend(color: np.ndarray, mask: np.ndarray,
                rgba: np.ndarray) -> int:
    """Standard alpha blending: ``src*a + dst*(1-a)`` under ``mask``."""
    alpha = rgba[mask][:, 3:4]
    destination = color[mask]
    blended = rgba[mask] * alpha + destination * (1.0 - alpha)
    blended[:, 3] = np.maximum(destination[:, 3], rgba[mask][:, 3])
    color[mask] = blended
    return int(np.count_nonzero(mask))


def layer_write(layers: np.ndarray, mask: np.ndarray, layer: int) -> int:
    """Record ``layer`` for the masked (visible, opaque) fragments."""
    layers[mask] = layer
    return int(np.count_nonzero(mask))


def overdraw_update(pending: np.ndarray, opaque_mask: np.ndarray,
                    translucent_mask: np.ndarray) -> int:
    """Advance the per-pixel overshading counters for one blend.

    Opaque lanes overwrite their pixel exactly, so everything pending
    there was overdrawn work; translucent lanes stay pending.  Returns
    the overdrawn-fragment count (Figure 8's numerator).
    """
    overdrawn = int(pending[opaque_mask].sum())
    pending[opaque_mask] = 1
    pending[translucent_mask] += 1
    return overdrawn


def taint_set(taint: np.ndarray, mask: np.ndarray, value: bool) -> None:
    """Exact overwrite: replace the masked pixels' taint with ``value``."""
    taint[mask] = value


def taint_or(taint: np.ndarray, mask: np.ndarray) -> None:
    """Blended write: add taint on the masked pixels, never clear it."""
    taint[mask] = True
