"""Batched memory-system model: bit-identical to the scalar reference.

This is the ``numpy`` backend of the memory-system seam.  The scalar
:class:`~repro.memsys.MemorySystem` walks every cache line through an
``OrderedDict`` per access; this implementation consumes whole *phases*
of recorded traffic as structure-of-arrays and replays them through an
array-based exact-LRU model:

* **Deferred drain** — the public API (``fetch_vertex``,
  ``parameter_buffer_read`` …) only queues typed ops
  (:mod:`repro.memsys.ops`).  The queue is drained — expanded, grouped
  and simulated — the first time counters are observed (``snapshot`` /
  ``instrumentation`` / a counter property) and at frame boundaries.
  The pipeline reads counters only at phase boundaries, so a whole
  phase's traffic is one batch.

* **SoA expansion** — queued ops are expanded into flat request arrays
  (address, size, write, stream base) in exact scalar call order;
  requests expand into per-line accesses with closed-form arithmetic.
  A draw command's vertex fetches and a texture batch's unique lines
  never touch Python loops.

* **Exact LRU without per-line walks** — per set, LRU has the stack
  property: the resident lines are exactly the ``ways`` most recently
  used distinct lines, so a reference hits iff fewer than ``ways``
  distinct lines intervened since its last access (its reuse distance).
  Two consequences drive the layout: an immediate re-reference to the
  set's MRU line is an unconditional hit (such runs are collapsed out
  of the stream up front and counted as hits wholesale), and the state
  a set needs is just its recency-ordered tag/dirty matrix.  The
  collapsed per-set streams are then stepped *rank by rank*: iteration
  ``r`` applies the ``r``-th surviving access of every set at once as a
  vectorized update of the ``(num_sets, ways)`` tag/dirty/recency
  matrices — the Python loop runs over within-set ranks (tens per
  phase), not over millions of lines.  All first-level caches share one
  lane space so their sets advance in the same iterations.

* **Closed-form L2 refill stream** — the scalar model forwards each
  first-level miss/writeback to L2 at a round-robin cursor address.
  The cursor sequence is arithmetic, so a batch of per-request
  miss/writeback counts expands to the exact L2 address stream in one
  shot; the same lane simulation then runs once for L2, and the DRAM
  model receives the summed line traffic (its counters are additive,
  so totals are order-independent).

Counters, snapshots, DRAM cycle estimates and ``end_frame`` flush
behaviour match the scalar model bit for bit; the cross-backend fuzz
suite (``tests/test_memsys_batched.py``) enforces it on random traces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..config import CacheConfig, GPUConfig
from ..errors import MemoryModelError
from ..obs.metrics import global_registry
from .dram import DRAMChannelModel
from .hierarchy import (
    _PARAMETER_BASE,
    _TEXEL_BYTES,
    _TEXTURE_BASE,
    _VERTEX_BASE,
    MemorySystem,
)
from .ops import (
    OP_END_FRAME,
    OP_FB_LOAD,
    OP_FLUSH,
    OP_PB_READ,
    OP_PB_WRITE,
    OP_RESET_STATS,
    OP_TEXTURE,
    OP_VERTEX,
    OP_VERTEX_RANGE,
    EndFrameOp,
    FBLoadOp,
    FlushOp,
    MemOps,
    PBReadOp,
    PBWriteOp,
    ResetStatsOp,
    TextureOp,
    VertexOp,
    VertexRangeOp,
)

#: First-level cache slots (index into the unified lane space).
_VERTEX, _TILE, _TEX0 = 0, 1, 2
_NUM_L1 = 6  # vertex, tile, texture0..3

# Simple-request kinds in the flat scan buffer.
_K_VRANGE, _K_PBR, _K_PBW = 0, 1, 2

_L2_WINDOW = 1 << 20

#: Rank stepping stays vectorized while this many lanes are active;
#: below it, straggler lanes finish in the exact scalar tail loop.
_TAIL_LANES = 24


class _LaneLRU:
    """Exact LRU state for a group of cache sets ("lanes").

    ``tags``/``dirty`` are ``(lanes, max_ways)`` matrices whose columns
    are recency-ordered (column 0 = MRU); ``ways[lane]`` bounds the live
    columns for lanes belonging to caches with lower associativity.
    """

    def __init__(self, ways_per_lane: np.ndarray):
        self.ways = ways_per_lane.astype(np.int64)
        self.num_lanes = int(ways_per_lane.size)
        self.max_ways = int(ways_per_lane.max()) if ways_per_lane.size else 1
        # One matrix carries both tag and dirty bit per way
        # (``tag << 1 | dirty``, -1 = empty): the rank loop then costs a
        # single gather/scatter per iteration instead of two.
        self.state = np.full((self.num_lanes, self.max_ways), -1, np.int64)

    @property
    def tags(self) -> np.ndarray:
        # -1 >> 1 == -1 under arithmetic shift, so empties stay -1.
        return self.state >> 1

    @property
    def dirty(self) -> np.ndarray:
        return (self.state >= 0) & ((self.state & 1) == 1)

    def flush_lanes(self, start: int, stop: int) -> int:
        """Invalidate lanes [start, stop); return dirty lines evicted."""
        block = self.state[start:stop]
        dirty = int(((block >= 0) & ((block & 1) == 1)).sum())
        block[:] = -1
        return dirty

    def simulate(self, lane_idx: np.ndarray, tags: np.ndarray,
                 writes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Run a stream of line accesses (in order) through exact LRU.

        Returns ``(hit, writeback)`` bool arrays aligned with the input
        stream; the lane state is updated in place.
        """
        n = lane_idx.size
        hit_out = np.zeros(n, bool)
        wb_out = np.zeros(n, bool)
        if n == 0:
            return hit_out, wb_out

        order = np.argsort(lane_idx, kind="stable")
        s_lane = lane_idx[order]
        s_tag = tags[order]
        s_wr = writes[order]

        # Collapse within-lane runs of the same tag: a re-reference to
        # the lane's MRU line is a guaranteed hit (reuse distance 0) and
        # leaves the recency order unchanged; only the OR of the run's
        # write flags matters for the dirty bit.
        dup = np.zeros(n, bool)
        if n > 1:
            dup[1:] = (s_lane[1:] == s_lane[:-1]) & (s_tag[1:] == s_tag[:-1])
        hit_out[order[dup]] = True
        starts = np.flatnonzero(~dup)
        c_lane = s_lane[starts]
        c_tag = s_tag[starts]
        c_wr = np.maximum.reduceat(s_wr, starts)
        c_pos = order[starts]

        counts = np.bincount(c_lane, minlength=self.num_lanes)
        lane_start = np.concatenate(([0], np.cumsum(counts)[:-1]))
        # The collapsed stream is lane-major (stable sort), so lane L's
        # accesses occupy [lane_start[L], lane_start[L] + counts[L]).
        # Ordering lanes by how many accesses they carry makes every
        # rank's active set a *prefix* of one precomputed permutation —
        # no per-rank scan for active lanes.
        lane_order = np.argsort(-counts, kind="stable")
        ls_sorted = lane_start[lane_order]
        wl_sorted = self.ways[lane_order]
        active_n = counts.size - np.cumsum(np.bincount(counts))
        state = self.state
        max_count = int(counts.max())
        # Rank stepping amortizes beautifully while many lanes are
        # active, but a skewed batch leaves a long tail of ranks with a
        # handful of straggler lanes — there the fixed cost of the array
        # ops per rank dwarfs the work.  Vectorize while at least
        # _TAIL_LANES lanes participate; hand the stragglers' remaining
        # accesses to an exact per-lane scalar loop.
        if counts.size > _TAIL_LANES:
            vec_ranks = int(np.partition(counts, -_TAIL_LANES)[-_TAIL_LANES])
        else:
            vec_ranks = max_count
        col1 = np.arange(1, self.max_ways)[None, :]
        arows = np.arange(int(active_n[0]) if max_count else 0)
        for rank in range(min(vec_ranks, max_count)):
            num_active = int(active_n[rank])
            lanes_a = lane_order[:num_active]
            pos = ls_sorted[:num_active] + rank
            t = c_tag[pos]
            wr = c_wr[pos]
            rows = state[lanes_a]
            wl = wl_sorted[:num_active]
            match = (rows >> 1) == t[:, None]
            hit = match.any(axis=1)
            way = np.where(hit, match.argmax(axis=1), wl - 1)
            # One gather serves both cases: the hit way's state (for its
            # dirty bit) or, on a miss, the victim way's state.
            chosen = rows[arows[:num_active], way]
            evict = ~hit & (chosen != -1)
            wb = evict & ((chosen & 1) == 1)
            # Insert at MRU (column 0), shifting columns 1..way right.
            shift = col1 <= way[:, None]
            new = np.empty_like(rows)
            new[:, 0] = np.where(hit, chosen | wr, (t << 1) | wr)
            new[:, 1:] = np.where(shift, rows[:, :-1], rows[:, 1:])
            state[lanes_a] = new
            opos = c_pos[pos]
            hit_out[opos] = hit
            wb_out[opos] = wb

        tail_lanes = 0
        if vec_ranks < max_count:
            stragglers = np.flatnonzero(counts > vec_ranks)
            tail_lanes = int(stragglers.size)
            for lane in stragglers:
                self._simulate_tail(int(lane), c_tag, c_wr, c_pos,
                                    int(lane_start[lane]) + vec_ranks,
                                    int(lane_start[lane] + counts[lane]),
                                    hit_out, wb_out)

        # Batching telemetry (observability-only): how much of the
        # stream the run-collapse absorbed and how much fell to the
        # scalar tail — the dashboard's memsys panel reads these.
        registry = global_registry()
        registry.counter("memsys.line_accesses").inc(n)
        registry.counter("memsys.collapsed_runs").inc(int(dup.sum()))
        registry.counter("memsys.batch_lanes").inc(
            int(np.count_nonzero(counts)))
        registry.counter("memsys.scalar_tail_lanes").inc(tail_lanes)
        return hit_out, wb_out

    def _simulate_tail(self, lane: int, c_tag, c_wr, c_pos,
                       lo: int, hi: int, hit_out, wb_out) -> None:
        """Scalar LRU for one straggler lane's remaining accesses.

        Operates on Python lists (MRU first, no padding) extracted from
        the lane's matrix row — the same state machine the vectorized
        rank step implements, just one access at a time.
        """
        ways = int(self.ways[lane])
        row = [s for s in self.state[lane].tolist() if s != -1]
        row_t = [s >> 1 for s in row]
        row_d = [bool(s & 1) for s in row]
        tags = c_tag[lo:hi].tolist()
        writes = c_wr[lo:hi].tolist()
        positions = c_pos[lo:hi].tolist()
        for tag, write, pos in zip(tags, writes, positions):
            try:
                way = row_t.index(tag)
            except ValueError:
                if len(row_t) >= ways:
                    row_t.pop()
                    if row_d.pop():
                        wb_out[pos] = True
                row_t.insert(0, tag)
                row_d.insert(0, bool(write))
            else:
                hit_out[pos] = True
                row_t.insert(0, row_t.pop(way))
                row_d.insert(0, row_d.pop(way) or bool(write))
        packed = [(t << 1) | d for t, d in zip(row_t, row_d)]
        self.state[lane] = packed + [-1] * (self.max_ways - len(packed))


class BatchedCache:
    """Counter façade over a slice of the batched lane state.

    Mirrors the scalar :class:`~repro.memsys.Cache` surface (counters,
    ``snapshot``, ``flush``, ``reset_stats``, ``hit_rate``); reading any
    counter first drains the owning memory system so deferred traffic
    is never observable.
    """

    def __init__(self, config: CacheConfig, owner: "BatchedMemorySystem",
                 lru: _LaneLRU, lane_offset: int):
        self.config = config
        self._owner = owner
        self._lru = lru
        self._lane_offset = lane_offset
        self._num_sets = config.num_sets
        self._line_bytes = config.line_bytes
        self._accesses = 0
        self._line_accesses = 0
        self._hits = 0
        self._misses = 0
        self._writebacks = 0

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def accesses(self) -> int:
        self._owner._drain()
        return self._accesses

    @property
    def line_accesses(self) -> int:
        self._owner._drain()
        return self._line_accesses

    @property
    def hits(self) -> int:
        self._owner._drain()
        return self._hits

    @property
    def misses(self) -> int:
        self._owner._drain()
        return self._misses

    @property
    def writebacks(self) -> int:
        self._owner._drain()
        return self._writebacks

    @property
    def hit_rate(self) -> float:
        total = self.hits + self._misses
        return self._hits / total if total else 0.0

    def flush(self) -> int:
        """Write back and invalidate everything; returns dirty lines."""
        self._owner._drain()
        dirty = self._lru.flush_lanes(self._lane_offset,
                                      self._lane_offset + self._num_sets)
        self._writebacks += dirty
        return dirty

    def reset_stats(self) -> None:
        self._owner._drain()
        self._zero()

    def _zero(self) -> None:
        self._accesses = 0
        self._line_accesses = 0
        self._hits = 0
        self._misses = 0
        self._writebacks = 0

    def snapshot(self) -> Dict[str, int]:
        self._owner._drain()
        return {
            "accesses": self._accesses,
            "hits": self._hits,
            "misses": self._misses,
            "writebacks": self._writebacks,
        }


def _exclusive_cumsum(counts: np.ndarray) -> np.ndarray:
    out = np.empty(counts.size + 1, np.int64)
    out[0] = 0
    np.cumsum(counts, out=out[1:])
    return out


def _segment_expand(reps: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Expand per-row repeat counts into (row_of_item, rank_in_row)."""
    offsets = _exclusive_cumsum(reps)
    total = int(offsets[-1])
    row = np.repeat(np.arange(reps.size), reps)
    rank = np.arange(total) - offsets[row]
    return row, rank


class BatchedMemorySystem:
    """Drop-in :class:`~repro.memsys.MemorySystem` with deferred,
    vectorized trace consumption.  Public surface and observable
    behaviour are bit-identical; only the execution strategy differs,
    which is why backend selection is execution policy
    (``scheduler.backend``) and not part of the spec hash."""

    def __init__(self, config: GPUConfig):
        self.config = config
        l1_configs = [config.cache("vertex"), config.cache("tile")] + [
            config.cache(f"texture{i}") for i in range(4)
        ]
        ways = np.concatenate([
            np.full(c.num_sets, c.associativity, np.int64)
            for c in l1_configs
        ])
        self._l1 = _LaneLRU(ways)
        offsets = np.concatenate(
            ([0], np.cumsum([c.num_sets for c in l1_configs])[:-1])
        ).astype(np.int64)
        self._lane_offset = offsets          # by cache slot
        self._num_sets = np.array([c.num_sets for c in l1_configs],
                                  np.int64)
        self._line_bytes = np.array([c.line_bytes for c in l1_configs],
                                    np.int64)
        caches = [
            BatchedCache(c, self, self._l1, int(offsets[slot]))
            for slot, c in enumerate(l1_configs)
        ]
        self.vertex_cache = caches[_VERTEX]
        self.tile_cache = caches[_TILE]
        self.texture_caches = caches[_TEX0:]
        self._l1_caches = caches

        l2_config = config.cache("l2")
        self._l2_lru = _LaneLRU(
            np.full(l2_config.num_sets, l2_config.associativity, np.int64)
        )
        self.l2 = BatchedCache(l2_config, self, self._l2_lru, 0)

        self.dram = DRAMChannelModel(config)
        self._line = 64
        self._l2_cursor: Dict[int, int] = {}
        self._pending: List = []
        self._nonbilinear: Set[int] = set()

    # Scalar per-op helper, shared for API parity (the drain vectorizes
    # the same arithmetic across ops in _expand_textures).
    _select_mip_level = staticmethod(MemorySystem._select_mip_level)

    # -- public API: queue ops, validate eagerly -----------------------------

    def fetch_vertex(self, vertex_index: int, vertex_bytes: int = 48) -> None:
        """Geometry pipeline fetches one vertex's data from memory."""
        if vertex_bytes <= 0:
            raise MemoryModelError(
                f"cache vertex: access size {vertex_bytes} <= 0")
        if _VERTEX_BASE + vertex_index * vertex_bytes < 0:
            raise MemoryModelError("cache vertex: negative address")
        self._pending.append(VertexOp(vertex_index, vertex_bytes))

    def fetch_vertex_range(self, start: int, count: int,
                           vertex_bytes: int = 48) -> None:
        """Fetch ``count`` consecutive vertices starting at ``start``."""
        if count < 0:
            raise MemoryModelError("vertex range with negative count")
        if count == 0:
            return
        if vertex_bytes <= 0:
            raise MemoryModelError(
                f"cache vertex: access size {vertex_bytes} <= 0")
        if _VERTEX_BASE + start * vertex_bytes < 0:
            raise MemoryModelError("cache vertex: negative address")
        self._pending.append(VertexRangeOp(start, count, vertex_bytes))

    def parameter_buffer_write(self, offset: int, size: int) -> None:
        """Polygon List Builder stores primitive attributes / pointers."""
        if size <= 0:
            raise MemoryModelError(f"cache tile: access size {size} <= 0")
        if _PARAMETER_BASE + offset < 0:
            raise MemoryModelError("cache tile: negative address")
        self._pending.append(PBWriteOp(offset, size))

    def parameter_buffer_read(self, offset: int, size: int) -> None:
        """Raster pipeline dereferences Display List pointers."""
        if size <= 0:
            raise MemoryModelError(f"cache tile: access size {size} <= 0")
        if _PARAMETER_BASE + offset < 0:
            raise MemoryModelError("cache tile: negative address")
        self._pending.append(PBReadOp(offset, size))

    def texture_batch(
        self,
        texture_id: int,
        texture_size: int,
        u: np.ndarray,
        v: np.ndarray,
        samples_per_fragment: int = 1,
        bilinear: bool = True,
    ) -> None:
        """Sample a (mipmapped) texture for a batch of fragments."""
        if u.size == 0 or samples_per_fragment <= 0:
            return
        if not bilinear:
            self._nonbilinear.add(len(self._pending))
        self._pending.append(TextureOp(texture_id, texture_size, u, v,
                                       samples_per_fragment))

    def framebuffer_flush(self, num_bytes: int) -> None:
        """End-of-tile Color Buffer flush to main memory (write-only).

        Applied eagerly (after draining what came before): callers may
        read ``dram.stats`` directly, and the DRAM model has no deferred
        façade.  Replayed traces keep their ``FlushOp``s deferred — the
        drain scan applies them in order.
        """
        if num_bytes <= 0:
            raise MemoryModelError("framebuffer flush of non-positive size")
        self._drain()
        self.dram.write(num_bytes)

    def framebuffer_load(self, num_bytes: int) -> None:
        """Preload of a tile's previous color contents (eager, like
        :meth:`framebuffer_flush`)."""
        if num_bytes <= 0:
            raise MemoryModelError("framebuffer load of non-positive size")
        self._drain()
        self.dram.read(num_bytes)

    def replay_ops(self, ops) -> None:
        """Consume a recorded trace wholesale (the replay fast path).

        Unlike the one-call-per-op public methods, validation of a
        replayed trace happens at drain time; traces recorded by the
        pipeline are well-formed by construction.
        """
        self._pending.extend(ops)

    # -- frame lifecycle -----------------------------------------------------

    def end_frame(self) -> None:
        """Frame boundary: retire the Parameter Buffer (deferred)."""
        self._pending.append(EndFrameOp())

    def reset_stats(self) -> None:
        self._pending.append(ResetStatsOp())

    # -- draining ------------------------------------------------------------

    def drain(self) -> None:
        """Apply all deferred traffic now (phase-accounting hook)."""
        self._drain()

    def _drain(self) -> None:
        pending = self._pending
        if not pending:
            return
        self._pending = []
        global_registry().histogram(
            "memsys.drain_batch_ops").observe(len(pending))
        nonbilinear = self._nonbilinear
        self._nonbilinear = set()

        # One tight pass buckets ops; markers cut the stream into
        # batches so frame/phase boundaries land exactly where the
        # scalar model would put them.  Dispatch is ordered by op
        # frequency and operands are read positionally — at trace scale
        # the per-op constant is the scan's whole cost.
        simple: List[int] = []   # flat (op_idx, kind, f0, f1, f2) rows
        textures: List[Tuple[int, TextureOp, bool]] = []
        dram = self.dram
        for idx, op in enumerate(pending):
            code = op.code
            if code == OP_PB_READ:
                simple.extend((idx, _K_PBR, op[0], op[1], 0))
            elif code == OP_PB_WRITE:
                simple.extend((idx, _K_PBW, op[0], op[1], 0))
            elif code == OP_TEXTURE:
                textures.append((idx, op, idx not in nonbilinear))
            elif code == OP_VERTEX:
                simple.extend((idx, _K_VRANGE, op[0], 1, op[1]))
            elif code == OP_VERTEX_RANGE:
                simple.extend((idx, _K_VRANGE, op[0], op[1], op[2]))
            elif code == OP_FLUSH:
                if op.num_bytes <= 0:
                    raise MemoryModelError(
                        "framebuffer flush of non-positive size")
                dram.write(op.num_bytes)
            elif code == OP_FB_LOAD:
                if op.num_bytes <= 0:
                    raise MemoryModelError(
                        "framebuffer load of non-positive size")
                dram.read(op.num_bytes)
            elif code == OP_END_FRAME:
                self._apply_batch(simple, textures)
                simple = []
                textures = []
                dirty = self.tile_cache.flush()
                dram.write_lines(dirty, self._line)
            elif code == OP_RESET_STATS:
                self._apply_batch(simple, textures)
                simple = []
                textures = []
                for cache in self._l1_caches:
                    cache._zero()
                self.l2._zero()
                dram.reset_stats()
            else:  # pragma: no cover - traces are produced in-house
                raise MemoryModelError(f"unknown memory-trace op {op!r}")
        self._apply_batch(simple, textures)

    # -- the vectorized core -------------------------------------------------

    def _apply_batch(self, simple: List[int],
                     textures: List[Tuple[int, TextureOp, bool]]) -> None:
        """Expand one marker-free batch of ops and simulate it."""
        if not simple and not textures:
            return

        # -- B1: simple requests (vertex stream + Parameter Buffer) ---------
        req_parts = []
        if simple:
            rows = np.array(simple, np.int64).reshape(-1, 5)
            op_idx, kind, f0, f1, f2 = rows.T
            reps = np.where(kind == _K_VRANGE, f1, 1)
            row, rank = _segment_expand(reps)
            r_kind = kind[row]
            is_v = r_kind == _K_VRANGE
            addr = np.where(
                is_v,
                _VERTEX_BASE + (f0[row] + rank) * f2[row],
                _PARAMETER_BASE + f0[row],
            )
            size = np.where(is_v, f2[row], f1[row])
            if np.any(size <= 0) or np.any(addr < 0):
                raise MemoryModelError(
                    "replayed trace contains an invalid access "
                    "(non-positive size or negative address)")
            slot = np.where(is_v, _VERTEX, _TILE)
            base = np.where(is_v, _VERTEX_BASE, _PARAMETER_BASE)
            write = r_kind == _K_PBW
            req_parts.append((op_idx[row], rank, slot, base, addr, size,
                              write, np.zeros(row.size, np.int64)))

        # -- B2: texture batches --------------------------------------------
        if textures:
            req_parts.append(self._expand_textures(textures))

        parts = list(zip(*req_parts))
        req_op = np.concatenate(parts[0])
        req_rank = np.concatenate(parts[1])
        req_slot = np.concatenate(parts[2])
        req_base = np.concatenate(parts[3])
        req_addr = np.concatenate(parts[4])
        req_size = np.concatenate(parts[5])
        req_write = np.concatenate(parts[6])
        req_extra = np.concatenate(parts[7])

        # -- B3: global scalar call order -----------------------------------
        order = np.argsort((req_op << 32) | req_rank, kind="stable")
        req_slot = req_slot[order]
        req_base = req_base[order]
        req_addr = req_addr[order]
        req_size = req_size[order]
        req_write = req_write[order]
        req_extra = req_extra[order]
        num_req = req_addr.size

        # -- B4: per-line expansion -----------------------------------------
        lb = self._line_bytes[req_slot]
        first = req_addr // lb
        last = (req_addr + req_size - 1) // lb
        nlines = last - first + 1
        line_req, line_rank = _segment_expand(nlines)
        line_idx = first[line_req] + line_rank
        line_slot = req_slot[line_req]
        line_write = req_write[line_req]

        # -- B5: first-level LRU over the unified lane space ----------------
        sets = self._num_sets[line_slot]
        lane = self._lane_offset[line_slot] + line_idx % sets
        tag = line_idx // sets
        hit, wb = self._l1.simulate(lane, tag, line_write)

        # -- B6: counters ----------------------------------------------------
        req_per_slot = np.bincount(req_slot, minlength=_NUM_L1)
        extra_per_slot = np.bincount(req_slot, weights=req_extra,
                                     minlength=_NUM_L1).astype(np.int64)
        line_per_slot = np.bincount(line_slot, minlength=_NUM_L1)
        hit_per_slot = np.bincount(line_slot[hit], minlength=_NUM_L1)
        wb_per_slot = np.bincount(line_slot[wb], minlength=_NUM_L1)
        for slot, cache in enumerate(self._l1_caches):
            extra = int(extra_per_slot[slot])
            cache._accesses += int(req_per_slot[slot]) + extra
            cache._line_accesses += int(line_per_slot[slot]) + extra
            hits = int(hit_per_slot[slot])
            cache._hits += hits + extra
            cache._misses += int(line_per_slot[slot]) - hits
            cache._writebacks += int(wb_per_slot[slot])

        # -- B7: the L2 refill/writeback stream -----------------------------
        miss_per_req = np.bincount(line_req[~hit], minlength=num_req)
        wb_per_req = np.bincount(line_req[wb], minlength=num_req)
        l2_req, l2_rank = _segment_expand(miss_per_req + wb_per_req)
        if l2_req.size:
            l2_write = l2_rank >= miss_per_req[l2_req]
            l2_base = req_base[l2_req]
            # Per-base round-robin cursor: the k-th forward of a stream
            # in this batch sits at (cursor + k * line) mod 1 MiB.
            border = np.argsort(l2_base, kind="stable")
            sorted_base = l2_base[border]
            boundaries = np.flatnonzero(
                np.concatenate(([True], sorted_base[1:] != sorted_base[:-1]))
            )
            stream_rank = np.empty(l2_req.size, np.int64)
            group_rank = (np.arange(l2_req.size)
                          - np.repeat(boundaries, np.diff(
                              np.concatenate((boundaries,
                                              [l2_req.size])))))
            stream_rank[border] = group_rank
            cursor0 = np.zeros(l2_req.size, np.int64)
            for b in np.unique(sorted_base):
                b = int(b)
                sel = l2_base == b
                count = int(sel.sum())
                start = self._l2_cursor.get(b, 0)
                cursor0[sel] = start
                self._l2_cursor[b] = (
                    (start + count * self._line) % _L2_WINDOW
                )
            l2_addr = l2_base + (
                (cursor0 + stream_rank * self._line) % _L2_WINDOW
            )
            self._apply_l2(l2_addr, l2_write)

    def _apply_l2(self, addr: np.ndarray, write: np.ndarray) -> None:
        """Simulate the L2 access stream and charge DRAM for misses and
        writebacks (the DRAM model's counters are additive, so the
        summed line traffic is bit-identical to per-access calls)."""
        l2cfg = self.l2.config
        lb = l2cfg.line_bytes
        first = addr // lb
        last = (addr + self._line - 1) // lb
        nlines = last - first + 1
        line_req, line_rank = _segment_expand(nlines)
        line_idx = first[line_req] + line_rank
        lane = line_idx % l2cfg.num_sets
        tag = line_idx // l2cfg.num_sets
        hit, wb = self._l2_lru.simulate(lane, tag, write[line_req])
        hits = int(np.count_nonzero(hit))
        misses = int(line_idx.size - hits)
        writebacks = int(np.count_nonzero(wb))
        l2 = self.l2
        l2._accesses += int(addr.size)
        l2._line_accesses += int(line_idx.size)
        l2._hits += hits
        l2._misses += misses
        l2._writebacks += writebacks
        self.dram.read_lines(misses, self._line)
        self.dram.write_lines(writebacks, self._line)

    def _expand_textures(self, textures) -> Tuple[np.ndarray, ...]:
        """Vectorize texture batches across ops: mip selection, texel
        footprints and per-op unique-line reduction, reproducing the
        scalar per-op arithmetic expression for expression order."""
        meta: List[int] = []     # flat (idx, tid, tsize, spf, bilinear)
        us: List[np.ndarray] = []
        vs: List[np.ndarray] = []
        for idx, op, bilinear in textures:
            meta.extend((idx, op[0], op[1], op[4], bilinear))
            us.append(op[2])
            vs.append(op[3])
        op_idx, tid, tsize, spf, bilin_i = \
            np.array(meta, np.int64).reshape(-1, 5).T
        bilin = bilin_i.astype(bool)
        frags = np.array([u.size for u in us], np.int64)
        # The pipeline's coordinate arrays are float64 1-D; concatenate
        # consumes them without per-op conversion (the scalar reference
        # computes in the arrays' own dtype too).
        u_all = np.concatenate(us) if len(us) > 1 else np.asarray(us[0])
        v_all = np.concatenate(vs) if len(vs) > 1 else np.asarray(vs[0])
        seg_start = _exclusive_cumsum(frags)[:-1]
        seg_of = np.repeat(np.arange(op_idx.size), frags)

        # Mip level, exactly as _select_mip_level computes it per op.
        ts_f = tsize.astype(np.float64)
        span_u = (np.maximum.reduceat(u_all, seg_start)
                  - np.minimum.reduceat(u_all, seg_start)) + 1.0 / ts_f
        span_v = (np.maximum.reduceat(v_all, seg_start)
                  - np.minimum.reduceat(v_all, seg_start)) + 1.0 / ts_f
        texels = ((span_u * span_v) * ts_f) * ts_f
        frags_f = frags.astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            raw_level = np.trunc(
                np.log2(texels / frags_f) / 2.0).astype(np.int64)
        max_level = np.maximum(0, np.trunc(np.log2(ts_f)).astype(np.int64) - 2)
        level = np.where(
            texels <= frags_f, 0,
            np.minimum(np.maximum(raw_level, 0), max_level),
        )
        level_size = np.maximum(4, tsize >> level)

        ls_el = level_size[seg_of]
        tx = np.clip((u_all * ls_el.astype(np.float64)).astype(np.int64),
                     0, ls_el - 1)
        ty = np.clip((v_all * ls_el.astype(np.float64)).astype(np.int64),
                     0, ls_el - 1)
        base_lines = (ty * ls_el + tx) * _TEXEL_BYTES // self._line
        bilin_el = bilin[seg_of]
        fx = np.minimum(tx + 1, ls_el - 1)
        fy = np.minimum(ty + 1, ls_el - 1)
        foot_lines = ((fy * ls_el + fx) * _TEXEL_BYTES // self._line)[bilin_el]

        # Per-op unique lines, ascending (scalar np.unique order): sort
        # composite (op, line) keys once across every batch.
        shift = 44  # lines < 2^44 (texel_index * 4 / 64 of any sane size)
        base_keys = (seg_of << shift) | base_lines
        keys = np.sort(np.concatenate(
            [base_keys, (seg_of[bilin_el] << shift) | foot_lines]))
        uniq = np.flatnonzero(
            np.concatenate(([True], keys[1:] != keys[:-1])))
        ukeys = keys[uniq]
        useg = ukeys >> shift
        uline = ukeys & ((1 << shift) - 1)
        counts = np.zeros(ukeys.size, np.int64)
        np.add.at(counts, np.searchsorted(ukeys, base_keys), 1)

        # Request metadata, in scalar call order: op order, then line
        # ascending within each op (= rank within the op's uniques).
        per_op = np.bincount(useg, minlength=op_idx.size)
        rank = np.arange(ukeys.size) - _exclusive_cumsum(per_op)[useg]
        tex_base = (
            _TEXTURE_BASE
            + ((tid * 2) * tsize) * tsize * _TEXEL_BYTES
            + ((level * tsize) * tsize) * _TEXEL_BYTES // 2
        )[useg]
        addr = tex_base + uline * self._line
        slot = (_TEX0 + (tid % len(self.texture_caches)))[useg]
        extra = np.maximum(counts * spf[useg] - 1, 0)
        return (
            op_idx[useg],
            rank,
            slot,
            np.full(ukeys.size, _TEXTURE_BASE, np.int64),
            addr,
            np.full(ukeys.size, self._line, np.int64),
            np.zeros(ukeys.size, bool),
            extra,
        )

    # -- bookkeeping ---------------------------------------------------------

    def instrumentation(self):
        """The phase's counters as one mergeable engine record."""
        from ..engine.instrumentation import Instrumentation

        self._drain()
        return Instrumentation(units=self.snapshot(),
                               dram_cycles=self.dram.cycles())

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        self._drain()
        snap: Dict[str, Dict[str, int]] = {
            "vertex": self.vertex_cache.snapshot(),
            "tile": self.tile_cache.snapshot(),
            "l2": self.l2.snapshot(),
            "dram": self.dram.snapshot(),
        }
        for i, cache in enumerate(self.texture_caches):
            snap[f"texture{i}"] = cache.snapshot()
        return snap
