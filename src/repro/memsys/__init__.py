"""Memory-system model: set-associative caches and a DRAM channel model.

The functional pipeline produces memory *events* (vertex fetches, texture
samples, parameter-buffer traffic, framebuffer flushes); this package turns
them into hit/miss counts and DRAM traffic, which the timing and energy
models convert into cycles and joules.  It plays the role DRAMSim2 and the
cache models play inside the paper's Teapot simulator.
"""

from .cache import AccessResult, Cache
from .dram import DRAMChannelModel
from .hierarchy import MemorySystem

__all__ = ["Cache", "AccessResult", "DRAMChannelModel", "MemorySystem"]
