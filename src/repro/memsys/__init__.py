"""Memory-system model: set-associative caches and a DRAM channel model.

The functional pipeline produces memory *events* (vertex fetches, texture
samples, parameter-buffer traffic, framebuffer flushes); this package turns
them into hit/miss counts and DRAM traffic, which the timing and energy
models convert into cycles and joules.  It plays the role DRAMSim2 and the
cache models play inside the paper's Teapot simulator.

Two implementations sit behind one surface: the scalar
:class:`MemorySystem` (the semantic reference — one ``OrderedDict`` walk
per line) and the batched :class:`BatchedMemorySystem` (structure-of-
arrays trace consumption, bit-identical counters).  Pick one with
:func:`create_memory_system`; the choice rides on the same
``scheduler.backend`` execution-policy knob as the fragment kernels.
"""

from typing import Optional

from .batched import BatchedCache, BatchedMemorySystem
from .cache import AccessResult, Cache
from .dram import DRAMChannelModel
from .hierarchy import MemorySystem
from .ops import MemOp, MemOps, replay_memory_trace


def create_memory_system(config, backend: Optional[str] = None):
    """Instantiate the memory-system implementation for ``backend``.

    ``"python"`` (aliases ``scalar``/``reference``) returns the scalar
    reference model; ``"numpy"`` (alias ``batched``) returns the batched
    model.  ``None`` resolves to the session default, exactly as the
    fragment-kernel seam does.
    """
    from ..kernels import normalize_backend

    if normalize_backend(backend) == "numpy":
        return BatchedMemorySystem(config)
    return MemorySystem(config)


__all__ = [
    "Cache",
    "AccessResult",
    "DRAMChannelModel",
    "MemorySystem",
    "BatchedCache",
    "BatchedMemorySystem",
    "create_memory_system",
    "MemOp",
    "MemOps",
    "replay_memory_trace",
]
