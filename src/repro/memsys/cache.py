"""A set-associative, write-back, write-allocate cache with LRU replacement.

The model is trace-driven and byte-addressed: :meth:`Cache.access` splits a
request into the cache lines it touches and walks each line through the
usual hit / miss / writeback state machine.  No data is stored — only tags
and dirty bits — because the functional pipeline keeps the actual values.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import CacheConfig
from ..errors import MemoryModelError


@dataclass
class AccessResult:
    """Outcome of one cache access, possibly spanning several lines."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def lines(self) -> int:
        return self.hits + self.misses

    def merge(self, other: "AccessResult") -> "AccessResult":
        self.hits += other.hits
        self.misses += other.misses
        self.writebacks += other.writebacks
        return self


class _CacheSet:
    """One associativity set; insertion order of the dict is LRU order."""

    __slots__ = ("lines", "ways")

    def __init__(self, ways: int):
        self.ways = ways
        # tag -> dirty flag; first item is least recently used
        self.lines: "OrderedDict[int, bool]" = OrderedDict()

    def access(self, tag: int, write: bool) -> AccessResult:
        result = AccessResult()
        if tag in self.lines:
            result.hits = 1
            dirty = self.lines.pop(tag) or write
            self.lines[tag] = dirty
            return result
        result.misses = 1
        if len(self.lines) >= self.ways:
            _, victim_dirty = self.lines.popitem(last=False)
            if victim_dirty:
                result.writebacks = 1
        self.lines[tag] = write
        return result

    def flush(self) -> int:
        """Evict everything; return the number of dirty lines written back."""
        dirty = sum(1 for is_dirty in self.lines.values() if is_dirty)
        self.lines.clear()
        return dirty


class Cache:
    """A single cache level.

    Counters (`accesses`, `hits`, `misses`, `writebacks`) accumulate over
    the cache's lifetime and feed the timing/energy models; call
    :meth:`reset_stats` at frame boundaries when per-frame numbers are
    needed.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        # The geometry is immutable; resolve it once rather than through
        # the config properties on every access (they dominate the scalar
        # replay profile otherwise).
        self._num_sets = config.num_sets
        self._line_bytes = config.line_bytes
        self._sets: List[_CacheSet] = [
            _CacheSet(config.associativity) for _ in range(config.num_sets)
        ]
        self.accesses = 0
        self.line_accesses = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def name(self) -> str:
        return self.config.name

    def access(self, address: int, size: int, write: bool = False) -> AccessResult:
        """Access ``size`` bytes starting at ``address``.

        Returns per-line hit/miss/writeback counts.  A request that spans
        line boundaries touches multiple lines, as in hardware.
        """
        if size <= 0:
            raise MemoryModelError(f"cache {self.name}: access size {size} <= 0")
        if address < 0:
            raise MemoryModelError(f"cache {self.name}: negative address")
        line = self._line_bytes
        num_sets = self._num_sets
        first = address // line
        last = (address + size - 1) // line
        result = AccessResult()
        for line_index in range(first, last + 1):
            set_index = line_index % num_sets
            tag = line_index // num_sets
            result.merge(self._sets[set_index].access(tag, write))
        self.accesses += 1
        self.line_accesses += result.lines
        self.hits += result.hits
        self.misses += result.misses
        self.writebacks += result.writebacks
        return result

    def flush(self) -> int:
        """Write back and invalidate everything (e.g. at frame boundaries).

        Returns the number of dirty lines written back; the caller is
        responsible for forwarding that traffic to the next level.
        """
        dirty_lines = sum(cache_set.flush() for cache_set in self._sets)
        self.writebacks += dirty_lines
        return dirty_lines

    def reset_stats(self) -> None:
        self.accesses = 0
        self.line_accesses = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, int]:
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "writebacks": self.writebacks,
        }
