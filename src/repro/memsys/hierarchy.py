"""The GPU's memory hierarchy wired together.

Topology (Figure 1 of the paper / Mali-450-like):

* Vertex cache        -> L2 -> DRAM    (geometry pipeline vertex fetches)
* 4x texture caches   -> L2 -> DRAM    (fragment shading samples)
* Tile cache          -> L2 -> DRAM    (Parameter Buffer and Display Lists)
* Color/Depth buffers: on-chip per-tile SRAM; only the end-of-tile color
  flush travels to DRAM.

Every public method both updates the functional counters and forwards miss
traffic down the hierarchy, so after a run the caches and the DRAM model
hold a consistent picture of the frame's memory behaviour.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from ..config import GPUConfig
from ..errors import MemoryModelError
from .cache import AccessResult, Cache
from .dram import DRAMChannelModel

# Address-space bases keep the different data streams from aliasing in L2.
_VERTEX_BASE = 0x0000_0000
_PARAMETER_BASE = 0x4000_0000
_TEXTURE_BASE = 0x8000_0000
_FRAMEBUFFER_BASE = 0xC000_0000

_TEXEL_BYTES = 4


class MemorySystem:
    """All caches plus the DRAM model, with traffic forwarding."""

    def __init__(self, config: GPUConfig):
        self.config = config
        self.vertex_cache = Cache(config.cache("vertex"))
        self.texture_caches = [
            Cache(config.cache(f"texture{i}")) for i in range(4)
        ]
        self.tile_cache = Cache(config.cache("tile"))
        self.l2 = Cache(config.cache("l2"))
        self.dram = DRAMChannelModel(config)
        self._line = 64
        self._l2_cursor: Dict[int, int] = {}

    # -- internal forwarding -------------------------------------------------

    def _forward_to_l2(self, result: AccessResult, base: int) -> None:
        """Send first-level misses and writebacks down to L2, then DRAM.

        Addresses of refills are approximated by fresh line-granular
        addresses inside the stream's region; what matters for the model
        is the volume and the L2 reuse across pipeline stages, both of
        which are preserved.
        """
        for _ in range(result.misses):
            l2_result = self.l2.access(self._next_l2_address(base), self._line)
            self.dram.read_lines(l2_result.misses, self._line)
            self.dram.write_lines(l2_result.writebacks, self._line)
        if result.writebacks:
            for _ in range(result.writebacks):
                l2_result = self.l2.access(
                    self._next_l2_address(base), self._line, write=True
                )
                self.dram.read_lines(l2_result.misses, self._line)
                self.dram.write_lines(l2_result.writebacks, self._line)

    def _next_l2_address(self, base: int) -> int:
        # Round-robin addresses within a 1 MiB window per stream: preserves
        # stream separation and produces realistic L2 conflict behaviour.
        cursor = self._l2_cursor.get(base, 0)
        self._l2_cursor[base] = (cursor + self._line) % (1 << 20)
        return base + cursor

    # -- vertex stream --------------------------------------------------------

    def fetch_vertex(self, vertex_index: int, vertex_bytes: int = 48) -> None:
        """Geometry pipeline fetches one vertex's data from memory."""
        address = _VERTEX_BASE + vertex_index * vertex_bytes
        result = self.vertex_cache.access(address, vertex_bytes)
        self._forward_to_l2(result, _VERTEX_BASE)

    def fetch_vertex_range(self, start: int, count: int,
                           vertex_bytes: int = 48) -> None:
        """Fetch ``count`` consecutive vertices starting at ``start``.

        One call per draw command replaces the per-vertex loop in the
        geometry pipeline; the reference semantics are *defined* as the
        equivalent sequence of :meth:`fetch_vertex` calls (the batched
        model expands the same closed-form address sequence in one
        shot).
        """
        if count < 0:
            raise MemoryModelError("vertex range with negative count")
        for index in range(start, start + count):
            self.fetch_vertex(index, vertex_bytes)

    # -- parameter buffer ------------------------------------------------------

    def parameter_buffer_write(self, offset: int, size: int) -> None:
        """Polygon List Builder stores primitive attributes / pointers."""
        result = self.tile_cache.access(_PARAMETER_BASE + offset, size, write=True)
        self._forward_to_l2(result, _PARAMETER_BASE)

    def parameter_buffer_read(self, offset: int, size: int) -> None:
        """Raster pipeline dereferences Display List pointers."""
        result = self.tile_cache.access(_PARAMETER_BASE + offset, size)
        self._forward_to_l2(result, _PARAMETER_BASE)

    # -- textures ---------------------------------------------------------------

    @staticmethod
    def _select_mip_level(texture_size: int, u: np.ndarray,
                          v: np.ndarray) -> int:
        """Batch-granular LOD selection.

        Real samplers pick the mip level whose texel density matches the
        screen-space derivative of the texture coordinates.  At batch
        granularity the equivalent signal is the UV area the batch spans
        per fragment: when the batch covers many texels per fragment the
        base level would thrash the cache, so a real GPU reads a coarser
        level.  ``level = log2(texels_spanned / fragments) / 2``, clamped
        so at least a 4x4 level remains.
        """
        fragments = u.size
        span_u = float(u.max() - u.min()) + 1.0 / texture_size
        span_v = float(v.max() - v.min()) + 1.0 / texture_size
        texels_spanned = span_u * span_v * texture_size * texture_size
        if texels_spanned <= fragments:
            return 0
        level = int(math.log2(texels_spanned / fragments) / 2.0)
        max_level = max(0, int(math.log2(texture_size)) - 2)
        return min(max(level, 0), max_level)

    def texture_batch(
        self,
        texture_id: int,
        texture_size: int,
        u: np.ndarray,
        v: np.ndarray,
        samples_per_fragment: int = 1,
        bilinear: bool = True,
    ) -> None:
        """Sample a (mipmapped) texture for a batch of fragments.

        ``u``/``v`` are arrays of texture coordinates in [0, 1] for every
        shaded fragment.  The batch picks a mip level from its UV density
        (see :meth:`_select_mip_level`); bilinear filtering widens each
        sample to its 2x2 texel footprint.  Fragments of one batch
        exhibit strong spatial locality, so the batch is reduced to its
        unique cache lines: each unique line is accessed once (modelling
        the first touch) and repeats are counted as hits without
        re-walking the LRU state.
        """
        if u.size == 0 or samples_per_fragment <= 0:
            return
        cache = self.texture_caches[texture_id % len(self.texture_caches)]
        level = self._select_mip_level(texture_size, u, v)
        level_size = max(4, texture_size >> level)

        texel_x = np.clip((u * level_size).astype(np.int64), 0, level_size - 1)
        texel_y = np.clip((v * level_size).astype(np.int64), 0, level_size - 1)
        base_lines = (
            (texel_y * level_size + texel_x) * _TEXEL_BYTES // self._line
        )
        touched = base_lines
        if bilinear:
            # 2x2 footprint: the filter also reads the neighbors to the
            # right and below (clamped), widening the set of lines the
            # batch *touches*.  A bilinear sample is still one cache
            # access — the footprint must not inflate the per-line
            # repeat counts below, only the unique-line set.
            foot_x = np.minimum(texel_x + 1, level_size - 1)
            foot_y = np.minimum(texel_y + 1, level_size - 1)
            foot_lines = (
                (foot_y * level_size + foot_x) * _TEXEL_BYTES // self._line
            )
            touched = np.concatenate([base_lines, foot_lines])
        line_index = np.unique(touched)
        # Repeat counts come from the fragments' *base* texels alone:
        # each fragment performs ``samples_per_fragment`` accesses, and
        # a line touched only by footprint widening is charged just its
        # first touch.
        counts = np.zeros(line_index.size, dtype=np.int64)
        np.add.at(counts, np.searchsorted(line_index, base_lines), 1)
        # Each mip level lives in its own region of the texture's
        # allocation (offset by the sum of the larger levels).
        texture_base = (
            _TEXTURE_BASE
            + texture_id * 2 * texture_size * texture_size * _TEXEL_BYTES
            + level * texture_size * texture_size * _TEXEL_BYTES // 2
        )
        for line, count in zip(line_index.tolist(), counts.tolist()):
            result = cache.access(texture_base + line * self._line, self._line)
            self._forward_to_l2(result, _TEXTURE_BASE)
            extra_hits = max(count * samples_per_fragment - 1, 0)
            cache.hits += extra_hits
            cache.accesses += extra_hits
            cache.line_accesses += extra_hits

    # -- framebuffer -------------------------------------------------------------

    def framebuffer_flush(self, num_bytes: int) -> None:
        """End-of-tile Color Buffer flush to main memory (write-only)."""
        if num_bytes <= 0:
            raise MemoryModelError("framebuffer flush of non-positive size")
        self.dram.write(num_bytes)

    def framebuffer_load(self, num_bytes: int) -> None:
        """Preload of a tile's previous color contents (used when a tile
        is partially redrawn and needs its old colors)."""
        if num_bytes <= 0:
            raise MemoryModelError("framebuffer load of non-positive size")
        self.dram.read(num_bytes)

    # -- frame lifecycle ---------------------------------------------------------

    def end_frame(self) -> None:
        """Frame boundary: retire the Parameter Buffer.

        The Parameter Buffer is rebuilt from scratch every frame, so its
        cached lines are dead at the frame boundary; the dirty ones must
        still be written back to DRAM (they were produced by the
        Geometry Pipeline and the buffer lives in main memory).  Without
        this flush a small scene's Parameter Buffer would live entirely
        in the 128 KB tile cache across frames — traffic a real trace
        would pay every frame.
        """
        dirty_lines = self.tile_cache.flush()
        self.dram.write_lines(dirty_lines, self._line)

    # -- bookkeeping ---------------------------------------------------------------

    def drain(self) -> None:
        """Apply any deferred traffic.  The scalar model applies every
        access eagerly, so this is a no-op; the batched model overrides
        it.  Callers that want phase timings to include the cost of
        queued traffic (the bench's reduce breakdown) call it at phase
        boundaries without caring which implementation they hold."""

    def reset_stats(self) -> None:
        self.vertex_cache.reset_stats()
        for cache in self.texture_caches:
            cache.reset_stats()
        self.tile_cache.reset_stats()
        self.l2.reset_stats()
        self.dram.reset_stats()

    def instrumentation(self):
        """The phase's counters as one mergeable engine record.

        Packages :meth:`snapshot` and the DRAM cycle estimate into an
        :class:`~repro.engine.Instrumentation`, the unit the execution
        engine reduces.  (Imported lazily: the engine sits above the
        memory system in the layer diagram.)
        """
        from ..engine.instrumentation import Instrumentation

        return Instrumentation(units=self.snapshot(),
                               dram_cycles=self.dram.cycles())

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        snap: Dict[str, Dict[str, int]] = {
            "vertex": self.vertex_cache.snapshot(),
            "tile": self.tile_cache.snapshot(),
            "l2": self.l2.snapshot(),
            "dram": self.dram.snapshot(),
        }
        for i, cache in enumerate(self.texture_caches):
            snap[f"texture{i}"] = cache.snapshot()
        return snap
