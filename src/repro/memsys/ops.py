"""Typed memory-trace operations: the wire format of recorded traffic.

Every public :class:`~repro.memsys.MemorySystem` entry point has a
matching op type here, so a full run's memory traffic — raster-side tile
traces *and* geometry-side vertex/parameter-buffer traffic — can be
recorded as one flat op list and replayed later, either through the
scalar reference model (one method call per op) or through the batched
model (one structure-of-arrays drain per phase).

The op types historically lived in :mod:`repro.engine.tile_job`; they
moved here so the memory system can consume traces natively without the
engine/memsys layering cycle.  ``tile_job`` re-exports them, so existing
imports keep working.

``MemOps`` lists pickle in packed form (one code byte per op, all int
operands in one flat tuple) because tile results cross process
boundaries under the pool scheduler; ``tests/test_memtrace_ops.py`` pins
the "never larger than the raw tuples" property.
"""

from __future__ import annotations

from typing import List, NamedTuple, Tuple

import numpy as np

# Memory-trace opcodes: small ints dispatch faster than strings and pack
# to one byte each on the wire (see MemOps).
OP_PB_READ = 0
OP_TEXTURE = 1
OP_FLUSH = 2
OP_VERTEX = 3
OP_VERTEX_RANGE = 4
OP_PB_WRITE = 5
OP_FB_LOAD = 6
OP_END_FRAME = 7
OP_RESET_STATS = 8


class PBReadOp(NamedTuple):
    """Parameter Buffer read (display-list pointer or attribute fetch)."""

    offset: int
    size: int


class TextureOp(NamedTuple):
    """One batched texture-sampling burst for a shaded fragment set."""

    texture_id: int
    texture_size: int
    u: np.ndarray
    v: np.ndarray
    samples_per_fragment: int


class FlushOp(NamedTuple):
    """End-of-tile color flush to DRAM."""

    num_bytes: int


class VertexOp(NamedTuple):
    """Geometry pipeline fetch of one vertex's data."""

    vertex_index: int
    vertex_bytes: int


class VertexRangeOp(NamedTuple):
    """A whole command's vertex-stream fetch: ``count`` consecutive
    vertices starting at ``start`` — the closed-form batch of the
    per-vertex fetch loop."""

    start: int
    count: int
    vertex_bytes: int


class PBWriteOp(NamedTuple):
    """Polygon List Builder store of primitive attributes / pointers."""

    offset: int
    size: int


class FBLoadOp(NamedTuple):
    """Preload of a tile's previous color contents from DRAM."""

    num_bytes: int


class EndFrameOp(NamedTuple):
    """Frame boundary marker (Parameter Buffer retirement)."""


class ResetStatsOp(NamedTuple):
    """Phase boundary marker (counters zeroed, cache state kept)."""


PBReadOp.code = OP_PB_READ
TextureOp.code = OP_TEXTURE
FlushOp.code = OP_FLUSH
VertexOp.code = OP_VERTEX
VertexRangeOp.code = OP_VERTEX_RANGE
PBWriteOp.code = OP_PB_WRITE
FBLoadOp.code = OP_FB_LOAD
EndFrameOp.code = OP_END_FRAME
ResetStatsOp.code = OP_RESET_STATS

#: Any recorded memory-trace operation.
MemOp = Tuple  # typing alias: PBReadOp | TextureOp | ... | ResetStatsOp

# Int-only op types by code, for the generic pack/unpack paths.
_INT_OP_TYPES = {
    OP_PB_READ: PBReadOp,
    OP_FLUSH: FlushOp,
    OP_VERTEX: VertexOp,
    OP_VERTEX_RANGE: VertexRangeOp,
    OP_PB_WRITE: PBWriteOp,
    OP_FB_LOAD: FBLoadOp,
    OP_END_FRAME: EndFrameOp,
    OP_RESET_STATS: ResetStatsOp,
}


def _pack_memory_ops(ops: "MemOps") -> Tuple[bytes, Tuple, Tuple]:
    """Compact wire form: one code byte per op, all int operands in one
    flat tuple, texture coordinate arrays kept as-is."""
    codes = bytearray()
    ints: List[int] = []
    arrays: List[np.ndarray] = []
    for op in ops:
        code = op.code
        codes.append(code)
        if code == OP_TEXTURE:
            ints.extend((op.texture_id, op.texture_size,
                         op.samples_per_fragment))
            arrays.append(op.u)
            arrays.append(op.v)
        else:
            ints.extend(op)
    return bytes(codes), tuple(ints), tuple(arrays)


def _unpack_memory_ops(codes: bytes, ints: Tuple, arrays: Tuple) -> "MemOps":
    """Inverse of :func:`_pack_memory_ops` (the pickle reconstructor)."""
    ops = MemOps()
    cursor = 0
    array_cursor = 0
    for code in codes:
        if code == OP_TEXTURE:
            ops.append(TextureOp(
                ints[cursor], ints[cursor + 1],
                arrays[array_cursor], arrays[array_cursor + 1],
                ints[cursor + 2],
            ))
            cursor += 3
            array_cursor += 2
        else:
            op_type = _INT_OP_TYPES[code]
            width = len(op_type._fields)
            ops.append(op_type(*ints[cursor:cursor + width]))
            cursor += width
    return ops


class MemOps(list):
    """An op list that pickles in packed form.

    Tile results cross process boundaries under the pool scheduler, so
    the trace's wire size matters.  Packing (code bytes + one int tuple)
    undercuts both the historical raw-tuple encoding and naive
    NamedTuple pickling.
    """

    def __reduce__(self):
        return (_unpack_memory_ops, _pack_memory_ops(self))


def replay_memory_trace(ops, memory) -> None:
    """Replay recorded accesses into a memory system, in op order.

    The scalar reference model executes one method call per op — the
    exact sequence the historical inline loops produced.  A batched
    model advertises :meth:`replay_ops` and consumes the whole list in
    one append (the structure-of-arrays drain happens at the next
    counter observation), so the per-op Python dispatch disappears from
    the replay hot path.
    """
    replay = getattr(memory, "replay_ops", None)
    if replay is not None:
        replay(ops)
        return
    for op in ops:
        code = op.code
        if code == OP_PB_READ:
            memory.parameter_buffer_read(op.offset, op.size)
        elif code == OP_TEXTURE:
            memory.texture_batch(op.texture_id, op.texture_size,
                                 op.u, op.v, op.samples_per_fragment)
        elif code == OP_FLUSH:
            memory.framebuffer_flush(op.num_bytes)
        elif code == OP_VERTEX:
            memory.fetch_vertex(op.vertex_index, op.vertex_bytes)
        elif code == OP_VERTEX_RANGE:
            memory.fetch_vertex_range(op.start, op.count, op.vertex_bytes)
        elif code == OP_PB_WRITE:
            memory.parameter_buffer_write(op.offset, op.size)
        elif code == OP_FB_LOAD:
            memory.framebuffer_load(op.num_bytes)
        elif code == OP_END_FRAME:
            memory.end_frame()
        elif code == OP_RESET_STATS:
            memory.reset_stats()
        else:  # pragma: no cover - trace is produced in-house
            raise ValueError(f"unknown memory-trace op {op!r}")
