"""Analytical DRAM channel model.

The paper uses DRAMSim2; here a request-level model is enough because the
harness reports *relative* cycles and energy.  Each request pays a fixed
latency (the midpoint of the configured 50-100 cycle window) and occupies
channel bandwidth proportional to its size.  Latency of independent
requests overlaps across channels, so the cycle cost charged to the
pipeline is ``max(latency-limited, bandwidth-limited)`` — the classic
roofline of a streaming memory system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import GPUConfig
from ..errors import MemoryModelError


@dataclass
class DRAMStats:
    read_requests: int = 0
    write_requests: int = 0
    read_bytes: int = 0
    write_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    @property
    def total_requests(self) -> int:
        return self.read_requests + self.write_requests


class DRAMChannelModel:
    """Accumulates DRAM traffic and converts it into cycle estimates."""

    def __init__(self, config: GPUConfig):
        self._latency = (
            config.dram_latency_min_cycles + config.dram_latency_max_cycles
        ) / 2.0
        self._bandwidth = float(config.dram_bandwidth_bytes_per_cycle)
        self._channels = max(1, config.dram_channels)
        self._line_bytes = 64
        self.stats = DRAMStats()

    def read(self, num_bytes: int) -> None:
        if num_bytes <= 0:
            raise MemoryModelError("DRAM read of non-positive size")
        self.stats.read_requests += self._requests_for(num_bytes)
        self.stats.read_bytes += num_bytes

    def write(self, num_bytes: int) -> None:
        if num_bytes <= 0:
            raise MemoryModelError("DRAM write of non-positive size")
        self.stats.write_requests += self._requests_for(num_bytes)
        self.stats.write_bytes += num_bytes

    def read_lines(self, num_lines: int, line_bytes: int = 64) -> None:
        """Convenience for cache-miss refills."""
        if num_lines:
            self.read(num_lines * line_bytes)

    def write_lines(self, num_lines: int, line_bytes: int = 64) -> None:
        """Convenience for cache writebacks."""
        if num_lines:
            self.write(num_lines * line_bytes)

    def _requests_for(self, num_bytes: int) -> int:
        return -(-num_bytes // self._line_bytes)

    def cycles(self) -> float:
        """Cycle cost of all accumulated traffic.

        Latency overlaps across channels and across the pipeline's
        latency-hiding queues, so the latency term is divided by an
        overlap factor (the channel count times a fixed MLP of 4, a
        conservative stand-in for the paper's in-flight request window).
        Bandwidth is a hard limit and never overlaps.
        """
        overlap = self._channels * 4.0
        latency_cycles = self.stats.total_requests * self._latency / overlap
        bandwidth_cycles = self.stats.total_bytes / self._bandwidth
        return max(latency_cycles, bandwidth_cycles)

    def reset_stats(self) -> None:
        self.stats = DRAMStats()

    def snapshot(self) -> Dict[str, int]:
        return {
            "read_requests": self.stats.read_requests,
            "write_requests": self.stats.write_requests,
            "read_bytes": self.stats.read_bytes,
            "write_bytes": self.stats.write_bytes,
        }
