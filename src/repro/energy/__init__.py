"""Energy model: event counters + memory traffic -> joules.

Plays the role McPAT plays in the paper: every architectural event has a
per-access energy, on-chip structures add static (leakage) power, and DRAM
traffic dominates — which is precisely why removing ineffectual fragment
work and skipping redundant tiles saves so much energy.
"""

from .params import EnergyParameters
from .model import EnergyBreakdown, EnergyModel

__all__ = ["EnergyParameters", "EnergyModel", "EnergyBreakdown"]
