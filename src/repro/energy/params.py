"""Per-event energy parameters (32 nm, 1 V class, McPAT-like magnitudes).

All values are in picojoules per event unless noted.  The absolute values
are representative of published 32 nm SRAM/ALU/DRAM numbers; the harness
reports energy *normalized* to a baseline computed with the same
parameters, so only the relative magnitudes shape the results.  The
dominant terms — DRAM bytes and fragment-shader operations — dominate by
the same orders of magnitude as in the paper's McPAT model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyParameters:
    """Energy per architectural event, in picojoules."""

    # Compute
    alu_op_pj: float = 25.0                # one shader ALU op (ALU+regfile)
    rasterizer_attribute_pj: float = 2.0   # one attribute setup
    early_z_test_pj: float = 1.5           # one depth comparison
    blend_op_pj: float = 4.0               # one color merge

    # On-chip memories (per access)
    l1_cache_access_pj: float = 12.0       # vertex/texture caches (4-8 KB)
    tile_cache_access_pj: float = 30.0     # 128 KB tile cache
    l2_cache_access_pj: float = 45.0       # 256 KB L2
    color_depth_buffer_pj: float = 1.2     # 1 KB on-chip buffer access
    queue_access_pj: float = 1.0

    # EVR / RE structures (small SRAM LUTs)
    lgt_access_pj: float = 1.0             # 3600 x 3 B
    fvp_access_pj: float = 1.1             # 3600 x 4 B
    layer_buffer_access_pj: float = 1.2    # 1 KB, same class as Z-buffer
    signature_access_pj: float = 1.5       # Signature Buffer read/update
    crc_combine_pj: float = 2.5            # CRC32 shift+combine logic

    # DRAM
    dram_pj_per_byte: float = 120.0        # LPDDR3-class ~15 pJ/bit
    dram_request_pj: float = 600.0         # row/command overhead per request

    # Static (leakage) power, in milliwatts, charged per active cycle
    gpu_static_mw: float = 60.0
    evr_structures_static_mw: float = 0.35  # LGT + FVP Table + Layer Buffer
    re_structures_static_mw: float = 0.5    # Signature Buffer + CRC unit

    def static_joules(self, milliwatts: float, cycles: float,
                      frequency_mhz: float) -> float:
        """Leakage energy of a block over ``cycles`` at the given clock."""
        seconds = cycles / (frequency_mhz * 1e6)
        return milliwatts * 1e-3 * seconds
