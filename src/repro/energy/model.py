"""Energy accounting: turns event counters and memory traffic into joules.

The breakdown mirrors the stacks of the paper's Figure 6: baseline GPU
energy (compute + caches + DRAM + on-chip buffers + static), the Parameter
Buffer overhead of storing layer identifiers, the extra EVR hardware
(Layer Generator Table, FVP Table, Layer Buffer), and the Rendering
Elimination structures (Signature Buffer + CRC unit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..config import GPUConfig
from ..timing.stats import FrameStats
from .params import EnergyParameters


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules attributed to each architectural component."""

    compute: float
    caches: float
    onchip_buffers: float
    dram: float
    static: float
    parameter_buffer_overhead: float
    evr_structures: float
    re_structures: float

    @property
    def total(self) -> float:
        return (
            self.compute
            + self.caches
            + self.onchip_buffers
            + self.dram
            + self.static
            + self.parameter_buffer_overhead
            + self.evr_structures
            + self.re_structures
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "compute": self.compute,
            "caches": self.caches,
            "onchip_buffers": self.onchip_buffers,
            "dram": self.dram,
            "static": self.static,
            "parameter_buffer_overhead": self.parameter_buffer_overhead,
            "evr_structures": self.evr_structures,
            "re_structures": self.re_structures,
            "total": self.total,
        }


_PJ = 1e-12


class EnergyModel:
    """McPAT-stand-in: per-event energies plus static power."""

    def __init__(self, config: GPUConfig,
                 params: EnergyParameters = EnergyParameters()):
        self.config = config
        self.params = params

    def compute(
        self,
        stats: FrameStats,
        memory_snapshot: Mapping[str, Mapping[str, int]],
        total_cycles: float,
        evr_enabled: bool,
        re_enabled: bool,
    ) -> EnergyBreakdown:
        """Energy for a frame or a whole run.

        Args:
            stats: accumulated event counters.
            memory_snapshot: :meth:`repro.memsys.MemorySystem.snapshot`.
            total_cycles: cycles the GPU was active (for static energy).
            evr_enabled: charge EVR structure dynamic+static energy.
            re_enabled: charge RE structure dynamic+static energy.
        """
        p = self.params

        compute_pj = (
            (stats.vertex_instructions + stats.fragment_instructions) * p.alu_op_pj
            + stats.raster_attributes * p.rasterizer_attribute_pj
            + (stats.early_z_tests + stats.prepass_fragments)
            * p.early_z_test_pj
            + stats.blend_operations * p.blend_op_pj
        )

        caches_pj = self._cache_energy(memory_snapshot)

        onchip_pj = (
            (stats.early_z_tests + stats.depth_writes + stats.blend_operations
             + stats.prepass_fragments + stats.prepass_depth_writes)
            * p.color_depth_buffer_pj
        )

        dram = memory_snapshot.get("dram", {})
        dram_bytes = dram.get("read_bytes", 0) + dram.get("write_bytes", 0)
        dram_requests = dram.get("read_requests", 0) + dram.get("write_requests", 0)
        dram_pj = dram_bytes * p.dram_pj_per_byte + dram_requests * p.dram_request_pj

        static_j = p.static_joules(
            p.gpu_static_mw, total_cycles, self.config.frequency_mhz
        )

        parameter_overhead_pj = 0.0
        evr_pj = 0.0
        if evr_enabled:
            # Layer identifiers are extra Parameter Buffer state: they are
            # written through the tile cache and eventually reach DRAM, so
            # the marginal energy is DRAM-class per byte (the paper's 2.1%
            # average overhead in Figure 6).
            parameter_overhead_pj = stats.layer_id_bytes * p.dram_pj_per_byte
            evr_pj = (
                stats.lgt_accesses * p.lgt_access_pj
                + stats.fvp_lookups * p.fvp_access_pj
                + stats.fvp_updates * p.fvp_access_pj
                + stats.layer_buffer_writes * p.layer_buffer_access_pj
            ) + p.static_joules(
                p.evr_structures_static_mw, total_cycles, self.config.frequency_mhz
            ) / _PJ

        re_pj = 0.0
        if re_enabled:
            re_pj = stats.signature_updates * (
                p.signature_access_pj + p.crc_combine_pj
            ) + stats.signature_checks * p.signature_access_pj + p.static_joules(
                p.re_structures_static_mw, total_cycles, self.config.frequency_mhz
            ) / _PJ

        return EnergyBreakdown(
            compute=compute_pj * _PJ,
            caches=caches_pj * _PJ,
            onchip_buffers=onchip_pj * _PJ,
            dram=dram_pj * _PJ,
            static=static_j,
            parameter_buffer_overhead=parameter_overhead_pj * _PJ,
            evr_structures=evr_pj * _PJ,
            re_structures=re_pj * _PJ,
        )

    def _cache_energy(
        self, memory_snapshot: Mapping[str, Mapping[str, int]]
    ) -> float:
        p = self.params
        total_pj = 0.0
        for name, snap in memory_snapshot.items():
            accesses = snap.get("accesses", 0)
            if name == "l2":
                total_pj += accesses * p.l2_cache_access_pj
            elif name == "tile":
                total_pj += accesses * p.tile_cache_access_pj
            elif name == "dram":
                continue
            else:
                total_pj += accesses * p.l1_cache_access_pj
        return total_pj
