"""Exception hierarchy for the EVR reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """An invalid or inconsistent :class:`repro.config.GPUConfig`."""


class SpecError(ConfigError):
    """An invalid experiment spec (:mod:`repro.spec`).

    Raised eagerly at resolution time — unknown keys, type mismatches,
    malformed ``--set`` expressions, unreadable spec files — so a bad
    spec can never reach the simulator.  Subclasses :class:`ConfigError`
    because a spec *is* configuration; callers that already catch
    ``ConfigError`` keep working.
    """


class PipelineError(ReproError):
    """The graphics pipeline was driven in an illegal way.

    Examples: submitting a frame while another frame is mid-render, or
    rendering a tile before the geometry pipeline has finished binning.
    """


class CommandError(ReproError):
    """A malformed draw command or command stream."""


class SceneError(ReproError):
    """A scene or benchmark generator was given invalid parameters."""


class MemoryModelError(ReproError):
    """Invalid parameters or illegal access in the memory-system model."""


class CorpusError(ReproError):
    """A malformed stress corpus: unknown family, missing or tampered
    trace file, or a manifest this build cannot read."""


class ResilienceError(ReproError):
    """Base class for failures surfaced by the fault-tolerant execution
    layer (:mod:`repro.resilience`)."""


class InjectedFaultError(ResilienceError):
    """A deliberate failure raised by the fault-injection harness.

    Only ever raised when a :class:`repro.resilience.FaultPlan` is armed
    (``--inject-faults`` / ``REPRO_FAULTS``); production runs never see it.
    """


class JobTimeoutError(ResilienceError):
    """A scheduled job exceeded its per-job wall-clock timeout."""


class WorkerCrashError(ResilienceError):
    """A worker process died (or the pool broke) while a job was in
    flight.  The job itself may have been innocent: when a pool breaks,
    every in-flight job is aborted and charged one attempt."""


class JobRetryExhaustedError(ResilienceError):
    """A job failed on every permitted attempt.

    Attributes:
        key: the scheduler's stable identifier for the job.
        attempts: how many executions were tried.
        last_error: ``repr`` of the final attempt's failure.
    """

    def __init__(self, key: str, attempts: int, last_error: str):
        super().__init__(
            f"job {key} failed after {attempts} attempt(s): {last_error}"
        )
        self.key = key
        self.attempts = attempts
        self.last_error = last_error


class CacheCorruptionError(ResilienceError):
    """A disk-cache entry failed its integrity check (truncated payload,
    checksum mismatch, or a foreign/pre-trailer file format)."""
